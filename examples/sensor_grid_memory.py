#!/usr/bin/env python
"""Memory-constrained sensor grid: this paper vs the prior construction.

Scenario: a field of sensors on a grid, routing along a data-collection
spanning tree.  Each sensor has a few hundred bytes of RAM for the routing
stack -- so what matters is not only the final table size but the peak
memory used *while the scheme is being computed*.  That is exactly the
paper's headline: prior distributed tree routing ([EN16b]/[LPP16]) needs
Θ(sqrt n) words at the virtual vertices during preprocessing; Section 3
needs only O(log n).

This example builds both schemes on the same grid + tree and prints the
peak-memory gap as the grid grows, plus the label-size gap
(O(log n) vs O(log^2 n)).

Run:  python examples/sensor_grid_memory.py
"""

import math

from repro import Network, build_distributed_tree_scheme, grid_graph, spanning_tree_of
from repro.baselines import build_en16_tree_scheme


def main() -> None:
    print(f"{'grid':>9} {'n':>5} | {'mem ours':>8} {'mem EN16b':>9} "
          f"{'ratio':>6} | {'label ours':>10} {'label EN16b':>11} | "
          f"{'log2 n':>6} {'sqrt n':>6}")
    for side in (12, 18, 26, 36):
        graph = grid_graph(side, side, seed=2)
        n = graph.number_of_nodes()
        tree = spanning_tree_of(graph, style="dfs", seed=2)

        ours = build_distributed_tree_scheme(Network(graph), tree, seed=2)
        base = build_en16_tree_scheme(Network(graph), tree, seed=2)

        ratio = base.max_memory_words / ours.max_memory_words
        print(f"{side:>4}x{side:<4} {n:>5} | {ours.max_memory_words:>8} "
              f"{base.max_memory_words:>9} {ratio:>6.2f} | "
              f"{ours.scheme.max_label_words():>10} "
              f"{base.scheme.max_label_words():>11} | "
              f"{math.log2(n):>6.1f} {math.sqrt(n):>6.1f}")

    print("\nThe 'mem EN16b' column tracks sqrt(n) (the broadcast virtual "
          "tree);\n'mem ours' tracks log(n) (ancestor trails + lists): the "
          "gap widens with n.")


if __name__ == "__main__":
    main()
