#!/usr/bin/env python
"""Writing your own CONGEST protocol + shipping a scheme to disk.

Two library features downstream users reach for first:

1. the **event-driven protocol API**: every vertex runs the same
   ``NodeProgram``; the simulator enforces the CONGEST rules (one message
   per edge per round, word limits) and meters memory.  Here we write a
   tiny "distance sketch" protocol from scratch: flood the ids of three
   seed vertices with their hop distances, so every vertex ends up with a
   3-word sketch (its hop distance to each seed).
2. **scheme serialization**: build the paper's tree-routing scheme once,
   save it as JSON, reload it, and keep routing -- preprocessing and
   routing phases can run in different processes.

Run:  python examples/custom_protocol.py
"""

import io

from repro import Network, random_connected_graph, spanning_tree_of
from repro.congest import NodeProgram, run_protocol
from repro.routing import load_scheme, route_in_tree, save_scheme
from repro.treerouting import build_distributed_tree_scheme


class SeedSketch(NodeProgram):
    """Every vertex learns its hop distance to each seed vertex."""

    def __init__(self, vertex, seeds, patience):
        self.is_seed = vertex in seeds
        self.sketch = {}  # seed -> hop distance
        self.patience = patience  # quiet rounds before halting (>= D)

    def init(self, api):
        if self.is_seed:
            self.sketch[api.id] = 0
            api.memory.store("sketch", 2)
            api.broadcast("seeds", ((api.id, 0),))

    def on_round(self, api, inbox):
        improved = []
        for msg in inbox:
            for seed, hops in msg.payload:
                if seed not in self.sketch or hops + 1 < self.sketch[seed]:
                    self.sketch[seed] = hops + 1
                    improved.append(seed)
        if improved:
            api.memory.store("sketch", 2 * len(self.sketch))
            # One batched message per edge per round (CONGEST!): the
            # simulator rejects a second message on the same edge, so all
            # improvements travel together (<= 3 pairs, charged per word).
            api.broadcast(
                "seeds", tuple((s, self.sketch[s]) for s in improved)
            )
        else:
            # Waves from different seeds arrive at different rounds, so a
            # quiet round is not the end: halt only after `patience` of
            # them (any bound >= hop-diameter works).
            self.patience -= 1
            if self.patience <= 0:
                api.halt()


def main() -> None:
    graph = random_connected_graph(200, seed=5)
    net = Network(graph)
    seeds = set(sorted(graph.nodes)[:3])

    patience = net.hop_diameter_upper_bound() + 1
    result = run_protocol(net, lambda v: SeedSketch(v, seeds, patience))
    sketches = {v: p.sketch for v, p in result.programs.items()}
    complete = sum(1 for s in sketches.values() if len(s) == 3)
    print(f"custom protocol: {result.rounds} rounds, "
          f"{complete}/{len(sketches)} vertices hold a full 3-seed sketch, "
          f"peak memory {net.max_memory()} words")

    # --- build once, serialize, route later -------------------------------
    tree = spanning_tree_of(graph, style="dfs")
    build = build_distributed_tree_scheme(Network(graph), tree, seed=5)
    buffer = io.StringIO()
    save_scheme(build.scheme, buffer)
    print(f"serialized scheme: {len(buffer.getvalue()) / 1024:.1f} KiB of JSON")

    buffer.seek(0)
    reloaded = load_scheme(buffer)
    nodes = sorted(tree)
    weight = lambda u, v: graph[u][v]["weight"]
    route = route_in_tree(reloaded, nodes[0], nodes[-1], weight_of=weight)
    print(f"routing with the reloaded scheme: {nodes[0]} -> {nodes[-1]}, "
          f"{route.hops} hops, length {route.length:.2f} (exact)")


if __name__ == "__main__":
    main()
