#!/usr/bin/env python
"""Quickstart: exact low-memory tree routing (Theorem 2) in ~40 lines.

Builds a deep spanning tree inside a shallow random network (exactly the
regime Section 3 targets: the tree's depth is far larger than the network's
hop-diameter D), runs the distributed construction, and routes a few
messages using nothing but the O(1)-word tables and O(log n)-word labels.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    Network,
    build_distributed_tree_scheme,
    random_connected_graph,
    route_in_tree,
    spanning_tree_of,
)
from repro.graphs import depths, tree_distance


def main() -> None:
    n = 600
    graph = random_connected_graph(n, seed=7)
    tree = spanning_tree_of(graph, style="dfs")  # deep on purpose
    tree_depth = max(depths(tree).values())

    net = Network(graph)
    build = build_distributed_tree_scheme(net, tree, seed=7)
    scheme = build.scheme

    print(f"network: n={n}, hop-diameter <= {net.hop_diameter_upper_bound()}")
    print(f"routing tree depth: {tree_depth} (>> D: this is why Section 3 exists)")
    print(f"construction: {build.rounds} rounds, |U(T)|={build.ut_size}")
    print(f"per-vertex memory high-water: {build.max_memory_words} words "
          f"(paper: O(log n); log2 n = {n.bit_length()})")
    print(f"table size: {scheme.max_table_words()} words (paper: O(1))")
    print(f"label size: {scheme.max_label_words()} words (paper: O(log n))")

    weight = lambda u, v: graph[u][v]["weight"]
    rng = random.Random(0)
    print("\nrouting five random pairs (exact -- stretch 1):")
    for _ in range(5):
        u, v = rng.sample(list(tree), 2)
        result = route_in_tree(scheme, u, v, weight_of=weight)
        exact = tree_distance(tree, weight, u, v)
        print(f"  {u:>4} -> {v:<4}  hops={result.hops:<4} "
              f"length={result.length:9.3f}  tree distance={exact:9.3f}  "
              f"ok={abs(result.length - exact) < 1e-9}")


if __name__ == "__main__":
    main()
