#!/usr/bin/env python
"""Every routing scheme in the library on one workload — and why Λ matters.

Part 1 builds all four general-graph schemes (this paper's distributed
scheme, centralized Thorup-Zwick, landmark routing, and the
[ABNLP90]-style hierarchical tree cover) on the same network and prints
the Table-1 columns side by side.

Part 2 re-weights the same topology so the aspect ratio Λ jumps from 10
to 10^7 and rebuilds the two schemes whose costs react: the tree cover
(its scale hierarchy deepens — labels and tables grow with log Λ) and
this paper's scheme (nothing changes — the paper's "independent of Λ"
claim, Section 2 footnote 4).

Run:  python examples/baselines_showdown.py
"""

from repro.analysis import format_records, run_table1
from repro.baselines import build_tree_cover_scheme
from repro.core import build_distributed_scheme
from repro.graphs import assign_log_uniform_weights, random_connected_graph


def main() -> None:
    n, k = 300, 3
    print(f"Part 1 — all schemes, n={n}, k={k}\n")
    result = run_table1(n, k, seed=9, pairs=120)
    print(result.render())

    print("\nPart 2 — what happens when the aspect ratio explodes\n")
    base = random_connected_graph(n, seed=9)
    rows = []
    for label, (low, high) in [("Λ=10", (1.0, 10.0)), ("Λ=1e7", (1.0, 1e7))]:
        graph = assign_log_uniform_weights(base, low, high, seed=9)
        cover = build_tree_cover_scheme(graph, seed=9)
        ours = build_distributed_scheme(graph, k, seed=9)
        rows.append({
            "weights": label,
            "cover_scales": len(cover.scales),
            "cover_label_words": cover.max_label_words(),
            "cover_table_words": cover.max_table_words(),
            "ours_label_words": ours.scheme.max_label_words(),
            "ours_table_words": ours.scheme.max_table_words(),
        })
    print(format_records(rows, title="aspect-ratio sensitivity"))
    print("\nThe cover hierarchy pays log Λ extra scales; the paper's "
          "scheme is weight-scale-free.")


if __name__ == "__main__":
    main()
