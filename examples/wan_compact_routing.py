#!/usr/bin/env python
"""Compact routing for a wide-area network (Theorem 3).

Scenario: a WAN built as dense regional PoPs (cliques) joined in a ring --
every router has limited TCAM, so routing state must stay compact, and the
*construction* must not blow local memory either (the paper's point).  We
build the distributed scheme for k=2 and k=3 and show the tradeoff the
paper's Table 1 describes: larger k shrinks tables (Õ(n^{1/k})) at the cost
of a larger stretch bound (4k-3), while per-vertex memory stays within a
polylog factor of the table size.

Run:  python examples/wan_compact_routing.py
"""

from repro import (
    build_distributed_scheme,
    measure_stretch,
    ring_of_cliques,
    route_in_graph,
    sample_pairs,
)


def main() -> None:
    graph = ring_of_cliques(12, 15, seed=3)  # 180 routers
    n = graph.number_of_nodes()
    pairs = sample_pairs(list(graph.nodes), 120, seed=5)

    print(f"WAN: {n} routers, {graph.number_of_edges()} links\n")
    print(f"{'k':>2} {'bound':>6} {'stretch max':>12} {'stretch mean':>13} "
          f"{'table(max)':>11} {'label(max)':>11} {'memory':>7} {'rounds':>8}")
    for k in (2, 3):
        report = build_distributed_scheme(graph, k, seed=11)
        stretch = measure_stretch(report.scheme, graph, pairs)
        print(f"{k:>2} {4 * k - 3:>6} {stretch.max_stretch:>12.3f} "
              f"{stretch.mean_stretch:>13.3f} "
              f"{report.scheme.max_table_words():>11} "
              f"{report.scheme.max_label_words():>11} "
              f"{report.max_memory_words:>7} "
              f"{report.rounds_parallel_estimate:>8}")

    # One concrete route, end to end.
    report = build_distributed_scheme(graph, 3, seed=11)
    nodes = sorted(graph.nodes)
    src, dst = nodes[0], nodes[-1]
    route = route_in_graph(report.scheme, graph, src, dst)
    print(f"\nexample route {src} -> {dst}: {route.hops} hops, "
          f"length {route.length:.3f}, header {route.header_words} words")
    print("path:", " -> ".join(str(v) for v in route.path[:12]),
          "..." if route.hops > 11 else "")


if __name__ == "__main__":
    main()
