#!/usr/bin/env python
"""Trace a serving run and explain its worst queries (S19).

Compiles a k=2 Thorup-Zwick scheme, serves a zipf workload with the
two-tier tracer attached (1% seeded head sample + a worst-stretch tail
buffer that always keeps the most expensive queries), exports the
traces to JSONL, then replays the worst three through the explain
pipeline: per-level stretch attribution that splits actual - optimal
across the hierarchy level each query committed to, exactly (the
residual is zero by construction, and the RunRecord verdict checks it).

Run:  python examples/explain_worst_queries.py
"""

import tempfile
from pathlib import Path

from repro.graphs import random_connected_graph
from repro.serve import run_serving
from repro.tracing import (
    Tracer,
    read_traces_jsonl,
    run_explain,
    write_traces_jsonl,
)
from repro.tz import build_centralized_scheme


def main() -> None:
    graph = random_connected_graph(150, seed=3)
    scheme = build_centralized_scheme(graph, 2, seed=3)

    tracer = Tracer(rate=0.01, seed=3, tail_limit=8, prefix="zipf-3")
    report, _ = run_serving(scheme, graph, workload="zipf", queries=2000,
                            seed=3, tracer=tracer)
    print(f"served {report.queries} queries, "
          f"traced {len(report.traces)} "
          f"(head sample @1% + worst-stretch tail)")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "traces.jsonl"
        write_traces_jsonl(path, [t.to_dict() for t in report.traces])
        traces = read_traces_jsonl(path)

    text, record = run_explain(traces, worst=3, source="traces.jsonl")
    print()
    print(text)
    verdict = record.verdicts[0]
    print(f"attribution exact: residual={verdict.measured} "
          f"(verdict {verdict.name}, passed={verdict.passed})")


if __name__ == "__main__":
    main()
