#!/usr/bin/env python
"""Parallel routing-scheme construction for many multicast overlay trees.

Scenario: a service mesh runs ``s`` multicast overlays over one physical
network; every overlay is a spanning tree and every node may participate in
all of them.  Theorem 2's second assertion says all ``s`` schemes can be
built *in parallel* in Õ(sqrt(s n) + D) rounds with O(s log n) memory per
vertex -- not the naive ``s x sqrt(n)`` obtained by building them one by
one.

This example builds 6 overlay trees, verifies all six schemes route
exactly, and prints the parallel-vs-naive round comparison.

Run:  python examples/multicast_overlays.py
"""

import math
import random

from repro import (
    Network,
    build_many_tree_schemes,
    random_connected_graph,
    route_in_tree,
    spanning_tree_of,
)
from repro.graphs import tree_distance


def main() -> None:
    n, s = 500, 6
    graph = random_connected_graph(n, seed=13)
    trees = {
        f"overlay-{i}": spanning_tree_of(graph, style="random", seed=100 + i)
        for i in range(s)
    }

    net = Network(graph)
    build = build_many_tree_schemes(net, trees, seed=13)

    print(f"{s} overlays over n={n}; q = 1/sqrt(sn) = {build.q:.4f}")
    print(f"parallel schedule:   {build.rounds_parallel:>7} rounds "
          f"(Õ(sqrt(sn)+D); sqrt(sn)={math.sqrt(s * n):.0f})")
    print(f"naive sequential:    {build.rounds_sequential:>7} rounds "
          f"(sum over trees)")
    print(f"memory high-water:   {build.max_memory_words:>7} words "
          f"(paper: O(s log n) = {s}*{n.bit_length()} = {s * n.bit_length()})")

    weight = lambda u, v: graph[u][v]["weight"]
    rng = random.Random(1)
    checked = 0
    for tree_id, scheme in build.schemes.items():
        for _ in range(20):
            u, v = rng.sample(list(trees[tree_id]), 2)
            result = route_in_tree(scheme, u, v, weight_of=weight)
            exact = tree_distance(trees[tree_id], weight, u, v)
            assert abs(result.length - exact) < 1e-9, (tree_id, u, v)
            checked += 1
    print(f"\nrouted {checked} random pairs across the {s} overlays: all exact.")


if __name__ == "__main__":
    main()
