"""Tests for the flight recorder (repro.telemetry.flight)."""

import pytest

from repro.congest import Network
from repro.graphs import random_connected_graph
from repro.telemetry import flight
from repro.telemetry.flight import (
    FlightConfig,
    FlightRecorder,
    attach_flight_recorder,
)


@pytest.fixture()
def net():
    return Network(random_connected_graph(12, seed=3))


def _chat(net, rounds=6):
    """Drive a few rounds of neighbor chatter with growing memory."""
    nodes = sorted(net.nodes())
    for r in range(rounds):
        for v in nodes:
            net.mem(v).store(f"tree/round{r}", r + 1)
        u = nodes[0]
        w = next(net.neighbors(u))
        net.send(u, w, "ping", payload=r)
        net.tick()


class TestGuard:
    def test_off_by_default(self, net):
        assert not flight.enabled()
        assert net._round_observers == []
        _chat(net)

    def test_no_observer_work_when_disabled(self, net):
        """Zero-overhead claim: no recorder attaches without a session."""
        _chat(net)
        assert net._round_observers == []

    def test_auto_session_attaches_to_new_networks(self):
        with flight.auto(stride=1) as session:
            assert flight.enabled()
            net = Network(random_connected_graph(10, seed=4))
            _chat(net)
        assert not flight.enabled()
        assert len(session.recorders) == 1
        assert session.recorders[0].rounds_seen == 6

    def test_auto_does_not_touch_preexisting_networks(self, net):
        with flight.auto():
            _chat(net)
        assert net._round_observers == []

    def test_sessions_nest_innermost_wins(self):
        with flight.auto(stride=1) as outer:
            with flight.auto(stride=2) as inner:
                Network(random_connected_graph(8, seed=5))
            assert len(inner.recorders) == 1
            assert not outer.recorders


class TestConfig:
    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            FlightConfig(stride=0)

    def test_bad_ring_rejected(self):
        with pytest.raises(ValueError):
            FlightConfig(ring=0)

    def test_config_xor_knobs(self):
        with pytest.raises(TypeError):
            FlightRecorder(FlightConfig(), stride=2)


class TestSampling:
    def test_stride_thins_samples(self, net):
        rec = attach_flight_recorder(net, stride=3)
        _chat(net, rounds=9)
        assert rec.rounds_seen == 9
        assert len(rec.samples) == 3
        assert [s.round_index for s in rec.samples] == [3, 6, 9]

    def test_traffic_totals_count_every_round(self, net):
        rec = attach_flight_recorder(net, stride=4)
        _chat(net, rounds=6)
        assert rec.total_messages == 6
        assert rec.total_words > 0

    def test_memory_aggregates(self, net):
        rec = attach_flight_recorder(net, stride=1)
        _chat(net, rounds=3)
        last = rec.samples[-1]
        # every vertex stored 1+2+3 = 6 words under tree/
        assert last.mem_current_max == 6
        assert last.mem_current_mean == pytest.approx(6.0)
        assert last.prefixes == {"tree/": 6 * net.n}

    def test_vertex_delta_only_records_changes(self, net):
        rec = attach_flight_recorder(net, stride=1)
        nodes = sorted(net.nodes())
        net.mem(nodes[0]).store("a", 7)
        net.tick()
        net.tick()  # nothing changed between these samples
        assert rec.samples[0].vertex_delta == {nodes[0]: (7, 7)}
        assert rec.samples[1].vertex_delta == {}

    def test_charge_events_recorded(self, net):
        rec = attach_flight_recorder(net)
        net.begin_phase("analytic")
        net.charge_rounds(5, messages=10, words=20)
        net.end_phase()
        assert len(rec.charges) == 1
        ev = rec.charges[0]
        assert (ev.rounds, ev.messages, ev.words) == (5, 10, 20)
        assert ev.phase == "analytic"

    def test_phase_attribution(self, net):
        rec = attach_flight_recorder(net, stride=1)
        net.begin_phase("build")
        _chat(net, rounds=2)
        net.end_phase()
        assert {s.phase for s in rec.samples} == {"build"}
        assert "build" in rec.phase_edge_totals


class TestRing:
    def test_eviction_folds_into_base(self, net):
        rec = attach_flight_recorder(net, stride=1, ring=4)
        _chat(net, rounds=10)
        assert len(rec.samples) == 4
        assert rec._evicted == 6
        # evicted deltas live on in the base snapshot
        assert rec._base

    def test_vertex_timeline_survives_eviction(self, net):
        rec = attach_flight_recorder(net, stride=1, ring=3)
        v = sorted(net.nodes())[0]
        for r in range(8):
            net.mem(v).store("x", r + 1)
            net.tick()
        timeline = rec.vertex_timeline(v)
        assert [cur for _, cur, _ in timeline] == [6, 7, 8]
        assert [hw for _, _, hw in timeline] == [6, 7, 8]

    def test_timeline_carries_state_forward(self, net):
        rec = attach_flight_recorder(net, stride=1)
        v = sorted(net.nodes())[0]
        net.mem(v).store("x", 9)
        net.tick()
        net.tick()
        net.tick()
        assert [cur for _, cur, _ in rec.vertex_timeline(v)] == [9, 9, 9]


class TestReporting:
    def test_busiest_edges_ranked_by_words(self, net):
        rec = attach_flight_recorder(net)
        _chat(net, rounds=4)
        edges = rec.busiest_edges(2)
        assert edges
        words = [w for _, _, _, w in edges]
        assert words == sorted(words, reverse=True)

    def test_peak_memory_sample(self, net):
        rec = attach_flight_recorder(net, stride=1)
        _chat(net, rounds=5)
        peak = rec.peak_memory_sample()
        assert peak is rec.samples[-1]  # memory grows monotonically here

    def test_summary_renders(self, net):
        rec = attach_flight_recorder(net, stride=2)
        _chat(net, rounds=4)
        text = rec.summary()
        assert "rounds observed" in text
        assert "memory peak" in text

    def test_to_dict_json_ready(self, net):
        import json

        rec = attach_flight_recorder(net, stride=2)
        _chat(net, rounds=4)
        doc = rec.to_dict()
        json.dumps(doc)  # must not raise
        assert doc["rounds_seen"] == 4
        assert len(doc["samples"]) == 2
        assert doc["config"]["stride"] == 2

    def test_trace_observer_still_works_alongside(self, net):
        """RoundTrace and FlightRecorder share the observer hook."""
        from repro.congest.trace import attach_trace

        trace = attach_trace(net)
        rec = attach_flight_recorder(net)
        _chat(net, rounds=3)
        assert len(trace.samples) == 3
        assert rec.rounds_seen == 3
