"""Coverage for the remaining figure sweeps (fast configurations)."""

import pytest

from repro.analysis import (
    fig_graph_rounds,
    fig_hopset,
    fig_tree_sizes,
    fig_tree_styles,
)


class TestFigHopset:
    @pytest.fixture(scope="class")
    def records(self):
        return fig_hopset(n=200, kappas=(1, 2), seed=4, epsilon=0.15)

    def test_one_record_per_kappa(self, records):
        assert [r["kappa"] for r in records] == [1, 2]

    def test_beta_measured_positive(self, records):
        assert all(r["measured_beta"] >= 1 for r in records)

    def test_memory_non_increasing_in_kappa(self, records):
        assert records[1]["max_out_degree"] <= records[0]["max_out_degree"]

    def test_virtual_size_consistent(self, records):
        assert len({r["virtual_m"] for r in records}) == 1


class TestFigGraphRounds:
    @pytest.fixture(scope="class")
    def records(self):
        return fig_graph_rounds(sizes=(80, 160), k=2, seed=4)

    def test_sizes_in_order(self, records):
        assert [r["n"] for r in records] == [80, 160]

    def test_parallel_at_most_sequential(self, records):
        for r in records:
            assert r["rounds_parallel"] <= r["rounds_sequential"]

    def test_memory_reported(self, records):
        for r in records:
            assert r["memory_max"] >= r["memory_mean"] > 0


class TestFigTreeStyles:
    @pytest.fixture(scope="class")
    def records(self):
        return fig_tree_styles(n=200, seed=4)

    def test_four_styles(self, records):
        assert {r["style"] for r in records} == {
            "bfs", "shortest-path", "random", "dfs"
        }

    def test_dfs_is_deepest(self, records):
        by_style = {r["style"]: r for r in records}
        assert by_style["dfs"]["tree_depth"] >= by_style["bfs"]["tree_depth"]

    def test_costs_in_a_band(self, records):
        rounds = [r["rounds"] for r in records]
        assert max(rounds) <= 4 * min(rounds)


class TestFigTreeSizes:
    def test_table_size_constant_across_n(self):
        records = fig_tree_sizes(sizes=(100, 300), seed=4)
        tables = {r["table_this_paper"] for r in records}
        assert tables == {4}
