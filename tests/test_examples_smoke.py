"""Smoke tests: every example script runs to completion and prints what
its docstring promises.  Run as subprocesses to catch import-time issues."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 280) -> str:
    script = EXAMPLES / name
    assert script.exists(), f"missing example {name}"
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=True,
    )
    return result.stdout


@pytest.mark.parametrize("name,expect", [
    ("quickstart.py", "ok=True"),
    ("sensor_grid_memory.py", "mem EN16b"),
    ("multicast_overlays.py", "all exact"),
    ("custom_protocol.py", "(exact)"),
    ("baselines_showdown.py", "weight-scale-free"),
    ("explain_worst_queries.py", "attribution exact: residual=0.0"),
])
def test_example_runs(name, expect):
    out = run_example(name)
    assert expect in out


def test_wan_example_runs():
    out = run_example("wan_compact_routing.py", timeout=580)
    assert "example route" in out
    # both k rows printed
    assert "\n 2 " in out and "\n 3 " in out
