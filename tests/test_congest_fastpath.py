"""Regression tests for the fast-path engine's precomputed structures.

The headline guarantees:

* :meth:`Network.ports` is O(1) after construction — the port tables are
  sorted exactly once per vertex in ``__init__`` and never again (the spy
  test counts ``sorted`` calls, so a reintroduced per-call sort fails
  loudly, not slowly);
* compact ids and arc ids round-trip and line up with CSR slot order;
* the ``send_many`` contiguous-range fast path (triggered by passing the
  cached port list itself) is behaviorally identical to the generic path.
"""

from __future__ import annotations

import builtins

import pytest

import repro.congest.network as network_mod
import repro.congest.reference as reference_mod
from repro.congest import Network, ReferenceNetwork
from repro.graphs import random_connected_graph

SEED = 99


@pytest.fixture()
def graph():
    return random_connected_graph(40, seed=SEED)


class _SortSpy:
    """Counts calls routed through a module's ``sorted`` name.

    Assigning the spy as a module attribute shadows the builtin for that
    module only (module globals are resolved before builtins), so the count
    isolates the module under test.
    """

    def __init__(self):
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return builtins.sorted(*args, **kwargs)


class TestPortsAreCached:
    def test_construction_sorts_once_per_vertex(self, graph, monkeypatch):
        spy = _SortSpy()
        monkeypatch.setattr(network_mod, "sorted", spy, raising=False)
        net = Network(graph)
        assert spy.calls == net.n

    def test_ports_is_o1_after_first_call(self, graph, monkeypatch):
        spy = _SortSpy()
        monkeypatch.setattr(network_mod, "sorted", spy, raising=False)
        net = Network(graph)
        built = spy.calls
        for _ in range(5):
            for v in net.nodes():
                net.ports(v)
        assert spy.calls == built, "ports() re-sorted after construction"

    def test_repeated_calls_return_same_object(self, graph):
        net = Network(graph)
        v = next(net.nodes())
        assert net.ports(v) is net.ports(v)

    def test_reference_engine_sorts_per_call(self, graph, monkeypatch):
        """Contrast pin: the oracle intentionally re-sorts every time, so
        the spy proves it measures what it claims to."""
        spy = _SortSpy()
        monkeypatch.setattr(reference_mod, "sorted", spy, raising=False)
        net = ReferenceNetwork(graph)
        v = next(net.nodes())
        before = spy.calls
        net.ports(v)
        net.ports(v)
        assert spy.calls == before + 2

    def test_port_order_matches_reference(self, graph):
        fast = Network(graph)
        ref = ReferenceNetwork(random_connected_graph(40, seed=SEED))
        for v in fast.nodes():
            assert fast.ports(v) == ref.ports(v)


class TestCompactIds:
    def test_compact_id_round_trip(self, graph):
        net = Network(graph)
        for i, v in enumerate(net.nodes()):
            assert net.compact_id(v) == i
            assert net.node_of(i) == v

    def test_edge_index_matches_csr_slots(self, graph):
        net = Network(graph)
        for v in net.nodes():
            base = net.edge_index(v, net.ports(v)[0])
            for p, w in enumerate(net.ports(v)):
                assert net.edge_index(v, w) == base + p
                assert net.edge_endpoints(base + p) == (v, w)

    def test_num_arcs_is_twice_edge_count(self, graph):
        net = Network(graph)
        assert net.num_arcs == 2 * graph.number_of_edges()

    def test_edge_index_rejects_non_edges(self, graph):
        net = Network(graph)
        from repro.errors import CongestModelViolation

        nodes = list(net.nodes())
        v = nodes[0]
        with pytest.raises(CongestModelViolation):
            net.edge_index(v, v)


class TestSendManyFastPath:
    def test_port_table_identity_path_matches_copy_path(self, graph):
        a = Network(random_connected_graph(40, seed=SEED), edge_capacity=4)
        b = Network(random_connected_graph(40, seed=SEED), edge_capacity=4)
        for v in a.nodes():
            a.send_many(v, a.ports(v), "x", 7)          # contiguous range
        for v in b.nodes():
            b.send_many(v, list(b.ports(v)), "x", 7)    # generic lookup
        da = [(m.src, m.dst, m.kind, m.payload, m.words)
              for m in a.deliver_batch()]
        db = [(m.src, m.dst, m.kind, m.payload, m.words)
              for m in b.deliver_batch()]
        assert da == db
        assert a.metrics.fingerprint() == b.metrics.fingerprint()

    def test_outbox_words_stays_consistent_after_violation(self, graph):
        from repro.errors import CongestModelViolation

        net = Network(graph)
        v = max(net.nodes(), key=net.degree)  # guaranteed >= 2 ports
        ports = net.ports(v)
        net.send(v, ports[0], "first")
        with pytest.raises(CongestModelViolation):
            net.send_many(v, [ports[-1], ports[0]], "clash")
        # ports[-1]'s message survived the failed batch; the word counter
        # must agree with what tick() delivers.
        inboxes = net.tick()
        delivered = [m for box in inboxes.values() for m in box]
        assert len(delivered) == 2
        assert net.metrics.message_words == sum(m.words for m in delivered)
