"""Tests for ``repro.tracing`` — sampled per-query tracing (S19).

The tracing layer's contract has four legs, each pinned here:

* **non-interference** — serving with a tracer attached returns
  byte-identical results and report statistics to serving without one,
  on every workload family (the trace is a *replay*, never inline);
* **determinism** — head sampling is a pure function of (rate, seed),
  and the tail buffer's eviction tie-breaks come from an injected rng,
  so a fixed seed pins the retained set exactly;
* **tail retention** — the tail buffer provably keeps the true
  worst-stretch query and every failure, whatever the offer order;
* **exact attribution** — per-level stretch attribution sums to
  (actual − optimal) *exactly* (closed form, not a float residual), and
  per-hop excesses telescope to the same total.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.graphs import random_connected_graph
from repro.graphs.paths import dijkstra
from repro.serve import ServeEngine, compile_scheme, run_serving
from repro.telemetry.chrometrace import to_chrome_trace, validate_chrome_trace
from repro.tracing import (
    HopSpan,
    QueryTrace,
    TailBuffer,
    Tracer,
    attribute,
    attribution_residual,
    per_level_table,
    read_traces_jsonl,
    replay_query,
    run_explain,
    select_traces,
    write_traces_jsonl,
)
from repro.tz import build_centralized_scheme

WORKLOADS = ("uniform", "zipf", "gravity", "adversarial")


@pytest.fixture(scope="module")
def built():
    graph = random_connected_graph(90, seed=11)
    scheme = build_centralized_scheme(graph, 2, seed=11)
    return graph, scheme


@pytest.fixture(scope="module")
def compiled(built):
    graph, scheme = built
    return compile_scheme(scheme, graph)


def serve_traced(built, *, workload="uniform", queries=400, rate=0.05,
                 seed=11, **tracer_kwargs):
    graph, scheme = built
    tracer = Tracer(rate=rate, seed=seed, prefix=f"{workload}-{seed}",
                    **tracer_kwargs)
    report, results = run_serving(scheme, graph, workload=workload,
                                  queries=queries, seed=seed, tracer=tracer)
    return report, results, tracer


# ---------------------------------------------------------------------------
# Compiler provenance
# ---------------------------------------------------------------------------

class TestProvenance:
    def test_parallel_to_decision_table(self, compiled):
        assert set(compiled.provenance) == set(compiled.decisions)
        for node, provs in compiled.provenance.items():
            entries = compiled.entries[node]
            assert len(provs) == len(entries) == \
                len(compiled.decisions[node])
            for prov, entry in zip(provs, entries):
                assert prov.level == entry.level
                assert prov.tree_index == entry.tree_index
                assert prov.dist_to_root == entry.dist_to_root
                assert prov.tree_id == \
                    compiled.trees[entry.tree_index].tree_id
                assert prov.tree_size == \
                    compiled.trees[entry.tree_index].size
                assert prov.label_words == entry.label.words

    def test_bunch_levels_sorted_per_target(self, compiled):
        assert set(compiled.bunch_levels) == set(compiled.decisions)
        for node, levels in compiled.bunch_levels.items():
            assert levels == tuple(e.level
                                   for e in compiled.entries[node])
            # Top-level cluster membership is universal (TZ invariant).
            assert 0 in levels

    def test_roots_belong_to_their_tree(self, compiled):
        for provs in compiled.provenance.values():
            for prov in provs:
                tree = compiled.trees[prov.tree_index]
                assert tree.member(prov.root)
                # The landmark is the cluster center the tree is rooted at.
                assert prov.root == tree.tree_id


# ---------------------------------------------------------------------------
# Non-interference: tracing on/off is byte-identical
# ---------------------------------------------------------------------------

class TestNonInterference:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_results_and_report_identical(self, built, workload):
        graph, scheme = built
        plain_report, plain_results = run_serving(
            scheme, graph, workload=workload, queries=300, seed=5)
        report, results, tracer = serve_traced(
            built, workload=workload, queries=300, seed=5, rate=0.1)

        def key(r):
            return (r.source, r.target, r.ok, tuple(r.path), r.length,
                    r.error, r.cached)

        assert [key(r) for r in results] == [key(r) for r in plain_results]
        for field in ("workload", "queries", "failures", "hops_p50",
                      "hops_p99", "hops_max", "cache_hit_rate",
                      "slo_fraction"):
            assert getattr(report, field) == getattr(plain_report, field)
        assert report.traces and not plain_report.traces

    def test_route_recorded_sampling(self, compiled):
        engine = ServeEngine(compiled, tracer=Tracer(rate=1.0, seed=0))
        nodes = list(compiled.nodes)
        r = engine.route_recorded(nodes[0], nodes[-1])
        assert len(engine.tracer.head) == 1
        trace = engine.tracer.head[0]
        assert trace.source == r.source and trace.target == r.target
        assert trace.ok == r.ok and trace.length == r.length
        assert [h.dest for h in trace.hops] == r.path[1:]


# ---------------------------------------------------------------------------
# Head sampling determinism
# ---------------------------------------------------------------------------

class TestHeadSampling:
    @given(rate=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_under_fixed_seed(self, rate, seed):
        a = Tracer(rate=rate, seed=seed)
        b = Tracer(rate=rate, seed=seed)
        assert [a.sample_head() for _ in range(200)] == \
            [b.sample_head() for _ in range(200)]
        assert a.seq == b.seq == 200

    def test_rate_zero_never_samples_and_counts(self):
        tracer = Tracer(rate=0.0, seed=3)
        assert not any(tracer.sample_head() for _ in range(100))
        assert tracer.seq == 100

    def test_rate_one_always_samples(self):
        tracer = Tracer(rate=1.0, seed=3)
        assert all(tracer.sample_head() for _ in range(50))

    def test_trace_ids_are_ordinal(self):
        tracer = Tracer(rate=0.5, seed=0, prefix="zipf-7")
        assert tracer.trace_id(0) == "zipf-7-000000"
        assert tracer.trace_id(123) == "zipf-7-000123"

    def test_head_limit_drops_excess(self, compiled):
        engine = ServeEngine(compiled)
        tracer = Tracer(rate=1.0, seed=0, head_limit=3)
        nodes = list(compiled.nodes)
        for v in nodes[1:9]:
            tracer.sample_head()
            tracer.capture_pair(engine, nodes[0], v)
        assert len(tracer.head) == 3
        assert tracer.head_dropped == 5


# ---------------------------------------------------------------------------
# Tail buffer: worst retention + injected tie-break rng
# ---------------------------------------------------------------------------

class TestTailBuffer:
    @given(st.lists(st.floats(min_value=1.0, max_value=50.0,
                              allow_nan=False), min_size=1, max_size=64),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_always_retains_true_worst(self, stretches, limit):
        buf = TailBuffer(limit=limit, seed=0)
        for i, s in enumerate(stretches):
            buf.offer(i, f"s{i}", f"t{i}", s)
        worst_value = max(stretches)
        retained = {e.ordinal for e in buf.worst()}
        # Some ordinal achieving the max stretch must survive eviction.
        assert any(stretches[o] == worst_value for o in retained)
        assert len(buf) == min(limit, len(stretches))

    def test_failures_outrank_any_stretch(self):
        buf = TailBuffer(limit=2, seed=0)
        buf.offer(0, "a", "b", 100.0)
        buf.offer(1, "c", "d", None, failed=True)
        buf.offer(2, "e", "f", 99.0)
        entries = buf.worst()
        assert entries[0].failed and entries[0].ordinal == 1
        assert math.isinf(entries[0].key)

    def test_none_stretch_not_retained_unless_failed(self):
        buf = TailBuffer(limit=4, seed=0)
        assert not buf.offer(0, "a", "b", None)
        assert buf.offer(1, "a", "b", None, failed=True)
        assert len(buf) == 1

    def test_worst_is_sorted_descending(self):
        buf = TailBuffer(limit=8, seed=0)
        for i, s in enumerate([3.0, 1.0, 7.0, 5.0]):
            buf.offer(i, f"s{i}", f"t{i}", s)
        assert [e.key for e in buf.worst()] == [7.0, 5.0, 3.0, 1.0]
        assert [e.key for e in buf.worst(2)] == [7.0, 5.0]

    def test_tie_breaks_pinned_by_seed(self):
        # Satellite bugfix regression: eviction among equal-stretch
        # offers must come from the injected rng, so a fixed seed pins
        # the retained set exactly (and a different seed moves it).
        def retained(seed):
            buf = TailBuffer(limit=4, seed=seed)
            for i in range(32):
                buf.offer(i, f"s{i}", f"t{i}", 2.0)
            assert buf.offered == 32
            return sorted(buf.ordinals())

        assert retained(42) == [6, 18, 24, 28]
        assert retained(42) == retained(42)
        assert retained(7) == [13, 17, 20, 22]

    def test_injected_rng_wins_over_seed(self):
        import random
        a = TailBuffer(limit=4, rng=random.Random(99), seed=0)
        b = TailBuffer(limit=4, rng=random.Random(99), seed=12345)
        for i in range(32):
            a.offer(i, "s", "t", 2.0)
            b.offer(i, "s", "t", 2.0)
        assert sorted(a.ordinals()) == sorted(b.ordinals())


# ---------------------------------------------------------------------------
# Replay + exact attribution
# ---------------------------------------------------------------------------

class TestAttribution:
    def test_attribution_sums_exactly(self, built):
        report, results, tracer = serve_traced(built, workload="zipf",
                                               queries=600, rate=0.1)
        assert report.traces
        for trace in report.traces:
            assert trace.ok
            assert trace.attribution is not None
            # Closed form: the committed level's bucket IS the excess.
            assert sum(trace.attribution.values()) == \
                trace.length - trace.optimal
            assert attribution_residual(trace) == 0.0
            assert trace.phases is not None
            assert math.isclose(
                trace.phases["ascent"] + trace.phases["descent"],
                trace.length - trace.optimal, abs_tol=1e-9)

    def test_hop_excesses_telescope(self, built):
        graph, _ = built
        report, _, _ = serve_traced(built, queries=400, rate=0.1)
        for trace in report.traces:
            if not trace.ok or not trace.hops:
                continue
            assert all(h.excess is not None for h in trace.hops)
            assert math.isclose(sum(h.excess for h in trace.hops),
                                trace.length - trace.optimal,
                                abs_tol=1e-9)

    def test_replay_matches_engine_result(self, built, compiled):
        graph, _ = built
        engine = ServeEngine(compiled, cache_size=0)
        nodes = sorted(compiled.nodes)
        for u, v in zip(nodes[:20], reversed(nodes[:40:2])):
            r = engine.route_recorded(u, v)
            trace = replay_query(engine, u, v, trace_id="x")
            assert trace.ok == r.ok
            assert trace.length == r.length
            assert [h.dest for h in trace.hops] == r.path[1:]
            assert trace.level == \
                compiled.provenance[v][trace.candidate_index].level

    def test_self_query_trace(self, built, compiled):
        engine = ServeEngine(compiled)
        node = next(iter(compiled.nodes))
        trace = replay_query(engine, node, node)
        assert trace.ok and trace.hops == [] and trace.length == 0.0
        attribute(built[0], trace)
        assert trace.optimal == 0.0 and trace.stretch == 1.0
        assert sum(trace.attribution.values()) == 0.0

    def test_failed_queries_traced_with_forensics(self, built, compiled):
        graph, _ = built
        engine = ServeEngine(compiled, cache_size=0, max_hops=1)
        tracer = Tracer(rate=0.0, seed=0)
        nodes = sorted(compiled.nodes)
        pairs = [(u, v) for u in nodes[:10] for v in nodes[-5:] if u != v]
        results = engine.route_many(pairs)
        failed = [r for r in results if not r.ok]
        assert failed, "max_hops=1 must force budget failures"
        traces = tracer.finalize(engine, results, graph=graph)
        bad = [t for t in traces if not t.ok]
        assert bad, "tail buffer must retain failures"
        for t in bad:
            assert t.error
            assert t.via == "tail"
            assert not t.attribution  # no committed route to blame
            assert len(t.hops) >= 1  # forensic partial walk


# ---------------------------------------------------------------------------
# finalize: two-tier merge
# ---------------------------------------------------------------------------

class TestFinalize:
    def test_tail_merges_with_head_and_dedupes(self, built):
        graph, scheme = built
        tracer = Tracer(rate=1.0, seed=0, tail_limit=4, head_limit=1024)
        report, results = run_serving(scheme, graph, workload="uniform",
                                      queries=200, seed=9, tracer=tracer)
        ids = [t.trace_id for t in report.traces]
        assert len(ids) == len(set(ids)), "head∩tail must not duplicate"
        # Every tail-retained ordinal appears, marked as tail-reachable.
        tail_ids = set(tracer.tail_trace_ids())
        by_id = {t.trace_id: t for t in report.traces}
        assert tail_ids <= set(ids)
        for tid in tail_ids:
            assert by_id[tid].via in ("tail", "head+tail")

    def test_trace_ordinals_align_with_results(self, built):
        report, results, tracer = serve_traced(built, queries=300, rate=0.2)
        for trace in report.traces:
            ordinal = int(trace.trace_id.rsplit("-", 1)[1])
            r = results[ordinal]
            assert (trace.source, trace.target) == (r.source, r.target)

    def test_worst_stretch_query_always_traced(self, built):
        graph, scheme = built
        report, results, tracer = serve_traced(
            built, workload="adversarial", queries=300, rate=0.0)
        # rate 0: only the tail keeps traces — the worst query must be in.
        dists = {}
        worst, worst_i = -1.0, None
        for i, r in enumerate(results):
            if not r.ok:
                continue
            if r.source not in dists:
                dists[r.source], _ = dijkstra(graph, [r.source])
            exact = dists[r.source].get(r.target, 0.0)
            stretch = r.length / exact if exact > 0 else 1.0
            if stretch > worst:
                worst, worst_i = stretch, i
        traced = {int(t.trace_id.rsplit("-", 1)[1]) for t in report.traces}
        assert worst_i in traced


# ---------------------------------------------------------------------------
# Export: JSONL round-trip + Chrome trace
# ---------------------------------------------------------------------------

class TestExport:
    def test_jsonl_round_trip(self, built, tmp_path):
        report, _, _ = serve_traced(built, queries=300, rate=0.1)
        path = write_traces_jsonl(tmp_path / "t.jsonl", report.traces)
        loaded = read_traces_jsonl(path)
        assert [QueryTrace.from_dict(d).to_dict() for d in loaded] == \
            [t.to_dict() for t in report.traces]

    def test_dict_round_trip_preserves_hops(self):
        trace = QueryTrace("q-000001", "a", "z", via="tail")
        trace.hops = [HopSpan(0, "a", "b", "parent", 1.5, 0.25)]
        trace.ok = True
        trace.level = 1
        trace.attribution = {"1": 0.25}
        again = QueryTrace.from_dict(trace.to_dict())
        assert again.to_dict() == trace.to_dict()
        assert again.hops[0].excess == 0.25

    def test_chrome_trace_validates(self, built):
        report, _, _ = serve_traced(built, queries=300, rate=0.1)
        doc = to_chrome_trace([], queries=[t.to_dict()
                                           for t in report.traces])
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert 1000 in pids
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M" and e.get("name") == "thread_name"}
        assert {t.trace_id for t in report.traces} <= names


# ---------------------------------------------------------------------------
# explain
# ---------------------------------------------------------------------------

class TestExplain:
    @pytest.fixture(scope="class")
    def trace_dicts(self, built):
        report, _, _ = serve_traced(built, workload="zipf", queries=600,
                                    rate=0.1)
        return [t.to_dict() for t in report.traces]

    def test_select_by_trace_id(self, trace_dicts):
        wanted = trace_dicts[3]["trace_id"]
        selected = select_traces(trace_dicts, trace_id=wanted)
        assert [t["trace_id"] for t in selected] == [wanted]

    def test_select_unknown_id_raises(self, trace_dicts):
        with pytest.raises(InputError, match="not found"):
            select_traces(trace_dicts, trace_id="nope-999999")

    def test_select_worst_ranks_by_excess(self, trace_dicts):
        worst = select_traces(trace_dicts, worst=5)
        excesses = [t["length"] - t["optimal"] for t in worst]
        assert excesses == sorted(excesses, reverse=True)
        assert len(worst) == 5

    def test_per_level_table_aggregates(self, trace_dicts):
        rows = per_level_table(trace_dicts)
        assert rows
        total = sum(r["excess"] for r in rows)
        expected = sum(t["length"] - t["optimal"] for t in trace_dicts
                       if t["ok"])
        # Rows round to 6 decimals for display; the per-trace exactness
        # verdict (residual == 0) is asserted elsewhere.
        assert math.isclose(total, expected, abs_tol=1e-5)
        assert sum(r["queries"] for r in rows) == \
            sum(1 for t in trace_dicts if t["ok"])

    def test_run_explain_record_and_verdict(self, trace_dicts):
        text, record = run_explain(trace_dicts, worst=3, source="t.jsonl")
        assert record.kind == "explain"
        assert record.passed
        [verdict] = record.verdicts
        assert verdict.name == "explain/attribution-exact"
        assert verdict.measured == 0.0 and verdict.limit == 0.0
        assert len(record.traces) == 3
        assert "attribution-exact" in text and "[PASS]" in text
        # RunRecord round-trip keeps the traces section.
        from repro.telemetry import RunRecord
        again = RunRecord.from_dict(record.to_dict())
        assert again.traces == record.traces

    def test_run_explain_empty_raises(self):
        with pytest.raises(InputError):
            run_explain([])
