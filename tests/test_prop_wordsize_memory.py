"""Property-based tests for word accounting and memory meters."""

from hypothesis import given, settings, strategies as st

from repro.congest.memory import MemoryMeter
from repro.wordsize import words_of

scalars = st.one_of(
    st.integers(min_value=-10 ** 9, max_value=10 ** 9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.none(),
    st.booleans(),
)
payloads = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5).map(tuple),
        st.lists(inner, max_size=5),
    ),
    max_leaves=12,
)


@given(payloads)
@settings(max_examples=120, deadline=None)
def test_words_nonnegative(payload):
    assert words_of(payload) >= 0


@given(payloads, payloads)
@settings(max_examples=120, deadline=None)
def test_words_additive_over_concatenation(a, b):
    assert words_of((a, b)) == words_of(a) + words_of(b)


@given(st.lists(st.tuples(st.sampled_from("abcde"),
                          st.integers(min_value=0, max_value=50))))
@settings(max_examples=120, deadline=None)
def test_meter_current_matches_replay(ops):
    """Replaying stores: current equals the sum of last store per key and
    high-water is the max prefix total."""
    meter = MemoryMeter()
    state = {}
    peak = 0
    for key, words in ops:
        meter.store(key, words)
        state[key] = words
        peak = max(peak, sum(state.values()))
    assert meter.current == sum(state.values())
    assert meter.high_water == peak


@given(st.lists(st.tuples(st.sampled_from("abc"),
                          st.integers(min_value=0, max_value=20)),
                min_size=1))
@settings(max_examples=120, deadline=None)
def test_meter_add_equals_running_sum(ops):
    meter = MemoryMeter()
    totals = {}
    for key, words in ops:
        meter.add(key, words)
        totals[key] = totals.get(key, 0) + words
    assert dict(meter.items()) == {k: v for k, v in totals.items()}


@given(st.lists(st.sampled_from("abc"), min_size=0, max_size=6))
@settings(max_examples=80, deadline=None)
def test_meter_free_is_idempotent(keys):
    meter = MemoryMeter()
    for k in "abc":
        meter.store(k, 5)
    for k in keys:
        meter.free(k)
        meter.free(k)
    assert meter.current == 5 * (3 - len(set(keys)))
