"""Differential suite: the packed serve engine vs the reference routers.

The serve engine's contract (docs/serving.md) is byte-identical behaviour
with :func:`route_in_graph` / :func:`route_in_tree` on *every* query --
identical paths and lengths on success, and identical ``RoutingFailure``
messages and partial paths (or ``KeyError``) on malformed schemes.  Each
graph family replays 600 seeded queries through both implementations;
corrupted-scheme cases check the failure surface hop by hop.
"""

import pytest

from repro.errors import RoutingFailure
from repro.graphs import (
    grid_graph,
    random_connected_graph,
    random_tree_network,
    ring_of_cliques,
    spanning_tree_of,
)
from repro.routing import route_in_tree
from repro.routing.router import route_in_graph, sample_pairs
from repro.serve import ServeEngine, compile_scheme
from repro.tz import build_centralized_scheme, build_tree_scheme

QUERIES = 600


def reference_outcome(scheme, graph, u, v, mode="first"):
    """(ok, path, length, error) from the reference graph router."""
    try:
        r = route_in_graph(scheme, graph, u, v, mode=mode)
        return True, r.path, r.length, None
    except RoutingFailure as exc:
        return False, list(exc.path) if exc.path else [u], None, str(exc)


def assert_parity(result, ok, path, length, error):
    assert result.ok == ok, (result, error)
    assert result.path == path
    if ok:
        assert result.length == pytest.approx(length)
    else:
        assert result.error == error


GRAPH_FAMILIES = {
    "random": lambda: random_connected_graph(120, seed=3),
    "grid": lambda: grid_graph(10, 12, seed=4),
    "ring-of-cliques": lambda: ring_of_cliques(8, 5, seed=5),
}


@pytest.fixture(scope="module", params=sorted(GRAPH_FAMILIES))
def graph_setup(request):
    graph = GRAPH_FAMILIES[request.param]()
    scheme = build_centralized_scheme(graph, 3, seed=9)
    return graph, scheme, compile_scheme(scheme, graph)


class TestGraphDifferential:
    @pytest.mark.parametrize("mode", ["first", "best"])
    @pytest.mark.parametrize("cache_size", [0, 64])
    def test_600_queries_byte_identical(self, graph_setup, mode, cache_size):
        graph, scheme, compiled = graph_setup
        pairs = sample_pairs(list(graph.nodes), QUERIES, seed=17)
        engine = ServeEngine(compiled, mode=mode, cache_size=cache_size)
        results = engine.route_many(pairs)
        assert len(results) == QUERIES
        for (u, v), result in zip(pairs, results):
            assert_parity(result,
                          *reference_outcome(scheme, graph, u, v, mode=mode))

    def test_single_query_path_matches_batch(self, graph_setup):
        graph, scheme, compiled = graph_setup
        pairs = sample_pairs(list(graph.nodes), 50, seed=23)
        engine = ServeEngine(compiled)
        batch = ServeEngine(compiled).route_many(pairs)
        for (u, v), expected in zip(pairs, batch):
            assert engine.route_recorded(u, v) == expected

    def test_self_query(self, graph_setup):
        graph, scheme, compiled = graph_setup
        v = next(iter(graph.nodes))
        engine = ServeEngine(compiled)
        for result in (engine.route(v, v),
                       engine.route_many([(v, v)])[0]):
            assert result.ok and result.path == [v] and result.length == 0.0

    def test_warm_cache_results_identical(self, graph_setup):
        graph, scheme, compiled = graph_setup
        pairs = sample_pairs(list(graph.nodes), 100, seed=29) * 2
        cold = ServeEngine(compiled, cache_size=0).route_many(pairs)
        warm_engine = ServeEngine(compiled, cache_size=4096)
        warm = warm_engine.route_many(pairs)
        assert [(r.path, r.length, r.ok) for r in warm] == \
               [(r.path, r.length, r.ok) for r in cold]
        assert warm_engine.cache.hits >= 100  # second half all hits
        assert any(r.cached for r in warm)


class TestGraphFailureParity:
    """Corrupted schemes must fail exactly like the reference."""

    @pytest.fixture()
    def setup(self):
        graph = random_connected_graph(60, seed=31)
        scheme = build_centralized_scheme(graph, 2, seed=31)
        return graph, scheme

    def _some_long_route(self, scheme, graph, min_hops=2):
        for u, v in sample_pairs(list(graph.nodes), 200, seed=37):
            r = route_in_graph(scheme, graph, u, v)
            if len(r.path) > min_hops:
                return u, v, r.path
        raise AssertionError("no multi-hop route found")

    def test_missing_target_label_raises_keyerror(self, setup):
        graph, scheme = setup
        u, v, _ = self._some_long_route(scheme, graph)
        del scheme.labels[v]
        engine = ServeEngine(compile_scheme(scheme, graph))
        with pytest.raises(KeyError):
            route_in_graph(scheme, graph, u, v)
        with pytest.raises(KeyError):
            engine.route(u, v)

    def test_missing_source_table_raises_keyerror(self, setup):
        graph, scheme = setup
        u, v, _ = self._some_long_route(scheme, graph)
        del scheme.tables[u]
        engine = ServeEngine(compile_scheme(scheme, graph))
        with pytest.raises(KeyError):
            route_in_graph(scheme, graph, u, v)
        with pytest.raises(KeyError):
            engine.route(u, v)

    def test_treeless_midpath_vertex_parity(self, setup):
        # The vertex keeps its GraphTable but loses every tree: the
        # reference reaches it, finds no row for the committed tree, and
        # raises the "no table for tree" failure with the partial path.
        graph, scheme = setup
        u, v, path = self._some_long_route(scheme, graph)
        scheme.tables[path[1]].trees.clear()
        engine = ServeEngine(compile_scheme(scheme, graph))
        result = engine.route_many([(u, v)])[0]
        assert_parity(result, *reference_outcome(scheme, graph, u, v))
        assert not result.ok
        assert "no table for tree" in result.error

    def test_fully_deleted_midpath_table_raises_keyerror(self, setup):
        # Deleting the GraphTable outright is a different failure class:
        # the reference raises KeyError (scheme.tables[at]), not
        # RoutingFailure, and the engine must preserve the distinction.
        graph, scheme = setup
        u, v, path = self._some_long_route(scheme, graph)
        del scheme.tables[path[1]]
        engine = ServeEngine(compile_scheme(scheme, graph))
        with pytest.raises(KeyError):
            route_in_graph(scheme, graph, u, v)
        with pytest.raises(KeyError):
            engine.route(u, v)

    def test_removed_edge_parity(self, setup):
        graph, scheme = setup
        u, v, path = self._some_long_route(scheme, graph)
        cut = graph.copy()
        cut.remove_edge(path[0], path[1])
        engine = ServeEngine(compile_scheme(scheme, cut))
        result = engine.route_recorded(u, v)
        assert_parity(result, *reference_outcome(scheme, cut, u, v))
        assert not result.ok and "is not an edge" in result.error

    def test_count_and_continue_over_mixed_batch(self, setup):
        graph, scheme = setup
        u, v, path = self._some_long_route(scheme, graph)
        scheme.tables[path[1]].trees.clear()
        engine = ServeEngine(compile_scheme(scheme, graph))
        pairs = sample_pairs(list(graph.nodes), 300, seed=41)
        results = engine.route_many(pairs)
        assert len(results) == len(pairs)
        failures = sum(1 for r in results if not r.ok)
        assert engine.failures == failures
        for (a, b), result in zip(pairs, results):
            assert_parity(result, *reference_outcome(scheme, graph, a, b))


TREE_FAMILIES = {
    "random-tree": lambda: random_tree_network(80, seed=43),
    "star-ish": lambda: random_connected_graph(90, seed=44),
}


@pytest.fixture(params=sorted(TREE_FAMILIES))
def tree_setup(request):
    # Function-scoped: the corruption tests mutate the scheme in place.
    graph = TREE_FAMILIES[request.param]()
    parent = spanning_tree_of(graph, style="dfs", seed=7)
    scheme = build_tree_scheme(parent, root_distance=lambda v: 1.0)
    return graph, scheme


class TestTreeDifferential:
    def test_weighted_600_queries(self, tree_setup):
        graph, scheme = tree_setup
        engine = ServeEngine(compile_scheme(scheme, graph))
        weight = lambda u, v: graph[u][v]["weight"]
        pairs = sample_pairs(list(graph.nodes), QUERIES, seed=47)
        for (u, v), result in zip(pairs, engine.route_many(pairs)):
            ref = route_in_tree(scheme, u, v, weight_of=weight)
            assert result.ok
            assert result.path == ref.path
            assert result.length == pytest.approx(ref.length)

    def test_unweighted_hop_counts(self, tree_setup):
        graph, scheme = tree_setup
        engine = ServeEngine(compile_scheme(scheme))  # no graph: hop counts
        pairs = sample_pairs(list(graph.nodes), 100, seed=53)
        for (u, v) in pairs:
            ref = route_in_tree(scheme, u, v)
            result = engine.route(u, v)
            assert result.path == ref.path
            assert result.length == pytest.approx(ref.length)

    def test_missing_label_raises_keyerror(self, tree_setup):
        graph, scheme = tree_setup
        u, v = sample_pairs(list(graph.nodes), 1, seed=59)[0]
        del scheme.labels[v]
        engine = ServeEngine(compile_scheme(scheme))
        with pytest.raises(KeyError):
            route_in_tree(scheme, u, v)
        with pytest.raises(KeyError):
            engine.route(u, v)

    def test_tableless_hop_parity(self, tree_setup):
        graph, scheme = tree_setup
        for u, v in sample_pairs(list(graph.nodes), 100, seed=61):
            if len(route_in_tree(scheme, u, v).path) > 2:
                break
        mid = route_in_tree(scheme, u, v).path[1]
        del scheme.tables[mid]
        engine = ServeEngine(compile_scheme(scheme))
        try:
            route_in_tree(scheme, u, v)
            raise AssertionError("reference did not fail")
        except RoutingFailure as exc:
            result = engine.route_recorded(u, v)
            assert not result.ok
            assert result.error == str(exc)
            assert result.path == list(exc.path)
            assert "which has no table" in result.error

    def test_hop_budget_parity(self, tree_setup):
        graph, scheme = tree_setup
        for u, v in sample_pairs(list(graph.nodes), 100, seed=67):
            if len(route_in_tree(scheme, u, v).path) > 3:
                break
        engine = ServeEngine(compile_scheme(scheme), max_hops=1)
        try:
            route_in_tree(scheme, u, v, max_hops=1)
            raise AssertionError("reference did not fail")
        except RoutingFailure as exc:
            result = engine.route_recorded(u, v)
            assert not result.ok
            assert result.error == str(exc) == "exceeded hop budget 1"
            assert result.path == list(exc.path)
