"""Unit tests for per-vertex memory meters."""

import networkx as nx
import pytest

from repro.congest.memory import MemoryMeter
from repro.errors import MemoryAccountingError


class TestStore:
    def test_store_sets_current(self):
        meter = MemoryMeter()
        meter.store("a", 5)
        assert meter.current == 5

    def test_store_updates_high_water(self):
        meter = MemoryMeter()
        meter.store("a", 5)
        assert meter.high_water == 5

    def test_restore_replaces_not_adds(self):
        meter = MemoryMeter()
        meter.store("a", 5)
        meter.store("a", 3)
        assert meter.current == 3

    def test_high_water_survives_shrink(self):
        meter = MemoryMeter()
        meter.store("a", 5)
        meter.store("a", 1)
        assert meter.high_water == 5

    def test_negative_store_raises(self):
        meter = MemoryMeter()
        with pytest.raises(MemoryAccountingError):
            meter.store("a", -1)

    def test_zero_store_allowed(self):
        meter = MemoryMeter()
        meter.store("a", 0)
        assert meter.current == 0


class TestAdd:
    def test_add_accumulates(self):
        meter = MemoryMeter()
        meter.add("list", 2)
        meter.add("list", 3)
        assert meter.current == 5

    def test_add_to_fresh_key(self):
        meter = MemoryMeter()
        meter.add("x", 4)
        assert meter.current == 4


class TestFree:
    def test_free_releases(self):
        meter = MemoryMeter()
        meter.store("a", 5)
        meter.free("a")
        assert meter.current == 0

    def test_free_absent_key_is_noop(self):
        meter = MemoryMeter()
        meter.free("ghost")
        assert meter.current == 0

    def test_free_keeps_high_water(self):
        meter = MemoryMeter()
        meter.store("a", 7)
        meter.free("a")
        assert meter.high_water == 7

    def test_free_prefix(self):
        meter = MemoryMeter()
        meter.store("stage1/a", 2)
        meter.store("stage1/b", 3)
        meter.store("stage2/c", 4)
        meter.free_prefix("stage1/")
        assert meter.current == 4

    def test_high_water_tracks_simultaneous_peak(self):
        meter = MemoryMeter()
        meter.store("a", 3)
        meter.store("b", 4)  # peak 7
        meter.free("a")
        meter.store("c", 2)  # now 6
        assert meter.high_water == 7
        assert meter.current == 6


class TestInspection:
    def test_items_lists_contents(self):
        meter = MemoryMeter()
        meter.store("a", 1)
        meter.store("b", 2)
        assert dict(meter.items()) == {"a": 1, "b": 2}

    def test_high_water_excluding_prefix(self):
        meter = MemoryMeter()
        meter.store("relay/buf", 10)
        meter.store("algo/x", 3)
        assert meter.high_water_excluding("relay/") == 3


class TestSnapshot:
    def test_groups_by_first_slash_segment(self):
        meter = MemoryMeter()
        meter.store("tree/ancestors", 3)
        meter.store("tree/labels", 2)
        meter.store("relay/buf", 5)
        assert meter.snapshot() == {"tree/": 5, "relay/": 5}

    def test_slashless_key_groups_under_itself(self):
        meter = MemoryMeter()
        meter.store("scratch", 4)
        assert meter.snapshot() == {"scratch": 4}

    def test_prefix_returns_exact_keys(self):
        meter = MemoryMeter()
        meter.store("tree/ancestors", 3)
        meter.store("tree/labels", 2)
        meter.store("relay/buf", 5)
        assert meter.snapshot("tree/") == {
            "tree/ancestors": 3, "tree/labels": 2}

    def test_prefix_without_matches_is_empty(self):
        meter = MemoryMeter()
        meter.store("a", 1)
        assert meter.snapshot("missing/") == {}

    def test_snapshot_tracks_frees(self):
        meter = MemoryMeter()
        meter.store("tree/a", 3)
        meter.free("tree/a")
        assert meter.snapshot() == {}

    def test_snapshot_sums_match_current(self):
        meter = MemoryMeter()
        meter.store("tree/a", 3)
        meter.store("hopset/b", 7)
        meter.store("loose", 2)
        assert sum(meter.snapshot().values()) == meter.current


class TestPrefixIndexTeardownCost:
    """The group index pins stage-teardown cost (docstring of
    :mod:`repro.congest.memory`): freeing a slash-qualified prefix scans
    only that group's live keys, regardless of how much else is stored."""

    def test_free_prefix_scans_only_its_group(self):
        meter = MemoryMeter()
        for i in range(500):
            meter.store(f"big/key-{i}", 1)
        for i in range(3):
            meter.store(f"t/key-{i}", 1)
        meter.free_prefix("t/")
        assert meter.last_prefix_scan == 3
        assert meter.current == 500

    def test_free_prefix_absent_group_scans_nothing(self):
        meter = MemoryMeter()
        for i in range(100):
            meter.store(f"big/key-{i}", 1)
        meter.free_prefix("gone/")
        assert meter.last_prefix_scan == 0
        assert meter.current == 100

    def test_partial_prefix_within_group(self):
        meter = MemoryMeter()
        meter.store("hopset/scratch-1", 2)
        meter.store("hopset/scratch-2", 2)
        meter.store("hopset/keep", 5)
        meter.free_prefix("hopset/scratch-")
        assert meter.last_prefix_scan == 3  # the group, not all live keys
        assert meter.current == 5
        assert meter.snapshot("hopset/") == {"hopset/keep": 5}

    def test_slashless_prefix_falls_back_to_full_scan(self):
        meter = MemoryMeter()
        meter.store("alpha", 1)
        meter.store("beta", 1)
        meter.store("tree/a", 1)
        meter.free_prefix("al")
        assert meter.last_prefix_scan == 3
        assert meter.current == 2

    def test_scan_cost_does_not_scale_with_other_groups(self):
        meter = MemoryMeter()
        for g in range(50):
            for i in range(10):
                meter.store(f"group{g}/k{i}", 1)
        meter.store("tiny/only", 1)
        meter.free_prefix("tiny/")
        assert meter.last_prefix_scan == 1
        assert meter.current == 500

    def test_group_index_survives_free_and_restore(self):
        meter = MemoryMeter()
        meter.store("t/a", 1)
        meter.free("t/a")
        meter.store("t/b", 2)
        meter.free_prefix("t/")
        assert meter.last_prefix_scan == 1
        assert meter.current == 0


class TestExactFreeResetsPin:
    """Regression: an exact-key :meth:`MemoryMeter.free` resolves through
    the item index without scanning any keys, so it resets
    ``last_prefix_scan`` to 0.  Bulk exact-key teardowns (``free_key``
    issued from a vectorized round close) used to leave the pin stale at
    whatever an *earlier* ``free_prefix`` had scanned."""

    def test_free_resets_stale_pin(self):
        meter = MemoryMeter()
        for i in range(7):
            meter.store(f"t/key-{i}", 1)
        meter.free_prefix("t/")
        assert meter.last_prefix_scan == 7  # the stale value to clear
        meter.store("relay/broadcast", 3)
        meter.free("relay/broadcast")
        assert meter.last_prefix_scan == 0
        assert meter.current == 0

    def test_free_of_absent_key_also_resets(self):
        meter = MemoryMeter()
        meter.store("t/a", 1)
        meter.free_prefix("t/")
        assert meter.last_prefix_scan == 1
        meter.free("ghost")
        assert meter.last_prefix_scan == 0

    def test_free_prefix_pin_not_clobbered_by_its_own_frees(self):
        meter = MemoryMeter()
        meter.store("t/a", 1)
        meter.store("t/b", 1)
        meter.free_prefix("t/")
        # The internal per-key frees must not reset the count the call
        # just recorded.
        assert meter.last_prefix_scan == 2


class TestNetworkBulkFrees:
    """Engine-parametrized: meter state after network-level bulk frees is
    identical across reference, fastpath, and vectorized."""

    def test_free_key_resets_prefix_pin_at_every_vertex(self, engine):
        net = engine(nx.path_graph(4))
        for v in net.nodes():
            net.mem(v).store("tree/a", 2)
        net.free_all("tree/")  # prefix teardown pins a scan count of 1
        assert all(net.mem(v).last_prefix_scan == 1 for v in net.nodes())
        net.store_all("relay/broadcast", 3)
        net.free_key("relay/broadcast")  # bulk exact-key teardown
        assert all(net.mem(v).last_prefix_scan == 0 for v in net.nodes())
        assert all(net.mem(v).current == 0 for v in net.nodes())

    def test_high_water_after_round_teardown(self, engine):
        net = engine(nx.path_graph(3))
        net.store_all("relay/buf", 4)
        net.flood_all("flood")
        net.deliver_batch()
        net.free_key("relay/buf")
        assert net.max_memory() == 4
        assert all(net.mem(v).current == 0 for v in net.nodes())
