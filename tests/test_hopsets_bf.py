"""Unit tests for Lemma-2 Bellman-Ford and the path-recovery mechanism."""

import math

import pytest

from repro.congest import Network
from repro.graphs import (
    VirtualGraphOracle,
    default_hop_bound,
    dijkstra,
    random_connected_graph,
)
from repro.hopsets import build_hopset, hopset_bellman_ford, recover_paths
from repro.tz import sample_hierarchy

INF = math.inf


@pytest.fixture(scope="module")
def setup():
    graph = random_connected_graph(140, seed=55)
    hier = sample_hierarchy(list(graph.nodes), 2, seed=55)
    virtual = sorted(hier.set_at(1), key=repr)
    oracle = VirtualGraphOracle(graph, virtual, default_hop_bound(140))
    net = Network(graph)
    build = build_hopset(net, oracle, kappa=2, seed=55)
    return graph, virtual, oracle, net, build.hopset


class TestUnlimitedExploration:
    def test_estimates_lower_bounded_by_distance(self, setup):
        graph, virtual, oracle, net, hopset = setup
        root = virtual[0]
        state = hopset_bellman_ford(net, oracle, hopset, {root: 0.0}, beta=4)
        exact, _ = dijkstra(graph, [root])
        for v, est in state.est.items():
            assert est >= exact[v] - 1e-9

    def test_estimates_close_to_exact_with_enough_beta(self, setup):
        graph, virtual, oracle, net, hopset = setup
        root = virtual[0]
        state = hopset_bellman_ford(net, oracle, hopset, {root: 0.0}, beta=8)
        exact, _ = dijkstra(graph, [root])
        for v in virtual:
            assert state.value(v) <= 1.25 * exact[v] + 1e-9

    def test_final_sweep_covers_graph(self, setup):
        graph, virtual, oracle, net, hopset = setup
        state = hopset_bellman_ford(net, oracle, hopset, {virtual[0]: 0.0}, beta=3)
        assert set(state.est) == set(graph.nodes)

    def test_no_sweep_may_leave_vertices(self, setup):
        graph, virtual, oracle, net, hopset = setup
        state = hopset_bellman_ford(
            net, oracle, hopset, {virtual[0]: 0.0}, beta=1,
            final_graph_sweep=False,
        )
        assert len(state.est) >= 1

    def test_multi_source_zeroes(self, setup):
        graph, virtual, oracle, net, hopset = setup
        sources = {v: 0.0 for v in virtual[:3]}
        state = hopset_bellman_ford(net, oracle, hopset, sources, beta=3)
        exact, _ = dijkstra(graph, virtual[:3])
        for v in graph.nodes:
            assert state.value(v) >= exact[v] - 1e-9

    def test_beta_zero_rejected(self, setup):
        _, virtual, oracle, net, hopset = setup
        with pytest.raises(Exception):
            hopset_bellman_ford(net, oracle, hopset, {virtual[0]: 0.0}, beta=0)


class TestLimitedExploration:
    def test_gate_blocks_propagation(self, setup):
        graph, virtual, oracle, net, hopset = setup
        root = virtual[0]
        blocked = hopset_bellman_ford(
            net, oracle, hopset, {root: 0.0}, beta=2,
            forward_if_virtual=lambda v, e: v == root,
            forward_if_graph=lambda v, e: False,
        )
        free = hopset_bellman_ford(net, oracle, hopset, {root: 0.0}, beta=2)
        assert len(blocked.est) <= len(free.est)

    def test_radius_gate_bounds_reach(self, setup):
        graph, virtual, oracle, net, hopset = setup
        root = virtual[0]
        exact, _ = dijkstra(graph, [root])
        radius = sorted(exact.values())[len(exact) // 4]
        state = hopset_bellman_ford(
            net, oracle, hopset, {root: 0.0}, beta=4,
            forward_if_virtual=lambda v, e: e < radius,
            forward_if_graph=lambda v, e: e < radius,
        )
        # Everything that passed the gate is within one edge of the ball.
        max_w = max(d["weight"] for _, _, d in graph.edges(data=True))
        for v, est in state.est.items():
            assert est <= radius + max_w + 1e-9 or est >= exact[v] - 1e-9


class TestProvenance:
    def test_gparent_edges_exist(self, setup):
        graph, virtual, oracle, net, hopset = setup
        state = hopset_bellman_ford(net, oracle, hopset, {virtual[0]: 0.0}, beta=4)
        state = recover_paths(net, hopset, state)
        for v, p in state.gparent.items():
            if p is not None:
                assert graph.has_edge(v, p)

    def test_recovery_clears_hvia(self, setup):
        graph, virtual, oracle, net, hopset = setup
        state = hopset_bellman_ford(net, oracle, hopset, {virtual[0]: 0.0}, beta=4)
        state = recover_paths(net, hopset, state)
        assert state.hvia == {}

    def test_parent_chain_reaches_root(self, setup):
        graph, virtual, oracle, net, hopset = setup
        root = virtual[0]
        state = hopset_bellman_ford(net, oracle, hopset, {root: 0.0}, beta=4)
        state = recover_paths(net, hopset, state)
        for v in list(state.est)[:40]:
            cursor, hops = v, 0
            while state.gparent.get(cursor) is not None:
                cursor = state.gparent[cursor]
                hops += 1
                assert hops <= graph.number_of_nodes()
            assert cursor == root

    def test_parent_strictly_decreases_estimate(self, setup):
        graph, virtual, oracle, net, hopset = setup
        state = hopset_bellman_ford(net, oracle, hopset, {virtual[0]: 0.0}, beta=4)
        state = recover_paths(net, hopset, state)
        for v, p in state.gparent.items():
            if p is not None:
                assert state.value(p) < state.value(v) + 1e-12

    def test_chain_length_bounded_by_estimate(self, setup):
        graph, virtual, oracle, net, hopset = setup
        root = virtual[0]
        state = hopset_bellman_ford(net, oracle, hopset, {root: 0.0}, beta=4)
        state = recover_paths(net, hopset, state)
        for v in list(state.est)[:40]:
            total, cursor = 0.0, v
            while state.gparent.get(cursor) is not None:
                p = state.gparent[cursor]
                total += graph[cursor][p]["weight"]
                cursor = p
            assert total <= state.value(v) + 1e-9
