"""Tests for the scheme certification utilities."""

import dataclasses
import random

import pytest

from repro.congest import Network
from repro.core import build_distributed_scheme
from repro.errors import InvariantViolation
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.routing import TreeLabel
from repro.routing.validation import verify_graph_scheme, verify_tree_scheme
from repro.treerouting import build_distributed_tree_scheme
from repro.tz import build_centralized_scheme, build_tree_scheme


@pytest.fixture(scope="module")
def tree_case():
    graph = random_connected_graph(90, seed=221)
    tree = spanning_tree_of(graph, style="dfs", seed=221)
    return graph, tree, build_tree_scheme(tree)


class TestVerifyTreeScheme:
    def test_valid_scheme_passes(self, tree_case):
        graph, tree, scheme = tree_case
        verify_tree_scheme(
            scheme, tree,
            weight_of=lambda u, v: graph[u][v]["weight"],
            sample_pairs=20,
        )

    def test_distributed_scheme_passes(self, tree_case):
        graph, tree, _ = tree_case
        build = build_distributed_tree_scheme(Network(graph), tree, seed=1)
        verify_tree_scheme(build.scheme, tree, sample_pairs=10)

    def test_injected_rng_draws_the_pair_sample(self, tree_case):
        graph, tree, scheme = tree_case
        verify_tree_scheme(
            scheme, tree,
            weight_of=lambda u, v: graph[u][v]["weight"],
            sample_pairs=10, rng=random.Random(3),
        )

    def test_detects_broken_enter_permutation(self, tree_case):
        _, tree, scheme = tree_case
        victim = sorted(scheme.tables)[5]
        old = scheme.tables[victim]
        broken = dict(scheme.tables)
        broken[victim] = dataclasses.replace(old, enter=10 ** 6, exit_=10 ** 6)
        with pytest.raises(InvariantViolation, match="permutation"):
            verify_tree_scheme(dataclasses.replace(scheme, tables=broken))

    def test_detects_wrong_parent(self, tree_case):
        _, tree, scheme = tree_case
        leaves = [v for v, t in scheme.tables.items()
                  if t.heavy is None and t.parent is not None]
        victim = sorted(leaves, key=repr)[0]
        wrong = dict(tree)
        wrong[victim] = scheme.root if tree[victim] != scheme.root else victim
        with pytest.raises(InvariantViolation):
            verify_tree_scheme(scheme, wrong)

    def test_detects_stale_label(self, tree_case):
        _, tree, scheme = tree_case
        victim = sorted(scheme.labels)[3]
        broken_labels = dict(scheme.labels)
        broken_labels[victim] = TreeLabel(enter=scheme.labels[victim].enter + 1)
        with pytest.raises(InvariantViolation):
            verify_tree_scheme(dataclasses.replace(scheme, labels=broken_labels))

    def test_detects_heavy_non_child(self, tree_case):
        _, tree, scheme = tree_case
        victim = next(v for v, t in scheme.tables.items()
                      if t.heavy is not None and t.parent is not None)
        broken = dict(scheme.tables)
        broken[victim] = dataclasses.replace(
            broken[victim], heavy=broken[victim].parent
        )
        with pytest.raises(InvariantViolation, match="heavy"):
            verify_tree_scheme(dataclasses.replace(scheme, tables=broken))

    def test_detects_interval_gap(self, tree_case):
        _, tree, scheme = tree_case
        victim = next(v for v, t in scheme.tables.items()
                      if t.heavy is not None)
        broken = dict(scheme.tables)
        broken[victim] = dataclasses.replace(
            broken[victim], exit_=broken[victim].exit_ + 1
        )
        with pytest.raises(InvariantViolation):
            verify_tree_scheme(dataclasses.replace(scheme, tables=broken))


class TestVerifyGraphScheme:
    @pytest.fixture(scope="class")
    def graph_case(self):
        graph = random_connected_graph(80, seed=222)
        return graph, build_centralized_scheme(graph, 2, seed=222)

    def test_centralized_scheme_passes(self, graph_case):
        graph, scheme = graph_case
        verify_graph_scheme(
            graph=graph, scheme=scheme, sample_pairs=20, stretch_bound=5.0
        )

    def test_distributed_scheme_passes(self):
        graph = random_connected_graph(80, seed=223)
        report = build_distributed_scheme(graph, 2, seed=2)
        verify_graph_scheme(
            report.scheme, graph, sample_pairs=20, stretch_bound=5.0
        )

    def test_detects_unknown_tree_reference(self, graph_case):
        graph, scheme = graph_case
        victim = sorted(scheme.labels)[0]
        label = scheme.labels[victim]
        fake = ("ghost",)
        entries = tuple(
            (fake, e[1], e[2]) if e is not None else None for e in label.entries
        )
        original = scheme.labels[victim]
        scheme.labels[victim] = dataclasses.replace(label, entries=entries)
        try:
            with pytest.raises(InvariantViolation, match="unknown tree"):
                verify_graph_scheme(scheme, graph)
        finally:
            scheme.labels[victim] = original

    def test_detects_out_of_sync_tables(self, graph_case):
        graph, scheme = graph_case
        tree_id = sorted(scheme.tree_schemes, key=repr)[0]
        ts = scheme.tree_schemes[tree_id]
        victim = sorted(ts.tables, key=repr)[0]
        original = scheme.tables[victim].trees[tree_id]
        scheme.tables[victim].trees[tree_id] = dataclasses.replace(
            original, root_distance=(original.root_distance or 0) + 99
        )
        try:
            with pytest.raises(InvariantViolation, match="out of sync"):
                verify_graph_scheme(scheme, graph)
        finally:
            scheme.tables[victim].trees[tree_id] = original
