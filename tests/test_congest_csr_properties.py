"""Property-based tests (hypothesis) for the fast engine's CSR compiler.

Random connected weighted graphs — with deliberately mixed node-id types
(ints and strings), since port order is defined by ``repr`` — are compiled
by :class:`repro.congest.network.Network` and checked against the
:mod:`networkx` graph itself as the reference:

* ``neighbors`` / ``degree`` / ``weight`` / ``ports`` agree with the graph;
* arc (directed-edge) ids are a bijection onto ``range(num_arcs)`` that
  round-trips through ``edge_index`` / ``edge_endpoints`` and lines up
  with CSR slot order;
* ``compact_id`` / ``node_of`` are inverse bijections.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.congest import Network

_REPR = repr


@st.composite
def connected_graphs(draw, min_size=2, max_size=40):
    """A random connected weighted graph with mixed int/str vertex ids."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    relabel = draw(st.booleans())
    graph = nx.Graph()
    names = [f"v{i}" if relabel and i % 2 else i for i in range(n)]
    graph.add_node(names[0])
    # Random spanning tree by parent arrays, plus extra random chords.
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        graph.add_edge(names[i], names[parent])
    for _ in range(draw(st.integers(min_value=0, max_value=2 * n))):
        u = names[draw(st.integers(min_value=0, max_value=n - 1))]
        v = names[draw(st.integers(min_value=0, max_value=n - 1))]
        if u != v:
            graph.add_edge(u, v)
    for u, v in graph.edges:
        if draw(st.booleans()):
            graph[u][v]["weight"] = draw(
                st.floats(min_value=0.5, max_value=100.0,
                          allow_nan=False, allow_infinity=False)
            )
    return graph


@given(connected_graphs())
@settings(max_examples=60, deadline=None)
def test_adjacency_agrees_with_networkx(graph):
    net = Network(graph)
    for v in graph.nodes:
        assert set(net.neighbors(v)) == set(graph.neighbors(v))
        assert net.degree(v) == graph.degree(v)
        for w in graph.neighbors(v):
            assert net.has_edge(v, w)
            assert net.weight(v, w) == float(graph[v][w].get("weight", 1.0))


@given(connected_graphs())
@settings(max_examples=60, deadline=None)
def test_ports_are_repr_sorted_neighbors(graph):
    net = Network(graph)
    for v in graph.nodes:
        assert net.ports(v) == sorted(graph.neighbors(v), key=_REPR)
        assert list(net.neighbors(v)) == net.ports(v)


@given(connected_graphs())
@settings(max_examples=60, deadline=None)
def test_arc_ids_are_a_bijection(graph):
    net = Network(graph)
    seen = set()
    for v in graph.nodes:
        for w in graph.neighbors(v):
            arc = net.edge_index(v, w)
            assert 0 <= arc < net.num_arcs
            assert arc not in seen
            seen.add(arc)
            assert net.edge_endpoints(arc) == (v, w)
    assert seen == set(range(net.num_arcs))
    assert net.num_arcs == 2 * graph.number_of_edges()


@given(connected_graphs())
@settings(max_examples=60, deadline=None)
def test_arc_ids_follow_csr_slot_order(graph):
    net = Network(graph)
    expected = 0
    for v in net.nodes():
        for w in net.ports(v):
            assert net.edge_index(v, w) == expected
            expected += 1
    assert expected == net.num_arcs


@given(connected_graphs())
@settings(max_examples=60, deadline=None)
def test_compact_ids_are_inverse_bijections(graph):
    net = Network(graph)
    ids = [net.compact_id(v) for v in net.nodes()]
    assert sorted(ids) == list(range(net.n))
    for v in net.nodes():
        assert net.node_of(net.compact_id(v)) == v
