"""Documentation-sync test: every ```python block in README.md executes.

The blocks share one namespace in order (the general-graph snippet reuses
the quickstart's ``graph``), exactly as a reader would type them into one
session.
"""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_blocks():
    assert len(python_blocks()) >= 2


def test_readme_blocks_execute():
    namespace = {}
    for i, block in enumerate(python_blocks()):
        try:
            exec(compile(block, f"README-block-{i}", "exec"), namespace)
        except Exception as err:  # pragma: no cover - failure reporting
            pytest.fail(f"README python block {i} failed: {err}\n{block}")
    # The quickstart promises exactness; hold it to that.
    result = namespace["result"]
    assert result.path[0] == namespace["src"]
    assert result.path[-1] == namespace["dst"]


def test_readme_mentions_all_packages():
    text = README.read_text()
    for package in (
        "repro.congest", "repro.graphs", "repro.tz", "repro.hopsets",
        "repro.treerouting", "repro.core", "repro.routing",
        "repro.baselines", "repro.analysis",
    ):
        assert package in text
