"""Unit tests for the hopset container, construction, and measurement."""


import pytest

from repro.congest import Network
from repro.errors import InputError
from repro.graphs import VirtualGraphOracle, default_hop_bound, dijkstra, random_connected_graph
from repro.hopsets import (
    Hopset,
    build_hopset,
    expected_out_degree,
    measure_hopbound,
    union_graph,
)
from repro.tz import sample_hierarchy


@pytest.fixture(scope="module")
def setup():
    graph = random_connected_graph(150, seed=41)
    hier = sample_hierarchy(list(graph.nodes), 2, seed=41)
    virtual = sorted(hier.set_at(1), key=repr)
    oracle = VirtualGraphOracle(graph, virtual, default_hop_bound(150))
    net = Network(graph)
    build = build_hopset(net, oracle, kappa=2, seed=41)
    return graph, virtual, oracle, net, build


class TestHopsetContainer:
    def test_add_edge_and_size(self):
        h = Hopset(virtual_vertices=[1, 2, 3])
        h.add_edge(1, 2, 5.0, [1, 9, 2])
        assert h.size == 1

    def test_add_edge_improvement_keeps_min(self):
        h = Hopset(virtual_vertices=[1, 2])
        h.add_edge(1, 2, 5.0, [1, 9, 2])
        h.add_edge(1, 2, 3.0, [1, 2])
        assert h.owned[1][2] == 3.0
        h.add_edge(1, 2, 7.0, [1, 8, 2])
        assert h.owned[1][2] == 3.0

    def test_self_loop_rejected(self):
        h = Hopset(virtual_vertices=[1])
        with pytest.raises(InputError):
            h.add_edge(1, 1, 1.0, [1, 1])

    def test_path_endpoints_validated(self):
        h = Hopset(virtual_vertices=[1, 2])
        with pytest.raises(InputError):
            h.add_edge(1, 2, 1.0, [2, 1])

    def test_neighbors_sees_both_directions(self):
        h = Hopset(virtual_vertices=[1, 2])
        h.add_edge(1, 2, 5.0, [1, 2])
        assert h.neighbors(2) == {1: 5.0}

    def test_out_degree_counts_owned_only(self):
        h = Hopset(virtual_vertices=[1, 2, 3])
        h.add_edge(1, 2, 5.0, [1, 2])
        h.add_edge(1, 3, 6.0, [1, 3])
        assert h.out_degree(1) == 2
        assert h.out_degree(2) == 0


class TestConstruction:
    def test_paths_are_real_graph_paths(self, setup):
        graph, _, _, _, build = setup
        build.hopset.verify_paths(graph)

    def test_edge_weights_are_exact_distances(self, setup):
        graph, _, _, _, build = setup
        for owner, other, w in build.hopset.edges():
            exact = dijkstra(graph, [owner])[0][other]
            assert w == pytest.approx(exact)

    def test_out_degree_within_expected(self, setup):
        graph, virtual, _, _, build = setup
        bound = 3 * expected_out_degree(len(virtual), build.kappa)
        assert build.hopset.max_out_degree() <= bound

    def test_rounds_were_charged(self, setup):
        _, _, _, net, build = setup
        assert build.charged_rounds > 0
        assert net.metrics.charged_rounds >= build.charged_rounds

    def test_memory_charged_on_virtual_vertices(self, setup):
        _, virtual, _, net, _ = setup
        assert all(net.mem(v).high_water > 0 for v in virtual)

    def test_virtual_graph_left_implicit(self, setup):
        # The construction may compute edge rows, but must not require the
        # full m^2 edge set.
        _, virtual, oracle, _, _ = setup
        assert oracle.edges_computed <= len(virtual) * (len(virtual) - 1)


class TestHopbound:
    def test_hopset_inequality_holds(self, setup):
        graph, virtual, oracle, _, build = setup
        virt = oracle.materialize()
        beta = measure_hopbound(virt, build.hopset, epsilon=0.1, sample_sources=6)
        assert 1 <= beta <= 64

    def test_union_graph_no_shortcuts_below_metric(self, setup):
        graph, virtual, oracle, _, build = setup
        virt = oracle.materialize()
        union = union_graph(virt, build.hopset)
        src = virtual[0]
        exact_g, _ = dijkstra(graph, [src])
        union_dist, _ = dijkstra(union, [src])
        for v in virtual:
            assert union_dist[v] >= exact_g[v] - 1e-9

    def test_bigger_kappa_means_less_memory(self):
        graph = random_connected_graph(200, seed=42)
        hier = sample_hierarchy(list(graph.nodes), 2, seed=42)
        virtual = sorted(hier.set_at(1), key=repr)
        degs = []
        for kappa in (1, 3):
            oracle = VirtualGraphOracle(graph, virtual, default_hop_bound(200))
            build = build_hopset(Network(graph), oracle, kappa=kappa, seed=42)
            degs.append(build.hopset.max_out_degree())
        assert degs[1] <= degs[0]
