"""Unit tests for the CONGEST network simulator and model enforcement."""

import networkx as nx
import pytest

from repro.congest import Message, Network
from repro.errors import CongestModelViolation, InputError


def tiny_graph():
    g = nx.Graph()
    g.add_edge("a", "b", weight=2.0)
    g.add_edge("b", "c", weight=1.5)
    return g


class TestConstruction:
    def test_rejects_empty_graph(self):
        with pytest.raises(InputError):
            Network(nx.Graph())

    def test_rejects_disconnected_graph(self):
        g = nx.Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        with pytest.raises(InputError):
            Network(g)

    def test_rejects_directed_graph(self):
        g = nx.DiGraph()
        g.add_edge(1, 2)
        with pytest.raises(InputError):
            Network(g)

    def test_n_counts_vertices(self):
        assert Network(tiny_graph()).n == 3


class TestTopology:
    def test_weight_reads_attribute(self):
        net = Network(tiny_graph())
        assert net.weight("a", "b") == 2.0

    def test_weight_defaults_to_one(self):
        g = nx.Graph()
        g.add_edge(1, 2)
        assert Network(g).weight(1, 2) == 1.0

    def test_ports_are_sorted(self):
        net = Network(tiny_graph())
        assert net.ports("b") == ["a", "c"]

    def test_hop_diameter_upper_bound(self):
        net = Network(tiny_graph())
        assert net.hop_diameter_upper_bound() >= 2


class TestMessaging:
    def test_send_and_tick_delivers(self):
        net = Network(tiny_graph())
        net.send("a", "b", "ping", 42)
        inboxes = net.tick()
        assert [m.payload for m in inboxes["b"]] == [42]

    def test_tick_advances_round_counter(self):
        net = Network(tiny_graph())
        net.send("a", "b", "x")
        net.tick()
        assert net.metrics.rounds == 1

    def test_non_edge_send_raises(self):
        net = Network(tiny_graph())
        with pytest.raises(CongestModelViolation):
            net.send("a", "c", "x")

    def test_edge_capacity_enforced(self):
        net = Network(tiny_graph())
        net.send("a", "b", "x", 1)
        with pytest.raises(CongestModelViolation):
            net.send("a", "b", "y", 2)

    def test_opposite_directions_are_independent(self):
        net = Network(tiny_graph())
        net.send("a", "b", "x")
        net.send("b", "a", "y")  # no violation
        inboxes = net.tick()
        assert "a" in inboxes and "b" in inboxes

    def test_capacity_resets_each_round(self):
        net = Network(tiny_graph())
        net.send("a", "b", "x")
        net.tick()
        net.send("a", "b", "y")  # new round: fine
        net.tick()
        assert net.metrics.messages == 2

    def test_wide_payload_charges_extra_rounds(self):
        net = Network(tiny_graph(), message_word_limit=2)
        net.send("a", "b", "wide", (1, 2, 3, 4, 5, 6))
        assert net.metrics.charged_rounds == 2  # ceil(6/2) - 1

    def test_message_word_count(self):
        msg = Message(src=1, dst=2, kind="k", payload=(1, 2, 3))
        assert msg.words == 3

    def test_message_reply_swaps_endpoints(self):
        msg = Message(src=1, dst=2, kind="k")
        reply = msg.reply("ack", 0)
        assert (reply.src, reply.dst) == (2, 1)


class TestChargingAndPhases:
    def test_charge_rounds_accumulates(self):
        net = Network(tiny_graph())
        net.charge_rounds(10)
        net.charge_rounds(5)
        assert net.metrics.total_rounds == 15

    def test_charge_negative_raises(self):
        net = Network(tiny_graph())
        with pytest.raises(InputError):
            net.charge_rounds(-1)

    def test_phase_attribution(self):
        net = Network(tiny_graph())
        net.begin_phase("setup")
        net.send("a", "b", "x")
        net.tick()
        net.end_phase()
        assert net.metrics.by_phase() == {"setup": 1}

    def test_idle_rounds(self):
        net = Network(tiny_graph())
        net.idle_rounds(3)
        assert net.metrics.rounds == 3
        assert net.metrics.messages == 0


class TestMemoryIntegration:
    def test_meters_exist_for_all_nodes(self):
        net = Network(tiny_graph())
        for v in net.nodes():
            assert net.mem(v).current == 0

    def test_max_memory_over_nodes(self):
        net = Network(tiny_graph())
        net.mem("a").store("x", 9)
        net.mem("b").store("x", 4)
        assert net.max_memory() == 9

    def test_free_all_prefix(self):
        net = Network(tiny_graph())
        net.mem("a").store("tmp/x", 5)
        net.mem("b").store("tmp/y", 5)
        net.free_all("tmp/")
        assert net.max_memory() == 5  # high-water survives
        assert all(net.mem(v).current == 0 for v in net.nodes())
