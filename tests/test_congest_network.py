"""Unit tests for the CONGEST network simulator and model enforcement.

Every behavioral test takes the ``engine`` fixture and therefore runs three
times — reference, fastpath, vectorized — so the engines cannot drift on
even the smallest contract detail.
"""

import networkx as nx
import pytest

from repro.congest import Message
from repro.errors import CongestModelViolation, InputError


def tiny_graph():
    g = nx.Graph()
    g.add_edge("a", "b", weight=2.0)
    g.add_edge("b", "c", weight=1.5)
    return g


class TestConstruction:
    def test_rejects_empty_graph(self, engine):
        with pytest.raises(InputError):
            engine(nx.Graph())

    def test_rejects_disconnected_graph(self, engine):
        g = nx.Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        with pytest.raises(InputError):
            engine(g)

    def test_rejects_directed_graph(self, engine):
        g = nx.DiGraph()
        g.add_edge(1, 2)
        with pytest.raises(InputError):
            engine(g)

    def test_n_counts_vertices(self, engine):
        assert engine(tiny_graph()).n == 3


class TestTopology:
    def test_weight_reads_attribute(self, engine):
        net = engine(tiny_graph())
        assert net.weight("a", "b") == 2.0

    def test_weight_defaults_to_one(self, engine):
        g = nx.Graph()
        g.add_edge(1, 2)
        assert engine(g).weight(1, 2) == 1.0

    def test_ports_are_sorted(self, engine):
        net = engine(tiny_graph())
        assert net.ports("b") == ["a", "c"]

    def test_hop_diameter_upper_bound(self, engine):
        net = engine(tiny_graph())
        assert net.hop_diameter_upper_bound() >= 2


class TestMessaging:
    def test_send_and_tick_delivers(self, engine):
        net = engine(tiny_graph())
        net.send("a", "b", "ping", 42)
        inboxes = net.tick()
        assert [m.payload for m in inboxes["b"]] == [42]

    def test_tick_advances_round_counter(self, engine):
        net = engine(tiny_graph())
        net.send("a", "b", "x")
        net.tick()
        assert net.metrics.rounds == 1

    def test_non_edge_send_raises(self, engine):
        net = engine(tiny_graph())
        with pytest.raises(CongestModelViolation):
            net.send("a", "c", "x")

    def test_edge_capacity_enforced(self, engine):
        net = engine(tiny_graph())
        net.send("a", "b", "x", 1)
        with pytest.raises(CongestModelViolation):
            net.send("a", "b", "y", 2)

    def test_opposite_directions_are_independent(self, engine):
        net = engine(tiny_graph())
        net.send("a", "b", "x")
        net.send("b", "a", "y")  # no violation
        inboxes = net.tick()
        assert "a" in inboxes and "b" in inboxes

    def test_capacity_resets_each_round(self, engine):
        net = engine(tiny_graph())
        net.send("a", "b", "x")
        net.tick()
        net.send("a", "b", "y")  # new round: fine
        net.tick()
        assert net.metrics.messages == 2

    def test_wide_payload_charges_extra_rounds(self, engine):
        net = engine(tiny_graph(), message_word_limit=2)
        net.send("a", "b", "wide", (1, 2, 3, 4, 5, 6))
        assert net.metrics.charged_rounds == 2  # ceil(6/2) - 1

    def test_message_word_count(self):
        msg = Message(src=1, dst=2, kind="k", payload=(1, 2, 3))
        assert msg.words == 3

    def test_message_reply_swaps_endpoints(self):
        msg = Message(src=1, dst=2, kind="k")
        reply = msg.reply("ack", 0)
        assert (reply.src, reply.dst) == (2, 1)


class TestBatchedMessaging:
    def test_send_many_full_fanout(self, engine):
        net = engine(tiny_graph())
        assert net.send_many("b", net.ports("b"), "wave", 5) == 2
        delivered = net.deliver_batch()
        assert len(delivered) == 2
        assert [(m.src, m.dst, m.payload) for m in delivered] == [
            ("b", "a", 5), ("b", "c", 5)
        ]

    def test_send_many_partial_fanout(self, engine):
        net = engine(tiny_graph())
        assert net.send_many("b", ["c"], "wave") == 1
        delivered = net.deliver_batch()
        assert [(m.src, m.dst) for m in delivered] == [("b", "c")]

    def test_send_many_violation_keeps_prefix_queued(self, engine):
        net = engine(tiny_graph())
        with pytest.raises(CongestModelViolation, match="is not an edge"):
            net.send_many("b", ["a", "zzz"], "wave", 7)
        delivered = net.deliver_batch()
        assert [(m.src, m.dst, m.payload) for m in delivered] == [("b", "a", 7)]
        assert net.metrics.message_words == 1

    def test_send_many_capacity_violation_mid_batch(self, engine):
        net = engine(tiny_graph())
        net.send("b", "c", "first")
        with pytest.raises(CongestModelViolation, match="over capacity"):
            net.send_many("b", net.ports("b"), "wave")
        # "b -> a" was fine and stays queued; "b -> c" tripped the check.
        assert [(m.src, m.dst) for m in net.deliver_batch()] == [
            ("b", "c"), ("b", "a")
        ]

    def test_flood_all_counts_every_arc(self, engine):
        net = engine(tiny_graph())
        assert net.flood_all("flood") == 4  # 2 edges -> 4 arcs
        inboxes = net.tick()
        assert sorted((v, len(msgs)) for v, msgs in inboxes.items()) == [
            ("a", 1), ("b", 2), ("c", 1)
        ]

    def test_flood_all_over_loaded_arcs_raises(self, engine):
        net = engine(tiny_graph())
        net.send("a", "b", "x")
        with pytest.raises(CongestModelViolation, match="over capacity"):
            net.flood_all("flood")
        # a->b queued by the scalar send stays; the flood got nothing in.
        assert [(m.src, m.dst) for m in net.deliver_batch()] == [("a", "b")]

    def test_queued_arc_loads_vector(self, engine):
        net = engine(tiny_graph())
        # Arc order: a->b, b->a, b->c, c->b (vertices in insertion order,
        # ports in repr order).
        net.send("a", "b", "x")
        net.send_many("b", net.ports("b"), "wave")
        assert net.queued_arc_loads() == [1, 1, 1, 0]
        net.tick()
        assert net.queued_arc_loads() == [0, 0, 0, 0]

    def test_deliver_batch_messages_compare_equal_across_rounds(self, engine):
        net = engine(tiny_graph())
        net.send_many("b", net.ports("b"), "wave", 3)
        first = net.deliver_batch()
        net.send_many("b", net.ports("b"), "wave", 3)
        second = net.deliver_batch()
        assert first == second
        assert first[0] == Message("b", "a", "wave", 3)


class TestChargingAndPhases:
    def test_charge_rounds_accumulates(self, engine):
        net = engine(tiny_graph())
        net.charge_rounds(10)
        net.charge_rounds(5)
        assert net.metrics.total_rounds == 15

    def test_charge_negative_raises(self, engine):
        net = engine(tiny_graph())
        with pytest.raises(InputError):
            net.charge_rounds(-1)

    def test_phase_attribution(self, engine):
        net = engine(tiny_graph())
        net.begin_phase("setup")
        net.send("a", "b", "x")
        net.tick()
        net.end_phase()
        assert net.metrics.by_phase() == {"setup": 1}

    def test_idle_rounds(self, engine):
        net = engine(tiny_graph())
        net.idle_rounds(3)
        assert net.metrics.rounds == 3
        assert net.metrics.messages == 0

    def test_wide_fanout_charges_per_message(self, engine):
        net = engine(tiny_graph(), message_word_limit=2)
        net.send_many("b", net.ports("b"), "wide", (1, 2, 3, 4, 5, 6))
        assert net.metrics.charged_rounds == 4  # 2 messages x (ceil(6/2)-1)


class TestMemoryIntegration:
    def test_meters_exist_for_all_nodes(self, engine):
        net = engine(tiny_graph())
        for v in net.nodes():
            assert net.mem(v).current == 0

    def test_max_memory_over_nodes(self, engine):
        net = engine(tiny_graph())
        net.mem("a").store("x", 9)
        net.mem("b").store("x", 4)
        assert net.max_memory() == 9

    def test_free_all_prefix(self, engine):
        net = engine(tiny_graph())
        net.mem("a").store("tmp/x", 5)
        net.mem("b").store("tmp/y", 5)
        net.free_all("tmp/")
        assert net.max_memory() == 5  # high-water survives
        assert all(net.mem(v).current == 0 for v in net.nodes())

    def test_store_all_charges_every_vertex(self, engine):
        net = engine(tiny_graph())
        net.store_all("relay/buf", 3)
        assert all(net.mem(v).current == 3 for v in net.nodes())
        net.free_key("relay/buf")
        assert all(net.mem(v).current == 0 for v in net.nodes())
        assert net.max_memory() == 3
