"""Tests for the flow tier of ``repro.lint`` (graph / dataflow / taint).

Covers the project model (module naming, import resolution, subclass
dispatch, ``field(compare=False)`` extraction), the call-graph export,
and the three interprocedural checkers REP009/REP010/REP011 -- each with
positive and negative snippets including at least one case that *requires*
interprocedural propagation (the source and the sink live in different
functions or modules, where a per-module syntactic check has nothing to
match), plus the source -> sink trace rendering and the CLI surface
(``--flow``, ``--trace``, ``--callgraph``).
"""

import json
import textwrap

from repro.__main__ import main
from repro.lint import (
    Baseline,
    build_callgraph,
    build_project,
    module_name,
    parse_module,
    resolve_rules,
    run_lint,
)
from repro.lint.graph import CallGraph


def write_tree(tmp_path, files):
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))


def lint_flow(tmp_path, files, *, rules=None, flow=True):
    write_tree(tmp_path, files)
    return run_lint(["src"], rules=rules, baseline=Baseline(),
                    root=tmp_path, flow=flow)


def project_of(tmp_path, files):
    write_tree(tmp_path, files)
    modules = [
        parse_module(p, tmp_path)
        for p in sorted((tmp_path / "src").rglob("*.py"))
    ]
    return build_project(modules)


def rule_ids(report):
    return sorted({f.rule for f in report.findings})


# ---------------------------------------------------------------------------
# Project model
# ---------------------------------------------------------------------------

class TestModuleName:
    def test_plain_module(self):
        assert module_name("src/repro/serve/harness.py") == \
            "repro.serve.harness"

    def test_package_init(self):
        assert module_name("src/repro/lint/__init__.py") == "repro.lint"

    def test_no_src_prefix(self):
        assert module_name("repro/congest/engine.py") == \
            "repro.congest.engine"


class TestProjectModel:
    FILES = {
        "src/repro/base.py": """
            class Program:
                def on_round(self, api):
                    return 0

            class Helper:
                pass
        """,
        "src/repro/impl.py": """
            from .base import Program

            class Fast(Program):
                def on_round(self, api):
                    return 1

            class Faster(Fast):
                def on_round(self, api):
                    return 2

            def drive(p):
                return p.on_round(None)

            def make_and_run():
                p = Fast(7)
                return p.on_round(None)
        """,
    }

    def test_imports_resolve_relative(self, tmp_path):
        project = project_of(tmp_path, self.FILES)
        assert project.resolve_name("repro.impl", "Program") == \
            "repro.base.Program"

    def test_hierarchy_links_and_transitive_subclasses(self, tmp_path):
        project = project_of(tmp_path, self.FILES)
        subs = [c.qualname for c in
                project.transitive_subclasses("repro.base.Program")]
        assert subs == ["repro.impl.Fast", "repro.impl.Faster"]

    def test_self_dispatch_includes_subclass_overrides(self, tmp_path):
        project = project_of(tmp_path, self.FILES)
        targets = project.dispatch("repro.base.Program", "on_round")
        quals = [t.qualname for t in targets]
        assert "repro.base.Program.on_round" in quals
        assert "repro.impl.Fast.on_round" in quals
        assert "repro.impl.Faster.on_round" in quals

    def test_constructor_typed_local_dispatches(self, tmp_path):
        import ast

        project = project_of(tmp_path, self.FILES)
        fn = project.functions["repro.impl.make_and_run"]
        call = None
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                call = node
        resolved = project.resolve_call(fn, call, {"p": "repro.impl.Fast"})
        quals = [t.qualname for t in resolved.targets]
        # Static type Fast plus the Faster override; never the base.
        assert "repro.impl.Fast.on_round" in quals
        assert "repro.impl.Faster.on_round" in quals

    def test_compare_excluded_fields_extracted(self, tmp_path):
        project = project_of(tmp_path, {
            "src/repro/rep.py": """
                from dataclasses import dataclass, field

                @dataclass
                class Report:
                    queries: int = 0
                    wall_s: float = field(default=0.0, compare=False)
            """,
        })
        info = project.classes["repro.rep.Report"]
        assert info.is_dataclass
        assert info.fields == ["queries", "wall_s"]
        assert info.compare_excluded == {"wall_s"}
        assert project.field_compare_excluded("repro.rep.Report", "wall_s")
        assert not project.field_compare_excluded("repro.rep.Report",
                                                  "queries")


class TestCallGraph:
    FILES = {
        "src/repro/a.py": """
            import time

            def leaf():
                return time.time()

            def mid():
                return leaf()
        """,
    }

    def test_edges_and_json(self, tmp_path):
        project = project_of(tmp_path, self.FILES)
        graph = CallGraph(project)
        doc = graph.to_dict()
        edges = {(e["caller"], e["callee"], e["kind"])
                 for e in doc["edges"]}
        assert ("repro.a.mid", "repro.a.leaf", "project") in edges
        assert ("repro.a.leaf", "time.time", "external") in edges
        assert "repro.a" in doc["modules"]

    def test_dot_export(self, tmp_path):
        project = project_of(tmp_path, self.FILES)
        dot = CallGraph(project).to_dot()
        assert dot.startswith("digraph callgraph {")
        assert '"repro.a.mid" -> "repro.a.leaf";' in dot
        # External edges are hidden by default...
        assert "time.time" not in dot
        # ...and shown on request.
        assert "time.time" in CallGraph(project).to_dot(external=True)


# ---------------------------------------------------------------------------
# REP009 — rng provenance
# ---------------------------------------------------------------------------

class TestRngProvenance:
    def test_interprocedural_unseeded_rng_reaches_sampler(self, tmp_path):
        # The construction and the sink live in different modules: the
        # per-module syntactic REP002 sees an innocent helper call here.
        report = lint_flow(tmp_path, {
            "src/repro/helpers.py": """
                import random

                def fresh_rng():
                    return random.Random()
            """,
            "src/repro/build.py": """
                from .helpers import fresh_rng

                def sample_pairs(n, rng):
                    return [rng.random() for _ in range(n)]

                def build(n):
                    r = fresh_rng()
                    return sample_pairs(n, rng=r)
            """,
        }, rules="REP009")
        assert rule_ids(report) == ["REP009"]
        f = report.findings[0]
        assert "OS-seeded random.Random()" in f.message
        assert "parameter 'rng'" in f.message
        assert f.trace  # the source -> sink call chain is attached
        assert any("source:" in step for step in f.trace)
        assert any("fresh_rng" in step for step in f.trace)

    def test_module_global_draw_reaching_seed_param(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/run.py": """
                import random

                def build_tables(graph, seed):
                    return seed

                def run(graph):
                    s = random.randrange(2**32)
                    return build_tables(graph, seed=s)
            """,
        }, rules="REP009")
        assert rule_ids(report) == ["REP009"]
        assert "module-global random.randrange()" in \
            report.findings[0].message

    def test_seeded_random_is_silent(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/ok.py": """
                import random

                def sample_pairs(n, rng):
                    return [rng.random() for _ in range(n)]

                def build(n, seed):
                    r = random.Random(seed)
                    return sample_pairs(n, rng=r)
            """,
        }, rules="REP009")
        assert report.findings == []

    def test_rng_passthrough_param_is_silent(self, tmp_path):
        # Threading a caller-provided rng through helpers is exactly the
        # sanctioned pattern; the param-kind taint must not fire.
        report = lint_flow(tmp_path, {
            "src/repro/thread.py": """
                def inner(rng):
                    return rng.random()

                def outer(rng):
                    return inner(rng)
            """,
        }, rules="REP009")
        assert report.findings == []


# ---------------------------------------------------------------------------
# REP010 — determinism of compared fields
# ---------------------------------------------------------------------------

_REPORT_MODULE = """
    from dataclasses import dataclass, field

    @dataclass
    class Report:
        queries: int = 0
        wall_s: float = field(default=0.0, compare=False)
"""


class TestDeterminismFlow:
    def test_interprocedural_wallclock_into_compared_field(self, tmp_path):
        # time.perf_counter() and the Report(...) construction are two
        # modules apart -- nothing syntactic connects them.
        report = lint_flow(tmp_path, {
            "src/repro/rep.py": _REPORT_MODULE,
            "src/repro/clock.py": """
                import time

                def now_s():
                    return time.perf_counter()
            """,
            "src/repro/make.py": """
                from .clock import now_s
                from .rep import Report

                def make():
                    t = now_s()
                    return Report(queries=t)
            """,
        }, rules="REP010")
        assert rule_ids(report) == ["REP010"]
        f = report.findings[0]
        assert "wall-clock time.perf_counter()" in f.message
        assert "equality-compared field 'queries'" in f.message
        assert any("now_s" in step for step in f.trace)

    def test_wallclock_into_compare_false_field_is_silent(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/rep.py": _REPORT_MODULE,
            "src/repro/make.py": """
                import time

                from .rep import Report

                def make():
                    return Report(queries=3, wall_s=time.perf_counter())
            """,
        }, rules="REP010")
        assert report.findings == []

    def test_store_into_compare_false_attr_is_silent(self, tmp_path):
        # report.wall_s = wall must not smear taint over the object.
        report = lint_flow(tmp_path, {
            "src/repro/rep.py": _REPORT_MODULE,
            "src/repro/make.py": """
                import time

                from .rep import Report

                def wrap(r):
                    return Report(queries=r)

                def make():
                    rep = Report(queries=3)
                    rep.wall_s = time.perf_counter()
                    return wrap(rep)
            """,
        }, rules="REP010")
        assert report.findings == []

    def test_set_iteration_into_compared_field(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/rep.py": _REPORT_MODULE,
            "src/repro/make.py": """
                from .rep import Report

                def make(vertices):
                    seen = set(vertices)
                    rows = [v for v in seen]
                    return Report(queries=rows)
            """,
        }, rules="REP010")
        assert rule_ids(report) == ["REP010"]
        assert "unordered set iteration" in report.findings[0].message

    def test_sorted_set_iteration_is_silent(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/rep.py": _REPORT_MODULE,
            "src/repro/make.py": """
                from .rep import Report

                def make(vertices):
                    seen = set(vertices)
                    rows = [v for v in sorted(seen)]
                    return Report(queries=rows)
            """,
        }, rules="REP010")
        assert report.findings == []

    def test_hash_of_non_int_into_compared_field(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/rep.py": _REPORT_MODULE,
            "src/repro/make.py": """
                from .rep import Report

                def make(name):
                    h = hash(name)
                    return Report(queries=h)
            """,
        }, rules="REP010")
        assert rule_ids(report) == ["REP010"]
        assert "PYTHONHASHSEED" in report.findings[0].message

    def test_hash_of_int_literal_is_silent(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/rep.py": _REPORT_MODULE,
            "src/repro/make.py": """
                from .rep import Report

                def make():
                    return Report(queries=hash(42))
            """,
        }, rules="REP010")
        assert report.findings == []

    def test_trajectory_row_sink(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/telemetry/trajectory.py": """
                def append_entry(path, entry):
                    return entry
            """,
            "src/repro/bench.py": """
                import time

                from .telemetry.trajectory import append_entry

                def record(path):
                    row = {"elapsed": time.time()}
                    return append_entry(path, row)
            """,
        }, rules="REP010")
        assert rule_ids(report) == ["REP010"]
        assert "trajectory row" in report.findings[0].message

    def test_comparison_outcome_is_sanctioned(self, tmp_path):
        # Threshold verdicts (wall < budget) are deterministic claims
        # *about* a measurement, not the measurement itself.
        report = lint_flow(tmp_path, {
            "src/repro/rep.py": _REPORT_MODULE,
            "src/repro/make.py": """
                import time

                from .rep import Report

                def make(budget):
                    ok = time.perf_counter() < budget
                    return Report(queries=ok)
            """,
        }, rules="REP010")
        assert report.findings == []


# ---------------------------------------------------------------------------
# REP011 — shm escape
# ---------------------------------------------------------------------------

class TestShmEscape:
    def test_self_captured_view_escapes_via_send(self, tmp_path):
        # The capture and the send are different methods: REP008's
        # name matching has nothing to hook onto ('view' mentions no
        # packed fragment), only escape analysis connects them.
        report = lint_flow(tmp_path, {
            "src/repro/serve/holder.py": """
                class Holder:
                    def attach(self, buffer):
                        self.view = memoryview(buffer)

                    def ship(self, conn):
                        conn.send(self.view)
            """,
        }, rules="REP011")
        assert rule_ids(report) == ["REP011"]
        f = report.findings[0]
        assert "memoryview(...)" in f.message
        assert ".send(...)" in f.message
        assert any("captured on self.view" in step for step in f.trace)

    def test_packed_table_through_helper_to_queue(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/shard/tables.py": """
                class SealedTables:
                    pass
            """,
            "src/repro/shard/work.py": """
                from .tables import SealedTables

                def build():
                    return SealedTables()

                def dispatch(queue):
                    tables = build()
                    queue.put(tables)
            """,
        }, rules="REP011")
        assert rule_ids(report) == ["REP011"]
        f = report.findings[0]
        assert "packed table SealedTables" in f.message
        assert any("build" in step for step in f.trace)

    def test_process_args_with_shm_buf(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/shard/spawn.py": """
                import multiprocessing as mp

                def launch(shm):
                    view = shm.buf
                    proc = mp.Process(target=print, args=(view,))
                    return proc
            """,
        }, rules="REP011")
        assert rule_ids(report) == ["REP011"]
        assert "Process(...)" in report.findings[0].message

    def test_pickled_packed_table_fires(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/serve/dump.py": """
                import pickle

                class PackedTree:
                    pass

                def snapshot():
                    t = PackedTree()
                    return pickle.dumps(t)
            """,
        }, rules="REP011")
        assert rule_ids(report) == ["REP011"]
        assert "pickle.dumps" in report.findings[0].message

    def test_copied_bytes_are_silent(self, tmp_path):
        # .tobytes() / bytes(...) copy the data out of the view; plain
        # bytes may cross processes freely.
        report = lint_flow(tmp_path, {
            "src/repro/serve/copy.py": """
                def ship(conn, buffer):
                    view = memoryview(buffer)
                    conn.send(view.tobytes())
                    conn.send(bytes(view))
            """,
        }, rules="REP011")
        assert report.findings == []

    def test_manifest_dict_is_silent(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/shard/manifest.py": """
                import json

                def announce(conn, manifest):
                    conn.send(json.dumps(manifest))
            """,
        }, rules="REP011")
        assert report.findings == []


# ---------------------------------------------------------------------------
# Runner / report integration
# ---------------------------------------------------------------------------

class TestFlowRunner:
    def test_resolve_rules_flow_adds_flow_tier(self):
        ids = [r.id for r in resolve_rules(None, flow=True)]
        assert "REP009" in ids and "REP010" in ids and "REP011" in ids
        assert "REP001" in ids  # syntactic tier still present

    def test_resolve_rules_default_excludes_flow_tier(self):
        ids = [r.id for r in resolve_rules(None)]
        assert "REP009" not in ids

    def test_explicit_flow_rule_without_flow_flag(self):
        assert [r.id for r in resolve_rules("REP011")] == ["REP011"]

    def test_flow_findings_respect_pragmas(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/serve/ok.py": """
                def ship(conn, buffer):
                    view = memoryview(buffer)
                    conn.send(view)  # lint: ignore[REP011] -- test fixture
            """,
        }, rules="REP011")
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_trace_survives_finding_roundtrip(self, tmp_path):
        report = lint_flow(tmp_path, {
            "src/repro/serve/bad.py": """
                def ship(conn, buffer):
                    conn.send(memoryview(buffer))
            """,
        }, rules="REP011")
        from repro.lint import Finding

        f = report.findings[0]
        assert Finding.from_dict(f.to_dict()) == f
        rendered = f.render(with_trace=True)
        assert "taint path:" in rendered
        assert rendered.splitlines()[1:]  # numbered steps follow

    def test_build_callgraph_over_repo(self):
        graph = build_callgraph()
        assert len(graph.project.functions) > 100
        # A known dispatch family is linked: Rule subclasses.
        rule = "repro.lint.core.Rule"
        subs = {c.qualname for c in
                graph.project.transitive_subclasses(rule)}
        assert "repro.lint.rules.PragmaHygiene" in subs
        assert "repro.lint.taint.ShmEscape" in subs


class TestRepoSelfCleanUnderFlow:
    def test_repo_is_flow_clean_with_empty_baseline(self):
        report = run_lint(baseline=Baseline(), flow=True)
        assert [f.render(with_trace=True)
                for f in report.findings if f.severity == "error"] == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestFlowCli:
    def test_flow_strict_exits_nonzero_on_finding(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/serve/bad.py": """
                def ship(conn, buffer):
                    conn.send(memoryview(buffer))
            """,
        })
        code = main(["lint", str(tmp_path / "src"), "--flow",
                     "--no-baseline", "--strict"])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP011" in out

    def test_trace_flag_prints_taint_path(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/serve/bad.py": """
                def ship(conn, buffer):
                    conn.send(memoryview(buffer))
            """,
        })
        code = main(["lint", str(tmp_path / "src"), "--flow",
                     "--no-baseline", "--trace"])
        out = capsys.readouterr().out
        assert code == 0  # no --strict: report only
        assert "taint path:" in out
        assert "source: memoryview(...) view" in out

    def test_callgraph_json_export(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/a.py": """
                def leaf():
                    return 1

                def mid():
                    return leaf()
            """,
        })
        code = main(["lint", str(tmp_path / "src"), "--callgraph", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert {"caller": "repro.a.mid", "callee": "repro.a.leaf",
                "line": 6, "kind": "project"} in doc["edges"]

    def test_callgraph_dot_export(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/a.py": """
                def leaf():
                    return 1

                def mid():
                    return leaf()
            """,
        })
        code = main(["lint", str(tmp_path / "src"), "--callgraph", "dot"])
        assert code == 0
        assert "digraph callgraph" in capsys.readouterr().out

    def test_repo_flow_strict_cli_is_clean(self):
        assert main(["lint", "--flow", "--strict", "--quiet"]) == 0
