"""Unit tests for the table/label assembly stage (Appendix B, end)."""

import math

import pytest

from repro.congest import Network, build_bfs_tree
from repro.core.assembly import (
    assemble_labels,
    assemble_tables,
    build_tree_schemes,
)
from repro.graphs import random_connected_graph
from repro.tz import all_cluster_trees, compute_pivots, sample_hierarchy


@pytest.fixture(scope="module")
def setup():
    graph = random_connected_graph(100, seed=281)
    hierarchy = sample_hierarchy(list(graph.nodes), 2, seed=281)
    pivots = compute_pivots(graph, hierarchy)
    trees = all_cluster_trees(graph, hierarchy, pivots)
    net = Network(graph)
    bfs = build_bfs_tree(net)
    schemes, stats = build_tree_schemes(net, bfs, trees, seed=28)
    return graph, hierarchy, pivots, trees, net, schemes, stats


class TestBuildTreeSchemes:
    def test_one_scheme_per_cluster(self, setup):
        _, _, _, trees, _, schemes, _ = setup
        assert set(schemes) == set(trees)

    def test_stats_counts(self, setup):
        _, _, _, trees, _, _, stats = setup
        assert stats.trees_built == len(trees)
        assert stats.tree_rounds_max <= stats.tree_rounds_total

    def test_max_trees_per_vertex_measured(self, setup):
        _, _, _, trees, _, _, stats = setup
        counts = {}
        for tree in trees.values():
            for v in tree.dist:
                counts[v] = counts.get(v, 0) + 1
        assert stats.max_trees_per_vertex == max(counts.values())

    def test_root_distances_recorded(self, setup):
        _, _, _, trees, _, schemes, _ = setup
        for root, scheme in schemes.items():
            for v, table in scheme.tables.items():
                assert table.root_distance == pytest.approx(trees[root].dist[v])


class TestAssembleTables:
    def test_every_membership_has_a_table(self, setup):
        _, _, _, trees, net, schemes, _ = setup
        tables = assemble_tables(net, schemes)
        for root, tree in trees.items():
            for v in tree.dist:
                assert root in tables[v].trees

    def test_no_spurious_tables(self, setup):
        _, _, _, trees, net, schemes, _ = setup
        tables = assemble_tables(net, schemes)
        for v, table in tables.items():
            for root in table.trees:
                assert v in trees[root].dist

    def test_memory_charged_for_tables(self, setup):
        _, _, _, _, net, schemes, _ = setup
        tables = assemble_tables(net, schemes)
        for v, table in tables.items():
            stored = dict(net.mem(v).items()).get("scheme/table", 0)
            assert stored == table.word_size()


class TestAssembleLabels:
    def _labels(self, setup, slack):
        graph, hierarchy, pivots, trees, net, schemes, _ = setup
        assemble_tables(net, schemes)
        reference = {i: pivots.dist[i] for i in range(hierarchy.k)}
        return assemble_labels(
            net, hierarchy, trees, schemes, reference, slack=slack
        )

    def test_every_vertex_labelled_with_k_entries(self, setup):
        graph, hierarchy, *_ = setup
        labels = self._labels(setup, slack=1.2)
        assert set(labels) == set(graph.nodes)
        for label in labels.values():
            assert len(label.entries) == hierarchy.k

    def test_top_level_entry_always_present(self, setup):
        _, hierarchy, *_ = setup
        labels = self._labels(setup, slack=1.2)
        for label in labels.values():
            assert label.entries[hierarchy.k - 1] is not None

    def test_level0_entry_is_self_tree(self, setup):
        labels = self._labels(setup, slack=1.2)
        for v, label in labels.items():
            entry = label.entries[0]
            assert entry is not None
            root, dist, _ = entry
            assert dist == pytest.approx(0.0)
            assert root == v

    def test_entry_roots_have_sufficient_level(self, setup):
        _, hierarchy, *_ = setup
        labels = self._labels(setup, slack=1.2)
        for label in labels.values():
            for i, entry in enumerate(label.entries):
                if entry is not None:
                    assert hierarchy.level_of[entry[0]] >= i

    def test_slack_filter_monotone(self, setup):
        tight = self._labels(setup, slack=1.0)
        loose = self._labels(setup, slack=10.0)
        tight_present = sum(
            1 for l in tight.values() for e in l.entries if e is not None
        )
        loose_present = sum(
            1 for l in loose.values() for e in l.entries if e is not None
        )
        assert loose_present >= tight_present

    def test_present_entries_respect_filter(self, setup):
        graph, hierarchy, pivots, *_ = setup
        slack = 1.2
        labels = self._labels(setup, slack=slack)
        for v, label in labels.items():
            for i, entry in enumerate(label.entries):
                if entry is None or i == hierarchy.k - 1:
                    continue
                _, dist, _ = entry
                reference = pivots.dist[i][v]
                if reference < math.inf:
                    assert dist <= slack * reference + 1e-9
