"""Property-based tests (hypothesis) for the vectorized round engine.

Three invariants that must hold for *any* fanout schedule, not just the
replays pinned by the differential matrix:

* **Permutation invariance** — the per-destination inbox contents of a
  round are a function of *what* was sent, not of the order in which the
  sending vertices issued their ``send_many`` calls; and they agree with
  the reference engine.
* **Word-accounting conservation** — the queued per-arc load vector sums
  to the total slot count of everything queued, agrees between the
  vectorized engine's numpy kernel and its pure-python twin, and matches
  the fast path's eager bookkeeping arc-for-arc; after delivery the loads
  drain to zero and the word meters agree.
* **Meter-snapshot parity** — any interleaving of network-level bulk
  memory ops (``store_all`` / ``free_key`` / ``free_all``) and per-vertex
  meter ops leaves identical meter state (items, high-water, prefix-scan
  pin) on every engine.

Examples are kept modest (the differential fuzzer already hammers volume);
these exist to let hypothesis *shrink* any structural counterexample.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.congest import ENGINES, ReferenceNetwork, VectorizedNetwork
from repro.wordsize import words_of

_REPR = repr


@st.composite
def small_graphs(draw, min_size=2, max_size=16):
    """A random connected graph with mixed int/str vertex ids."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    relabel = draw(st.booleans())
    graph = nx.Graph()
    names = [f"v{i}" if relabel and i % 2 else i for i in range(n)]
    graph.add_node(names[0])
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        graph.add_edge(names[i], names[parent])
    for _ in range(draw(st.integers(min_value=0, max_value=n))):
        u = names[draw(st.integers(min_value=0, max_value=n - 1))]
        v = names[draw(st.integers(min_value=0, max_value=n - 1))]
        if u != v:
            graph.add_edge(u, v)
    return graph


@st.composite
def fanout_schedules(draw):
    """A graph plus one ``send_many`` batch per vertex (possibly empty,
    possibly the full port list — the identity fast lane) and a random
    permutation of the issuing order."""
    graph = draw(small_graphs())
    nodes = sorted(graph.nodes, key=_REPR)
    batches = []
    for v in nodes:
        ports = sorted(graph.neighbors(v), key=_REPR)
        mask = draw(st.lists(
            st.booleans(), min_size=len(ports), max_size=len(ports)))
        full = draw(st.booleans())
        batches.append((v, ports if full else
                        [w for w, keep in zip(ports, mask) if keep]))
    perm = draw(st.permutations(range(len(batches))))
    return graph, batches, perm


def _inbox_sets(net, batches, order, *, use_ports_identity):
    """Queue every batch in ``order`` on a fresh round, tick, and return
    per-destination inbox contents as comparable sorted multisets."""
    for i in order:
        v, dsts = batches[i]
        if use_ports_identity and dsts and len(dsts) == net.degree(v):
            dsts = net.ports(v)  # the cached-list identity fast lane
        net.send_many(v, dsts, "wave", 7)
    inboxes = net.tick()
    return {
        _REPR(v): sorted((_REPR(m.src), m.kind, m.words) for m in box)
        for v, box in inboxes.items()
    }


@given(fanout_schedules())
@settings(max_examples=25, deadline=None)
def test_inboxes_invariant_under_issue_order(case):
    """Round delivery content is a set-function of the queued batches:
    permuting which vertex calls ``send_many`` first changes nothing, and
    the vectorized engine agrees with the reference oracle."""
    graph, batches, perm = case
    identity = list(range(len(batches)))
    ref = _inbox_sets(ReferenceNetwork(graph), batches, identity,
                      use_ports_identity=False)
    vec_same = _inbox_sets(VectorizedNetwork(graph), batches, identity,
                           use_ports_identity=True)
    vec_perm = _inbox_sets(VectorizedNetwork(graph), batches, perm,
                           use_ports_identity=True)
    assert vec_same == ref
    assert vec_perm == ref


@given(fanout_schedules(),
       st.lists(st.integers(min_value=0, max_value=11), max_size=4))
@settings(max_examples=25, deadline=None)
def test_word_accounting_conserved_across_backends(case, wide_words):
    """sum(queued_arc_loads) == total queued slots, on every engine, with
    the numpy kernel and its pure-python twin agreeing arc-for-arc; after
    delivery the loads drain and the metrics agree."""
    graph, batches, _ = case
    nets = {name: ENGINES[name](graph, strict=False) for name in ENGINES}
    for net in nets.values():
        net.flood_all("flood", None)
        for v, dsts in batches:
            net.send_many(v, dsts, "wave", 3)
        for i, n_items in enumerate(wide_words):
            src = sorted(graph.nodes, key=_REPR)[i % net.n]
            for dst in net.ports(src):
                net.send(src, dst, "wide", list(range(n_items)))

    ref = nets["reference"]
    limit = ref.message_word_limit
    expected_slots = 0
    expected_words = 0
    for v in ref.nodes():
        expected_slots += ref.degree(v)  # the flood, one slot per arc
        expected_words += ref.degree(v) * words_of(None)
    for v, dsts in batches:
        expected_slots += len(dsts)
        expected_words += len(dsts) * words_of(3)
    for i, n_items in enumerate(wide_words):
        src = sorted(graph.nodes, key=_REPR)[i % ref.n]
        w = words_of(list(range(n_items)))
        slots = 1 if w <= limit else -(-w // limit)
        expected_slots += slots * ref.degree(src)
        expected_words += w * ref.degree(src)

    vec = nets["vectorized"]
    loads = vec.queued_arc_loads()
    assert loads == vec._queued_arc_loads_py()
    assert loads == nets["fastpath"].queued_arc_loads()
    assert sum(loads) == expected_slots
    assert sum(ref.queued_arc_loads()) == expected_slots

    for name, net in nets.items():
        net.deliver_batch()
        assert sum(net.queued_arc_loads()) == 0, name
        assert net.metrics.message_words == expected_words, name
    assert (nets["vectorized"].metrics.to_dict()
            == nets["reference"].metrics.to_dict())


_MEM_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("store_all"),
                  st.sampled_from(["t/a", "t/b", "relay/buf", "plain"]),
                  st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("free_key"),
                  st.sampled_from(["t/a", "t/b", "relay/buf", "ghost"])),
        st.tuples(st.just("free_all"),
                  st.sampled_from(["t/", "relay/", "plain", "nope/"])),
    ),
    min_size=1,
    max_size=12,
)


@given(small_graphs(max_size=8), _MEM_OPS)
@settings(max_examples=25, deadline=None)
def test_meter_snapshots_agree_across_engines(graph, ops):
    """Bulk memory ops leave byte-identical meter state on every engine:
    live items, high-water marks, and the ``last_prefix_scan`` pin."""
    nets = {name: cls(graph) for name, cls in ENGINES.items()}
    for net in nets.values():
        for op in ops:
            if op[0] == "store_all":
                net.store_all(op[1], op[2])
            elif op[0] == "free_key":
                net.free_key(op[1])
            else:
                net.free_all(op[1])
    ref = nets["reference"]
    expect = {
        _REPR(v): (
            dict(ref.mem(v).items()),
            ref.mem(v).high_water,
            ref.mem(v).last_prefix_scan,
        )
        for v in ref.nodes()
    }
    for name in ("fastpath", "vectorized"):
        net = nets[name]
        got = {
            _REPR(v): (
                dict(net.mem(v).items()),
                net.mem(v).high_water,
                net.mem(v).last_prefix_scan,
            )
            for v in net.nodes()
        }
        assert got == expect, name
