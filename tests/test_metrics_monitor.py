"""Tests for ``run_monitor`` and the ``repro monitor`` / ``repro serve
--metrics-out`` command-line surface (S18).

The monitor's virtual clock makes burn-rate alerting deterministic, so
these tests can assert exact SLO outcomes: a healthy scheme leaves the
budget untouched, and an artificially degraded bound trips the fast
burn-rate arm at a reproducible virtual timestamp.
"""

import io
import json

import pytest

from repro.__main__ import build_parser, main
from repro.graphs import random_connected_graph
from repro.metrics import (
    ServeMetrics,
    parse_prometheus,
    run_monitor,
)
from repro.telemetry.runrecord import RunRecord
from repro.tz import build_centralized_scheme

SEED = 89


@pytest.fixture(scope="module")
def built():
    graph = random_connected_graph(70, seed=SEED)
    scheme = build_centralized_scheme(graph, 2, seed=SEED)
    return graph, scheme


class TestRunMonitor:
    def test_healthy_replay(self, built):
        graph, scheme = built
        report, record = run_monitor(scheme, graph, workload="zipf",
                                     queries=400, seed=3)
        assert report.queries == 400
        assert report.failures == 0
        assert report.healthy
        assert report.budget_remaining == 1.0
        assert report.active_alerts == []
        assert report.hops_p50 >= 0 and report.hops_p99 >= report.hops_p50
        assert report.stretch_p99 is not None
        assert report.stretch_p99 <= report.slo_bound

    def test_run_record_carries_metrics_and_verdict(self, built):
        graph, scheme = built
        report, record = run_monitor(scheme, graph, queries=200, seed=1)
        assert record.kind == "monitor"
        assert record.metrics, "RunRecord.metrics must hold the snapshot"
        assert record.metrics["slo"]["alerts"] == []
        q = record.metrics["repro_serve_queries_total"]["series"][0]
        assert q["value"] == 200.0
        verdict = record.verdicts[0]
        assert verdict.name == "monitor/uniform/slo-budget"
        assert verdict.passed
        # The snapshot must survive the JSON round trip.
        back = RunRecord.from_dict(json.loads(record.to_json()))
        assert back.metrics["slo"]["objective"] == 0.99

    def test_degraded_bound_fires_alerts(self, built):
        """slo_bound below 1.0 marks every query bad: alerts must fire."""
        graph, scheme = built
        report, record = run_monitor(scheme, graph, queries=600, seed=2,
                                     slo_bound=0.5, target_qps=100.0)
        assert not report.healthy
        assert report.active_alerts
        assert report.alert_transitions >= 1
        assert report.budget_remaining == 0.0
        assert not record.verdicts[0].passed

    def test_firing_alerts_carry_trace_ids(self, built):
        """S19: a firing alert's structured event names the tail-traced
        queries that burned the budget, linking to ``repro explain``."""
        graph, scheme = built
        report, record = run_monitor(scheme, graph, queries=600, seed=2,
                                     slo_bound=0.5, target_qps=100.0)
        alerts = record.metrics["slo"]["alerts"]
        firing = [a for a in alerts if a["state"] == "firing"]
        assert firing
        for alert in firing:
            ids = alert.get("trace_ids")
            assert ids, "firing alerts must reference tail trace ids"
            assert len(ids) <= 8
            assert all(i.startswith("uniform-2-") for i in ids)
        resolved = [a for a in alerts if a["state"] == "resolved"]
        assert all("trace_ids" not in a for a in resolved)

    def test_status_stream_refreshes(self, built):
        graph, scheme = built
        stream = io.StringIO()
        run_monitor(scheme, graph, queries=300, seed=4,
                    status_stream=stream, refresh_every=100)
        text = stream.getvalue()
        assert text.count("\r") >= 3
        assert "budget=" in text and "alerts=" in text
        assert text.endswith("\n")

    def test_virtual_clock_spans_queries(self, built):
        graph, scheme = built
        report, _ = run_monitor(scheme, graph, queries=500, seed=5,
                                target_qps=250.0)
        # 500 queries at 250 virtual qps = 2 virtual seconds; the QPS
        # meter saw the whole stream inside its 10s window.
        meter = report.snapshot["repro_serve_qps"]["series"][0]
        assert meter["total"] == 500.0

    def test_bad_target_qps_rejected(self, built):
        graph, scheme = built
        with pytest.raises(ValueError):
            run_monitor(scheme, graph, queries=10, target_qps=0.0)

    def test_worst_stretch_exemplars_recorded(self, built):
        graph, scheme = built
        report, _ = run_monitor(scheme, graph, workload="zipf",
                                queries=400, seed=6)
        series = report.snapshot["repro_serve_stretch"]["series"][0]
        exemplars = series.get("exemplars", [])
        assert exemplars, "worst-stretch exemplars must be captured"
        # Worst-first ordering, and each entry carries the query context.
        values = [e["value"] for e in exemplars]
        assert values == sorted(values, reverse=True)
        assert values[0] == pytest.approx(report.snapshot[
            "repro_serve_stretch"]["series"][0]["max"])
        for key in ("source", "target", "hops", "path_prefix", "cached",
                    "trace_id"):
            assert key in exemplars[0], key
        assert exemplars[0]["trace_id"].startswith("zipf-6-")

    def test_report_render(self, built):
        graph, scheme = built
        report, _ = run_monitor(scheme, graph, queries=150, seed=7)
        text = report.render()
        assert "SLO budget" in text and "HEALTHY" in text


class TestMonitorCli:
    def test_parser_accepts_monitor(self):
        args = build_parser().parse_args(
            ["monitor", "--workload", "zipf", "--queries", "300",
             "--n", "60", "--target-qps", "500", "--json"])
        assert args.command == "monitor"
        assert args.target_qps == 500.0

    def test_json_run_record(self, capsys):
        rc = main(["monitor", "--n", "50", "--k", "2", "--queries", "200",
                   "--workload", "zipf", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "monitor"
        assert doc["columns"][0]["healthy"] is True
        assert doc["metrics"]["slo"]["alerts"] == []

    def test_text_output(self, capsys):
        rc = main(["monitor", "--n", "50", "--k", "2", "--queries", "150",
                   "--no-live"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SLO budget" in out

    def test_strict_healthy_exits_zero(self, capsys):
        rc = main(["monitor", "--n", "50", "--k", "2", "--queries", "150",
                   "--strict", "--quiet"])
        assert rc == 0

    def test_metrics_out_writes_parseable_prometheus(self, tmp_path,
                                                     capsys):
        out = tmp_path / "monitor.prom"
        rc = main(["monitor", "--n", "50", "--k", "2", "--queries", "200",
                   "--quiet", "--metrics-out", str(out)])
        assert rc == 0
        families = parse_prometheus(out.read_text())
        assert families["repro_serve_queries_total"]["samples"][0][2] \
            == 200.0
        assert "repro_serve_latency_us" in families


class TestServeMetricsOutCli:
    def test_serve_metrics_out(self, tmp_path, capsys):
        """Acceptance: repro serve --metrics-out writes valid Prometheus
        text that the strict parser accepts."""
        out = tmp_path / "serve.prom"
        rc = main(["serve", "--n", "50", "--k", "2", "--queries", "200",
                   "--workload", "zipf", "--quiet",
                   "--metrics-out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "# HELP" in text and "# TYPE" in text
        families = parse_prometheus(text)
        for name in ("repro_serve_queries_total", "repro_serve_hops",
                     "repro_serve_latency_us", "repro_serve_stretch"):
            assert name in families, name

    def test_serve_metrics_report_section(self, built):
        """run_serving with a bundle attaches the snapshot to the report."""
        from repro.serve import run_serving

        graph, scheme = built
        metrics = ServeMetrics()
        report, _ = run_serving(scheme, graph, queries=150, seed=2,
                                metrics=metrics)
        assert report.metrics, "report.metrics must hold the snapshot"
        assert report.metrics["slo"]["total"] == 150.0
