"""Tests for the one-shot report generator."""

import pytest

from repro.analysis import ReportSpec, generate_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report(ReportSpec.fast())


class TestReport:
    def test_contains_both_tables(self, report_text):
        assert "Table 2 — exact tree routing" in report_text
        assert "Table 1 — compact routing" in report_text

    def test_contains_figures(self, report_text):
        for fig in ("F1 —", "F2 —", "F4 —", "F9 —"):
            assert fig in report_text

    def test_mentions_all_schemes(self, report_text):
        for scheme in (
            "this-paper", "EN16b-baseline", "TZ01b-centralized",
            "landmark-baseline", "tree-cover-baseline",
        ):
            assert scheme in report_text

    def test_markdown_structure(self, report_text):
        assert report_text.startswith("# Reproduction report")
        assert report_text.count("```") % 2 == 0

    def test_fast_spec_is_smaller(self):
        fast, full = ReportSpec.fast(), ReportSpec()
        assert fast.table2_n < full.table2_n
        assert fast.table1_n < full.table1_n
