"""Unit tests for the implicit virtual-graph oracle (Appendix B setup)."""


import pytest

from repro.errors import InputError
from repro.graphs import (
    VirtualGraphOracle,
    default_hop_bound,
    dijkstra,
    random_connected_graph,
    verify_claim7,
)
from repro.tz import sample_hierarchy


@pytest.fixture(scope="module")
def setup():
    graph = random_connected_graph(120, seed=17)
    hier = sample_hierarchy(list(graph.nodes), 2, seed=17)
    virtual = sorted(hier.set_at(1), key=repr)
    oracle = VirtualGraphOracle(graph, virtual, default_hop_bound(120))
    return graph, virtual, oracle


class TestHopBound:
    def test_capped_at_n(self):
        assert default_hop_bound(10) <= 10

    def test_grows_with_n(self):
        assert default_hop_bound(10000) > default_hop_bound(100)

    def test_rejects_bad_n(self):
        with pytest.raises(InputError):
            default_hop_bound(0)


class TestOracle:
    def test_edge_row_excludes_self(self, setup):
        _, virtual, oracle = setup
        row = oracle.edge_row(virtual[0])
        assert virtual[0] not in row

    def test_edge_row_targets_virtual_only(self, setup):
        _, virtual, oracle = setup
        row = oracle.edge_row(virtual[0])
        assert set(row) <= set(virtual)

    def test_row_distances_lower_bounded_by_true(self, setup):
        graph, virtual, oracle = setup
        exact, _ = dijkstra(graph, [virtual[0]])
        for u, d in oracle.edge_row(virtual[0]).items():
            assert d >= exact[u] - 1e-12

    def test_full_hop_bound_gives_exact_distances(self, setup):
        graph, virtual, _ = setup
        oracle = VirtualGraphOracle(graph, virtual, graph.number_of_nodes())
        exact, _ = dijkstra(graph, [virtual[0]])
        for u, d in oracle.edge_row(virtual[0]).items():
            assert d == pytest.approx(exact[u])

    def test_rows_are_cached(self, setup):
        _, virtual, oracle = setup
        before = oracle.edges_computed
        oracle.edge_row(virtual[0])
        after_first = oracle.edges_computed
        oracle.edge_row(virtual[0])
        assert oracle.edges_computed == after_first
        assert after_first >= before

    def test_non_virtual_row_rejected(self, setup):
        graph, virtual, oracle = setup
        outsider = next(v for v in graph.nodes if v not in set(virtual))
        with pytest.raises(InputError):
            oracle.edge_row(outsider)

    def test_bounded_distance_symmetric_enough(self, setup):
        _, virtual, oracle = setup
        a, b = virtual[0], virtual[1]
        assert oracle.bounded_distance(a, b) == pytest.approx(
            oracle.bounded_distance(b, a)
        )

    def test_relax_reaches_graph_vertices(self, setup):
        graph, virtual, oracle = setup
        dist, parent = oracle.relax_virtual_edges({virtual[0]: 0.0})
        assert len(dist) > len(virtual)
        for v, p in parent.items():
            if p is not None:
                assert graph.has_edge(v, p)

    def test_materialize_is_metric_consistent(self, setup):
        graph, virtual, oracle = setup
        g_virtual = oracle.materialize()
        exact, _ = dijkstra(graph, [virtual[0]])
        for u in g_virtual.neighbors(virtual[0]):
            assert g_virtual[virtual[0]][u]["weight"] >= exact[u] - 1e-12


class TestClaim7:
    def test_holds_with_generous_bound(self, setup):
        graph, virtual, _ = setup
        # With B = n the claim is vacuous (no path has >= n hops).
        assert verify_claim7(graph, virtual, graph.number_of_nodes(), sample_sources=4)

    def test_violation_detected_with_tiny_bound(self):
        # A path graph with a single virtual vertex at one end must violate
        # Claim 7 for small B: long shortest paths avoid the virtual set.
        import networkx as nx

        g = nx.path_graph(30)
        for u, v in g.edges:
            g[u][v]["weight"] = 1.0
        assert not verify_claim7(g, [0], 3, sample_sources=4)
