"""End-to-end tests of the distributed tree-routing scheme (Theorem 2)."""

import math
import random

import pytest

from repro.congest import Network
from repro.errors import InputError
from repro.graphs import (
    caterpillar_tree,
    random_connected_graph,
    spanning_tree_of,
    tree_distance,
)
from repro.routing import route_in_tree
from repro.treerouting import build_distributed_tree_scheme
from repro.tz import build_tree_scheme


@pytest.fixture(scope="module")
def built():
    graph = random_connected_graph(220, seed=101)
    tree = spanning_tree_of(graph, style="dfs", seed=101)
    net = Network(graph)
    build = build_distributed_tree_scheme(net, tree, seed=11)
    return graph, tree, net, build


class TestEquivalenceWithCentralized:
    def test_tables_identical(self, built):
        _, tree, _, build = built
        assert build.scheme.tables == build_tree_scheme(tree).tables

    def test_labels_identical(self, built):
        _, tree, _, build = built
        assert build.scheme.labels == build_tree_scheme(tree).labels


class TestTheorem2Claims:
    def test_table_size_constant(self, built):
        _, _, _, build = built
        assert build.scheme.max_table_words() <= 5

    def test_label_size_logarithmic(self, built):
        _, tree, _, build = built
        assert build.scheme.max_label_words() <= 1 + 2 * math.log2(len(tree))

    def test_memory_logarithmic(self, built):
        _, tree, _, build = built
        assert build.max_memory_words <= 12 * math.log2(len(tree)) + 40

    def test_routing_exact(self, built):
        graph, tree, _, build = built
        weight = lambda u, v: graph[u][v]["weight"]
        rng = random.Random(3)
        for _ in range(120):
            u, v = rng.sample(list(tree), 2)
            result = route_in_tree(build.scheme, u, v, weight_of=weight)
            assert result.length == pytest.approx(
                tree_distance(tree, weight, u, v)
            )

    def test_root_distance_passthrough(self, built):
        graph, tree, _, _ = built
        net = Network(graph)
        build = build_distributed_tree_scheme(
            net, tree, seed=11, root_distance=lambda v: 7.0
        )
        assert all(t.root_distance == 7.0 for t in build.scheme.tables.values())


class TestRobustness:
    def test_non_spanning_subtree(self):
        graph = random_connected_graph(100, seed=102)
        # take the BFS tree of a vertex-induced connected subgraph
        from repro.graphs import subtree_parent_map
        import networkx as nx

        nodes = sorted(graph.nodes)
        sub_nodes = set()
        for comp_seed in nodes:
            candidate = set(nx.bfs_tree(graph, comp_seed, depth_limit=4).nodes)
            if len(candidate) >= 30:
                sub_nodes = candidate
                break
        root = sorted(sub_nodes)[0]
        tree = subtree_parent_map(graph, sub_nodes, root)
        net = Network(graph)
        build = build_distributed_tree_scheme(net, tree, seed=1)
        assert set(build.scheme.tables) == sub_nodes

    def test_tree_edge_not_in_graph_rejected(self):
        graph = random_connected_graph(30, seed=103)
        nodes = sorted(graph.nodes)
        bogus = {nodes[0]: None}
        for v in nodes[1:]:
            bogus[v] = nodes[0]  # star: mostly non-edges
        net = Network(graph)
        with pytest.raises(InputError):
            build_distributed_tree_scheme(net, bogus, seed=1)

    def test_path_tree_network(self):
        # The whole network *is* a deep caterpillar: D itself is large, the
        # construction must still terminate and be exact.
        graph = caterpillar_tree(40, legs_per_vertex=1, seed=5)
        tree = spanning_tree_of(graph, style="bfs", seed=5)
        net = Network(graph)
        build = build_distributed_tree_scheme(net, tree, seed=2)
        weight = lambda u, v: graph[u][v]["weight"]
        rng = random.Random(0)
        for _ in range(40):
            u, v = rng.sample(list(tree), 2)
            result = route_in_tree(build.scheme, u, v, weight_of=weight)
            assert result.length == pytest.approx(tree_distance(tree, weight, u, v))

    def test_q_one_degenerate_partition(self):
        graph = random_connected_graph(60, seed=104)
        tree = spanning_tree_of(graph, style="dfs", seed=104)
        net = Network(graph)
        build = build_distributed_tree_scheme(net, tree, q=1.0, seed=1)
        assert build.scheme.tables == build_tree_scheme(tree).tables

    def test_tiny_tree(self):
        graph = random_connected_graph(5, seed=105)
        tree = spanning_tree_of(graph, style="bfs", seed=105)
        net = Network(graph)
        build = build_distributed_tree_scheme(net, tree, seed=1)
        assert build.scheme.tables == build_tree_scheme(tree).tables

    def test_different_seeds_same_artifacts(self):
        # The sampled partition differs, the OUTPUT must not.
        graph = random_connected_graph(120, seed=106)
        tree = spanning_tree_of(graph, style="dfs", seed=106)
        a = build_distributed_tree_scheme(Network(graph), tree, seed=1)
        b = build_distributed_tree_scheme(Network(graph), tree, seed=2)
        assert a.scheme.tables == b.scheme.tables
        assert a.scheme.labels == b.scheme.labels
        assert a.partition.ut != b.partition.ut or len(tree) < 40
