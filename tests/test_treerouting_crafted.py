"""Closed-form tests of the distributed tree routing on crafted shapes.

Random trees exercise breadth; these shapes pin exact expected values:

* **path**: every internal vertex has one (heavy) child -> no light edges,
  DFS intervals are suffix ranges;
* **star**: the hub's interval is (1, n) and every leaf is a singleton;
  exactly one child is heavy, the rest appear as light edges;
* **perfect binary tree**: the light-edge count of a leaf equals its depth
  minus the number of heavy turns, and sizes follow 2^h - 1;
* **broom** (path + leaf bundle at the end): combines both regimes.

All of them run through the *distributed* pipeline on a network that
contains the tree (plus chords so D stays small), and are checked against
closed forms, not just against the centralized implementation.
"""

import networkx as nx
import pytest

from repro.congest import Network
from repro.routing import route_in_tree
from repro.treerouting import build_distributed_tree_scheme


def network_with_chords(tree_edges, n):
    """The tree plus a few chords to keep the hop-diameter small."""
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for a, b in tree_edges:
        g.add_edge(a, b, weight=1.0)
    hub = 0
    for v in range(1, n, max(2, n // 8)):
        if not g.has_edge(hub, v):
            g.add_edge(hub, v, weight=1.0)
    return g


def build(tree_parent, n):
    edges = [(v, p) for v, p in tree_parent.items() if p is not None]
    net = Network(network_with_chords(edges, n))
    return build_distributed_tree_scheme(net, tree_parent, seed=3)


class TestPath:
    N = 33

    @pytest.fixture(scope="class")
    def scheme(self):
        parent = {0: None}
        for v in range(1, self.N):
            parent[v] = v - 1
        return build(parent, self.N).scheme

    def test_no_light_edges_anywhere(self, scheme):
        assert all(not l.light_edges for l in scheme.labels.values())

    def test_intervals_are_suffixes(self, scheme):
        for v in range(self.N):
            assert scheme.tables[v].enter == v + 1
            assert scheme.tables[v].exit_ == self.N

    def test_heavy_chain(self, scheme):
        for v in range(self.N - 1):
            assert scheme.tables[v].heavy == v + 1
        assert scheme.tables[self.N - 1].heavy is None

    def test_route_end_to_end(self, scheme):
        result = route_in_tree(scheme, 0, self.N - 1)
        assert result.hops == self.N - 1


class TestStar:
    N = 26

    @pytest.fixture(scope="class")
    def scheme(self):
        parent = {0: None}
        for v in range(1, self.N):
            parent[v] = 0
        return build(parent, self.N).scheme

    def test_hub_interval(self, scheme):
        assert (scheme.tables[0].enter, scheme.tables[0].exit_) == (1, self.N)

    def test_leaves_are_singletons(self, scheme):
        for v in range(1, self.N):
            t = scheme.tables[v]
            assert t.exit_ == t.enter

    def test_exactly_one_heavy_leaf(self, scheme):
        heavy = scheme.tables[0].heavy
        light_children = {
            edge[1] for label in scheme.labels.values() for edge in label.light_edges
        }
        assert heavy not in light_children
        assert light_children == set(range(1, self.N)) - {heavy}

    def test_leaf_labels_have_one_light_edge(self, scheme):
        heavy = scheme.tables[0].heavy
        for v in range(1, self.N):
            expected = 0 if v == heavy else 1
            assert len(scheme.labels[v].light_edges) == expected

    def test_leaf_to_leaf_route(self, scheme):
        result = route_in_tree(scheme, 1, self.N - 1)
        assert result.hops == 2
        assert result.path[1] == 0


class TestPerfectBinaryTree:
    DEPTH = 4  # 31 vertices

    @pytest.fixture(scope="class")
    def scheme(self):
        n = 2 ** (self.DEPTH + 1) - 1
        parent = {0: None}
        for v in range(1, n):
            parent[v] = (v - 1) // 2
        return build(parent, n).scheme

    def test_subtree_sizes_follow_powers(self, scheme):
        n = 2 ** (self.DEPTH + 1) - 1
        for v in range(n):
            depth = v.bit_length() - (0 if v else 0)
            # depth of vertex v in heap numbering:
            d = (v + 1).bit_length() - 1
            size = 2 ** (self.DEPTH - d + 1) - 1
            t = scheme.tables[v]
            assert t.exit_ - t.enter + 1 == size

    def test_light_edges_bounded_by_depth(self, scheme):
        n = 2 ** (self.DEPTH + 1) - 1
        for v in range(n):
            d = (v + 1).bit_length() - 1
            assert len(scheme.labels[v].light_edges) <= d

    def test_sibling_route_goes_through_parent(self, scheme):
        result = route_in_tree(scheme, 3, 4)
        assert result.path == [3, 1, 4]


class TestBroom:
    HANDLE = 16
    BRISTLES = 10

    @pytest.fixture(scope="class")
    def scheme(self):
        n = self.HANDLE + self.BRISTLES
        parent = {0: None}
        for v in range(1, self.HANDLE):
            parent[v] = v - 1
        for b in range(self.BRISTLES):
            parent[self.HANDLE + b] = self.HANDLE - 1
        return build(parent, n).scheme

    def test_handle_has_no_light_edges(self, scheme):
        # Every handle vertex's subtree is the entire remainder: heavy chain.
        for v in range(self.HANDLE):
            assert scheme.labels[v].light_edges == ()

    def test_bristles_have_one_light_edge_except_heavy(self, scheme):
        tip = self.HANDLE - 1
        heavy = scheme.tables[tip].heavy
        for b in range(self.BRISTLES):
            v = self.HANDLE + b
            expected = 0 if v == heavy else 1
            assert len(scheme.labels[v].light_edges) == expected

    def test_bristle_to_bristle(self, scheme):
        a, b = self.HANDLE, self.HANDLE + self.BRISTLES - 1
        result = route_in_tree(scheme, a, b)
        assert result.hops == 2

    def test_root_to_bristle_runs_whole_handle(self, scheme):
        result = route_in_tree(scheme, 0, self.HANDLE + 1)
        assert result.hops == self.HANDLE
