"""Integration tests: the full pipeline across graph families, plus the
paper's headline memory comparisons (Tables 1-2 shape assertions)."""

import math
import random

import pytest

from repro.baselines import build_en16_tree_scheme
from repro.congest import Network
from repro.core import build_distributed_scheme
from repro.graphs import (
    grid_graph,
    random_connected_graph,
    ring_of_cliques,
    spanning_tree_of,
    tree_distance,
)
from repro.routing import measure_stretch, route_in_graph, route_in_tree, sample_pairs
from repro.treerouting import build_distributed_tree_scheme


class TestTreeRoutingAcrossFamilies:
    @pytest.mark.parametrize("family,kwargs", [
        ("random", {"n": 300}),
        ("grid", {"rows": 15, "cols": 15}),
        ("cliques", {"cliques": 8, "clique_size": 12}),
    ])
    def test_exact_and_low_memory(self, family, kwargs):
        if family == "random":
            graph = random_connected_graph(kwargs["n"], seed=161)
        elif family == "grid":
            graph = grid_graph(kwargs["rows"], kwargs["cols"], seed=161)
        else:
            graph = ring_of_cliques(kwargs["cliques"], kwargs["clique_size"], seed=161)
        n = graph.number_of_nodes()
        tree = spanning_tree_of(graph, style="dfs", seed=161)
        net = Network(graph)
        build = build_distributed_tree_scheme(net, tree, seed=12)

        weight = lambda u, v: graph[u][v]["weight"]
        rng = random.Random(4)
        for _ in range(60):
            u, v = rng.sample(list(tree), 2)
            result = route_in_tree(build.scheme, u, v, weight_of=weight)
            assert result.length == pytest.approx(tree_distance(tree, weight, u, v))
        assert build.max_memory_words <= 12 * math.log2(n) + 40
        assert build.scheme.max_table_words() <= 5


class TestTable2Shape:
    """The Table-2 claims as inequalities between the two implementations."""

    @pytest.fixture(scope="class")
    def both(self):
        graph = random_connected_graph(500, seed=162)
        tree = spanning_tree_of(graph, style="dfs", seed=162)
        ours = build_distributed_tree_scheme(Network(graph), tree, seed=13)
        base = build_en16_tree_scheme(Network(graph), tree, seed=13)
        return graph, ours, base

    def test_memory_strictly_smaller(self, both):
        _, ours, base = both
        assert ours.max_memory_words < base.max_memory_words

    def test_table_strictly_smaller(self, both):
        _, ours, base = both
        assert ours.scheme.max_table_words() < base.scheme.max_table_words()

    def test_label_no_larger(self, both):
        _, ours, base = both
        assert ours.scheme.max_label_words() <= base.scheme.max_label_words()

    def test_memory_gap_grows_with_n(self):
        gaps = []
        for n in (200, 800):
            graph = random_connected_graph(n, seed=163)
            tree = spanning_tree_of(graph, style="dfs", seed=163)
            ours = build_distributed_tree_scheme(Network(graph), tree, seed=1)
            base = build_en16_tree_scheme(Network(graph), tree, seed=1)
            gaps.append(base.max_memory_words / ours.max_memory_words)
        assert gaps[1] > gaps[0]


class TestGeneralSchemeEndToEnd:
    @pytest.fixture(scope="class")
    def built(self):
        graph = random_connected_graph(180, seed=164)
        report = build_distributed_scheme(graph, 3, seed=14)
        return graph, report

    def test_stretch_bound(self, built):
        graph, report = built
        stretch = measure_stretch(
            report.scheme, graph, sample_pairs(list(graph.nodes), 200, seed=15)
        )
        assert stretch.max_stretch <= 4 * 3 - 3 + 1e-9

    def test_memory_beats_sqrt_n_based_approaches(self, built):
        graph, report = built
        n = graph.number_of_nodes()
        # The claim is relative: memory within polylog of the table size,
        # i.e. no sqrt(n) * table_size blowup.
        assert report.max_memory_words < math.sqrt(n) * report.scheme.max_table_words()

    def test_all_sampled_routes_deliver(self, built):
        graph, report = built
        rng = random.Random(5)
        nodes = sorted(graph.nodes)
        for _ in range(60):
            u, v = rng.sample(nodes, 2)
            result = route_in_graph(report.scheme, graph, u, v)
            assert result.path[-1] == v
            # each hop is a real edge
            for a, b in zip(result.path, result.path[1:]):
                assert graph.has_edge(a, b)

    def test_forwarding_is_table_local(self, built):
        """Every forwarding decision uses only (own table, header): verify
        by replaying a route purely from the artifacts."""
        graph, report = built
        from repro.routing.tree_router import tree_forward

        nodes = sorted(graph.nodes)
        u, v = nodes[2], nodes[-3]
        result = route_in_graph(report.scheme, graph, u, v)
        # Find the tree the source committed to and replay.
        label = report.scheme.labels[v]
        tree_id = None
        for entry in label.entries:
            if entry and report.scheme.tables[u].has_tree(entry[0]):
                tree_id = entry[0]
                tree_label = entry[2]
                break
        assert tree_id is not None
        at, replay = u, [u]
        for _ in range(4 * len(nodes)):
            nxt = tree_forward(at, report.scheme.tables[at].trees[tree_id], tree_label)
            if nxt is None:
                break
            at = nxt
            replay.append(at)
        assert replay == result.path
