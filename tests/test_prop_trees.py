"""Property-based tests (hypothesis) for the tree machinery.

Random rooted trees are generated from Prüfer-like parent arrays: vertex i
(i >= 1) gets a parent drawn from [0, i), which yields every labelled rooted
tree shape with positive probability.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.graphs import (
    children_map,
    depths,
    dfs_intervals,
    heavy_children,
    light_edge_lists,
    postorder,
    subtree_sizes,
    tree_path,
    tree_root,
)
from repro.graphs.validation import assert_laminar_intervals


@st.composite
def parent_maps(draw, min_size=2, max_size=60):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    parent = {0: None}
    for v in range(1, n):
        parent[v] = draw(st.integers(min_value=0, max_value=v - 1))
    return parent


@given(parent_maps())
@settings(max_examples=60, deadline=None)
def test_subtree_sizes_sum_identity(parent):
    sizes = subtree_sizes(parent)
    children = children_map(parent)
    for v, kids in children.items():
        assert sizes[v] == 1 + sum(sizes[c] for c in kids)


@given(parent_maps())
@settings(max_examples=60, deadline=None)
def test_dfs_intervals_are_laminar_and_tight(parent):
    intervals = dfs_intervals(parent)
    sizes = subtree_sizes(parent)
    assert_laminar_intervals(intervals)
    for v, (enter, exit_) in intervals.items():
        assert exit_ - enter + 1 == sizes[v]
    enters = sorted(e for e, _ in intervals.values())
    assert enters == list(range(1, len(parent) + 1))


@given(parent_maps())
@settings(max_examples=60, deadline=None)
def test_interval_containment_iff_ancestry(parent):
    intervals = dfs_intervals(parent)
    depth = depths(parent)
    root = tree_root(parent)
    for v in parent:
        path = set(tree_path(parent, root, v))
        ve, _ = intervals[v]
        for u in parent:
            ue, ux = intervals[u]
            contained = ue <= ve <= ux
            assert contained == (u in path)


@given(parent_maps())
@settings(max_examples=60, deadline=None)
def test_light_edges_at_most_log2_n(parent):
    lists = light_edge_lists(parent)
    bound = math.log2(len(parent))
    for edges in lists.values():
        assert len(edges) <= bound


@given(parent_maps())
@settings(max_examples=60, deadline=None)
def test_non_heavy_subtree_at_most_half(parent):
    # The defining property behind the log n bound: a non-heavy child's
    # subtree has at most half the vertices of its parent's subtree.
    sizes = subtree_sizes(parent)
    heavy = heavy_children(parent)
    children = children_map(parent)
    for v, kids in children.items():
        for c in kids:
            if c != heavy[v]:
                assert sizes[c] <= sizes[v] / 2


@given(parent_maps())
@settings(max_examples=60, deadline=None)
def test_postorder_is_a_permutation(parent):
    order = postorder(parent)
    assert sorted(order) == sorted(parent)


@given(parent_maps(), st.data())
@settings(max_examples=60, deadline=None)
def test_tree_path_is_simple_and_connects(parent, data):
    nodes = sorted(parent)
    u = data.draw(st.sampled_from(nodes))
    v = data.draw(st.sampled_from(nodes))
    path = tree_path(parent, u, v)
    assert path[0] == u and path[-1] == v
    assert len(set(path)) == len(path)
    for a, b in zip(path, path[1:]):
        assert parent[a] == b or parent[b] == a
