"""Property-based tests for the distance oracle and the protocol runner."""

from hypothesis import given, settings, strategies as st

from repro.congest import FloodMax, Network, run_protocol
from repro.graphs import dijkstra, random_connected_graph
from repro.tz import build_distance_oracle, theoretical_stretch

oracle_cases = st.tuples(
    st.integers(min_value=12, max_value=60),
    st.integers(min_value=0, max_value=10 ** 6),
    st.integers(min_value=1, max_value=4),
)


@given(oracle_cases)
@settings(max_examples=20, deadline=None)
def test_oracle_sandwich_property(case):
    n, seed, k = case
    graph = random_connected_graph(n, seed=seed)
    oracle = build_distance_oracle(graph, k, seed=seed)
    nodes = sorted(graph.nodes, key=repr)
    u = nodes[0]
    exact, _ = dijkstra(graph, [u])
    for v in nodes[1:8]:
        est = oracle.query(u, v)
        assert exact[v] - 1e-9 <= est <= theoretical_stretch(k) * exact[v] + 1e-9


@given(oracle_cases)
@settings(max_examples=20, deadline=None)
def test_oracle_self_queries_zero(case):
    n, seed, k = case
    graph = random_connected_graph(n, seed=seed)
    oracle = build_distance_oracle(graph, k, seed=seed)
    for v in sorted(graph.nodes, key=repr)[:5]:
        assert oracle.query(v, v) == 0.0


@given(oracle_cases)
@settings(max_examples=15, deadline=None)
def test_oracle_storage_within_bunch_plus_pivots(case):
    n, seed, k = case
    graph = random_connected_graph(n, seed=seed)
    oracle = build_distance_oracle(graph, k, seed=seed)
    for v in graph.nodes:
        assert oracle.storage_words(v) == 2 * k + 2 * len(oracle.bunch[v])


@given(st.tuples(
    st.integers(min_value=8, max_value=40),
    st.integers(min_value=0, max_value=10 ** 6),
))
@settings(max_examples=15, deadline=None)
def test_floodmax_consensus_property(case):
    n, seed = case
    graph = random_connected_graph(n, seed=seed)
    net = Network(graph)
    bound = net.hop_diameter_upper_bound() + 1
    result = run_protocol(net, lambda v: FloodMax(bound))
    assert result.halted
    leaders = {p.leader for p in result.programs.values()}
    assert leaders == {max(graph.nodes, key=repr)}
