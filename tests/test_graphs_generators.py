"""Unit tests for workload generators."""

import networkx as nx
import pytest

from repro.errors import InputError
from repro.graphs import (
    caterpillar_tree,
    grid_graph,
    random_connected_graph,
    random_tree_network,
    ring_of_cliques,
    spanning_tree_of,
    subtree_parent_map,
    tree_root,
)
from repro.graphs.validation import require_tree_in_graph, require_weighted_connected


class TestRandomConnected:
    def test_connected(self):
        g = random_connected_graph(100, seed=1)
        assert nx.is_connected(g)

    def test_weighted(self):
        g = random_connected_graph(50, seed=1)
        assert all("weight" in d for _, _, d in g.edges(data=True))

    def test_deterministic(self):
        a = random_connected_graph(50, seed=7)
        b = random_connected_graph(50, seed=7)
        assert sorted(a.edges) == sorted(b.edges)

    def test_seed_changes_graph(self):
        a = random_connected_graph(50, seed=7)
        b = random_connected_graph(50, seed=8)
        assert sorted(a.edges) != sorted(b.edges)

    def test_rejects_tiny_n(self):
        with pytest.raises(InputError):
            random_connected_graph(1)

    def test_weight_range_respected(self):
        g = random_connected_graph(50, seed=2, weight_range=(5.0, 6.0))
        for _, _, d in g.edges(data=True):
            assert 5.0 <= d["weight"] <= 6.0


class TestOtherFamilies:
    def test_grid_size(self):
        assert grid_graph(4, 5).number_of_nodes() == 20

    def test_grid_connected_weighted(self):
        require_weighted_connected(grid_graph(6, 6, seed=1))

    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 5, seed=1)
        assert g.number_of_nodes() == 20
        require_weighted_connected(g)

    def test_ring_of_cliques_validates(self):
        with pytest.raises(InputError):
            ring_of_cliques(2, 5)

    def test_random_tree_is_tree(self):
        g = random_tree_network(40, seed=3)
        assert nx.is_tree(g)

    def test_caterpillar_structure(self):
        g = caterpillar_tree(10, legs_per_vertex=2, seed=1)
        assert nx.is_tree(g)
        assert g.number_of_nodes() == 10 + 20

    def test_caterpillar_validates(self):
        with pytest.raises(InputError):
            caterpillar_tree(1)


class TestSpanningTrees:
    @pytest.mark.parametrize("style", ["shortest-path", "bfs", "dfs", "random"])
    def test_is_spanning_tree_of_graph(self, style):
        g = random_connected_graph(80, seed=4)
        parent = spanning_tree_of(g, style=style, seed=4)
        assert set(parent) == set(g.nodes)
        require_tree_in_graph(g, parent)

    def test_unknown_style_raises(self):
        g = random_connected_graph(20, seed=0)
        with pytest.raises(InputError):
            spanning_tree_of(g, style="bogus")

    def test_dfs_is_deeper_than_bfs(self):
        from repro.graphs import depths

        g = random_connected_graph(200, seed=5)
        dfs = spanning_tree_of(g, style="dfs", seed=5)
        bfs = spanning_tree_of(g, style="bfs", seed=5)
        assert max(depths(dfs).values()) > max(depths(bfs).values())

    def test_explicit_root(self):
        g = random_connected_graph(30, seed=6)
        root = sorted(g.nodes)[5]
        parent = spanning_tree_of(g, style="bfs", root=root)
        assert tree_root(parent) == root

    def test_subtree_parent_map(self):
        g = grid_graph(4, 4, seed=0)
        vertices = [0, 1, 2, 4, 5]
        parent = subtree_parent_map(g, vertices, root=0)
        assert set(parent) == set(vertices)
        require_tree_in_graph(g, parent)

    def test_subtree_disconnected_raises(self):
        g = grid_graph(4, 4, seed=0)
        with pytest.raises(InputError):
            subtree_parent_map(g, [0, 15], root=0)
