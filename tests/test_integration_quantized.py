"""End-to-end pipeline in the *standard* CONGEST model: quantize weights to
powers of 1+ε (so messages fit O(log n) bits), then build and route with
both the tree scheme and the general scheme.  The realized stretch against
the ORIGINAL metric may grow by at most the quantization factor 1+ε."""

import random

import pytest

from repro.congest import Network
from repro.core import build_distributed_scheme
from repro.graphs import (
    assign_log_uniform_weights,
    dijkstra,
    quantize_weights,
    random_connected_graph,
    spanning_tree_of,
    tree_distance,
)
from repro.routing import measure_stretch, route_in_graph, route_in_tree, sample_pairs
from repro.treerouting import build_distributed_tree_scheme

EPS = 0.1


@pytest.fixture(scope="module")
def graphs():
    base = random_connected_graph(150, seed=291)
    original = assign_log_uniform_weights(base, 1.0, 10 ** 4, seed=291)
    return original, quantize_weights(original, EPS)


class TestQuantizedTreeRouting:
    def test_exact_in_quantized_metric(self, graphs):
        original, quantized = graphs
        tree = spanning_tree_of(quantized, style="dfs", seed=29)
        build = build_distributed_tree_scheme(Network(quantized), tree, seed=29)
        weight = lambda u, v: quantized[u][v]["weight"]
        rng = random.Random(1)
        for _ in range(40):
            u, v = rng.sample(list(tree), 2)
            result = route_in_tree(build.scheme, u, v, weight_of=weight)
            assert result.length == pytest.approx(
                tree_distance(tree, weight, u, v)
            )

    def test_original_metric_loss_bounded(self, graphs):
        original, quantized = graphs
        tree = spanning_tree_of(quantized, style="dfs", seed=29)
        build = build_distributed_tree_scheme(Network(quantized), tree, seed=29)
        w_orig = lambda u, v: original[u][v]["weight"]
        rng = random.Random(2)
        for _ in range(30):
            u, v = rng.sample(list(tree), 2)
            routed = route_in_tree(build.scheme, u, v, weight_of=w_orig)
            exact_tree = tree_distance(tree, w_orig, u, v)
            # Same tree path either way: quantization cannot change routes.
            assert routed.length == pytest.approx(exact_tree)


class TestQuantizedGeneralScheme:
    def test_stretch_bound_with_quantization_slack(self, graphs):
        original, quantized = graphs
        k = 2
        report = build_distributed_scheme(quantized, k, seed=29)
        pairs = sample_pairs(list(quantized.nodes), 80, seed=30)
        # Stretch in the quantized metric obeys 4k-3; against the original
        # metric the bound inflates by at most (1 + EPS).
        in_quantized = measure_stretch(report.scheme, quantized, pairs)
        assert in_quantized.max_stretch <= 4 * k - 3 + 1e-9

        worst = 0.0
        by_source = {}
        for u, v in pairs:
            by_source.setdefault(u, []).append(v)
        for u, targets in by_source.items():
            exact, _ = dijkstra(original, [u])
            for v in targets:
                result = route_in_graph(report.scheme, quantized, u, v)
                length = sum(
                    original[a][b]["weight"]
                    for a, b in zip(result.path, result.path[1:])
                )
                worst = max(worst, length / exact[v])
        assert worst <= (4 * k - 3) * (1 + EPS) + 1e-9

    def test_report_phase_rounds_cover_pipeline(self, graphs):
        _, quantized = graphs
        report = build_distributed_scheme(quantized, 2, seed=29)
        phases = set(report.phase_rounds)
        assert any(p.startswith("low-levels") for p in phases)
        assert any(p.startswith("stage1") for p in phases)
        assert any("broadcast" in p for p in phases)

    def test_summary_mentions_key_numbers(self, graphs):
        _, quantized = graphs
        report = build_distributed_scheme(quantized, 2, seed=29)
        text = report.summary()
        assert f"n={quantized.number_of_nodes()}" in text
        assert "mem(max)=" in text and "table(max)=" in text
