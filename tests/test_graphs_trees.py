"""Unit tests for rooted-tree utilities (the TZ tree-routing ingredients)."""

import math

import pytest

from repro.errors import InputError
from repro.graphs import (
    children_map,
    depths,
    dfs_intervals,
    heavy_children,
    light_edge_lists,
    postorder,
    random_connected_graph,
    spanning_tree_of,
    subtree_sizes,
    tree_distance,
    tree_path,
    tree_root,
)
from repro.graphs.validation import assert_laminar_intervals


@pytest.fixture(scope="module")
def tree():
    g = random_connected_graph(120, seed=8)
    return spanning_tree_of(g, style="dfs", seed=8)


class TestBasics:
    def test_tree_root_unique(self, tree):
        root = tree_root(tree)
        assert tree[root] is None

    def test_no_root_raises(self):
        with pytest.raises(InputError):
            tree_root({1: 2, 2: 1})

    def test_two_roots_raise(self):
        with pytest.raises(InputError):
            tree_root({1: None, 2: None})

    def test_children_map_inverse_of_parent(self, tree):
        children = children_map(tree)
        for v, kids in children.items():
            for c in kids:
                assert tree[c] == v

    def test_postorder_children_before_parents(self, tree):
        order = postorder(tree)
        position = {v: i for i, v in enumerate(order)}
        for v, p in tree.items():
            if p is not None:
                assert position[v] < position[p]

    def test_depths_root_zero(self, tree):
        assert depths(tree)[tree_root(tree)] == 0


class TestSubtreeSizes:
    def test_root_size_is_n(self, tree):
        sizes = subtree_sizes(tree)
        assert sizes[tree_root(tree)] == len(tree)

    def test_leaves_have_size_one(self, tree):
        children = children_map(tree)
        sizes = subtree_sizes(tree)
        for v, kids in children.items():
            if not kids:
                assert sizes[v] == 1

    def test_parent_size_is_one_plus_children(self, tree):
        children = children_map(tree)
        sizes = subtree_sizes(tree)
        for v, kids in children.items():
            assert sizes[v] == 1 + sum(sizes[c] for c in kids)


class TestHeavyChildren:
    def test_heavy_child_is_a_child(self, tree):
        children = children_map(tree)
        heavy = heavy_children(tree)
        for v, h in heavy.items():
            if h is not None:
                assert h in children[v]

    def test_heavy_child_maximizes_size(self, tree):
        children = children_map(tree)
        sizes = subtree_sizes(tree)
        heavy = heavy_children(tree)
        for v, h in heavy.items():
            if h is not None:
                assert sizes[h] == max(sizes[c] for c in children[v])

    def test_leaves_have_no_heavy_child(self, tree):
        children = children_map(tree)
        heavy = heavy_children(tree)
        for v, kids in children.items():
            if not kids:
                assert heavy[v] is None


class TestLightEdges:
    def test_at_most_log_n(self, tree):
        lists = light_edge_lists(tree)
        bound = math.log2(len(tree))
        assert all(len(edges) <= bound for edges in lists.values())

    def test_root_has_empty_list(self, tree):
        assert light_edge_lists(tree)[tree_root(tree)] == []

    def test_edges_lie_on_root_path(self, tree):
        lists = light_edge_lists(tree)
        root = tree_root(tree)
        for y, edges in lists.items():
            path = tree_path(tree, root, y)
            path_edges = set(zip(path, path[1:]))
            for e in edges:
                assert e in path_edges

    def test_light_edges_are_non_heavy(self, tree):
        heavy = heavy_children(tree)
        lists = light_edge_lists(tree)
        for edges in lists.values():
            for (u, v) in edges:
                assert heavy[u] != v

    def test_heavy_path_vertices_share_list(self, tree):
        heavy = heavy_children(tree)
        lists = light_edge_lists(tree)
        for v, h in heavy.items():
            if h is not None:
                assert lists[h] == lists[v]


class TestDfsIntervals:
    def test_interval_width_equals_subtree_size(self, tree):
        sizes = subtree_sizes(tree)
        intervals = dfs_intervals(tree)
        for v, (enter, exit_) in intervals.items():
            assert exit_ - enter + 1 == sizes[v]

    def test_root_interval_covers_everything(self, tree):
        intervals = dfs_intervals(tree)
        assert intervals[tree_root(tree)] == (1, len(tree))

    def test_entries_unique(self, tree):
        intervals = dfs_intervals(tree)
        enters = [e for e, _ in intervals.values()]
        assert len(set(enters)) == len(enters)

    def test_laminar(self, tree):
        assert_laminar_intervals(dfs_intervals(tree))

    def test_child_inside_parent(self, tree):
        intervals = dfs_intervals(tree)
        for v, p in tree.items():
            if p is not None:
                pe, px = intervals[p]
                ce, cx = intervals[v]
                assert pe < ce and cx <= px

    def test_descendant_test_via_interval(self, tree):
        intervals = dfs_intervals(tree)
        root = tree_root(tree)
        # every vertex on a root path is an ancestor of the endpoint
        deepest = max(depths(tree), key=lambda v: (depths(tree)[v], repr(v)))
        path = tree_path(tree, root, deepest)
        de, _ = intervals[deepest]
        for anc in path:
            ae, ax = intervals[anc]
            assert ae <= de <= ax


class TestTreePaths:
    def test_path_endpoints(self, tree):
        nodes = sorted(tree)
        path = tree_path(tree, nodes[3], nodes[40])
        assert path[0] == nodes[3] and path[-1] == nodes[40]

    def test_path_edges_in_tree(self, tree):
        nodes = sorted(tree)
        path = tree_path(tree, nodes[5], nodes[17])
        for a, b in zip(path, path[1:]):
            assert tree[a] == b or tree[b] == a

    def test_path_to_self(self, tree):
        v = sorted(tree)[0]
        assert tree_path(tree, v, v) == [v]

    def test_tree_distance_symmetry(self, tree):
        nodes = sorted(tree)
        w = lambda a, b: 1.0
        assert tree_distance(tree, w, nodes[2], nodes[9]) == tree_distance(
            tree, w, nodes[9], nodes[2]
        )
