"""Stage-by-stage tests of the distributed tree routing against the
centralized reference (Section 3 + Appendix A)."""

import math

import pytest

from repro.congest import Network, build_bfs_tree
from repro.graphs import (
    dfs_intervals,
    heavy_children,
    light_edge_lists,
    random_connected_graph,
    spanning_tree_of,
    subtree_sizes,
)
from repro.treerouting import (
    partition_tree,
    run_stage0,
    run_stage1,
    run_stage2,
    run_stage3,
)


@pytest.fixture(scope="module", params=["dfs", "random", "shortest-path"])
def pipeline(request):
    graph = random_connected_graph(180, seed=91)
    tree = spanning_tree_of(graph, style=request.param, seed=91)
    net = Network(graph)
    bfs = build_bfs_tree(net)
    part = partition_tree(tree, seed=9)
    info = run_stage0(net, part)
    sizes = run_stage1(net, bfs, part, info)
    light = run_stage2(net, bfs, part, info, sizes)
    dfs = run_stage3(net, bfs, part, info, sizes)
    return graph, tree, net, part, info, sizes, light, dfs


class TestStage0:
    def test_local_roots_correct(self, pipeline):
        _, _, _, part, info, _, _, _ = pipeline
        assert info.local_root == part.local_root_reference()

    def test_virtual_parents_correct(self, pipeline):
        _, _, _, part, info, _, _, _ = pipeline
        assert info.virtual_parent == part.virtual_parent_reference()


class TestStage1:
    def test_sizes_match_centralized(self, pipeline):
        _, tree, _, _, _, sizes, _, _ = pipeline
        assert sizes.sizes == subtree_sizes(tree)

    def test_heavy_children_match_centralized(self, pipeline):
        _, tree, _, _, _, sizes, _, _ = pipeline
        assert sizes.heavy == heavy_children(tree)

    def test_trail_covers_ut(self, pipeline):
        _, _, _, part, _, sizes, _, _ = pipeline
        assert set(sizes.trail) == part.ut


class TestStage2:
    def test_light_edges_match_centralized(self, pipeline):
        _, tree, _, _, _, _, light, _ = pipeline
        reference = light_edge_lists(tree)
        for v in tree:
            assert list(light.light_edges[v]) == reference[v], v

    def test_lists_bounded_by_log_n(self, pipeline):
        _, tree, _, _, _, _, light, _ = pipeline
        bound = math.log2(len(tree))
        for edges in light.light_edges.values():
            assert len(edges) <= bound


class TestStage3:
    def test_intervals_match_centralized(self, pipeline):
        _, tree, _, _, _, _, _, dfs = pipeline
        assert dfs.intervals == dfs_intervals(tree)

    def test_entries_are_a_permutation(self, pipeline):
        _, tree, _, _, _, _, _, dfs = pipeline
        enters = sorted(e for e, _ in dfs.intervals.values())
        assert enters == list(range(1, len(tree) + 1))


class TestCostClaims:
    def test_memory_is_logarithmic(self, pipeline):
        _, tree, net, _, _, _, _, _ = pipeline
        n = len(tree)
        # O(log n) words with a generous constant (trail + lists + scratch).
        assert net.max_memory() <= 12 * math.log2(n) + 40

    def test_rounds_scale_with_sqrt_n_and_depth(self, pipeline):
        _, tree, net, part, _, _, _, _ = pipeline
        n = len(tree)
        budget = 60 * (math.sqrt(n) + part.max_local_depth + 50) * math.log2(n)
        assert net.metrics.total_rounds <= budget
