"""Unit tests for the serve compiler (packed tables)."""

import io

import pytest

from repro.errors import InputError
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.routing.router import sample_pairs
from repro.routing.serialization import save_scheme
from repro.serve import ServeEngine, compile_from_json, compile_scheme
from repro.serve.compile import NO_VERTEX, _jsonable_summary
from repro.tz import build_centralized_scheme, build_tree_scheme


@pytest.fixture(scope="module")
def built():
    graph = random_connected_graph(60, seed=71)
    scheme = build_centralized_scheme(graph, 2, seed=71)
    return graph, scheme, compile_scheme(scheme, graph)


class TestPackedStructure:
    def test_local_index_inverts_ids(self, built):
        _, _, compiled = built
        for tree in compiled.trees:
            assert len(tree.ids) == tree.size == len(tree.local)
            for li, vid in enumerate(tree.ids):
                assert tree.local[vid] == li
            assert tree.hot is not None and len(tree.hot) == 10

    def test_arrays_parallel(self, built):
        _, _, compiled = built
        for tree in compiled.trees:
            n = tree.size
            for arr in (tree.enter, tree.exit_, tree.parent,
                        tree.parent_id, tree.parent_w, tree.heavy,
                        tree.heavy_id, tree.heavy_w, tree.root_distance):
                assert len(arr) == n

    def test_dfs_intervals_nest(self, built):
        _, _, compiled = built
        for tree in compiled.trees:
            for li in range(tree.size):
                assert tree.enter[li] <= tree.exit_[li]
                pi = tree.parent[li]
                if pi != NO_VERTEX:
                    assert tree.enter[pi] <= tree.enter[li] <= tree.exit_[pi]

    def test_membership_matches_per_vertex_tables(self, built):
        _, scheme, compiled = built
        seen = {t.tree_id: t for t in compiled.trees}
        for v, table in scheme.tables.items():
            for tid in table.trees:
                assert v in seen[tid].local
        assert compiled.table_ids == frozenset(scheme.tables)

    def test_decisions_mirror_entries(self, built):
        _, _, compiled = built
        assert set(compiled.decisions) == set(compiled.entries)
        for v, entries in compiled.entries.items():
            cands = compiled.decisions[v]
            assert len(cands) == len(entries)
            for entry, (local, pair, rd, level, dist) in zip(entries, cands):
                tree = compiled.trees[entry.tree_index]
                assert pair == (tree, entry.label)
                assert local is tree.local and rd is tree.root_distance
                assert (level, dist) == (entry.level, entry.dist_to_root)

    def test_edge_weights_match_graph(self, built):
        graph, _, compiled = built
        for tree in compiled.trees:
            for li in range(tree.size):
                u, pid, w = tree.ids[li], tree.parent_id[li], tree.parent_w[li]
                if pid is None:
                    assert w is None
                elif graph.has_edge(u, pid):
                    assert w == pytest.approx(graph[u][pid]["weight"])

    def test_table_words_positive(self, built):
        _, _, compiled = built
        assert compiled.table_words() == 5 * sum(t.size
                                                 for t in compiled.trees)

    def test_jsonable_summary(self, built):
        _, _, compiled = built
        blob = _jsonable_summary(compiled)
        assert blob["kind"] == "graph" and blob["k"] == compiled.k
        assert blob["n"] == compiled.n
        assert blob["packed_words"] == compiled.table_words()


class TestCompileEntryPoints:
    def test_graph_scheme_requires_graph(self, built):
        _, scheme, _ = built
        with pytest.raises(InputError):
            compile_scheme(scheme)

    def test_unknown_object_rejected(self):
        with pytest.raises(InputError):
            compile_scheme(object())

    def test_tree_scheme_without_graph(self):
        graph = random_connected_graph(40, seed=73)
        parent = spanning_tree_of(graph, style="dfs", seed=73)
        scheme = build_tree_scheme(parent)
        compiled = compile_scheme(scheme)
        assert compiled.kind == "tree"
        assert compiled.default_budget == 2 * len(scheme.tables) + 2
        assert compiled.table_words() == 5 * compiled.tree.size
        assert _jsonable_summary(compiled)["kind"] == "tree"

    def test_compile_from_json_serves_identically(self, built):
        graph, scheme, compiled = built
        buf = io.StringIO()
        save_scheme(scheme, buf)
        buf.seek(0)
        reloaded = compile_from_json(buf, graph)
        pairs = sample_pairs(list(graph.nodes), 100, seed=79)
        a = ServeEngine(compiled).route_many(pairs)
        b = ServeEngine(reloaded).route_many(pairs)
        assert [(r.path, r.length) for r in a] == \
               [(r.path, r.length) for r in b]

    def test_compile_from_json_path(self, tmp_path, built):
        graph, scheme, _ = built
        path = tmp_path / "scheme.json"
        with open(path, "w") as fp:
            save_scheme(scheme, fp)
        compiled = compile_from_json(str(path), graph)
        assert compiled.kind == "graph" and compiled.k == scheme.k
