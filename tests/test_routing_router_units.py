"""Unit tests for router helpers not covered by the end-to-end suites."""

import pytest

from repro.errors import RoutingFailure
from repro.graphs import random_connected_graph
from repro.routing import (
    RouteResult,
    StretchReport,
    measure_stretch,
    route_in_graph,
    sample_pairs,
)
from repro.tz import build_centralized_scheme


class TestSamplePairs:
    def test_deterministic(self):
        nodes = list(range(30))
        assert sample_pairs(nodes, 10, seed=4) == sample_pairs(nodes, 10, seed=4)

    def test_seed_changes_sample(self):
        nodes = list(range(30))
        assert sample_pairs(nodes, 10, seed=4) != sample_pairs(nodes, 10, seed=5)

    def test_pairs_are_distinct_endpoints(self):
        for u, v in sample_pairs(list(range(10)), 50, seed=1):
            assert u != v

    def test_count(self):
        assert len(sample_pairs(list(range(5)), 17, seed=0)) == 17


class TestRouteResult:
    def test_hops(self):
        r = RouteResult(path=[1, 2, 3], length=2.0, header_words=3)
        assert r.hops == 2

    def test_single_vertex_path(self):
        r = RouteResult(path=[1], length=0.0, header_words=0)
        assert r.hops == 0


class TestStretchReport:
    def test_str_contains_stats(self):
        rep = StretchReport(pairs=5, max_stretch=2.0, mean_stretch=1.5,
                            worst_pair=(1, 2))
        text = str(rep)
        assert "pairs=5" in text and "2.0000" in text


class TestRoutingFailureDetails:
    def test_failure_carries_partial_path(self):
        err = RoutingFailure("boom", path=[1, 2, 3])
        assert err.path == [1, 2, 3]

    def test_failure_defaults_empty_path(self):
        assert RoutingFailure("boom").path == []


class TestRouteInGraphEdgeCases:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = random_connected_graph(50, seed=261)
        return graph, build_centralized_scheme(graph, 2, seed=261)

    def test_source_equals_target(self, setup):
        graph, scheme = setup
        v = sorted(graph.nodes)[0]
        result = route_in_graph(scheme, graph, v, v)
        assert result.path == [v] and result.length == 0.0

    def test_adjacent_vertices(self, setup):
        graph, scheme = setup
        u = sorted(graph.nodes)[0]
        v = next(iter(graph.neighbors(u)))
        result = route_in_graph(scheme, graph, u, v)
        assert result.path[0] == u and result.path[-1] == v

    def test_mode_best_returns_same_destination(self, setup):
        graph, scheme = setup
        nodes = sorted(graph.nodes)
        a = route_in_graph(scheme, graph, nodes[0], nodes[-1], mode="first")
        b = route_in_graph(scheme, graph, nodes[0], nodes[-1], mode="best")
        assert a.path[-1] == b.path[-1] == nodes[-1]


class TestDeterministicSampling:
    """Seeded / injectable pair sampling for apples-to-apples stretch runs."""

    def test_sample_pairs_rng_injection(self):
        import random

        nodes = list(range(40))
        assert sample_pairs(nodes, 30, seed=5) == \
               sample_pairs(nodes, 30, rng=random.Random(5))
        # An injected generator is consumed, not reseeded: two draws from
        # one stream differ, two fresh streams agree.
        rng = random.Random(5)
        first = sample_pairs(nodes, 30, rng=rng)
        second = sample_pairs(nodes, 30, rng=rng)
        assert first != second

    def test_measure_stretch_accepts_pair_count(self):
        graph = random_connected_graph(50, seed=263)
        scheme = build_centralized_scheme(graph, 2, seed=263)
        by_count = measure_stretch(scheme, graph, 40, seed=9)
        explicit = measure_stretch(
            scheme, graph, sample_pairs(list(graph.nodes), 40, seed=9))
        assert by_count.pairs == explicit.pairs == 40
        assert by_count.max_stretch == explicit.max_stretch
        assert by_count.mean_stretch == explicit.mean_stretch
        assert by_count.worst_pair == explicit.worst_pair

    def test_measure_stretch_same_sample_across_schemes(self):
        import random

        graph = random_connected_graph(50, seed=264)
        k2 = build_centralized_scheme(graph, 2, seed=264)
        k3 = build_centralized_scheme(graph, 3, seed=264)
        a = measure_stretch(k2, graph, 30, rng=random.Random(11))
        b = measure_stretch(k3, graph, 30, rng=random.Random(11))
        # Same pair sample: both reports scored the same worst-case pool,
        # so the k=2 scheme can only look worse or equal on it.
        assert a.pairs == b.pairs == 30
