"""Unit tests for router helpers not covered by the end-to-end suites."""

import pytest

from repro.errors import RoutingFailure
from repro.graphs import random_connected_graph
from repro.routing import (
    RouteResult,
    StretchReport,
    route_in_graph,
    sample_pairs,
)
from repro.tz import build_centralized_scheme


class TestSamplePairs:
    def test_deterministic(self):
        nodes = list(range(30))
        assert sample_pairs(nodes, 10, seed=4) == sample_pairs(nodes, 10, seed=4)

    def test_seed_changes_sample(self):
        nodes = list(range(30))
        assert sample_pairs(nodes, 10, seed=4) != sample_pairs(nodes, 10, seed=5)

    def test_pairs_are_distinct_endpoints(self):
        for u, v in sample_pairs(list(range(10)), 50, seed=1):
            assert u != v

    def test_count(self):
        assert len(sample_pairs(list(range(5)), 17, seed=0)) == 17


class TestRouteResult:
    def test_hops(self):
        r = RouteResult(path=[1, 2, 3], length=2.0, header_words=3)
        assert r.hops == 2

    def test_single_vertex_path(self):
        r = RouteResult(path=[1], length=0.0, header_words=0)
        assert r.hops == 0


class TestStretchReport:
    def test_str_contains_stats(self):
        rep = StretchReport(pairs=5, max_stretch=2.0, mean_stretch=1.5,
                            worst_pair=(1, 2))
        text = str(rep)
        assert "pairs=5" in text and "2.0000" in text


class TestRoutingFailureDetails:
    def test_failure_carries_partial_path(self):
        err = RoutingFailure("boom", path=[1, 2, 3])
        assert err.path == [1, 2, 3]

    def test_failure_defaults_empty_path(self):
        assert RoutingFailure("boom").path == []


class TestRouteInGraphEdgeCases:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = random_connected_graph(50, seed=261)
        return graph, build_centralized_scheme(graph, 2, seed=261)

    def test_source_equals_target(self, setup):
        graph, scheme = setup
        v = sorted(graph.nodes)[0]
        result = route_in_graph(scheme, graph, v, v)
        assert result.path == [v] and result.length == 0.0

    def test_adjacent_vertices(self, setup):
        graph, scheme = setup
        u = sorted(graph.nodes)[0]
        v = next(iter(graph.neighbors(u)))
        result = route_in_graph(scheme, graph, u, v)
        assert result.path[0] == u and result.path[-1] == v

    def test_mode_best_returns_same_destination(self, setup):
        graph, scheme = setup
        nodes = sorted(graph.nodes)
        a = route_in_graph(scheme, graph, nodes[0], nodes[-1], mode="first")
        b = route_in_graph(scheme, graph, nodes[0], nodes[-1], mode="best")
        assert a.path[-1] == b.path[-1] == nodes[-1]
