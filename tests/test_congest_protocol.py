"""Tests for the event-driven NodeProgram protocol API."""

import pytest

from repro.congest import Network, build_bfs_tree
from repro.congest.protocol import (
    BfsProgram,
    FloodMax,
    NodeProgram,
    run_protocol,
)
from repro.errors import InputError
from repro.graphs import random_connected_graph


@pytest.fixture()
def net():
    return Network(random_connected_graph(60, seed=201))


class TestFloodMax:
    def test_everyone_agrees_on_leader(self, net):
        bound = net.hop_diameter_upper_bound() + 1
        result = run_protocol(net, lambda v: FloodMax(bound))
        leaders = {p.leader for p in result.programs.values()}
        assert len(leaders) == 1

    def test_leader_is_repr_maximum(self, net):
        bound = net.hop_diameter_upper_bound() + 1
        result = run_protocol(net, lambda v: FloodMax(bound))
        expected = max(net.nodes(), key=repr)
        assert next(iter(result.programs.values())).leader == expected

    def test_halts_cleanly(self, net):
        bound = net.hop_diameter_upper_bound() + 1
        result = run_protocol(net, lambda v: FloodMax(bound))
        assert result.halted
        assert result.rounds <= bound + 2

    def test_insufficient_bound_still_halts(self, net):
        # With a 1-round budget the protocol halts but may disagree.
        result = run_protocol(net, lambda v: FloodMax(1))
        assert result.halted


class TestBfsProgram:
    def test_matches_procedural_bfs(self, net):
        root = min(net.nodes(), key=repr)
        result = run_protocol(net, lambda v: BfsProgram(root))
        reference = build_bfs_tree(Network(net.graph), root)
        for v, program in result.programs.items():
            assert program.depth == reference.depth[v]
            assert program.parent == reference.parent[v]

    def test_round_count_near_depth(self, net):
        root = min(net.nodes(), key=repr)
        result = run_protocol(net, lambda v: BfsProgram(root))
        reference = build_bfs_tree(Network(net.graph), root)
        assert result.rounds <= reference.height + 3


class TestApiContract:
    def test_send_to_non_neighbor_rejected(self, net):
        nodes = sorted(net.nodes(), key=repr)

        class Bad(NodeProgram):
            def init(self, api):
                outsider = next(x for x in nodes if x not in api.ports and x != api.id)
                api.send(outsider, "x")

            def on_round(self, api, inbox):
                api.halt()

        with pytest.raises(InputError):
            run_protocol(net, lambda v: Bad(), max_rounds=5)

    def test_stuck_protocol_reports_not_halted(self, net):
        class Silent(NodeProgram):
            def on_round(self, api, inbox):
                pass  # never halts, never sends

        result = run_protocol(
            net, lambda v: Silent(), max_rounds=200, max_quiet_rounds=10
        )
        assert not result.halted

    def test_round_budget_enforced(self, net):
        class Chatter(NodeProgram):
            def init(self, api):
                api.broadcast("spam", 0)

            def on_round(self, api, inbox):
                api.broadcast("spam", 0)

        with pytest.raises(InputError):
            run_protocol(net, lambda v: Chatter(), max_rounds=5)

    def test_memory_meter_reachable(self, net):
        class Hoarder(NodeProgram):
            def init(self, api):
                api.memory.store("hoard", 7)

            def on_round(self, api, inbox):
                api.halt()

        run_protocol(net, lambda v: Hoarder())
        assert all(net.mem(v).high_water >= 7 for v in net.nodes())

    def test_base_program_on_round_abstract(self, net):
        with pytest.raises(NotImplementedError):
            run_protocol(net, lambda v: NodeProgram(), max_rounds=3)
