"""Property-based tests: the distributed tree routing is exact and matches
the centralized construction on arbitrary random tree shapes embedded in
random networks."""

import random

from hypothesis import given, settings, strategies as st

from repro.congest import Network
from repro.graphs import random_connected_graph, tree_distance
from repro.routing import route_in_tree, tree_forward
from repro.treerouting import build_distributed_tree_scheme, partition_tree
from repro.tz import build_tree_scheme


@st.composite
def embedded_trees(draw):
    """A weighted network plus a random spanning tree of it."""
    n = draw(st.integers(min_value=8, max_value=70))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    style = draw(st.sampled_from(["dfs", "bfs", "random", "shortest-path"]))
    graph = random_connected_graph(n, seed=seed)
    from repro.graphs import spanning_tree_of

    tree = spanning_tree_of(graph, style=style, seed=seed)
    return graph, tree, seed


@given(embedded_trees())
@settings(max_examples=25, deadline=None)
def test_distributed_equals_centralized(case):
    graph, tree, seed = case
    net = Network(graph)
    build = build_distributed_tree_scheme(net, tree, seed=seed)
    cent = build_tree_scheme(tree)
    assert build.scheme.tables == cent.tables
    assert build.scheme.labels == cent.labels


@given(embedded_trees(), st.data())
@settings(max_examples=25, deadline=None)
def test_routing_is_exact(case, data):
    graph, tree, seed = case
    net = Network(graph)
    build = build_distributed_tree_scheme(net, tree, seed=seed)
    weight = lambda u, v: graph[u][v]["weight"]
    nodes = sorted(tree)
    for _ in range(6):
        u = data.draw(st.sampled_from(nodes))
        v = data.draw(st.sampled_from(nodes))
        result = route_in_tree(build.scheme, u, v, weight_of=weight)
        expected = tree_distance(tree, weight, u, v)
        assert abs(result.length - expected) < 1e-9


@given(embedded_trees(), st.floats(min_value=0.02, max_value=1.0))
@settings(max_examples=25, deadline=None)
def test_output_independent_of_q(case, q):
    """The sampled partition is internal: any q gives the same artifacts."""
    graph, tree, seed = case
    net = Network(graph)
    build = build_distributed_tree_scheme(net, tree, seed=seed, q=q)
    cent = build_tree_scheme(tree)
    assert build.scheme.tables == cent.tables
    assert build.scheme.labels == cent.labels


@given(embedded_trees())
@settings(max_examples=25, deadline=None)
def test_forwarding_never_dead_ends(case):
    """From every vertex toward every target, the pure forwarding rule
    reaches the destination within 2n hops (termination property)."""
    graph, tree, seed = case
    cent = build_tree_scheme(tree)
    nodes = sorted(tree)
    rng = random.Random(seed)
    for _ in range(5):
        u, v = rng.choice(nodes), rng.choice(nodes)
        at = u
        for _ in range(2 * len(nodes) + 2):
            nxt = tree_forward(at, cent.tables[at], cent.labels[v])
            if nxt is None:
                break
            at = nxt
        assert at == v


@given(embedded_trees())
@settings(max_examples=25, deadline=None)
def test_partition_local_trees_partition_vertices(case):
    graph, tree, seed = case
    part = partition_tree(tree, seed=seed)
    seen = set()
    for r in part.local_forest.roots:
        vertices = part.local_forest.subtree_vertices(r)
        assert not (seen & set(vertices))
        seen |= set(vertices)
    assert seen == set(tree)
