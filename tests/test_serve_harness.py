"""Tests for the serving harness, SLO verdicts, and the serve CLI."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.serve import (
    SKETCH_ACCURACY,
    ServeEngine,
    compile_scheme,
    percentile,
    run_serving,
    run_serving_recorded,
    slo_verdict,
)
from repro.tz import build_centralized_scheme, build_tree_scheme


@pytest.fixture(scope="module")
def built():
    graph = random_connected_graph(70, seed=89)
    return graph, build_centralized_scheme(graph, 2, seed=89)


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 1) == 1.0
        assert percentile([], 50) == 0.0

    def test_monotone(self):
        values = list(range(100))
        assert percentile(values, 50) <= percentile(values, 90) \
               <= percentile(values, 99)


class TestRunServing:
    def test_report_fields(self, built):
        graph, scheme = built
        report, results = run_serving(scheme, graph, workload="zipf",
                                      queries=400, seed=3)
        assert report.queries == len(results) == 400
        assert report.workload == "zipf" and report.seed == 3
        assert report.throughput_qps > 0 and report.serve_s > 0
        assert report.hops_p50 <= report.hops_p90 <= report.hops_p99 \
               <= report.hops_max
        assert report.latency_us_p50 <= report.latency_us_p99
        assert 0.0 <= report.cache_hit_rate <= 1.0
        assert report.failures == 0
        # Theorem 3 SLO: 4k-3 with k=2.
        assert report.slo_bound == pytest.approx(5.0)
        assert report.slo_fraction == pytest.approx(1.0)
        assert report.slo_ok is True
        assert report.packed["kind"] == "graph"

    def test_to_row_and_render(self, built):
        graph, scheme = built
        report, _ = run_serving(scheme, graph, queries=50, seed=4)
        row = report.to_row()
        assert row["workload"] == "uniform" and row["slo_ok"] is True
        json.dumps(row)  # must be JSON-clean
        text = report.render()
        assert "throughput" in text and "stretch SLO" in text and "PASS" in text

    def test_tree_scheme_skips_slo(self):
        graph = random_connected_graph(50, seed=90)
        parent = spanning_tree_of(graph, style="dfs", seed=90)
        scheme = build_tree_scheme(parent)
        report, _ = run_serving(scheme, graph, queries=60, seed=5)
        assert report.slo_fraction is None and report.slo_ok is None
        assert slo_verdict(report) is None
        assert "stretch SLO" not in report.render()

    def test_count_and_continue(self, built):
        graph, scheme = built
        import copy
        broken = copy.deepcopy(scheme)
        victims = [v for v in list(broken.tables)[:20]]
        for v in victims:
            broken.tables[v].trees.clear()
        report, results = run_serving(broken, graph, queries=300, seed=6)
        assert report.queries == 300  # nothing aborted
        assert report.failures == sum(1 for r in results if not r.ok) > 0
        assert report.slo_fraction < 1.0  # failures violate the SLO

    def test_adversarial_workload_runs(self, built):
        graph, scheme = built
        report, _ = run_serving(scheme, graph, workload="adversarial",
                                queries=40, seed=7)
        assert report.queries == 40 and report.failures == 0

    def test_prebuilt_engine_warm_cache(self, built):
        graph, scheme = built
        engine = ServeEngine(compile_scheme(scheme, graph), cache_size=4096)
        run_serving(scheme, graph, queries=200, seed=8, engine=engine)
        report, _ = run_serving(scheme, graph, queries=200, seed=8,
                                engine=engine)
        assert report.cache_hit_rate > 0.5  # identical stream, warm cache

    def test_recorded_run_record(self, built):
        graph, scheme = built
        report, record = run_serving_recorded(scheme, graph,
                                              workload="zipf", queries=150,
                                              seed=9)
        assert record.kind == "serve"
        assert record.workload["workload"] == "zipf"
        assert record.columns[0]["throughput_qps"] > 0
        assert [v.name for v in record.verdicts] == \
               ["serve/zipf/stretch-slo"]
        assert record.passed
        doc = json.loads(record.to_json())
        assert doc["kind"] == "serve"

    def test_slo_verdict_shape(self, built):
        graph, scheme = built
        report, _ = run_serving(scheme, graph, queries=50, seed=10)
        verdict = slo_verdict(report)
        assert verdict.passed is True
        assert verdict.column == "slo_fraction"
        assert verdict.limit == report.slo_target
        assert "frac(stretch" in verdict.formula


class TestServeEngineUnits:
    def test_mode_validated(self, built):
        graph, scheme = built
        with pytest.raises(ValueError):
            ServeEngine(compile_scheme(scheme, graph), mode="worst")

    def test_cache_lru_eviction(self, built):
        graph, scheme = built
        engine = ServeEngine(compile_scheme(scheme, graph), cache_size=2)
        nodes = list(graph.nodes)
        a, b, c, d = nodes[:4]
        engine.route(a, b)
        engine.route(a, c)
        engine.route(a, b)  # refresh (a, b)
        engine.route(a, d)  # evicts (a, c), the least recent
        assert (a, b) in engine.cache._data
        assert (a, c) not in engine.cache._data
        assert len(engine.cache) == 2

    def test_cache_disabled(self, built):
        graph, scheme = built
        engine = ServeEngine(compile_scheme(scheme, graph), cache_size=0)
        nodes = list(graph.nodes)
        engine.route(nodes[0], nodes[1])
        engine.route(nodes[0], nodes[1])
        assert len(engine.cache) == 0 and engine.cache.hit_rate == 0.0

    def test_stats_and_clear(self, built):
        graph, scheme = built
        engine = ServeEngine(compile_scheme(scheme, graph))
        nodes = list(graph.nodes)
        engine.route_many([(nodes[0], nodes[1])] * 3)
        stats = engine.stats()
        assert stats["queries"] == 3 and stats["cache_hits"] == 2
        assert stats["cache_hit_rate"] == pytest.approx(2 / 3, abs=1e-4)
        engine.cache.clear()
        assert engine.stats()["cache_size"] == 0


class TestServeCli:
    def test_parser_accepts_serve(self):
        args = build_parser().parse_args(
            ["serve", "--workload", "zipf", "--queries", "50", "--n", "40",
             "--json"]
        )
        assert args.command == "serve" and args.workload == "zipf"

    def test_text_output(self, capsys):
        rc = main(["serve", "--n", "40", "--k", "2", "--queries", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "stretch SLO" in out

    def test_json_run_record(self, capsys):
        rc = main(["serve", "--n", "40", "--k", "2", "--queries", "60",
                   "--workload", "zipf", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "serve"
        row = doc["columns"][0]
        for key in ("throughput_qps", "hops_p50", "latency_us_p50",
                    "cache_hit_rate", "slo_fraction"):
            assert key in row
        assert doc["verdicts"][0]["passed"] is True

    def test_strict_passes_on_healthy_scheme(self, capsys):
        rc = main(["serve", "--n", "40", "--k", "2", "--queries", "60",
                   "--strict", "--quiet"])
        assert rc == 0

    def test_out_file(self, tmp_path, capsys):
        out = tmp_path / "serve.txt"
        rc = main(["serve", "--n", "40", "--k", "2", "--queries", "40",
                   "--quiet", "--out", str(out)])
        assert rc == 0
        assert "throughput" in out.read_text()
        assert capsys.readouterr().out == ""

    def test_distributed_builder(self, capsys):
        rc = main(["serve", "--n", "40", "--k", "2", "--queries", "40",
                   "--builder", "distributed", "--quiet"])
        assert rc == 0


class TestReportQuantiles:
    """The sketch-backed percentile path, differentially tested against
    the exact ``percentile`` reference (S18 satellite)."""

    @pytest.mark.parametrize("workload",
                             ["uniform", "zipf", "gravity", "adversarial"])
    def test_hops_sketch_matches_exact(self, built, workload):
        graph, scheme = built
        report, results = run_serving(scheme, graph, workload=workload,
                                      queries=500, seed=11)
        hops = [len(r.path) - 1 for r in results if r.ok]
        for q in (0.5, 0.9, 0.99):
            exact = percentile(hops, q * 100)
            est = report.quantiles("hops", (q,))[0]
            assert abs(est - exact) <= SKETCH_ACCURACY * exact + 1e-9, \
                (workload, q)
        # The report's own hop columns are the rounded sketch estimates,
        # which the 0.005 accuracy keeps integer-exact below 100 hops.
        assert report.hops_p50 == percentile(hops, 50)
        assert report.hops_p99 == percentile(hops, 99)

    def test_latency_quantiles_consistent_with_columns(self, built):
        graph, scheme = built
        report, _ = run_serving(scheme, graph, queries=300, seed=12)
        p50, p90, p99 = report.quantiles("latency_us", (0.5, 0.9, 0.99))
        assert p50 == report.latency_us_p50
        assert p90 == report.latency_us_p90
        assert p99 == report.latency_us_p99

    def test_stretch_sketch_present_on_slo_runs(self, built):
        graph, scheme = built
        report, _ = run_serving(scheme, graph, queries=200, seed=13)
        assert set(report.sketches) >= {"hops", "latency_us", "stretch"}
        (p99,) = report.quantiles("stretch", (0.99,))
        assert p99 <= report.slo_bound + SKETCH_ACCURACY * p99

    def test_unknown_sketch_raises_with_choices(self, built):
        graph, scheme = built
        report, _ = run_serving(scheme, graph, queries=50, seed=14)
        with pytest.raises(KeyError, match="hops"):
            report.quantiles("nope")


class TestCachePersistence:
    """DecisionCache.save/load (S20 satellite): versioned warm-cache
    files, LRU order preserved, restored hit rate >= the warm run's."""

    def test_save_load_round_trip_hit_rate(self, built, tmp_path):
        from repro.serve import DecisionCache
        from repro.serve.workloads import make_workload

        graph, scheme = built
        compiled = compile_scheme(scheme, graph)
        pairs = make_workload("zipf", graph, compiled.nodes, 400, 41)
        path = tmp_path / "cache.json"

        engine = ServeEngine(compiled, cache_size=4096)
        for u, v in pairs:
            engine.route(u, v)
        cold = engine.stats()
        engine.cache.save(path)
        for u, v in pairs:
            engine.route(u, v)
        after = engine.stats()
        lookups = (after["cache_hits"] + after["cache_misses"]
                   - cold["cache_hits"] - cold["cache_misses"])
        warm_rate = (after["cache_hits"] - cold["cache_hits"]) / lookups

        restored = ServeEngine(
            compiled, cache=DecisionCache.load(path, maxsize=4096))
        for u, v in pairs:
            restored.route(u, v)
        assert restored.stats()["cache_hit_rate"] >= warm_rate

    def test_lru_order_preserved(self, tmp_path):
        from repro.serve import DecisionCache

        cache = DecisionCache(8)
        for i in range(5):
            # The engine stores (tuple(path), length) tuples.
            cache.put((i, i + 1), ((i, i + 1), float(i)))
        path = tmp_path / "cache.json"
        cache.save(path)
        loaded = DecisionCache.load(path)
        assert loaded.entries() == cache.entries()
        assert loaded.maxsize == 8

    def test_format_mismatch_raises(self, tmp_path):
        from repro.errors import InputError
        from repro.serve import DecisionCache

        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"format": 999, "maxsize": 4,
                                    "entries": []}))
        with pytest.raises(InputError):
            DecisionCache.load(path)

    def test_cli_cache_file_round_trip(self, tmp_path, capsys):
        path = tmp_path / "serve-cache.json"
        rc = main(["serve", "--n", "40", "--k", "2", "--queries", "80",
                   "--workload", "zipf", "--seed", "6",
                   "--cache-file", str(path)])
        assert rc == 0 and path.exists()
        cold = capsys.readouterr().out
        rc = main(["serve", "--n", "40", "--k", "2", "--queries", "80",
                   "--workload", "zipf", "--seed", "6",
                   "--cache-file", str(path)])
        assert rc == 0
        warm = capsys.readouterr().out
        assert "hit_rate=100.0%" in warm and "hit_rate=100.0%" not in cold


class TestShardedCli:
    """repro serve --workers N (S20): the sharded serving path."""

    def test_workers_flag_parses(self):
        args = build_parser().parse_args(
            ["serve", "--workers", "4", "--no-shm"])
        assert args.workers == 4 and args.shm is False
        args = build_parser().parse_args(["serve", "--workers", "2"])
        assert args.shm is True

    def test_two_worker_smoke(self, capsys):
        rc = main(["serve", "--n", "40", "--k", "2", "--queries", "80",
                   "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shards        2 workers" in out
        assert "stretch SLO" in out

    def test_json_has_shards_section(self, capsys):
        rc = main(["serve", "--n", "40", "--k", "2", "--queries", "80",
                   "--workers", "2", "--workload", "zipf", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "serve"
        assert len(doc["shards"]) == 2
        assert doc["columns"][0]["shards"] == 2
        assert sum(r["queries"] for r in doc["shards"]) == 80

    def test_workers_incompatible_with_tracing(self, capsys, tmp_path):
        rc = main(["serve", "--n", "40", "--queries", "20", "--workers",
                   "2", "--trace-out", str(tmp_path / "t.jsonl")])
        assert rc == 2
        rc = main(["serve", "--n", "40", "--queries", "20", "--workers",
                   "2", "--metrics-out", str(tmp_path / "m.prom")])
        assert rc == 2

    def test_workers_must_be_positive(self, capsys):
        assert main(["serve", "--n", "40", "--workers", "0"]) == 2

    def test_sharded_cache_file(self, tmp_path, capsys):
        path = tmp_path / "shard-cache.json"
        base = ["serve", "--n", "40", "--k", "2", "--queries", "80",
                "--workload", "zipf", "--seed", "6",
                "--cache-file", str(path)]
        assert main(base + ["--workers", "2"]) == 0
        capsys.readouterr()
        # The merged cache warms both a sharded and a single-process run.
        assert main(base + ["--workers", "2"]) == 0
        assert "hit_rate=100.0%" in capsys.readouterr().out
        assert main(base) == 0
        assert "hit_rate=100.0%" in capsys.readouterr().out
