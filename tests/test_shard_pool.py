"""Tests for the ShardPool: merged-equals-single differential proofs,
process lifecycle, leaked-segment guards, and cache collection.

Unit tests run the pool in ``start="thread"`` mode — same worker loop,
same pipe protocol, visible to pytest-cov (coverage does not follow
child processes).  The integration tests fork real workers.
"""

import glob
import time

import pytest

from repro.errors import InputError, ShardError
from repro.graphs import random_connected_graph
from repro.metrics.serve import ServeMetrics
from repro.serve import ServeEngine, compile_scheme, run_serving
from repro.serve.workloads import make_workload
from repro.shard import (
    ShardPool,
    run_sharded,
    run_sharded_recorded,
    shard_of,
    split_seed,
)
from repro.tz import build_centralized_scheme


@pytest.fixture(scope="module")
def built():
    graph = random_connected_graph(60, seed=13)
    scheme = build_centralized_scheme(graph, 3, seed=13)
    return graph, scheme, compile_scheme(scheme, graph)


def _exemplar_keys(report):
    return sorted((round(x["value"], 9), x.get("source"), x.get("target"))
                  for x in report.exemplars)


class TestPlan:
    def test_shard_of_stable_and_in_range(self):
        for workers in (1, 2, 4, 7):
            for i in range(50):
                s = shard_of(i, i * 3 + 1, workers)
                assert 0 <= s < workers
                assert s == shard_of(i, i * 3 + 1, workers)

    def test_shard_of_rejects_nonpositive(self):
        with pytest.raises(InputError):
            shard_of(1, 2, 0)

    def test_split_seed_distinct(self):
        seeds = {split_seed(42, s, 8) for s in range(8)}
        assert len(seeds) == 8
        with pytest.raises(InputError):
            split_seed(42, 8, 8)


class TestMergedEqualsSingle:
    @pytest.mark.parametrize("workload", ["zipf", "gravity"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_thread_pool_matches_single_process(self, built, workload,
                                                workers):
        graph, scheme, _ = built
        single, results1 = run_serving(
            scheme, graph, workload=workload, queries=500, seed=23,
            metrics=ServeMetrics())
        merged, results2 = run_sharded(
            scheme, graph, workers=workers, workload=workload,
            queries=500, seed=23, start="thread", collect_results=True)
        assert merged == single
        assert merged.shards == workers
        assert merged.sketches["hops"] == single.sketches["hops"]
        assert merged.sketches["stretch"] == single.sketches["stretch"]
        assert _exemplar_keys(merged) == _exemplar_keys(single)
        # Per-query results reassemble byte-identically in stream order.
        assert len(results2) == len(results1)
        for a, b in zip(results1, results2):
            assert (a.source, a.target, a.path, a.length, a.ok,
                    a.error) == \
                   (b.source, b.target, b.path, b.length, b.ok, b.error)

    def test_no_shm_fork_inherit_path(self, built):
        graph, scheme, _ = built
        single, _ = run_serving(scheme, graph, workload="zipf",
                                queries=300, seed=5)
        merged, _ = run_sharded(scheme, graph, workers=2, workload="zipf",
                                queries=300, seed=5, start="thread",
                                shm=False)
        assert merged == single

    def test_recorded_shards_section(self, built):
        graph, scheme, _ = built
        report, record = run_sharded_recorded(
            scheme, graph, workers=2, workload="zipf", queries=300,
            seed=5, start="thread")
        assert record.kind == "serve"
        rows = record.to_dict()["shards"]
        assert len(rows) == 2
        assert sum(r["queries"] for r in rows) == report.queries
        assert rows[0]["image_nbytes"] > 0
        assert rows[0]["image_backend"] in ("numpy", "python")
        assert [r["seed"] for r in rows] == \
               [split_seed(5, s, 2) for s in range(2)]
        assert all(r["shm"] for r in rows)
        # Round-trips like every other optional RunRecord section.
        from repro.telemetry.runrecord import RunRecord
        back = RunRecord.from_dict(record.to_dict())
        assert back.shards == rows


class TestPoolLifecycle:
    def test_spawn_without_shm_rejected(self, built):
        graph, _, compiled = built
        with pytest.raises(InputError):
            ShardPool(compiled, graph, workers=2, start="spawn", shm=False)

    def test_bad_workers_rejected(self, built):
        graph, _, compiled = built
        with pytest.raises(InputError):
            ShardPool(compiled, graph, workers=0)
        with pytest.raises(InputError):
            ShardPool(compiled, graph, workers=2, start="greenlet")

    def test_close_idempotent_and_unlinks(self, built):
        graph, _, compiled = built
        pool = ShardPool(compiled, graph, workers=2, start="thread")
        name = pool.sealed.name.lstrip("/")
        assert glob.glob(f"/dev/shm/*{name}*")
        pool.close()
        pool.close()
        assert not glob.glob(f"/dev/shm/*{name}*")
        with pytest.raises(ShardError):
            pool.serve([], workload="pairs", seed=0)

    def test_serve_after_worker_error_reports_traceback(self, built):
        graph, _, compiled = built
        with ShardPool(compiled, graph, workers=2, start="thread") as pool:
            # A query against an unknown node raises inside serve_pairs;
            # the worker wraps it as an ("error", traceback) reply.
            with pytest.raises(ShardError) as err:
                pool.serve([("definitely-missing", "also-missing")],
                           workload="pairs", seed=0)
            assert "Traceback" in str(err.value)

    def test_cache_preload_and_collection(self, built):
        graph, _, compiled = built
        pairs = make_workload("zipf", graph, compiled.nodes, 400, 3)
        with ShardPool(compiled, graph, workers=2, start="thread") as pool:
            cold, _ = pool.serve(pairs, workload="zipf", seed=3)
            entries = pool.collect_cache_entries()
        assert entries
        assert cold.cache_hits < len(pairs)
        # Every collected entry rides its plan shard.
        with ShardPool(compiled, graph, workers=2, start="thread",
                       cache_entries=entries) as pool:
            warm, _ = pool.serve(pairs, workload="zipf", seed=3)
        assert warm.cache_hits == warm.queries
        assert warm.cache_hit_rate == 1.0
        # A different worker count re-partitions the same entries.
        with ShardPool(compiled, graph, workers=3, start="thread",
                       cache_entries=entries) as pool:
            warm3, _ = pool.serve(pairs, workload="zipf", seed=3)
        assert warm3.cache_hits == warm3.queries


class TestForkIntegration:
    def test_fork_pool_matches_single_process(self, built):
        graph, scheme, _ = built
        single, _ = run_serving(scheme, graph, workload="zipf",
                                queries=400, seed=19)
        merged, _ = run_sharded(scheme, graph, workers=2, workload="zipf",
                                queries=400, seed=19, start="fork")
        assert merged == single
        assert merged.sketches["hops"] == single.sketches["hops"]

    def test_crashed_worker_leaves_no_segment(self, built):
        graph, _, compiled = built
        pairs = make_workload("uniform", graph, compiled.nodes, 50, 0)
        pool = ShardPool(compiled, graph, workers=2, start="fork")
        name = pool.sealed.name.lstrip("/")
        try:
            # Hard-kill one worker (os._exit skips its finally blocks).
            pool._conns[0].send(("crash",))
            deadline = time.time() + 10.0
            while pool._procs[0].is_alive() and time.time() < deadline:
                time.sleep(0.05)
            assert not pool._procs[0].is_alive()
            with pytest.raises(ShardError):
                pool.serve(pairs, workload="uniform", seed=0)
        finally:
            pool.close()
        assert not glob.glob(f"/dev/shm/*{name}*")
