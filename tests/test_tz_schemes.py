"""Unit tests for the centralized TZ tree scheme, compact routing scheme,
and distance oracle (the Table 1/2 baselines)."""

import math
import random

import pytest

from repro.graphs import (
    dijkstra,
    random_connected_graph,
    spanning_tree_of,
    tree_distance,
)
from repro.routing import (
    measure_stretch,
    route_in_graph,
    route_in_tree,
    sample_pairs,
)
from repro.tz import (
    build_centralized_scheme,
    build_distance_oracle,
    build_tree_scheme,
    theoretical_stretch,
)


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(110, seed=31)


@pytest.fixture(scope="module")
def tree(graph):
    return spanning_tree_of(graph, style="dfs", seed=31)


@pytest.fixture(scope="module")
def tree_scheme(tree):
    return build_tree_scheme(tree)


class TestTreeScheme:
    def test_tables_are_constant_words(self, tree_scheme):
        assert tree_scheme.max_table_words() <= 5

    def test_labels_are_log_words(self, tree, tree_scheme):
        assert tree_scheme.max_label_words() <= 1 + 2 * math.log2(len(tree))

    def test_routing_is_exact(self, graph, tree, tree_scheme):
        rng = random.Random(0)
        weight = lambda u, v: graph[u][v]["weight"]
        for _ in range(80):
            u, v = rng.sample(list(tree), 2)
            result = route_in_tree(tree_scheme, u, v, weight_of=weight)
            assert result.length == pytest.approx(tree_distance(tree, weight, u, v))

    def test_routing_to_self_is_trivial(self, tree, tree_scheme):
        v = sorted(tree)[0]
        result = route_in_tree(tree_scheme, v, v)
        assert result.path == [v]

    def test_root_distance_recorded_when_requested(self, tree):
        scheme = build_tree_scheme(tree, root_distance=lambda v: 1.5)
        assert all(t.root_distance == 1.5 for t in scheme.tables.values())
        assert scheme.max_table_words() == 5

    def test_single_vertex_tree(self):
        scheme = build_tree_scheme({"only": None})
        result = route_in_tree(scheme, "only", "only")
        assert result.path == ["only"]


class TestCompactRouting:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_within_bound(self, graph, k):
        scheme = build_centralized_scheme(graph, k, seed=2)
        pairs = sample_pairs(list(graph.nodes), 120, seed=3)
        report = measure_stretch(scheme, graph, pairs)
        assert report.max_stretch <= max(1, 4 * k - 3) + 1e-9

    def test_k1_is_exact(self, graph):
        # k=1: single level, every cluster spans V, routing via SPT of the
        # destination's own tree => stretch 1.
        scheme = build_centralized_scheme(graph, 1, seed=2)
        pairs = sample_pairs(list(graph.nodes), 60, seed=4)
        report = measure_stretch(scheme, graph, pairs)
        assert report.max_stretch == pytest.approx(1.0)

    def test_label_entries_count_k(self, graph):
        scheme = build_centralized_scheme(graph, 3, seed=2)
        for label in scheme.labels.values():
            assert len(label.entries) == 3

    def test_tables_shrink_with_k(self, graph):
        t2 = build_centralized_scheme(graph, 2, seed=2).mean_table_words()
        t4 = build_centralized_scheme(graph, 4, seed=2).mean_table_words()
        assert t4 < t2

    def test_best_mode_no_worse_on_average(self, graph):
        scheme = build_centralized_scheme(graph, 3, seed=2)
        pairs = sample_pairs(list(graph.nodes), 100, seed=5)
        first = measure_stretch(scheme, graph, pairs)
        best = measure_stretch(scheme, graph, pairs, mode="best")
        assert best.mean_stretch <= first.mean_stretch + 1e-9

    def test_route_to_self(self, graph):
        scheme = build_centralized_scheme(graph, 2, seed=2)
        v = sorted(graph.nodes)[0]
        result = route_in_graph(scheme, graph, v, v)
        assert result.path == [v]

    def test_header_is_small(self, graph):
        scheme = build_centralized_scheme(graph, 3, seed=2)
        nodes = sorted(graph.nodes)
        result = route_in_graph(scheme, graph, nodes[0], nodes[50])
        assert result.header_words <= 2 + 2 * math.log2(len(nodes)) + 2


class TestDistanceOracle:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_bound(self, graph, k):
        oracle = build_distance_oracle(graph, k, seed=6)
        rng = random.Random(1)
        nodes = sorted(graph.nodes)
        for _ in range(60):
            u, v = rng.sample(nodes, 2)
            est = oracle.query(u, v)
            exact = dijkstra(graph, [u])[0][v]
            assert exact - 1e-9 <= est <= theoretical_stretch(k) * exact + 1e-9

    def test_query_self_is_zero(self, graph):
        oracle = build_distance_oracle(graph, 2, seed=6)
        v = sorted(graph.nodes)[0]
        assert oracle.query(v, v) == 0.0

    def test_symmetric_queries_agree_in_bound(self, graph):
        oracle = build_distance_oracle(graph, 3, seed=6)
        nodes = sorted(graph.nodes)
        u, v = nodes[0], nodes[70]
        exact = dijkstra(graph, [u])[0][v]
        assert oracle.query(u, v) >= exact - 1e-9
        assert oracle.query(v, u) >= exact - 1e-9

    def test_storage_is_compact(self, graph):
        n = graph.number_of_nodes()
        oracle = build_distance_oracle(graph, 2, seed=6)
        worst = max(oracle.storage_words(v) for v in graph.nodes)
        # Claim 6: Õ(n^{1/2}) for k=2.
        assert worst <= 2 * (2 + 4 * math.sqrt(n) * math.log(n))
