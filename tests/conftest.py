"""Shared fixtures: deterministic small/medium workloads.

Fixtures are function-scoped by default but the expensive builds are cached
module-wide via ``pytest`` caching-by-fixture-scope where safe (the schemes
are immutable once built).
"""

from __future__ import annotations

import pytest

from repro.congest import ENGINES, Network
from repro.graphs import (
    grid_graph,
    random_connected_graph,
    ring_of_cliques,
    spanning_tree_of,
)

SEED = 1234


@pytest.fixture(scope="session")
def small_graph():
    """60 vertices, connected, weighted; fast enough for every test."""
    return random_connected_graph(60, seed=SEED)


@pytest.fixture(scope="session")
def medium_graph():
    """250 vertices for the heavier integration tests."""
    return random_connected_graph(250, seed=SEED + 1)


@pytest.fixture(scope="session")
def grid():
    return grid_graph(10, 10, seed=SEED)


@pytest.fixture(scope="session")
def cliquey():
    return ring_of_cliques(6, 8, seed=SEED)


@pytest.fixture(params=["reference", "fastpath", "vectorized"])
def engine(request):
    """Round-engine class, parametrized over all three backends.

    Tests taking this fixture run three times — against the frozen
    reference oracle, the fast path, and the vectorized engine — so every
    behavioral assertion in the congest suite triples its coverage.
    """
    return ENGINES[request.param]


@pytest.fixture()
def small_net(small_graph):
    return Network(small_graph)


@pytest.fixture()
def medium_net(medium_graph):
    return Network(medium_graph)


@pytest.fixture(scope="session")
def deep_tree(small_graph):
    """A DFS spanning tree: deep relative to the network's hop-diameter."""
    return spanning_tree_of(small_graph, style="dfs", seed=SEED)


@pytest.fixture(scope="session")
def spt_tree(small_graph):
    return spanning_tree_of(small_graph, style="shortest-path", seed=SEED)


@pytest.fixture(scope="session")
def medium_deep_tree(medium_graph):
    return spanning_tree_of(medium_graph, style="dfs", seed=SEED)


def weight_fn(graph):
    return lambda u, v: graph[u][v]["weight"]
