"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import FIGURE_ALIASES, FIGURES, build_parser, main


class TestParser:
    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert (args.n, args.k) == (200, 3)

    def test_table2_overrides(self):
        args = build_parser().parse_args(["table2", "--n", "500", "--seed", "3"])
        assert (args.n, args.seed) == (500, 3)

    def test_fig_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "bogus"])

    def test_all_figures_registered(self):
        assert len(FIGURES) == 9

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_aliases_accepted(self):
        args = build_parser().parse_args(["fig", "fig1_tree_rounds"])
        assert args.name == "fig1_tree_rounds"

    def test_aliases_cover_every_figure(self):
        assert sorted(FIGURE_ALIASES.values()) == sorted(FIGURES)

    def test_trace_flight_flags(self):
        args = build_parser().parse_args(
            ["trace", "stretch", "--flight", "--stride", "4"])
        assert args.flight and args.stride == 4

    def test_dashboard_defaults(self):
        args = build_parser().parse_args(["dashboard"])
        assert args.out == "dashboard.html"
        assert args.record == []

    def test_serve_trace_flags(self):
        args = build_parser().parse_args(
            ["serve", "--trace-out", "t.jsonl", "--trace-chrome", "t.json",
             "--trace-rate", "0.05", "--trace-tail", "32"])
        assert args.trace_out == "t.jsonl"
        assert args.trace_chrome == "t.json"
        assert args.trace_rate == 0.05
        assert args.trace_tail == 32

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.command == "explain"
        assert args.traces == "traces.jsonl"
        assert args.trace_id is None and args.worst is None

    def test_explain_flags(self):
        args = build_parser().parse_args(
            ["explain", "--traces", "x.jsonl", "--worst", "3", "--json"])
        assert args.traces == "x.jsonl"
        assert args.worst == 3 and args.json


class TestExecution:
    def test_table2_runs(self, capsys):
        assert main(["table2", "--n", "150"]) == 0
        out = capsys.readouterr().out
        assert "this-paper" in out and "EN16b-baseline" in out

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        assert "exact" in capsys.readouterr().out


class TestTelemetrySurfaces:
    def test_table2_json_emits_run_record(self, capsys):
        assert main(["table2", "--n", "150", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "table2"
        assert record["workload"]["n"] == 150
        assert record["passed"] is True
        columns = {v["column"] for v in record["verdicts"]}
        assert {"rounds", "table_words", "label_words",
                "memory_words"} <= columns
        # Measured columns round-trip through JSON.
        schemes = [row["scheme"] for row in record["columns"]]
        assert "this-paper" in schemes

    def test_table2_strict_passes_on_good_run(self, capsys):
        assert main(["table2", "--n", "150", "--strict", "--quiet"]) == 0

    def test_quiet_suppresses_stdout(self, capsys):
        assert main(["demo", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_out_writes_file(self, tmp_path, capsys):
        target = tmp_path / "nested" / "t2.json"
        code = main(["table2", "--n", "150", "--json", "--quiet",
                     "--out", str(target)])
        assert code == 0
        assert capsys.readouterr().out == ""
        record = json.loads(target.read_text())
        assert record["kind"] == "table2"

    def test_trace_jsonl(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        code = main(["trace", "tree-rounds", "--jsonl", "--quiet",
                     "--out", str(target)])
        assert code == 0
        lines = target.read_text().strip().splitlines()
        manifest = json.loads(lines[0])
        assert manifest["kind"] == "fig/tree-rounds"
        assert manifest["counters"]["congest.rounds"] > 0
        # One JSONL line per sweep row after the manifest.
        assert len(lines) == 1 + len(manifest["columns"])
        assert json.loads(lines[1])["n"] == manifest["columns"][0]["n"]

    def test_demo_profile_prints_span_tree(self, capsys):
        assert main(["demo", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "tree/stage1" in out and "wall_s" in out

    def test_table2_profile(self, capsys):
        assert main(["table2", "--n", "150", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "this-paper" in out  # rendered table still present
        assert "congest/bfs" in out  # plus the span tree

    def test_fig_accepts_bench_alias(self, tmp_path):
        target = tmp_path / "fig.json"
        code = main(["fig", "fig9_tree_styles", "--json", "--quiet",
                     "--out", str(target)])
        assert code == 0
        rows = json.loads(target.read_text())
        assert rows and "style" in rows[0]

    def test_serve_trace_out_then_explain(self, tmp_path, capsys):
        """Acceptance: serve --trace-out writes JSONL that repro explain
        reads back, with attribution exact to the optimal distances."""
        traces = tmp_path / "traces.jsonl"
        rc = main(["serve", "--n", "60", "--k", "2", "--queries", "400",
                   "--workload", "zipf", "--quiet",
                   "--trace-out", str(traces), "--trace-rate", "0.1"])
        assert rc == 0
        assert traces.exists() and traces.read_text().strip()

        report = tmp_path / "explain.json"
        rc = main(["explain", "--traces", str(traces), "--worst", "2",
                   "--json", "--quiet", "--out", str(report)])
        assert rc == 0
        record = json.loads(report.read_text())
        assert record["kind"] == "explain"
        assert record["passed"] is True
        verdict = record["verdicts"][0]
        assert verdict["name"] == "explain/attribution-exact"
        assert verdict["measured"] == 0.0
        assert record["traces"]

    def test_explain_unknown_trace_id_exits_two(self, tmp_path, capsys):
        traces = tmp_path / "traces.jsonl"
        rc = main(["serve", "--n", "60", "--k", "2", "--queries", "200",
                   "--workload", "uniform", "--quiet",
                   "--trace-out", str(traces)])
        assert rc == 0
        rc = main(["explain", "--traces", str(traces),
                   "--trace-id", "nope-000000", "--quiet"])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_explain_missing_file_exits_two(self, tmp_path, capsys):
        rc = main(["explain", "--traces", str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert capsys.readouterr().err

    def test_report_json(self, capsys):
        assert main(["report", "--fast", "--json", "--strict"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "report"
        assert doc["passed"] is True
        assert doc["table2"]["kind"] == "table2"
        assert doc["table1"]["kind"] == "table1"
        assert all(v["passed"] for v in doc["table2"]["verdicts"])
        assert set(doc["figures"]) == {
            "tree_rounds", "tree_memory", "stretch", "tree_styles"
        }
        assert doc["figures"]["tree_rounds"][0]["n"] == 150
