"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import FIGURES, build_parser, main


class TestParser:
    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert (args.n, args.k) == (200, 3)

    def test_table2_overrides(self):
        args = build_parser().parse_args(["table2", "--n", "500", "--seed", "3"])
        assert (args.n, args.seed) == (500, 3)

    def test_fig_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "bogus"])

    def test_all_figures_registered(self):
        assert len(FIGURES) == 9

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_table2_runs(self, capsys):
        assert main(["table2", "--n", "150"]) == 0
        out = capsys.readouterr().out
        assert "this-paper" in out and "EN16b-baseline" in out

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        assert "exact" in capsys.readouterr().out
