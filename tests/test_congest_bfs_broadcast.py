"""Unit tests for BFS-tree construction and Lemma-1 broadcast primitives.

The ``net`` fixture builds on the engine-parametrized ``engine`` fixture,
so every test here runs against reference, fastpath, and vectorized.
"""

import networkx as nx
import pytest

from repro.congest import (
    broadcast_all,
    build_bfs_tree,
    convergecast_aggregate,
)
from repro.graphs import random_connected_graph


@pytest.fixture()
def net(engine):
    return engine(random_connected_graph(80, seed=5))


class TestBfsTree:
    def test_covers_all_vertices(self, net):
        bfs = build_bfs_tree(net)
        assert set(bfs.parent) == set(net.nodes())

    def test_root_has_no_parent(self, net):
        bfs = build_bfs_tree(net)
        assert bfs.parent[bfs.root] is None

    def test_depths_match_networkx(self, net):
        bfs = build_bfs_tree(net)
        expected = nx.single_source_shortest_path_length(net.graph, bfs.root)
        assert bfs.depth == expected

    def test_parents_are_one_level_up(self, net):
        bfs = build_bfs_tree(net)
        for v, p in bfs.parent.items():
            if p is not None:
                assert bfs.depth[v] == bfs.depth[p] + 1

    def test_rounds_equal_height(self, net):
        bfs = build_bfs_tree(net)
        assert net.metrics.rounds == bfs.height + 1

    def test_explicit_root(self, net):
        root = sorted(net.nodes(), key=repr)[3]
        bfs = build_bfs_tree(net, root)
        assert bfs.root == root

    def test_deterministic(self, engine):
        g = random_connected_graph(50, seed=9)
        bfs1 = build_bfs_tree(engine(g))
        bfs2 = build_bfs_tree(engine(g))
        assert bfs1.parent == bfs2.parent

    def test_path_to_root(self, net):
        bfs = build_bfs_tree(net)
        leaf = max(bfs.depth, key=lambda v: (bfs.depth[v], repr(v)))
        path = bfs.path_to_root(leaf)
        assert path[0] == leaf and path[-1] == bfs.root
        assert len(path) == bfs.depth[leaf] + 1

    def test_children_consistent_with_parent(self, net):
        bfs = build_bfs_tree(net)
        for v, kids in bfs.children.items():
            for c in kids:
                assert bfs.parent[c] == v

    def test_bfs_charges_o1_memory(self, net):
        build_bfs_tree(net)
        assert all(net.mem(v).high_water <= 2 for v in net.nodes())


class TestBroadcastAll:
    def test_returns_all_payloads(self, net):
        bfs = build_bfs_tree(net)
        nodes = sorted(net.nodes(), key=repr)
        items = [(nodes[i], ("msg", i)) for i in range(7)]
        out = broadcast_all(net, bfs, items)
        assert sorted(p[1] for p in out) == list(range(7))

    def test_rounds_linear_in_messages(self, net):
        bfs = build_bfs_tree(net)
        nodes = sorted(net.nodes(), key=repr)
        before = net.metrics.total_rounds
        broadcast_all(net, bfs, [(nodes[0], (1,))])
        small = net.metrics.total_rounds - before
        before = net.metrics.total_rounds
        broadcast_all(net, bfs, [(nodes[i % 10], (i,)) for i in range(50)])
        large = net.metrics.total_rounds - before
        # Lemma 1: 2(M + height); 50 messages vs 1 message.
        assert large - small == pytest.approx(2 * 49, abs=2)

    def test_deterministic_order(self, net):
        bfs = build_bfs_tree(net)
        nodes = sorted(net.nodes(), key=repr)
        items = [(nodes[3], "b"), (nodes[1], "a"), (nodes[5], "c")]
        out = broadcast_all(net, bfs, items)
        assert out == ["a", "b", "c"]

    def test_wide_payloads_cost_more_rounds(self, net):
        bfs = build_bfs_tree(net)
        nodes = sorted(net.nodes(), key=repr)
        before = net.metrics.total_rounds
        broadcast_all(net, bfs, [(nodes[0], tuple(range(40)))])
        wide = net.metrics.total_rounds - before
        before = net.metrics.total_rounds
        broadcast_all(net, bfs, [(nodes[0], (1,))])
        narrow = net.metrics.total_rounds - before
        assert wide > narrow

    def test_relay_buffers_freed_after(self, net):
        bfs = build_bfs_tree(net)
        nodes = sorted(net.nodes(), key=repr)
        broadcast_all(net, bfs, [(nodes[0], (1,))])
        for v in net.nodes():
            assert dict(net.mem(v).items()).get("relay/broadcast") is None


class TestConvergecast:
    def test_aggregates_sum(self, net):
        bfs = build_bfs_tree(net)
        total = convergecast_aggregate(net, bfs, lambda v: 1, lambda a, b: a + b)
        assert total == net.n

    def test_aggregates_min(self, net):
        bfs = build_bfs_tree(net)
        result = convergecast_aggregate(net, bfs, lambda v: v, min)
        assert result == min(net.nodes())

    def test_rounds_bounded_by_height(self, net):
        bfs = build_bfs_tree(net)
        before = net.metrics.total_rounds
        convergecast_aggregate(net, bfs, lambda v: 1, lambda a, b: a + b)
        assert net.metrics.total_rounds - before == bfs.height
