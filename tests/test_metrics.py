"""Tests for ``repro.metrics`` — the live serving observability layer (S18).

Covers the quantile sketch's error contract, the registry/instrument
semantics, Prometheus exposition (render *and* the strict parser), the
multi-window burn-rate SLO monitor, and the ``ServeMetrics`` bundle the
engine/harness hot paths feed.
"""

import math
import random

import pytest

from repro.metrics import (
    BurnRule,
    DEFAULT_RULES,
    ExpositionError,
    MetricsRegistry,
    QuantileSketch,
    ServeMetrics,
    SloMonitor,
    WindowedRatio,
    intern_labels,
    parse_prometheus,
    render_prometheus,
    write_prometheus,
)
from repro.metrics.slo import SloAlert


def exact_quantile(values, q):
    """Nearest-rank quantile on the raw stream (reference)."""
    ordered = sorted(values)
    if q <= 0:
        return ordered[0]
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


# ---------------------------------------------------------------------------
# QuantileSketch
# ---------------------------------------------------------------------------

class TestQuantileSketch:
    def test_empty_sketch(self):
        sk = QuantileSketch()
        assert len(sk) == 0
        assert sk.quantile(0.5) == 0.0
        assert sk.mean == 0.0

    def test_relative_error_bound_random_stream(self):
        rng = random.Random(42)
        values = [rng.expovariate(1 / 50.0) + 0.01 for _ in range(5000)]
        sk = QuantileSketch(relative_accuracy=0.01)
        sk.add_many(values)
        for q in (0.01, 0.25, 0.5, 0.9, 0.99, 1.0):
            exact = exact_quantile(values, q)
            assert abs(sk.quantile(q) - exact) <= 0.01 * exact + 1e-12, q

    def test_integer_hops_exact_after_round(self):
        """alpha=0.005 keeps hop percentiles exact for hops < 100."""
        rng = random.Random(7)
        hops = [rng.randint(0, 40) for _ in range(2000)]
        sk = QuantileSketch(relative_accuracy=0.005)
        sk.add_many(hops)
        for q in (0.5, 0.9, 0.99):
            assert round(sk.quantile(q)) == exact_quantile(hops, q)

    def test_zero_values_and_min_max(self):
        sk = QuantileSketch()
        sk.add(0.0, 3)
        sk.add(10.0)
        assert sk.count == 4
        assert sk.quantile(0.0) == 0.0
        assert sk.quantile(0.5) == 0.0
        assert sk.min_value == 0.0
        assert sk.max_value == 10.0

    def test_negative_values_clamp_to_zero_bucket(self):
        sk = QuantileSketch()
        sk.add(-1.0)
        sk.add(5.0)
        assert sk.zero_count == 1
        assert sk.quantile(0.5) in (0.0, -1.0)  # zero-bucket rank
        assert sk.quantile(1.0) == 5.0

    def test_merge_equals_whole_stream(self):
        rng = random.Random(3)
        values = [rng.uniform(0.1, 1000.0) for _ in range(1000)]
        whole = QuantileSketch()
        whole.add_many(values)
        left = QuantileSketch()
        right = QuantileSketch()
        left.add_many(values[:400])
        right.add_many(values[400:])
        assert left.merge(right) == whole

    def test_merge_alpha_mismatch_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_dict_roundtrip(self):
        sk = QuantileSketch(relative_accuracy=0.02)
        sk.add_many([1.0, 2.5, 0.0, 400.0])
        back = QuantileSketch.from_dict(sk.to_dict())
        assert back == sk
        assert back.quantile(0.99) == sk.quantile(0.99)

    def test_quantiles_monotone(self):
        sk = QuantileSketch()
        sk.add_many([random.Random(1).uniform(1, 100) for _ in range(500)])
        qs = sk.quantiles((0.1, 0.5, 0.9, 0.99))
        assert qs == sorted(qs)


# ---------------------------------------------------------------------------
# MetricsRegistry / instruments
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("queries_total", "q")
        c.inc()
        c.inc(4)
        assert c.value == 5.0
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("hits_total") is reg.counter("hits_total")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_invalid_name_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")
        with pytest.raises(ValueError):
            MetricsRegistry(namespace="0bad")

    def test_intern_labels_sorted_and_stringified(self):
        assert intern_labels({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
        assert intern_labels(None) == ()
        key = intern_labels({"workload": "zipf"})
        assert intern_labels(key) is key or intern_labels(key) == key

    def test_labelled_series_are_distinct(self):
        reg = MetricsRegistry()
        a = reg.counter("served_total", labels={"workload": "zipf"})
        b = reg.counter("served_total", labels={"workload": "uniform"})
        assert a is not b
        a.inc(2)
        fam = reg.get("served_total")
        assert len(fam.series) == 2

    def test_meter_windowed_rate(self):
        reg = MetricsRegistry()
        m = reg.meter("qps", window_s=10.0, buckets=10)
        for i in range(100):
            m.mark(1.0, now=i * 0.1)  # 100 events over 10s
        assert m.rate(9.9) == pytest.approx(10.0, rel=0.35)
        # Long idle gap: stale slots expire and the rate decays to ~0.
        assert m.rate(1000.0) == 0.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("queries_total", "queries").inc(3)
        reg.histogram("hops", "hop histogram").add(5.0)
        snap = reg.snapshot(now=1.0)
        assert snap["repro_serve_queries_total"]["type"] == "counter"
        assert snap["repro_serve_queries_total"]["series"][0]["value"] == 3.0
        hist = snap["repro_serve_hops"]["series"][0]
        assert hist["count"] == 1 and hist["max"] == 5.0
        assert "0.99" in hist["quantiles"]

    def test_histogram_exemplar_reservoir_keeps_worst(self):
        reg = MetricsRegistry()
        h = reg.histogram("stretch", exemplar_limit=2)
        for v in (1.0, 5.0, 2.0, 9.0, 3.0):
            h.add(v)
            if h.wants_exemplar(v):
                h.offer_exemplar(v, {"v": v})
        worst = sorted(e["value"] for e in h.exemplars())
        assert worst == [5.0, 9.0]


# ---------------------------------------------------------------------------
# Prometheus exposition: render + strict parse
# ---------------------------------------------------------------------------

class TestExposition:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("queries_total", "Total queries.").inc(7)
        reg.gauge("budget", "Budget left.").set(0.5)
        m = reg.meter("qps", "Rate.")
        m.mark(5, now=1.0)
        h = reg.histogram("latency_us", "Latency.")
        h.add(10.0)
        h.add(200.0)
        return reg

    def test_render_parse_roundtrip(self):
        text = render_prometheus(self._registry(), now=2.0)
        families = parse_prometheus(text)
        counter = families["repro_serve_queries_total"]
        assert counter["type"] == "counter"
        assert counter["samples"][0][2] == 7.0
        hist = families["repro_serve_latency_us"]
        buckets = [s for s in hist["samples"] if s[0].endswith("_bucket")]
        counts = [v for (_, _, v) in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert buckets[-1][1]["le"] == "+Inf"
        assert buckets[-1][2] == 2.0

    def test_meter_exposes_total_and_rate(self):
        text = render_prometheus(self._registry(), now=2.0)
        assert "repro_serve_qps_total 5" in text
        assert "repro_serve_qps_per_s" in text

    def test_write_prometheus(self, tmp_path):
        out = tmp_path / "metrics.prom"
        write_prometheus(self._registry(), out, now=2.0)
        families = parse_prometheus(out.read_text())
        assert "repro_serve_queries_total" in families

    def test_label_escaping(self):
        reg = MetricsRegistry(namespace="")
        reg.counter("c_total", labels={"path": 'a"b\\c\nd'}).inc()
        families = parse_prometheus(render_prometheus(reg))
        (_, labels, value) = families["c_total"]["samples"][0]
        assert labels["path"] == 'a"b\\c\nd'
        assert value == 1.0

    @pytest.mark.parametrize("bad", [
        "some_metric 1.0\n",                      # sample before # TYPE
        "# TYPE h histogram\nh_bucket{le=\"1\"} 2\n"
        "h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",  # non-cumulative
        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\n"
        "h_sum 1\nh_count 1\n",                   # missing +Inf
        "# TYPE c counter\nc nope\n",             # malformed value
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ExpositionError):
            parse_prometheus(bad)

    def test_exemplars_round_trip_with_trace_id(self):
        # S19: exemplar payloads (including the trace id linking to
        # `repro explain`) must survive render -> parse, OpenMetrics-style.
        reg = MetricsRegistry()
        h = reg.histogram("stretch", "Stretch.", exemplar_limit=4)
        payloads = []
        for i, v in enumerate([1.5, 9.0, 3.0]):
            h.add(v)
            payload = {"source": f"u{i}", "target": f"v{i}",
                       "trace_id": f"zipf-0-{i:06d}"}
            payloads.append((v, payload))
            if h.wants_exemplar(v):
                h.offer_exemplar(v, payload)
        text = render_prometheus(reg, now=1.0)
        assert " # {" in text
        families = parse_prometheus(text)
        exemplars = families["repro_serve_stretch"].get("exemplars")
        assert exemplars, "rendered exemplars must parse back"
        by_value = {e["value"]: e["labels"] for e in exemplars}
        for v, payload in payloads:
            if v in by_value:
                labels = by_value[v]
                assert labels["trace_id"] == payload["trace_id"]
                assert labels["source"] == payload["source"]
        # The worst value always lands in some rendered bucket line.
        assert 9.0 in by_value

    def test_exemplar_payload_helper_shape(self):
        from repro.metrics import exemplar_payload
        from repro.serve import ServeResult
        r = ServeResult(source=3, target=9, path=[3, 5, 9], length=4.0,
                        ok=True, cached=True)
        p = exemplar_payload(r, trace_id="uniform-0-000007")
        assert p == {"source": "3", "target": "9", "hops": 2,
                     "path_prefix": ["3", "5", "9"], "cached": True,
                     "trace_id": "uniform-0-000007"}
        assert "trace_id" not in exemplar_payload(r)


# ---------------------------------------------------------------------------
# SLO monitor: windows, burn rules, alerts
# ---------------------------------------------------------------------------

class TestWindowedRatio:
    def test_totals_and_expiry(self):
        w = WindowedRatio(window_s=10.0, buckets=10)
        w.record(8.0, 2.0, now=0.5)
        assert w.totals(0.5) == (8.0, 2.0)
        assert w.error_rate(0.5) == pytest.approx(0.2)
        # Past the window the old bucket has rolled off.
        assert w.totals(100.0) == (0.0, 0.0)


class TestBurnRules:
    def test_default_rules_shape(self):
        names = [r.name for r in DEFAULT_RULES]
        assert names == ["fast", "slow"]

    def test_invalid_rule_rejected(self):
        with pytest.raises(ValueError):
            BurnRule("bad", long_window_s=1.0, short_window_s=5.0,
                     burn_rate=2.0)


class TestSloMonitor:
    def test_healthy_stream_no_alerts(self):
        mon = SloMonitor(objective=0.99)
        for i in range(500):
            mon.record(1.0, 0.0, now=i * 0.1)
        assert mon.check(50.0) == []
        assert mon.active_alerts() == []
        assert mon.budget_remaining == 1.0

    def test_burst_fires_fast_arm_then_resolves(self):
        mon = SloMonitor(objective=0.99)
        transitions = []
        # Heavy error burst: 50% failures, far over the 14.4x burn line.
        t = 0.0
        for i in range(200):
            t = i * 0.1
            transitions += mon.record(0.5, 0.5, now=t)
        fired = [a for a in transitions if a.state == "firing"]
        assert any(a.rule == "fast" for a in fired)
        assert mon.active_alerts()
        assert mon.budget_remaining < 1.0
        # Clean traffic long enough for both windows to drain.
        for i in range(4000):
            t += 0.1
            transitions += mon.record(1.0, 0.0, now=t)
        resolved = [a for a in transitions if a.state == "resolved"]
        assert {a.rule for a in fired} == {a.rule for a in resolved}
        assert mon.active_alerts() == []

    def test_alert_event_shape(self):
        mon = SloMonitor(objective=0.9)
        out = []
        for i in range(100):
            out += mon.record(0.0, 1.0, now=i * 0.5)
        assert out, "an all-failure stream must alert"
        evt = out[0]
        assert isinstance(evt, SloAlert)
        d = evt.to_dict()
        assert d["state"] == "firing"
        assert d["burn_rate"] > 0 and 0 <= d["budget_remaining"] <= 1
        dump = mon.to_dict()
        assert dump["objective"] == 0.9
        assert dump["alerts"] and dump["rules"]


# ---------------------------------------------------------------------------
# ServeMetrics bundle
# ---------------------------------------------------------------------------

class _FakeResult:
    def __init__(self, path, ok=True):
        self.path = path
        self.ok = ok


class TestServeMetricsBundle:
    def test_batch_and_deferred_hops(self):
        m = ServeMetrics()
        results = [_FakeResult([1, 2, 3]), _FakeResult([1]),
                   _FakeResult([1, 2])]
        m.record_batch(3, 0, 1, 2)
        m.defer_path_lengths(results, 0)
        assert m.hops.count == 0, "hop counting defers until scrape"
        m.flush()
        assert m.hops.count == 3
        assert m.hops.sum == pytest.approx(2 + 0 + 1)
        assert m.queries.value == 3 and m.cache_hits.value == 1

    def test_deferred_skips_failures(self):
        m = ServeMetrics()
        results = [_FakeResult([1, 2, 3]), _FakeResult([], ok=False)]
        m.defer_path_lengths(results, 1)
        m.flush()
        assert m.hops.count == 1

    def test_record_result_single_path(self):
        m = ServeMetrics()
        m.record_result(True, 4, cached=True)
        m.record_result(False, 0, cached=False)
        m.flush()
        assert m.queries.value == 2
        assert m.failures.value == 1
        assert m.cache_hits.value == 1
        assert m.hops.count == 1 and m.hops.sum == 4.0

    def test_long_path_overflows_scratch_exactly(self):
        m = ServeMetrics()
        m.record_result(True, 600, cached=False)
        m.flush()
        assert m.hops.count == 1
        assert m.hops.sketch.max_value == 600.0

    def test_observe_query_feeds_slo_and_exemplars(self):
        m = ServeMetrics(slo_objective=0.9)
        for i in range(50):
            stretch = 5.0 if i % 2 else 1.0  # half the queries violate
            m.observe_query(10.0, now=i * 0.1, stretch=stretch,
                            slo_bound=3.0,
                            exemplar={"q": i})
        assert m.slo.total == 50.0
        assert m.budget_gauge.value < 1.0
        worst = m.stretch.exemplars()
        assert worst and all(e["value"] == 5.0 for e in worst)

    def test_snapshot_includes_slo_state(self):
        m = ServeMetrics()
        m.record_batch(5, 0, 0, 5)
        snap = m.snapshot(now=1.0)
        assert snap["slo"]["objective"] == 0.99
        assert snap["repro_serve_queries_total"]["series"][0]["value"] == 5.0

    def test_expose_parses(self):
        m = ServeMetrics()
        m.record_result(True, 3, cached=False)
        m.observe_query(12.5, now=0.1, stretch=1.2, slo_bound=9.0)
        families = parse_prometheus(m.expose(now=1.0))
        assert "repro_serve_hops" in families
        assert "repro_serve_latency_us" in families
