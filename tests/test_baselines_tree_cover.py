"""Tests for the hierarchical tree-cover baseline ([ABNLP90]-style)."""

import random

import pytest

from repro.baselines import build_tree_cover_scheme, route_cover, scale_count
from repro.baselines.tree_cover import theoretical_stretch
from repro.errors import InputError
from repro.graphs import (
    assign_log_uniform_weights,
    dijkstra,
    random_connected_graph,
)


@pytest.fixture(scope="module")
def built():
    graph = random_connected_graph(130, seed=181)
    return graph, build_tree_cover_scheme(graph, seed=181)


class TestCoverStructure:
    def test_every_vertex_has_home_center_per_scale(self, built):
        graph, scheme = built
        for scale in scheme.scales:
            assert set(scale.home_center) == set(graph.nodes)

    def test_home_center_within_radius(self, built):
        graph, scheme = built
        for scale in scheme.scales:
            for c in set(scale.home_center.values()):
                dist, _ = dijkstra(graph, [c])
                for v, home in scale.home_center.items():
                    if home == c:
                        assert dist[v] <= scale.radius + 1e-9

    def test_centers_cover_via_their_trees(self, built):
        _, scheme = built
        for scale in scheme.scales:
            for v, c in scale.home_center.items():
                assert v in scale.trees[c].tables

    def test_top_scale_single_ball_spans(self, built):
        graph, scheme = built
        top = scheme.scales[-1]
        c = top.home_center[sorted(graph.nodes)[0]]
        assert len(top.trees[c].tables) == graph.number_of_nodes()

    def test_radii_geometric(self, built):
        _, scheme = built
        radii = [s.radius for s in scheme.scales]
        for a, b in zip(radii, radii[1:]):
            assert b == pytest.approx(2 * a)

    def test_scale_count_estimate(self, built):
        graph, scheme = built
        assert abs(len(scheme.scales) - scale_count(graph)) <= 1

    def test_bad_base_rejected(self, built):
        graph, _ = built
        with pytest.raises(InputError):
            build_tree_cover_scheme(graph, base=1.0)


class TestCoverRouting:
    def test_stretch_within_constant_bound(self, built):
        graph, scheme = built
        rng = random.Random(1)
        nodes = sorted(graph.nodes)
        bound = theoretical_stretch()
        for _ in range(100):
            u, v = rng.sample(nodes, 2)
            _, length = route_cover(scheme, graph, u, v)
            exact = dijkstra(graph, [u])[0][v]
            assert length <= bound * exact + 1e-9

    def test_delivers_everywhere(self, built):
        graph, scheme = built
        nodes = sorted(graph.nodes)
        for u in nodes[:4]:
            for v in nodes[-4:]:
                if u == v:
                    continue
                path, _ = route_cover(scheme, graph, u, v)
                assert path[0] == u and path[-1] == v
                for a, b in zip(path, path[1:]):
                    assert graph.has_edge(a, b)

    def test_self_route(self, built):
        graph, scheme = built
        v = sorted(graph.nodes)[0]
        assert route_cover(scheme, graph, v, v) == ([v], 0.0)


class TestAspectRatioDependence:
    def test_scales_grow_with_lambda(self):
        base = random_connected_graph(60, seed=182)
        narrow = assign_log_uniform_weights(base, 1.0, 4.0, seed=1)
        wide = assign_log_uniform_weights(base, 1.0, 10.0 ** 5, seed=1)
        s_narrow = build_tree_cover_scheme(narrow)
        s_wide = build_tree_cover_scheme(wide)
        # The paper's point: this family pays O(log Λ) scales; ours doesn't.
        assert len(s_wide.scales) >= len(s_narrow.scales) + 5

    def test_labels_grow_with_lambda(self):
        base = random_connected_graph(60, seed=183)
        narrow = assign_log_uniform_weights(base, 1.0, 4.0, seed=2)
        wide = assign_log_uniform_weights(base, 1.0, 10.0 ** 5, seed=2)
        assert (
            build_tree_cover_scheme(wide).max_label_words()
            > build_tree_cover_scheme(narrow).max_label_words()
        )
