"""Unit tests for the shortest-path reference algorithms."""

import math

import networkx as nx
import pytest

from repro.errors import InputError
from repro.graphs import (
    bounded_bellman_ford,
    dijkstra,
    distances_to_set,
    hop_counts,
    hop_diameter,
    nearest_in_set,
    random_connected_graph,
    shortest_path_diameter,
)


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(90, seed=12)


class TestDijkstra:
    def test_matches_networkx(self, graph):
        src = sorted(graph.nodes)[0]
        dist, _ = dijkstra(graph, [src])
        expected = nx.single_source_dijkstra_path_length(graph, src, weight="weight")
        assert dist == pytest.approx(expected)

    def test_parents_form_shortest_path_tree(self, graph):
        src = sorted(graph.nodes)[0]
        dist, parent = dijkstra(graph, [src])
        for v, p in parent.items():
            if p is not None:
                assert dist[v] == pytest.approx(dist[p] + graph[p][v]["weight"])

    def test_multi_source(self, graph):
        sources = sorted(graph.nodes)[:3]
        dist, _ = dijkstra(graph, sources)
        for s in sources:
            assert dist[s] == 0.0

    def test_predicate_limits_exploration(self, graph):
        src = sorted(graph.nodes)[0]
        full, _ = dijkstra(graph, [src])
        radius = sorted(full.values())[len(full) // 3]
        limited, _ = dijkstra(graph, [src], predicate=lambda v, d: d < radius)
        # Within the ball the distances agree exactly.
        for v, d in limited.items():
            if d < radius:
                assert d == pytest.approx(full[v])

    def test_source_distance_zero(self, graph):
        src = sorted(graph.nodes)[4]
        dist, parent = dijkstra(graph, [src])
        assert dist[src] == 0.0 and parent[src] is None


class TestSetDistances:
    def test_distances_to_set(self, graph):
        targets = sorted(graph.nodes)[:4]
        dist = distances_to_set(graph, targets)
        per_target = [
            nx.single_source_dijkstra_path_length(graph, t, weight="weight")
            for t in targets
        ]
        for v in graph.nodes:
            assert dist[v] == pytest.approx(min(d[v] for d in per_target))

    def test_empty_set_gives_infinity(self, graph):
        dist = distances_to_set(graph, [])
        assert all(math.isinf(d) for d in dist.values())

    def test_nearest_in_set_owner_is_nearest(self, graph):
        targets = sorted(graph.nodes)[:5]
        dist, owner = nearest_in_set(graph, targets)
        for v in graph.nodes:
            assert owner[v] in targets
            d_owner = nx.dijkstra_path_length(graph, v, owner[v], weight="weight")
            assert d_owner == pytest.approx(dist[v])


class TestBoundedBellmanFord:
    def test_converges_to_dijkstra(self, graph):
        src = sorted(graph.nodes)[0]
        dist, _, _ = bounded_bellman_ford(graph, {src: 0.0}, graph.number_of_nodes())
        exact, _ = dijkstra(graph, [src])
        assert dist == pytest.approx(exact)

    def test_hop_bound_respected(self, graph):
        src = sorted(graph.nodes)[0]
        dist1, _, _ = bounded_bellman_ford(graph, {src: 0.0}, 1)
        for v, d in dist1.items():
            if v != src:
                assert graph.has_edge(src, v)
                assert d == pytest.approx(graph[src][v]["weight"])

    def test_monotone_in_hops(self, graph):
        src = sorted(graph.nodes)[0]
        d2, _, _ = bounded_bellman_ford(graph, {src: 0.0}, 2)
        d4, _, _ = bounded_bellman_ford(graph, {src: 0.0}, 4)
        for v in d2:
            assert d4.get(v, math.inf) <= d2[v] + 1e-12

    def test_zero_hops_keeps_sources_only(self, graph):
        src = sorted(graph.nodes)[0]
        dist, _, _ = bounded_bellman_ford(graph, {src: 0.0}, 0)
        assert dist == {src: 0.0}

    def test_negative_hops_raise(self, graph):
        with pytest.raises(InputError):
            bounded_bellman_ford(graph, {}, -1)

    def test_forward_gate_blocks(self, graph):
        src = sorted(graph.nodes)[0]
        dist, _, _ = bounded_bellman_ford(
            graph, {src: 0.0}, 10, forward_if=lambda v, d: False
        )
        assert dist == {src: 0.0}

    def test_early_termination_reports_iterations(self, graph):
        src = sorted(graph.nodes)[0]
        _, _, iters = bounded_bellman_ford(graph, {src: 0.0}, 10 ** 6)
        assert iters < graph.number_of_nodes()

    def test_seeded_estimates_respected(self, graph):
        a, b = sorted(graph.nodes)[:2]
        dist, _, _ = bounded_bellman_ford(graph, {a: 0.0, b: 100.0}, 3)
        assert dist[b] <= 100.0


class TestHopMeasures:
    def test_hop_counts_positive(self, graph):
        src = sorted(graph.nodes)[0]
        hops = hop_counts(graph, src)
        assert hops[src] == 0
        assert all(h >= 1 for v, h in hops.items() if v != src)

    def test_hop_counts_consistent_with_distance(self, graph):
        src = sorted(graph.nodes)[0]
        hops = hop_counts(graph, src)
        exact, _ = dijkstra(graph, [src])
        # A path with h hops exists of exactly the shortest length.
        for v, h in hops.items():
            d, _, _ = bounded_bellman_ford(graph, {src: 0.0}, h)
            assert d[v] == pytest.approx(exact[v])

    def test_shortest_path_diameter_at_least_hop_diameter(self):
        g = random_connected_graph(40, seed=3)
        assert shortest_path_diameter(g) >= 1
        assert shortest_path_diameter(g) >= hop_diameter(g) - 1
