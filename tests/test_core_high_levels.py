"""Tests for approximate pivots and approximate clusters (Claims 9-10)."""

import math

import pytest

from repro.congest import Network
from repro.core.high_levels import (
    HighLevelConfig,
    approximate_pivot_distances,
    build_high_level_clusters,
)
from repro.graphs import (
    VirtualGraphOracle,
    dijkstra,
    distances_to_set,
    random_connected_graph,
)
from repro.hopsets import build_hopset
from repro.tz import compute_pivots, sample_hierarchy, virtual_level

EPS = 0.05


@pytest.fixture(scope="module")
def setup():
    graph = random_connected_graph(150, seed=131)
    k = 3
    hier = sample_hierarchy(list(graph.nodes), k, seed=131)
    boundary = virtual_level(k)
    virtual = sorted(hier.set_at(boundary), key=repr)
    net = Network(graph)
    oracle = VirtualGraphOracle(graph, virtual, graph.number_of_nodes())
    hopset = build_hopset(net, oracle, kappa=2, seed=131).hopset
    config = HighLevelConfig(epsilon=EPS, beta=10)
    return graph, k, hier, boundary, net, oracle, hopset, config


class TestApproximatePivots:
    def test_sandwich_inequality(self, setup):
        graph, k, hier, boundary, net, oracle, hopset, config = setup
        level = boundary + 1 if boundary + 1 < k else boundary
        level_set = hier.set_at(level)
        est = approximate_pivot_distances(
            net, oracle, hopset, level_set, config, level_index=level
        )
        exact = distances_to_set(graph, level_set)
        for v in graph.nodes:
            assert exact[v] - 1e-9 <= est[v]
            # Eq. 5 (whp): d̂ <= (1+eps) d; generous factor for small n.
            assert est[v] <= (1 + 5 * EPS) * exact[v] + 1e-9

    def test_empty_set_is_infinite(self, setup):
        graph, _, _, _, net, oracle, hopset, config = setup
        est = approximate_pivot_distances(
            net, oracle, hopset, set(), config, level_index=99
        )
        assert all(math.isinf(d) for d in est.values())

    def test_set_members_have_zero(self, setup):
        graph, k, hier, boundary, net, oracle, hopset, config = setup
        level_set = hier.set_at(boundary)
        est = approximate_pivot_distances(
            net, oracle, hopset, level_set, config, level_index=boundary
        )
        for v in level_set:
            assert est[v] == 0.0


class TestApproximateClusters:
    def _clusters(self, setup):
        graph, k, hier, boundary, net, oracle, hopset, config = setup
        trees, pivot_est = build_high_level_clusters(
            net, oracle, hopset, hier, config, boundary
        )
        return graph, k, hier, boundary, trees, pivot_est

    def test_claim9_subset_of_exact_cluster(self, setup):
        graph, k, hier, boundary, trees, _ = self._clusters(setup)
        pivots = compute_pivots(graph, hier)
        for root, tree in sorted(trees.items(), key=lambda kv: repr(kv[0]))[:6]:
            exact, _ = dijkstra(graph, [root])
            for u in tree.dist:
                # C̃(v) ⊆ C(v): d(u, root) < d(u, A_{i+1}).
                next_d = pivots.next_level_distance(tree.level, u)
                assert exact[u] < next_d + 1e-9, (root, u)

    def test_claim10_contains_c6eps(self, setup):
        graph, k, hier, boundary, trees, _ = self._clusters(setup)
        pivots = compute_pivots(graph, hier)
        for root, tree in sorted(trees.items(), key=lambda kv: repr(kv[0]))[:6]:
            exact, _ = dijkstra(graph, [root])
            for u in graph.nodes:
                next_d = pivots.next_level_distance(tree.level, u)
                if exact[u] < next_d / (1 + 6 * EPS) - 1e-9:
                    assert u in tree.dist, (root, u)

    def test_trees_are_valid_graph_trees(self, setup):
        graph, _, _, _, trees, _ = self._clusters(setup)
        for tree in trees.values():
            assert tree.parent[tree.root] is None
            for v, p in tree.parent.items():
                if p is not None:
                    assert graph.has_edge(v, p)
                    assert p in tree.dist

    def test_parent_chains_terminate_at_root(self, setup):
        graph, _, _, _, trees, _ = self._clusters(setup)
        n = graph.number_of_nodes()
        for tree in trees.values():
            for v in tree.dist:
                cursor, hops = v, 0
                while tree.parent[cursor] is not None:
                    cursor = tree.parent[cursor]
                    hops += 1
                    assert hops <= n
                assert cursor == tree.root

    def test_top_level_clusters_span_graph(self, setup):
        graph, k, hier, _, trees, _ = self._clusters(setup)
        for root in hier.vertices_at_level(k - 1):
            assert len(trees[root].dist) == graph.number_of_nodes()

    def test_estimates_dominate_true_distance(self, setup):
        graph, _, _, _, trees, _ = self._clusters(setup)
        for root, tree in sorted(trees.items(), key=lambda kv: repr(kv[0]))[:6]:
            exact, _ = dijkstra(graph, [root])
            for u, est in tree.dist.items():
                assert est >= exact[u] - 1e-9

    def test_tree_path_length_bounded_by_estimate(self, setup):
        graph, _, _, _, trees, _ = self._clusters(setup)
        for root, tree in sorted(trees.items(), key=lambda kv: repr(kv[0]))[:4]:
            for u in tree.dist:
                total, cursor = 0.0, u
                while tree.parent[cursor] is not None:
                    p = tree.parent[cursor]
                    total += graph[cursor][p]["weight"]
                    cursor = p
                assert total <= tree.dist[u] + 1e-9
