"""Failure-injection tests: corrupted artifacts must fail loudly, never
loop forever or deliver silently to the wrong vertex."""

import dataclasses
import random

import pytest

from repro.congest import Network
from repro.core import build_distributed_scheme
from repro.errors import RoutingFailure
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.routing import (
    GraphLabel,
    TreeLabel,
    TreeTable,
    route_in_graph,
    route_in_tree,
)
from repro.treerouting import build_distributed_tree_scheme
from repro.tz import build_tree_scheme


@pytest.fixture(scope="module")
def tree_setup():
    graph = random_connected_graph(80, seed=191)
    tree = spanning_tree_of(graph, style="dfs", seed=191)
    scheme = build_tree_scheme(tree)
    return graph, tree, scheme


def find_path_pair(scheme, min_hops=3):
    """A (source, target) pair at least min_hops apart in the tree."""
    nodes = sorted(scheme.tables)
    rng = random.Random(0)
    while True:
        u, v = rng.sample(nodes, 2)
        result = route_in_tree(scheme, u, v)
        if result.hops >= min_hops:
            return u, v


class TestCorruptedTreeArtifacts:
    def test_swapped_heavy_child_terminates(self, tree_setup):
        graph, tree, scheme = tree_setup
        u, v = find_path_pair(scheme)
        # Corrupt an interior vertex's heavy pointer to its parent: the
        # router must either still deliver or raise, never hang.
        victim = route_in_tree(scheme, u, v).path[1]
        broken = dict(scheme.tables)
        old = broken[victim]
        broken[victim] = TreeTable(
            enter=old.enter, exit_=old.exit_, parent=old.parent, heavy=old.parent
        )
        corrupted = dataclasses.replace(scheme, tables=broken)
        try:
            result = route_in_tree(corrupted, u, v, max_hops=300)
            assert result.path[-1] == v
        except RoutingFailure:
            pass  # loud failure is acceptable; hanging is not

    def test_label_from_other_tree_raises_or_misroutes_loudly(self, tree_setup):
        graph, tree, scheme = tree_setup
        u, v = find_path_pair(scheme)
        bogus = TreeLabel(enter=10 ** 9)  # entry time outside every interval
        at_tables = scheme.tables
        with pytest.raises(RoutingFailure):
            # destination "enter" exceeds the root interval: the message
            # climbs to the root, which must then fail loudly.
            broken = dataclasses.replace(
                scheme, labels={**scheme.labels, v: bogus}
            )
            route_in_tree(broken, u, v)

    def test_zero_hop_budget_raises(self, tree_setup):
        _, _, scheme = tree_setup
        u, v = find_path_pair(scheme)
        with pytest.raises(RoutingFailure):
            route_in_tree(scheme, u, v, max_hops=1)


class TestCorruptedGraphArtifacts:
    @pytest.fixture(scope="class")
    def graph_setup(self):
        graph = random_connected_graph(90, seed=192)
        report = build_distributed_scheme(graph, 2, seed=19)
        return graph, report.scheme

    def test_missing_tree_table_raises(self, graph_setup):
        graph, scheme = graph_setup
        nodes = sorted(graph.nodes)
        u, v = nodes[0], nodes[-1]
        result = route_in_graph(scheme, graph, u, v)
        if result.hops < 2:
            pytest.skip("pair too close to corrupt mid-path")
        mid = result.path[1]
        # Delete the committed tree from the midpoint's table.
        label = scheme.labels[v]
        tree_id = next(
            e[0] for e in label.entries if e and scheme.tables[u].has_tree(e[0])
        )
        removed = scheme.tables[mid].trees.pop(tree_id)
        try:
            with pytest.raises(RoutingFailure):
                route_in_graph(scheme, graph, u, v)
        finally:
            scheme.tables[mid].trees[tree_id] = removed

    def test_label_with_no_usable_entry_raises(self, graph_setup):
        graph, scheme = graph_setup
        nodes = sorted(graph.nodes)
        u, v = nodes[0], nodes[-1]
        empty = GraphLabel(vertex=v, entries=(None,) * scheme.k)
        original = scheme.labels[v]
        scheme.labels[v] = empty
        try:
            with pytest.raises(RoutingFailure):
                route_in_graph(scheme, graph, u, v)
        finally:
            scheme.labels[v] = original


class TestAdversarialTopologies:
    def test_star_graph_tree_routing(self):
        # Maximum-degree vertex stresses Algorithm 5's relay pattern.
        import networkx as nx

        star = nx.star_graph(60)
        for a, b in star.edges:
            star[a][b]["weight"] = 1.0
        tree = {0: None}
        for v in range(1, 61):
            tree[v] = 0
        net = Network(star)
        build = build_distributed_tree_scheme(net, tree, seed=1)
        cent = build_tree_scheme(tree)
        assert build.scheme.tables == cent.tables
        assert build.scheme.labels == cent.labels

    def test_path_graph_tree_routing(self):
        # D = n: the worst case for broadcasts; must still be exact.
        import networkx as nx

        path = nx.path_graph(50)
        for a, b in path.edges:
            path[a][b]["weight"] = 2.0
        tree = {0: None}
        for v in range(1, 50):
            tree[v] = v - 1
        net = Network(path)
        build = build_distributed_tree_scheme(net, tree, seed=1)
        result = route_in_tree(build.scheme, 0, 49, weight_of=lambda a, b: 2.0)
        assert result.length == pytest.approx(2.0 * 49)

    def test_complete_graph_general_scheme(self):
        import networkx as nx

        complete = nx.complete_graph(40)
        rng = random.Random(7)
        for a, b in complete.edges:
            complete[a][b]["weight"] = rng.uniform(1, 5)
        report = build_distributed_scheme(complete, 2, seed=2)
        from repro.routing import measure_stretch, sample_pairs

        stretch = measure_stretch(
            report.scheme, complete, sample_pairs(list(complete.nodes), 60, seed=3)
        )
        assert stretch.max_stretch <= 5 + 1e-9
