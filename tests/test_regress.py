"""Tests for the perf-regression gate (repro.telemetry.regress)."""

import json

from repro.telemetry.regress import (
    Tolerances,
    classify,
    compare_payload,
    compare_rows,
    main,
)
from repro.telemetry.trajectory import make_entry


def _entry(rows, *, sha="base", name="t"):
    return make_entry(name, rows, {"workload": {"n": 10}}, sha=sha,
                      package_version="1")


ROWS = [{"scheme": "this-paper", "rounds": 100, "words": 40,
         "wall_s": 1.5, "coverage": 0.90}]


class TestClassify:
    def test_hard_metrics(self):
        for m in ("rounds", "message_words", "memory_words", "table_words",
                  "stretch_max", "tree_size"):
            assert classify(m) == "hard"

    def test_soft_metrics(self):
        for m in ("wall_s", "created_unix", "peak_rss_kb", "build_time"):
            assert classify(m) == "soft"

    def test_sqrt_is_not_soft(self):
        # regression guard: "_s" once matched rounds_per_sqrt_n
        assert classify("rounds_per_sqrt_n_log2") == "hard"

    def test_other(self):
        assert classify("coverage") == "other"


class TestCompare:
    def test_identical_rows_pass(self):
        report = compare_payload(_entry(ROWS, sha="b"), _entry(ROWS))
        assert report.passed
        assert report.status == "pass"

    def test_inflated_hard_metric_fails(self):
        worse = [dict(ROWS[0], rounds=150)]
        report = compare_payload(_entry(worse, sha="b"), _entry(ROWS))
        assert not report.passed
        [fail] = report.failures
        assert (fail.metric, fail.baseline, fail.current) == (
            "rounds", 100.0, 150.0)

    def test_improvement_reported_not_failed(self):
        better = [dict(ROWS[0], rounds=80)]
        report = compare_payload(_entry(better, sha="b"), _entry(ROWS))
        assert report.passed
        assert any(d.status == "improved" for d in report.deltas)

    def test_exactly_at_tolerance_passes(self):
        worse = [dict(ROWS[0], rounds=110)]
        tol = Tolerances(hard_rel=0.10)
        report = compare_payload(_entry(worse, sha="b"), _entry(ROWS), tol)
        assert report.passed

    def test_one_past_tolerance_fails(self):
        worse = [dict(ROWS[0], rounds=111)]
        tol = Tolerances(hard_rel=0.10)
        report = compare_payload(_entry(worse, sha="b"), _entry(ROWS), tol)
        assert not report.passed

    def test_soft_metric_never_fails(self):
        slower = [dict(ROWS[0], wall_s=99.0)]
        report = compare_payload(_entry(slower, sha="b"), _entry(ROWS))
        assert report.passed
        assert any(d.status == "soft" and d.metric == "wall_s"
                   for d in report.deltas)

    def test_other_metric_warns_on_drift(self):
        drifted = [dict(ROWS[0], coverage=0.80)]
        report = compare_payload(_entry(drifted, sha="b"), _entry(ROWS))
        assert report.passed  # warn, not fail
        assert report.status == "warn"

    def test_missing_baseline_is_reported_not_failed(self):
        report = compare_payload(_entry(ROWS), None)
        assert report.passed
        assert report.note == "no comparable baseline"
        assert report.deltas == []

    def test_workload_change_skips_comparison(self):
        cur = _entry(ROWS, sha="b")
        base = make_entry("t", ROWS, {"workload": {"n": 99}}, sha="a",
                          package_version="1")
        report = compare_payload(cur, base)
        assert report.passed
        assert "workload changed" in report.note

    def test_new_metric_reported_not_failed(self):
        richer = [dict(ROWS[0], depth=7)]
        deltas = compare_rows(richer, ROWS)
        new = [d for d in deltas if d.status == "new"]
        assert [d.metric for d in new] == ["depth"]
        assert not any(d.status == "fail" for d in deltas)

    def test_dropped_metric_and_row_reported(self):
        deltas = compare_rows(
            [{"scheme": "this-paper", "rounds": 100}],
            ROWS + [{"scheme": "other", "rounds": 5}],
        )
        gone = {(d.row, d.metric) for d in deltas if d.status == "gone"}
        assert ("scheme=this-paper", "words") in gone
        assert ("scheme=other", "*") in gone

    def test_render_mentions_failures(self):
        worse = [dict(ROWS[0], rounds=150)]
        report = compare_payload(_entry(worse, sha="b"), _entry(ROWS))
        text = report.render()
        assert "FAIL" in text and "rounds" in text


class TestCliGate:
    def _write(self, root, rows, *, current_rows=None, name="t"):
        """A trajectory with one baseline entry + a current results payload."""
        base = _entry(rows, sha="base", name=name)
        (root / f"BENCH_{name}.json").write_text(json.dumps(
            {"schema": 2, "name": name, "entries": [base]}))
        results = root / "benchmarks" / "results"
        results.mkdir(parents=True, exist_ok=True)
        cur = _entry(current_rows if current_rows is not None else rows,
                     sha="head", name=name)
        (results / f"{name}.json").write_text(json.dumps(cur))
        return results

    def test_enforce_fails_on_inflated_rounds(self, tmp_path, capsys):
        worse = [dict(ROWS[0], rounds=200)]
        results = self._write(tmp_path, ROWS, current_rows=worse)
        code = main(["--root", str(tmp_path), "--results", str(results),
                     "--mode", "enforce"])
        assert code != 0
        assert "perf regression" in capsys.readouterr().err

    def test_warn_mode_reports_but_exits_zero(self, tmp_path, capsys):
        worse = [dict(ROWS[0], rounds=200)]
        results = self._write(tmp_path, ROWS, current_rows=worse)
        code = main(["--root", str(tmp_path), "--results", str(results),
                     "--mode", "warn"])
        assert code == 0
        assert "FAIL" in capsys.readouterr().out

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        results = self._write(tmp_path, ROWS)
        code = main(["--root", str(tmp_path), "--results", str(results)])
        assert code == 0
        assert "0 fail" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        results = self._write(tmp_path, ROWS)
        code = main(["--root", str(tmp_path), "--results", str(results),
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is True
        assert doc["reports"][0]["name"] == "t"

    def test_tolerance_flags_forwarded(self, tmp_path):
        worse = [dict(ROWS[0], rounds=101)]
        results = self._write(tmp_path, ROWS, current_rows=worse)
        assert main(["--root", str(tmp_path), "--results", str(results),
                     "--hard-abs", "1"]) == 0
        assert main(["--root", str(tmp_path), "--results", str(results)]) == 1
