"""Edge-path coverage: error branches and uncommon inputs across layers."""


import pytest

from repro.congest import Forest, Network
from repro.errors import InputError, InvariantViolation
from repro.graphs import (
    VirtualGraphOracle,
    random_connected_graph,
    spanning_tree_of,
)
from repro.treerouting import partition_tree
from repro.treerouting.localcomm import local_flood


class TestLocalFloodErrorPaths:
    def test_flood_detects_unreached_vertices(self):
        # A partition whose local forest was tampered with must fail loudly.
        graph = random_connected_graph(40, seed=301)
        tree = spanning_tree_of(graph, style="dfs", seed=301)
        part = partition_tree(tree, seed=3)
        # Remove one vertex from the local forest to break coverage.
        broken_parent = dict(part.local_forest.parent)
        victim = next(v for v in broken_parent if broken_parent[v] is not None)
        del broken_parent[victim]
        # Forest construction itself rejects dangling children of victim,
        # or (if victim was a leaf) the flood notices incomplete coverage.
        try:
            part.local_forest = Forest.from_parent_map(broken_parent)
        except InputError:
            return
        with pytest.raises(InvariantViolation):
            local_flood(
                Network(graph), part, lambda x: 0, lambda v, val: val
            )


class TestVirtualOracleGated:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = random_connected_graph(60, seed=302)
        virtual = sorted(graph.nodes)[:6]
        oracle = VirtualGraphOracle(graph, virtual, 60)
        return graph, virtual, oracle

    def test_gate_false_blocks_everything_but_sources(self, setup):
        _, virtual, oracle = setup
        dist, _ = oracle.relax_virtual_edges(
            {virtual[0]: 0.0}, forward_if=lambda v, d: False
        )
        assert dist == {virtual[0]: 0.0}

    def test_gate_radius_limits_reach(self, setup):
        graph, virtual, oracle = setup
        free, _ = oracle.relax_virtual_edges({virtual[0]: 0.0})
        radius = sorted(free.values())[len(free) // 2]
        gated, _ = oracle.relax_virtual_edges(
            {virtual[0]: 0.0}, forward_if=lambda v, d: d < radius
        )
        assert len(gated) <= len(free)

    def test_zero_hop_bound_rejected(self, setup):
        graph, virtual, _ = setup
        with pytest.raises(InputError):
            VirtualGraphOracle(graph, virtual, 0)

    def test_m_property(self, setup):
        _, virtual, oracle = setup
        assert oracle.m == len(virtual)


class TestNetworkEdgeCases:
    def test_single_edge_network(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge("a", "b", weight=3.0)
        net = Network(g)
        net.send("a", "b", "hi", 1)
        inbox = net.tick()
        assert inbox["b"][0].payload == 1

    def test_nonstrict_mode_allows_overload(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(1, 2, weight=1.0)
        net = Network(g, strict=False)
        net.send(1, 2, "a")
        net.send(1, 2, "b")  # would raise in strict mode
        inbox = net.tick()
        assert len(inbox[2]) == 2

    def test_edge_capacity_override(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(1, 2, weight=1.0)
        net = Network(g, edge_capacity=2)
        net.send(1, 2, "a")
        net.send(1, 2, "b")
        assert len(net.tick()[2]) == 2


class TestPartitionDegenerateTrees:
    def test_single_vertex_tree(self):
        graph = random_connected_graph(10, seed=303)
        v = sorted(graph.nodes)[0]
        part = partition_tree({v: None}, seed=1)
        assert part.ut == {v}
        assert part.max_local_depth == 0

    def test_two_vertex_tree(self):
        graph = random_connected_graph(10, seed=303)
        nodes = sorted(graph.nodes)
        a = nodes[0]
        b = next(iter(graph.neighbors(a)))
        part = partition_tree({a: None, b: a}, seed=1)
        assert a in part.ut
        assert part.local_root_reference()[b] in part.ut
