"""Remaining unit coverage: error types, composite baseline artifacts,
scheme-level helpers."""

import pytest

from repro.baselines.en16_tree import CompositeLabel, CompositeTable
from repro.errors import (
    CongestModelViolation,
    InputError,
    InvariantViolation,
    MemoryAccountingError,
    ReproError,
    RoutingFailure,
)
from repro.routing import (
    GraphLabel,
    GraphRoutingScheme,
    GraphTable,
    TreeLabel,
    TreeTable,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        CongestModelViolation, InputError, InvariantViolation,
        MemoryAccountingError, RoutingFailure,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise CongestModelViolation("x")


class TestCompositeArtifacts:
    def _label(self):
        return CompositeLabel(
            local_root="w",
            virtual_label=TreeLabel(enter=3, light_edges=(("a", "b"),)),
            crossing_labels=(("a", "b", TreeLabel(enter=9)),),
            local_label=TreeLabel(enter=5),
        )

    def test_label_word_size_counts_crossings(self):
        label = self._label()
        # 1 root + virtual(1+2) + local(1) + crossing(2 + 1)
        assert label.word_size() == 1 + 3 + 1 + 3

    def test_crossing_for_hit(self):
        assert self._label().crossing_for("a", "b").enter == 9

    def test_crossing_for_miss(self):
        assert self._label().crossing_for("x", "y") is None

    def test_table_word_size_with_virtual_parts(self):
        table = CompositeTable(
            local_root="w",
            local_table=TreeTable(enter=1, exit_=4, parent=None, heavy="c"),
            virtual_table=TreeTable(enter=1, exit_=2, parent=None, heavy=None),
            heavy_virtual_child="h",
            heavy_crossing=TreeLabel(enter=2),
        )
        # 1 root + local 4 + virtual 4 + (1 + crossing 1)
        assert table.word_size() == 1 + 4 + 4 + 2

    def test_table_word_size_ordinary_vertex(self):
        table = CompositeTable(
            local_root="w",
            local_table=TreeTable(enter=1, exit_=4, parent="p", heavy=None),
            virtual_table=None,
            heavy_virtual_child=None,
            heavy_crossing=None,
        )
        assert table.word_size() == 1 + 4


class TestGraphSchemeHelpers:
    def _scheme(self):
        t = TreeTable(enter=1, exit_=2, parent=None, heavy=None)
        tables = {
            "u": GraphTable(vertex="u", trees={"r": t}),
            "v": GraphTable(vertex="v", trees={"r": t, "s": t}),
        }
        labels = {
            "u": GraphLabel(vertex="u", entries=(("r", 0.0, TreeLabel(enter=1)),)),
            "v": GraphLabel(vertex="v", entries=(None,)),
        }
        return GraphRoutingScheme(k=1, tables=tables, labels=labels, tree_schemes={})

    def test_max_table_words(self):
        scheme = self._scheme()
        assert scheme.max_table_words() == 1 + 2 * (1 + 4)

    def test_mean_table_words(self):
        scheme = self._scheme()
        assert scheme.mean_table_words() == pytest.approx((6 + 11) / 2)

    def test_max_label_words(self):
        scheme = self._scheme()
        # u: 1 + (1 tag + 2 + 1) = 5 ; v: 1 + 1 tag = 2
        assert scheme.max_label_words() == 5

    def test_graph_table_has_tree(self):
        scheme = self._scheme()
        assert scheme.tables["v"].has_tree("s")
        assert not scheme.tables["u"].has_tree("s")
