"""Tests for the static HTML dashboard (repro.telemetry.dashboard)."""

import json

from repro.telemetry.dashboard import (
    build_dashboard,
    render_dashboard,
    sparkline_svg,
)
from repro.telemetry.trajectory import make_entry

ROWS = [{"scheme": "this-paper", "rounds": 100, "words": 40, "wall_s": 1.0}]


def _bench_file(root, name, entries):
    path = root / f"BENCH_{name}.json"
    path.write_text(json.dumps(
        {"schema": 2, "name": name, "entries": entries}))
    return path


class TestSparkline:
    def test_svg_with_title_tooltips(self):
        svg = sparkline_svg([1, 2, 3], labels=["a", "b", "c"])
        assert svg.startswith("<svg")
        assert "<title>" in svg

    def test_flat_and_single_point_series_render(self):
        assert "<svg" in sparkline_svg([5, 5, 5])
        assert "<svg" in sparkline_svg([7])

    def test_empty_series_renders_placeholder(self):
        assert "svg" not in sparkline_svg([])


class TestRender:
    def test_renders_trajectory_with_sparklines(self, tmp_path):
        entries = [make_entry("t", [dict(r, rounds=100 + i) for r in ROWS],
                              {"workload": {"n": 10}}, sha=f"s{i}",
                              package_version="1")
                   for i in range(3)]
        path = _bench_file(tmp_path, "t", entries)
        html = render_dashboard([path])
        assert "<!doctype html>" in html
        assert "<svg" in html
        assert "rounds" in html
        assert "<script" not in html  # self-contained, no JS

    def test_regression_verdict_shown(self, tmp_path):
        base = make_entry("t", ROWS, {"workload": {"n": 10}}, sha="a",
                          package_version="1")
        worse = make_entry("t", [dict(ROWS[0], rounds=150)],
                           {"workload": {"n": 10}}, sha="b",
                           package_version="1")
        path = _bench_file(tmp_path, "t", [base, worse])
        html = render_dashboard([path])
        assert "regressed" in html or "fail" in html.lower()

    def test_legacy_single_object_file_renders(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps(
            {"name": "old", "created_unix": 1.0, "package_version": "0.1",
             "meta": {}, "data": ROWS}))
        html = render_dashboard([path])
        assert "old" in html

    def test_no_benches_still_renders(self):
        html = render_dashboard([])
        assert "<!doctype html>" in html


class TestBuild:
    def test_build_globs_repo_root(self, tmp_path):
        entries = [make_entry("t", ROWS, {}, sha=s, package_version="1")
                   for s in ("a", "b")]
        _bench_file(tmp_path, "t", entries)
        out = build_dashboard(tmp_path, tmp_path / "dash.html")
        html = out.read_text()
        assert "rounds" in html and "<svg" in html

    def test_cli_dashboard_renders_all_bench_files(self, tmp_path, capsys):
        from repro.__main__ import main

        for name in ("alpha", "beta"):
            _bench_file(tmp_path, name,
                        [make_entry(name, ROWS, {}, sha="a",
                                    package_version="1")])
        out = tmp_path / "dash.html"
        code = main(["dashboard", "--out", str(out), "--root",
                     str(tmp_path), "--quiet"])
        assert code == 0
        html = out.read_text()
        assert "alpha" in html and "beta" in html

    def test_cli_dashboard_includes_records(self, tmp_path):
        from repro.__main__ import main

        rec = tmp_path / "rec.json"
        code = main(["trace", "tree-rounds", "--quiet", "--out", str(rec)])
        assert code == 0
        out = tmp_path / "dash.html"
        code = main(["dashboard", "--out", str(out), "--root",
                     str(tmp_path), "--record", str(rec), "--quiet"])
        assert code == 0
        assert "fig/tree-rounds" in out.read_text()


class TestMetricsPanel:
    def test_monitor_record_renders_live_metrics(self, tmp_path):
        from repro.graphs import random_connected_graph
        from repro.metrics import run_monitor
        from repro.tz import build_centralized_scheme

        graph = random_connected_graph(50, seed=5)
        scheme = build_centralized_scheme(graph, 2, seed=5)
        _, record = run_monitor(scheme, graph, queries=150, seed=5)
        rec = tmp_path / "monitor.json"
        rec.write_text(record.to_json())
        html = render_dashboard([], record_paths=[rec])
        assert "Live metrics" in html
        assert "repro_serve_queries_total" in html
        assert "repro_serve_latency_us" in html
        assert "SLO" in html and "budget remaining" in html

    def test_degraded_monitor_record_shows_alerts(self, tmp_path):
        from repro.graphs import random_connected_graph
        from repro.metrics import run_monitor
        from repro.tz import build_centralized_scheme

        graph = random_connected_graph(50, seed=6)
        scheme = build_centralized_scheme(graph, 2, seed=6)
        _, record = run_monitor(scheme, graph, queries=400, seed=6,
                                slo_bound=0.5, target_qps=100.0)
        rec = tmp_path / "degraded.json"
        rec.write_text(record.to_json())
        html = render_dashboard([], record_paths=[rec])
        assert "firing" in html
