"""Cost-regression guards.

These tests pin the *measured* construction costs of the flagship
workloads with generous headroom.  They are not asymptotic claims (the
benchmarks assert those); they catch accidental regressions in the round
or memory accounting -- e.g. a stage that forgets to free scratch memory,
or a charge formula that silently doubles.
"""

import pytest

from repro.baselines import build_en16_tree_scheme
from repro.congest import Network
from repro.core import build_distributed_scheme
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.treerouting import build_distributed_tree_scheme


@pytest.fixture(scope="module")
def workload():
    graph = random_connected_graph(400, seed=231)
    tree = spanning_tree_of(graph, style="dfs", seed=231)
    return graph, tree


class TestTreeRoutingBudgets:
    @pytest.fixture(scope="class")
    def build(self, workload):
        graph, tree = workload
        net = Network(graph)
        return net, build_distributed_tree_scheme(net, tree, seed=23)

    def test_round_budget(self, build):
        _, b = build
        # measured ~1.4k at n=400; triple headroom.
        assert b.rounds <= 4500

    def test_memory_budget(self, build):
        _, b = build
        # measured 25-ish; headroom to 45.
        assert b.max_memory_words <= 45

    def test_message_budget(self, build):
        _, b = build
        # O(n log n) scale traffic; measured ~160k charged message events.
        assert b.messages <= 600_000

    def test_no_scratch_left_behind(self, build):
        net, _ = build
        # Final footprint per vertex: artifacts + partition info + sizes,
        # but none of the freed per-stage scratch keys.
        for v in net.nodes():
            for key, _ in net.mem(v).items():
                assert not key.endswith("/s-extra")
                assert not key.endswith("/enter-local")
                assert not key.endswith("/light-local")
                assert "relay/" not in key

    def test_baseline_round_budget(self, workload):
        graph, tree = workload
        net = Network(graph)
        base = build_en16_tree_scheme(net, tree, seed=23)
        assert base.rounds <= 2000


class TestGeneralSchemeBudgets:
    @pytest.fixture(scope="class")
    def report(self):
        graph = random_connected_graph(150, seed=232)
        return build_distributed_scheme(graph, 3, seed=23)

    def test_round_budget(self, report):
        # measured ~30k sequential at n=150; generous triple headroom.
        assert report.rounds_sequential <= 120_000

    def test_memory_budget(self, report):
        assert report.max_memory_words <= 2000

    def test_parallel_not_exceeding_sequential(self, report):
        assert report.rounds_parallel_estimate <= report.rounds_sequential

    def test_tables_budget(self, report):
        assert report.scheme.max_table_words() <= 400

    def test_labels_budget(self, report):
        assert report.scheme.max_label_words() <= 40
