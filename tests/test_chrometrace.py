"""Tests for the Chrome trace_event export (repro.telemetry.chrometrace)."""

import json

import pytest

from repro.congest import Network
from repro.graphs import random_connected_graph
from repro.telemetry import (
    attach_flight_recorder,
    collect,
    span,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _spans_with_work():
    """A small real span tree with round counters attached."""
    with collect() as tele:
        with span("build"):
            net = Network(random_connected_graph(10, seed=2))
            with span("chat"):
                nodes = sorted(net.nodes())
                u, w = nodes[0], next(net.neighbors(nodes[0]))
                for _ in range(4):
                    net.send(u, w, "ping")
                    net.tick()
            with span("charge"):
                net.charge_rounds(7)
    return tele.span_dicts()


class TestExport:
    def test_roundtrip_through_json(self, tmp_path):
        spans = _spans_with_work()
        path = write_chrome_trace(tmp_path / "t.json", spans)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_balanced_b_e_pairs(self):
        doc = to_chrome_trace(_spans_with_work())
        b = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        e = [e for e in doc["traceEvents"] if e["ph"] == "E"]
        assert len(b) == len(e) == 3
        assert {ev["name"] for ev in b} == {"build", "chat", "charge"}

    def test_timestamps_monotone_per_track(self):
        doc = to_chrome_trace(_spans_with_work())
        seen = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "M":
                continue
            track = (ev["pid"], ev.get("tid"))
            assert ev["ts"] >= seen.get(track, float("-inf"))
            seen[track] = ev["ts"]

    def test_counter_tracks_accumulate_rounds(self):
        doc = to_chrome_trace(_spans_with_work())
        rounds = [e for e in doc["traceEvents"]
                  if e["ph"] == "C" and e["name"] == "congest.rounds"]
        assert rounds
        values = [e["args"]["rounds"] for e in rounds]
        assert values == sorted(values)
        assert values[-1] == 4

    def test_nesting_preserved(self):
        doc = to_chrome_trace(_spans_with_work())
        order = [(e["ph"], e["name"]) for e in doc["traceEvents"]
                 if e["ph"] in "BE"]
        assert order.index(("B", "build")) < order.index(("B", "chat"))
        assert order.index(("E", "chat")) < order.index(("E", "build"))

    def test_legacy_spans_without_t0_laid_out_sequentially(self):
        spans = [
            {"name": "a", "wall_s": 1.0, "counters": {}, "children": []},
            {"name": "b", "wall_s": 2.0, "counters": {}, "children": []},
        ]
        doc = to_chrome_trace(spans)
        assert validate_chrome_trace(doc) == []
        b_events = {e["name"]: e["ts"] for e in doc["traceEvents"]
                    if e["ph"] == "B"}
        assert b_events["b"] == pytest.approx(1.0 * 1e6)

    def test_flight_counter_tracks(self):
        net = Network(random_connected_graph(8, seed=6))
        rec = attach_flight_recorder(net, stride=1)
        nodes = sorted(net.nodes())
        for r in range(3):
            net.mem(nodes[0]).store("tree/x", r + 1)
            net.send(nodes[0], next(net.neighbors(nodes[0])), "m")
            net.tick()
        doc = to_chrome_trace([], flight=rec.to_dict())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "C"}
        assert {"flight.traffic", "flight.memory",
                "flight.memory_by_prefix"} <= names
        # flight clock is the simulated round index
        traffic_ts = [e["ts"] for e in doc["traceEvents"]
                      if e.get("name") == "flight.traffic"]
        assert traffic_ts == [1.0, 2.0, 3.0]

    def test_multiple_flight_recorders_get_own_pids(self):
        payload = {"samples": [{"round": 1, "messages": 1, "words": 1,
                                "mem_current_max": 0,
                                "mem_high_water_max": 0, "prefixes": {}}]}
        doc = to_chrome_trace([], flight=[payload, dict(payload)])
        pids = {e["pid"] for e in doc["traceEvents"]
                if e.get("name") == "flight.traffic"}
        assert pids == {2, 3}


class TestValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "pid": 1, "ts": 0}]}
        assert any("unknown ph" in p for p in validate_chrome_trace(doc))

    def test_rejects_decreasing_ts(self):
        doc = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 5},
            {"ph": "E", "name": "a", "pid": 1, "tid": 1, "ts": 3},
        ]}
        assert any("decreases" in p for p in validate_chrome_trace(doc))

    def test_rejects_unbalanced_spans(self):
        doc = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0},
        ]}
        assert any("unclosed" in p for p in validate_chrome_trace(doc))

    def test_rejects_mismatched_close(self):
        doc = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "E", "name": "b", "pid": 1, "tid": 1, "ts": 1},
        ]}
        assert any("closes" in p for p in validate_chrome_trace(doc))


class TestCli:
    def test_trace_chrome_flag_writes_valid_file(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "trace.json"
        code = main(["trace", "fig1_tree_rounds", "--chrome", str(out),
                     "--quiet"])
        assert code == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["traceEvents"]

    def test_trace_flight_embeds_flight_payloads(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "rec.json"
        code = main(["trace", "tree-rounds", "--flight", "--stride", "8",
                     "--quiet", "--out", str(out)])
        assert code == 0
        rec = json.loads(out.read_text())
        assert rec["flight"]
        assert all(f["rounds_seen"] > 0 for f in rec["flight"])
