"""End-to-end tests of the general-graph distributed scheme (Theorem 3)."""

import math

import pytest

from repro.core import build_distributed_scheme
from repro.errors import InputError
from repro.graphs import grid_graph, random_connected_graph, ring_of_cliques
from repro.routing import measure_stretch, route_in_graph, sample_pairs


@pytest.fixture(scope="module")
def report():
    graph = random_connected_graph(160, seed=141)
    return graph, build_distributed_scheme(graph, 3, seed=7)


class TestValidation:
    def test_k1_rejected(self):
        graph = random_connected_graph(30, seed=1)
        with pytest.raises(InputError):
            build_distributed_scheme(graph, 1)

    def test_huge_epsilon_rejected(self):
        graph = random_connected_graph(30, seed=1)
        with pytest.raises(InputError):
            build_distributed_scheme(graph, 2, epsilon=0.5)

    def test_disconnected_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(1, 2, weight=1.0)
        g.add_edge(3, 4, weight=1.0)
        with pytest.raises(InputError):
            build_distributed_scheme(g, 2)


class TestTheorem3Claims:
    def test_stretch_within_bound(self, report):
        graph, rep = report
        pairs = sample_pairs(list(graph.nodes), 150, seed=9)
        stretch = measure_stretch(rep.scheme, graph, pairs)
        assert stretch.max_stretch <= 4 * rep.k - 3 + 1e-9

    def test_labels_are_k_log_n(self, report):
        graph, rep = report
        n = graph.number_of_nodes()
        # O(k log n) with explicit constant: k entries of <= 3 + 2 log n.
        assert rep.scheme.max_label_words() <= rep.k * (4 + 2 * math.log2(n))

    def test_tables_near_claim6(self, report):
        graph, rep = report
        n = graph.number_of_nodes()
        bound = 4 * n ** (1 / rep.k) * math.log(n)  # trees per vertex (whp)
        assert rep.max_trees_per_vertex <= bound
        assert rep.scheme.max_table_words() <= 7 * bound

    def test_memory_within_polylog_of_table(self, report):
        graph, rep = report
        n = graph.number_of_nodes()
        polylog = math.log2(n) ** 2
        assert rep.max_memory_words <= 8 * polylog * rep.scheme.max_table_words()

    def test_every_pair_routable(self, report):
        graph, rep = report
        nodes = sorted(graph.nodes)
        for u in nodes[:6]:
            for v in nodes[-6:]:
                if u != v:
                    result = route_in_graph(rep.scheme, graph, u, v)
                    assert result.path[0] == u and result.path[-1] == v

    def test_headers_small(self, report):
        graph, rep = report
        n = graph.number_of_nodes()
        nodes = sorted(graph.nodes)
        result = route_in_graph(rep.scheme, graph, nodes[0], nodes[-1])
        assert result.header_words <= 3 + 2 * math.log2(n)

    def test_report_phases_recorded(self, report):
        _, rep = report
        assert rep.phase_rounds
        assert rep.rounds_parallel_estimate <= rep.rounds_sequential

    def test_virtual_size_near_sqrt(self, report):
        graph, rep = report
        # |A_{ceil(k/2)}| = n^{1-ceil(k/2)/k}; very loose concentration check.
        assert 1 <= rep.virtual_size <= graph.number_of_nodes() / 2


class TestGraphFamilies:
    @pytest.mark.parametrize("maker,kwargs", [
        (grid_graph, {"rows": 9, "cols": 9}),
        (ring_of_cliques, {"cliques": 6, "clique_size": 10}),
    ])
    def test_other_topologies(self, maker, kwargs):
        graph = maker(seed=3, **kwargs)
        rep = build_distributed_scheme(graph, 2, seed=3)
        pairs = sample_pairs(list(graph.nodes), 80, seed=4)
        stretch = measure_stretch(rep.scheme, graph, pairs)
        assert stretch.max_stretch <= 4 * 2 - 3 + 1e-9

    def test_k2_and_k4(self):
        graph = random_connected_graph(120, seed=142)
        for k in (2, 4):
            rep = build_distributed_scheme(graph, k, seed=5)
            pairs = sample_pairs(list(graph.nodes), 80, seed=6)
            stretch = measure_stretch(rep.scheme, graph, pairs)
            assert stretch.max_stretch <= 4 * k - 3 + 1e-9

    def test_best_mode_not_worse(self, report):
        graph, rep = report
        pairs = sample_pairs(list(graph.nodes), 100, seed=11)
        first = measure_stretch(rep.scheme, graph, pairs)
        best = measure_stretch(rep.scheme, graph, pairs, mode="best")
        assert best.mean_stretch <= first.mean_stretch + 1e-9
