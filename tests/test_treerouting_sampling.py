"""Unit tests for U-sampling and the local-tree partition (Section 3)."""

import random

import pytest

from repro.errors import InputError
from repro.graphs import depths, random_connected_graph, spanning_tree_of, tree_root
from repro.treerouting import (
    default_sampling_probability,
    expected_local_depth_bound,
    partition_tree,
)


@pytest.fixture(scope="module")
def tree():
    g = random_connected_graph(300, seed=61)
    return spanning_tree_of(g, style="dfs", seed=61)


class TestSamplingProbability:
    def test_single_tree_default(self):
        assert default_sampling_probability(400) == pytest.approx(1 / 20)

    def test_multi_tree_smaller(self):
        assert default_sampling_probability(400, 4) == pytest.approx(1 / 40)

    def test_capped_at_one(self):
        assert default_sampling_probability(1) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(InputError):
            default_sampling_probability(0)


class TestPartition:
    def test_root_always_in_ut(self, tree):
        part = partition_tree(tree, seed=3)
        assert tree_root(tree) in part.ut

    def test_injected_rng_overrides_seed_and_salt(self, tree):
        a = partition_tree(tree, seed=1, salt="a", rng=random.Random(5))
        b = partition_tree(tree, seed=2, salt="b", rng=random.Random(5))
        assert a.ut == b.ut
        c = partition_tree(tree, rng=random.Random(6))
        assert a.ut != c.ut

    def test_local_forest_roots_are_ut(self, tree):
        part = partition_tree(tree, seed=3)
        assert set(part.local_forest.roots) == part.ut

    def test_local_forest_preserves_other_parents(self, tree):
        part = partition_tree(tree, seed=3)
        for v, p in part.local_forest.parent.items():
            if v not in part.ut:
                assert p == tree[v]

    def test_local_depth_bounded_whp(self, tree):
        n = len(tree)
        q = default_sampling_probability(n)
        part = partition_tree(tree, q=q, seed=3)
        bound = 6 * expected_local_depth_bound(n, q)
        assert part.max_local_depth <= bound

    def test_deterministic_per_seed_and_salt(self, tree):
        a = partition_tree(tree, seed=3, salt="x")
        b = partition_tree(tree, seed=3, salt="x")
        c = partition_tree(tree, seed=3, salt="y")
        assert a.ut == b.ut
        assert a.ut != c.ut or len(tree) < 50  # salts decorrelate whp

    def test_q_one_puts_everyone_in_ut(self, tree):
        part = partition_tree(tree, q=1.0, seed=3)
        assert part.ut == set(tree)
        assert part.max_local_depth == 0

    def test_bad_q_rejected(self, tree):
        with pytest.raises(InputError):
            partition_tree(tree, q=0.0)

    def test_local_root_reference_covers_tree(self, tree):
        part = partition_tree(tree, seed=3)
        roots = part.local_root_reference()
        assert set(roots) == set(tree)
        for v, r in roots.items():
            assert r in part.ut

    def test_virtual_parent_reference_points_to_ut(self, tree):
        part = partition_tree(tree, seed=3)
        vpar = part.virtual_parent_reference()
        root = tree_root(tree)
        assert vpar[root] is None
        for x, p in vpar.items():
            if x != root:
                assert p in part.ut

    def test_virtual_tree_depth_compresses(self, tree):
        # The virtual tree has far fewer levels than T itself.
        part = partition_tree(tree, seed=3)
        vpar = part.virtual_parent_reference()
        def vdepth(x):
            d = 0
            while vpar[x] is not None:
                x = vpar[x]
                d += 1
            return d
        max_vdepth = max(vdepth(x) for x in part.ut)
        tree_depth = max(depths(tree).values())
        assert max_vdepth < tree_depth
