"""Tests for ``repro.lint`` — the CONGEST-invariant static analyzer (S17).

Each rule gets crafted positive *and* negative snippets (the positive must
fire, the negative must stay silent), the shipped reference programs must
lint clean, the baseline file must round-trip, and the whole repository
must be clean under the committed baseline — that last test is the
acceptance criterion of the PR itself.
"""

import json
import textwrap

import pytest

from repro.__main__ import build_parser, main
from repro.errors import InputError
from repro.lint import (
    ALL_RULES,
    UNJUSTIFIED,
    Baseline,
    BaselineEntry,
    Finding,
    iter_python_files,
    parse_module,
    prune_baseline,
    resolve_rules,
    run_lint,
    write_baseline,
)
from repro.lint.runner import DEFAULT_BASELINE, REPO_ROOT


def lint_snippet(tmp_path, source, *, rules=None,
                 relpath="src/repro/congest/snippet.py", extra=None):
    """Lint dedented ``source`` written at ``relpath`` under a tmp repo."""
    files = {relpath: source, **(extra or {})}
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    return run_lint(["src"], rules=rules, baseline=Baseline(),
                    root=tmp_path)


def rule_ids(report):
    return sorted({f.rule for f in report.findings})


# ---------------------------------------------------------------------------
# REP001 — CONGEST locality
# ---------------------------------------------------------------------------

class TestCongestLocality:
    def test_cheating_via_private_api_net_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Cheat(NodeProgram):
                def on_round(self, api, inbox):
                    return self._api._net.nodes()
        """, rules="REP001")
        assert rule_ids(report) == ["REP001"]
        assert any("_net" in f.message for f in report.findings)
        assert report.findings[0].context == "Cheat.on_round"

    def test_network_name_access_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Peek(NodeProgram):
                def on_round(self, api, inbox):
                    return net.arcs
        """, rules="REP001")
        assert any("must not hold the Network" in f.message
                   for f in report.findings)

    def test_network_construction_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Build(NodeProgram):
                def init(self, api):
                    self.world = Network(graph)
        """, rules="REP001")
        assert any("Network(...)" in f.message for f in report.findings)

    def test_global_statement_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            SEEN = set()

            class Shared(NodeProgram):
                def on_round(self, api, inbox):
                    global SEEN
        """, rules="REP001")
        assert any("global SEEN" in f.message for f in report.findings)

    def test_transitive_subclass_is_scoped(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Base(NodeProgram):
                pass

            class Derived(Base):
                def on_round(self, api, inbox):
                    api._net
        """, rules="REP001")
        assert report.findings and report.findings[0].context.startswith(
            "Derived")

    def test_well_behaved_program_is_silent(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Good(NodeProgram):
                def init(self, api):
                    self._value = api.id
                    api.broadcast("hello", self._value)

                def on_round(self, api, inbox):
                    for msg in inbox:
                        if msg.payload > self._value:
                            self._value = msg.payload
                    api.halt()
        """, rules="REP001")
        assert report.clean

    def test_private_access_outside_programs_is_out_of_scope(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def helper(net):
                return net._graph
        """, rules="REP001")
        assert report.clean


# ---------------------------------------------------------------------------
# REP002 — unseeded randomness
# ---------------------------------------------------------------------------

class TestUnseededRandomness:
    def test_module_global_draw_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import random

            def pick(xs):
                return random.sample(xs, 2)
        """, rules="REP002")
        assert rule_ids(report) == ["REP002"]

    def test_unseeded_random_constructor_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import random

            rng = random.Random()
        """, rules="REP002")
        assert any("seeds from the OS" in f.message for f in report.findings)

    def test_from_import_draw_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            from random import shuffle

            def mix(xs):
                shuffle(xs)
        """, rules="REP002")
        assert any("imported from 'random'" in f.message
                   for f in report.findings)

    def test_numpy_legacy_global_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
        """, rules="REP002")
        assert any("legacy" in f.message for f in report.findings)

    def test_seeded_and_injected_streams_are_silent(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import random
            import numpy as np
            from random import Random

            def pick(xs, rng=None):
                rng = rng if rng is not None else random.Random(42)
                gen = np.random.default_rng(7)
                other = Random("salt/0")
                return rng.sample(xs, 2), gen, other.random()
        """, rules="REP002")
        assert report.clean

    def test_no_random_import_means_no_work(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def random(x):
                return x  # a local name, not the module
        """, rules="REP002")
        assert report.clean


# ---------------------------------------------------------------------------
# REP003 — unaccounted sends
# ---------------------------------------------------------------------------

class TestUnaccountedSends:
    def test_fabricated_width_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def forge(src, dst, payload):
                return Message(src, dst, "k", payload, 1)
        """, rules="REP003")
        assert rule_ids(report) == ["REP003"]

    def test_fabricated_keyword_width_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def forge(src, dst, payload):
                return Message(src, dst, "k", payload, words=3)
        """, rules="REP003")
        assert rule_ids(report) == ["REP003"]

    def test_rewriting_a_message_width_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def shrink(msg):
                msg.words = 1
        """, rules="REP003")
        assert any("assignment to '.words'" in f.message
                   for f in report.findings)

    def test_words_of_derived_width_is_silent(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def sized(src, dst, payload):
                return Message(src, dst, "k", payload, words_of(payload))
        """, rules="REP003")
        assert report.clean

    def test_enclosing_words_of_call_is_silent(self, tmp_path):
        # The fast-path batching pattern: size once, reuse for the batch.
        report = lint_snippet(tmp_path, """
            def broadcast(src, ports, payload):
                words = words_of(payload)
                return [Message(src, p, "k", payload, words) for p in ports]
        """, rules="REP003")
        assert report.clean

    def test_copying_an_existing_width_is_silent(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def forward(msg, nxt):
                return Message(msg.dst, nxt, msg.kind, msg.payload, msg.words)
        """, rules="REP003")
        assert report.clean

    def test_self_words_in_constructor_is_silent(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Message:
                def __init__(self, payload):
                    self.words = words_of(payload)
        """, rules="REP003")
        assert report.clean


# ---------------------------------------------------------------------------
# REP004 — memory-meter bypass
# ---------------------------------------------------------------------------

class TestMemoryMeterBypass:
    def test_unmetered_growth_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Hoarder(NodeProgram):
                def on_round(self, api, inbox):
                    for msg in inbox:
                        self.seen.add(msg.src)
        """, rules="REP004")
        assert rule_ids(report) == ["REP004"]
        assert "self.seen.add" in report.findings[0].message

    def test_unmetered_subscript_store_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Tabler(NodeProgram):
                def on_round(self, api, inbox):
                    for msg in inbox:
                        self.table[msg.src] = msg.payload
        """, rules="REP004")
        assert rule_ids(report) == ["REP004"]

    def test_container_augassign_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Grower(NodeProgram):
                def on_round(self, api, inbox):
                    self.buf += [m.payload for m in inbox]
        """, rules="REP004")
        assert rule_ids(report) == ["REP004"]

    def test_charged_growth_is_silent(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Metered(NodeProgram):
                def on_round(self, api, inbox):
                    for msg in inbox:
                        self.seen.add(msg.src)
                        api.memory.store(("seen", msg.src), msg.src)
        """, rules="REP004")
        assert report.clean

    def test_scalar_counters_are_silent(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Counter(NodeProgram):
                def on_round(self, api, inbox):
                    self.rounds += 1
                    self.best = max(self.best, len(inbox))
        """, rules="REP004")
        assert report.clean

    def test_growth_outside_programs_is_out_of_scope(self, tmp_path):
        # Procedural phases charge through net.mem(v); covered dynamically.
        report = lint_snippet(tmp_path, """
            class Builder:
                def collect(self, items):
                    self.bag.extend(items)
        """, rules="REP004")
        assert report.clean


# ---------------------------------------------------------------------------
# REP005 — hot-path hygiene
# ---------------------------------------------------------------------------

class TestHotPathHygiene:
    def test_slotless_loop_instantiated_class_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Packet:
                def __init__(self, i):
                    self.i = i
        """, rules="REP005", extra={
            "src/repro/congest/pump.py": """
                from .snippet import Packet

                def pump(n):
                    return [Packet(i) for i in range(n)]
            """,
        })
        assert rule_ids(report) == ["REP005"]
        f = report.findings[0]
        assert f.path.endswith("congest/snippet.py")  # flagged at the def
        assert "pump.py" in f.message  # ...pointing at the loop site

    def test_slotted_class_is_silent(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Packet:
                __slots__ = ("i",)

                def __init__(self, i):
                    self.i = i

            def pump(n):
                return [Packet(i) for i in range(n)]
        """, rules="REP005")
        assert report.clean

    def test_cold_instantiation_is_silent(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Config:
                def __init__(self):
                    self.x = 1

            def load():
                return Config()
        """, rules="REP005")
        assert report.clean

    def test_non_hot_packages_are_out_of_scope(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Row:
                def __init__(self, v):
                    self.v = v

            def rows(n):
                return [Row(i) for i in range(n)]
        """, rules="REP005", relpath="src/repro/analysis/snippet.py")
        assert report.clean


# ---------------------------------------------------------------------------
# REP006 — hot-path metric labels
# ---------------------------------------------------------------------------

class TestHotLabelAllocation:
    def test_labels_dict_in_loop_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def serve_all(registry, queries):
                for q in queries:
                    registry.counter("served_total",
                                     labels={"workload": q.kind}).inc()
        """, rules="REP006", relpath="src/repro/serve/snippet.py")
        assert rule_ids(report) == ["REP006"]
        messages = [f.message for f in report.findings]
        assert any("labels dict" in m for m in messages)
        assert any("instrument lookup" in m for m in messages)

    def test_labels_dict_comprehension_in_loop_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def mark(meter, batches):
                while batches:
                    b = batches.pop()
                    record(b, labels={k: v for k, v in b.tags})
        """, rules="REP006", relpath="src/repro/metrics/snippet.py")
        assert rule_ids(report) == ["REP006"]

    def test_lookup_inside_comprehension_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def gauges(reg, names):
                return [reg.gauge(n) for n in names]
        """, rules="REP006", relpath="src/repro/metrics/snippet.py")
        assert rule_ids(report) == ["REP006"]

    def test_registration_time_dict_is_clean(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Bundle:
                def __init__(self, registry, workload):
                    self.served = registry.counter(
                        "served_total", labels={"workload": workload})

                def on_batch(self, n):
                    for _ in range(n):
                        self.served.inc()
        """, rules="REP006", relpath="src/repro/serve/snippet.py")
        assert report.clean

    def test_held_instrument_mutation_in_loop_is_clean(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def drain(counter, events):
                for e in events:
                    counter.inc(e.weight)
        """, rules="REP006", relpath="src/repro/serve/snippet.py")
        assert report.clean

    def test_other_packages_are_out_of_scope(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def tally(registry, rounds):
                for r in rounds:
                    registry.counter("rounds", labels={"phase": r.phase})
        """, rules="REP006", relpath="src/repro/congest/snippet.py")
        assert report.clean


# ---------------------------------------------------------------------------
# REP007 — sampler-guarded trace capture
# ---------------------------------------------------------------------------

class TestUnguardedTraceCapture:
    def test_unconditional_trace_construction_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def route_many(engine, pairs):
                for u, v in pairs:
                    trace = QueryTrace(f"q-{u}", u, v)
                    engine.route(u, v)
        """, rules="REP007", relpath="src/repro/serve/snippet.py")
        assert rule_ids(report) == ["REP007"]
        assert any("QueryTrace" in f.message for f in report.findings)

    def test_unconditional_capture_call_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def route_many(engine, recorder, pairs):
                for u, v in pairs:
                    engine.route(u, v)
                    recorder.capture_pair(engine, u, v)
        """, rules="REP007", relpath="src/repro/serve/snippet.py")
        assert rule_ids(report) == ["REP007"]
        assert any("capture_pair" in f.message for f in report.findings)

    def test_sampler_guarded_capture_is_clean(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def route_many(engine, tracer, pairs):
                sample = tracer.sample_head if tracer is not None else None
                for u, v in pairs:
                    engine.route(u, v)
                    sampled = sample is not None and sample()
                    if sampled:
                        tracer.capture_pair(engine, u, v)
        """, rules="REP007", relpath="src/repro/serve/snippet.py")
        assert report.clean

    def test_tracer_none_check_guard_is_clean(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def route_recorded(self, pairs):
                for u, v in pairs:
                    t = self.tracer
                    if t is not None and t.sample_head():
                        t.capture_pair(self, u, v)
        """, rules="REP007", relpath="src/repro/serve/snippet.py")
        assert report.clean

    def test_else_branch_of_guard_still_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def route_many(engine, tracer, pairs):
                for u, v in pairs:
                    if tracer.sample_head():
                        pass
                    else:
                        tracer.capture_pair(engine, u, v)
        """, rules="REP007", relpath="src/repro/serve/snippet.py")
        assert rule_ids(report) == ["REP007"]

    def test_outside_loops_is_clean(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def replay_one(engine, recorder, u, v):
                return recorder.capture_pair(engine, u, v)
        """, rules="REP007", relpath="src/repro/serve/snippet.py")
        assert report.clean

    def test_tracing_package_is_out_of_scope(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def finalize(engine, results):
                return [replay(engine, r) for r in results
                        if QueryTrace(r.id, r.u, r.v)]
        """, rules="REP007", relpath="src/repro/tracing/snippet.py")
        assert report.clean


# ---------------------------------------------------------------------------
# REP008 — packed tables never pickle across processes
# ---------------------------------------------------------------------------

class TestPackedTablePickle:
    def test_pickled_compiled_scheme_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import pickle

            def ship(compiled, conn):
                conn.send_bytes(pickle.dumps(compiled))
        """, rules="REP008", relpath="src/repro/shard/snippet.py")
        assert rule_ids(report) == ["REP008"]

    def test_packed_table_on_pipe_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def dispatch(conn, packed_tables, pairs):
                conn.send(("serve", packed_tables, pairs))
        """, rules="REP008", relpath="src/repro/shard/snippet.py")
        assert rule_ids(report) == ["REP008"]
        assert any("manifest" in f.message for f in report.findings)

    def test_process_args_with_compiled_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import multiprocessing as mp

            def start(worker_main, compiled, graph):
                proc = mp.Process(target=worker_main,
                                  args=(compiled, graph))
                proc.start()
                return proc
        """, rules="REP008", relpath="src/repro/serve/snippet.py")
        assert rule_ids(report) == ["REP008"]

    def test_queue_put_sealed_fires(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def enqueue(q, sealed):
                q.put(sealed)
        """, rules="REP008", relpath="src/repro/shard/snippet.py")
        assert rule_ids(report) == ["REP008"]

    def test_manifest_and_measurements_are_clean(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import json

            def dispatch(conn, manifest, pairs, params):
                conn.send(("manifest", json.dumps(manifest)))
                conn.send(("serve", pairs, params))

            def reply(conn, report_rows):
                conn.send(("report", report_rows))
        """, rules="REP008", relpath="src/repro/shard/snippet.py")
        assert report.clean

    def test_pickle_of_non_packed_value_is_clean(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import pickle

            def stash(results):
                return pickle.dumps(results)
        """, rules="REP008", relpath="src/repro/shard/snippet.py")
        assert report.clean

    def test_out_of_scope_package_is_clean(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import pickle

            def ship(compiled, conn):
                conn.send(pickle.dumps(compiled))
        """, rules="REP008", relpath="src/repro/congest/snippet.py")
        assert report.clean

    def test_pragma_justifies_fork_inheritance(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import multiprocessing as mp

            def start(worker_main, compiled, graph):
                return mp.Process(  # lint: ignore[REP008] -- fork-only
                    target=worker_main, args=(compiled, graph))
        """, rules="REP008", relpath="src/repro/shard/snippet.py")
        assert report.clean
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# Pragmas, baseline, runner
# ---------------------------------------------------------------------------

class TestPragmas:
    def test_same_line_pragma_suppresses(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import random

            x = random.random()  # lint: ignore[REP002] -- demo stream
        """, rules="REP002")
        assert report.clean
        assert len(report.suppressed) == 1

    def test_line_above_pragma_suppresses(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import random

            # lint: ignore[REP002] -- demo stream
            x = random.random()
        """, rules="REP002")
        assert report.clean and len(report.suppressed) == 1

    def test_bare_pragma_suppresses_every_rule(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import random

            x = random.random()  # lint: ignore
        """, rules="REP002")
        assert report.clean

    def test_pragma_for_another_rule_does_not_suppress(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import random

            x = random.random()  # lint: ignore[REP001]
        """, rules="REP002")
        assert rule_ids(report) == ["REP002"]


class TestPragmaParsingEdgeCases:
    def _parse(self, tmp_path, source):
        path = tmp_path / "snippet.py"
        path.write_text(textwrap.dedent(source))
        return parse_module(path, tmp_path)

    def test_multi_rule_list_suppresses_each(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import random

            x = random.random()  # lint: ignore[REP002, REP001] -- demo
        """, rules="REP001,REP002")
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_multi_rule_record_parses_both_and_reason(self, tmp_path):
        mod = self._parse(tmp_path, """
            x = 1  # lint: ignore[REP003,REP007] -- prebuilt, freed later
        """)
        (record,) = mod.pragmas
        assert record.rules == frozenset({"REP003", "REP007"})
        assert record.reason == "prebuilt, freed later"

    def test_reason_keeps_trailing_prose(self, tmp_path):
        mod = self._parse(tmp_path, """
            x = 1  # lint: ignore[REP004] -- scratch (freed; see docs #12)
        """)
        assert mod.pragmas[0].reason == "scratch (freed; see docs #12)"

    def test_pragma_above_decorator_covers_the_def(self, tmp_path):
        mod = self._parse(tmp_path, """
            import functools

            # lint: ignore[REP001] -- fixture helper
            @functools.lru_cache()
            def helper():
                return 1
        """)
        # The pragma sits two lines above the ``def`` (decorator stack in
        # between) yet must suppress findings anchored at the def line.
        def_line = next(l for l, t in enumerate(mod.lines, 1)
                        if t.startswith("def helper"))
        assert mod.suppressed("REP001", def_line)
        assert not mod.suppressed("REP002", def_line)

    def test_docstring_mention_does_not_register(self, tmp_path):
        mod = self._parse(tmp_path, '''
            def f():
                """Write ``# lint: ignore[REP001] -- why`` to opt out."""
                return 1
        ''')
        assert mod.pragmas == []
        assert mod.suppressions == {}

    def test_doc_comment_mention_does_not_register(self, tmp_path):
        mod = self._parse(tmp_path, """
            #: prose about the # lint: ignore[REP001] syntax
            x = 1
        """)
        assert mod.pragmas == []


class TestPragmaHygiene:
    def test_missing_reason_fires_warning(self, tmp_path):
        report = lint_snippet(tmp_path, """
            x = 1  # lint: ignore[REP002]
        """, rules="REP012")
        assert rule_ids(report) == ["REP012"]
        f = report.findings[0]
        assert f.severity == "warning"
        assert "-- reason" in f.message

    def test_bare_pragma_fires_and_is_not_self_suppressed(self, tmp_path):
        # The bare pragma suppresses "every rule" -- except the audit of
        # itself, which only an explicit [REP012] listing may silence.
        report = lint_snippet(tmp_path, """
            x = 1  # lint: ignore -- reason present but scope unbounded
        """, rules="REP012")
        assert rule_ids(report) == ["REP012"]
        assert "names no rules" in report.findings[0].message

    def test_explicit_listing_suppresses_the_audit(self, tmp_path):
        report = lint_snippet(tmp_path, """
            x = 1  # lint: ignore[REP002, REP012]
        """, rules="REP012")
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_justified_scoped_pragma_is_silent(self, tmp_path):
        report = lint_snippet(tmp_path, """
            x = 1  # lint: ignore[REP002] -- demo stream, seed irrelevant
        """, rules="REP012")
        assert report.findings == []

    def test_warnings_do_not_gate_strict(self, tmp_path):
        report = lint_snippet(tmp_path, """
            x = 1  # lint: ignore[REP002]
        """, rules="REP012")
        assert report.findings and report.clean
        assert report.errors == []
        assert [f.rule for f in report.warnings] == ["REP012"]
        assert "(warning)" in report.findings[0].render()


class TestBaseline:
    def _dirty_report(self, tmp_path):
        return lint_snippet(tmp_path, """
            import random

            def pick(xs):
                return random.sample(xs, 2)
        """, rules="REP002")

    def test_round_trip(self, tmp_path):
        report = self._dirty_report(tmp_path)
        path = tmp_path / "lint-baseline.json"
        base = write_baseline(report, path)
        assert path.exists() and len(base) == 1
        assert base.entries[0].reason == UNJUSTIFIED
        reloaded = Baseline.load(path)
        assert reloaded.keys() == base.keys()
        assert [e.to_dict() for e in reloaded.entries] \
            == [e.to_dict() for e in base.entries]

    def test_baselined_findings_do_not_fail(self, tmp_path):
        report = self._dirty_report(tmp_path)
        base = Baseline([BaselineEntry.from_finding(report.findings[0],
                                                    "grandfathered: demo")])
        again = run_lint(["src"], rules="REP002", baseline=base,
                         root=tmp_path)
        assert again.clean and len(again.baselined) == 1

    def test_reasons_survive_rewrites(self, tmp_path):
        report = self._dirty_report(tmp_path)
        path = tmp_path / "lint-baseline.json"
        first = write_baseline(report, path)
        first.entries[0] = BaselineEntry.from_finding(
            report.findings[0], "reviewed 2026-08: legacy demo")
        first.save(path)
        rewritten = write_baseline(report, path, previous=Baseline.load(path))
        assert rewritten.entries[0].reason == "reviewed 2026-08: legacy demo"

    def test_stale_entries_are_reported(self, tmp_path):
        stale = BaselineEntry(rule="REP002", path="src/repro/gone.py",
                              context="pick", message="long gone",
                              reason="was fixed")
        report = lint_snippet(tmp_path, "x = 1\n", rules="REP002")
        live, baselined, stale_out = Baseline([stale]).split(report.findings)
        assert live == [] and baselined == []
        assert stale_out == [stale]

    def test_key_ignores_line_numbers(self):
        a = Finding("REP002", "p.py", 3, 0, "f", "m")
        b = Finding("REP002", "p.py", 99, 4, "f", "m")
        assert a.key() == b.key()

    def test_committed_baseline_loads(self):
        base = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
        for entry in base.entries:
            assert entry.reason and entry.reason != UNJUSTIFIED


class TestPruneBaseline:
    DIRTY = """
        import random

        def pick(xs):
            return random.sample(xs, 2)
    """

    def test_prune_drops_stale_keeps_live(self, tmp_path):
        report = lint_snippet(tmp_path, self.DIRTY, rules="REP002")
        path = tmp_path / "lint-baseline.json"
        base = write_baseline(report, path)
        stale = BaselineEntry(rule="REP002", path="src/repro/gone.py",
                              context="old", message="long gone",
                              reason="fixed last release")
        base.entries.append(stale)
        base.save(path)

        # Re-lint against the now two-entry baseline: one entry still
        # matches a finding, the other is stale and gets pruned.
        loaded = Baseline.load(path)
        loaded.path = path
        report = run_lint(["src"], rules="REP002", baseline=loaded,
                          root=tmp_path)
        assert [e.key() for e in report.stale_baseline] == [stale.key()]
        removed = prune_baseline(report, loaded)
        assert [e.key() for e in removed] == [stale.key()]
        assert len(loaded) == 1  # the live entry survived

        # The prune rewrote the file in place: round-trip shows one entry.
        assert len(Baseline.load(path)) == 1
        again = run_lint(["src"], rules="REP002",
                         baseline=Baseline.load(path), root=tmp_path)
        assert again.clean and again.stale_baseline == []

    def test_prune_on_current_baseline_is_noop(self, tmp_path):
        report = lint_snippet(tmp_path, self.DIRTY, rules="REP002")
        path = tmp_path / "lint-baseline.json"
        base = write_baseline(report, path)
        base.path = path
        assert prune_baseline(report, base) == []
        assert len(Baseline.load(path)) == 1

    def test_cli_prune_reports_count(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        path = tmp_path / "base.json"
        assert main(["lint", str(dirty), "--baseline", str(path),
                     "--write-baseline"]) == 0
        # Fix the violation, then prune: the grandfathered entry is stale.
        dirty.write_text("x = 1\n")
        capsys.readouterr()
        assert main(["lint", str(dirty), "--baseline", str(path),
                     "--prune-baseline"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale entry" in out
        assert "(0 left)" in out
        assert len(Baseline.load(path)) == 0


class TestRunner:
    def test_resolve_rules_default_is_all(self):
        assert [r.id for r in resolve_rules(None)] \
            == [cls.id for cls in ALL_RULES]

    def test_resolve_rules_parses_csv_case_insensitively(self):
        assert [r.id for r in resolve_rules("rep001, rep004")] \
            == ["REP001", "REP004"]

    def test_resolve_rules_rejects_unknown(self):
        with pytest.raises(InputError):
            resolve_rules("REP999")

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        assert [p.name for p in iter_python_files([tmp_path])] == ["real.py"]

    def test_iter_python_files_rejects_missing(self, tmp_path):
        with pytest.raises(InputError):
            iter_python_files([tmp_path / "nope"])

    def test_syntax_error_becomes_rep000(self, tmp_path):
        report = lint_snippet(tmp_path, "def broken(:\n")
        assert rule_ids(report) == ["REP000"]

    def test_run_record_kind_and_verdict(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import random

            x = random.random()
        """, rules="REP002")
        record = report.to_run_record()
        assert record.kind == "lint"
        verdict = record.verdicts[0]
        assert verdict.name == "lint/clean"
        assert verdict.measured == 1.0 and not verdict.passed

    def test_clean_report_verdict_passes(self, tmp_path):
        record = lint_snippet(tmp_path, "x = 1\n").to_run_record()
        assert record.verdicts[0].passed


# ---------------------------------------------------------------------------
# The repository itself
# ---------------------------------------------------------------------------

class TestSelfClean:
    def test_reference_programs_lint_clean(self):
        report = run_lint(["src/repro/congest/protocol.py"],
                          baseline=Baseline())
        assert report.findings == []

    def test_whole_repository_is_clean_under_committed_baseline(self):
        report = run_lint()
        assert report.clean, "\n" + report.render()
        assert report.stale_baseline == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_parser_accepts_lint_flags(self):
        args = build_parser().parse_args(
            ["lint", "src/repro", "--rules", "REP001,REP002",
             "--strict", "--json"])
        assert args.command == "lint"
        assert args.paths == ["src/repro"]
        assert args.rules == "REP001,REP002"

    def test_explain_lists_the_catalogue(self, capsys):
        assert main(["lint", "--explain"]) == 0
        out = capsys.readouterr().out
        for cls in ALL_RULES:
            assert cls.id in out

    def test_strict_fails_on_violation(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(dirty), "--no-baseline", "--strict"]) == 1
        assert "REP002" in capsys.readouterr().out
        # Without --strict the findings are reported but do not fail.
        assert main(["lint", str(dirty), "--no-baseline"]) == 0

    def test_json_emits_lint_run_record(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean), "--no-baseline", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "lint"
        assert record["verdicts"][0]["name"] == "lint/clean"
        assert record["verdicts"][0]["passed"] is True

    def test_write_baseline_then_strict_passes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "base.json"
        assert main(["lint", str(dirty), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["lint", str(dirty), "--baseline", str(baseline),
                     "--strict"]) == 0

    def test_repository_strict_passes(self, capsys):
        assert main(["lint", "--strict", "--quiet"]) == 0
