"""Unit tests for local-tree floods with boundary delivery."""

import pytest

from repro.congest import Network
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.treerouting import partition_tree
from repro.treerouting.localcomm import local_flood, report_to_parents


@pytest.fixture()
def setup():
    graph = random_connected_graph(150, seed=71)
    tree = spanning_tree_of(graph, style="dfs", seed=71)
    part = partition_tree(tree, seed=5)
    return Network(graph), tree, part


class TestLocalFlood:
    def test_identity_flood_learns_local_roots(self, setup):
        net, tree, part = setup
        value, _ = local_flood(net, part, lambda x: x, lambda v, val: val)
        assert value == part.local_root_reference()

    def test_boundary_learns_virtual_parent(self, setup):
        net, tree, part = setup
        _, boundary = local_flood(net, part, lambda x: x, lambda v, val: val)
        reference = part.virtual_parent_reference()
        for x, got in boundary.items():
            assert got == reference[x]

    def test_boundary_excludes_global_root(self, setup):
        net, tree, part = setup
        _, boundary = local_flood(net, part, lambda x: x, lambda v, val: val)
        assert part.root not in boundary
        assert set(boundary) == part.ut - {part.root}

    def test_rounds_bounded_by_local_depth(self, setup):
        net, _, part = setup
        local_flood(net, part, lambda x: 0, lambda v, val: val)
        assert net.metrics.rounds <= part.max_local_depth + 1

    def test_per_child_emission(self, setup):
        net, tree, part = setup
        children = part.tree_forest.children

        def emit(v, val):
            return {c: (v, c) for c in children[v]}

        value, boundary = local_flood(net, part, lambda x: ("root", x), emit)
        for v, val in value.items():
            if v not in part.ut:
                assert val == (tree[v], v)
        for x, val in boundary.items():
            assert val == (tree[x], x)

    def test_derive_transforms_received_values(self, setup):
        net, _, part = setup
        value, boundary = local_flood(
            net,
            part,
            root_value=lambda x: 0,
            emit=lambda v, val: val,
            derive=lambda v, payload: payload + 1,
        )
        for v, val in value.items():
            assert val == part.local_depth(v)
        # Boundary payloads stay raw (un-derived).
        for x, val in boundary.items():
            parent_depth = part.local_depth(part.tree_parent[x])
            assert val == parent_depth


class TestReportToParents:
    def test_all_children_report(self, setup):
        net, tree, part = setup
        received = report_to_parents(net, part, lambda v: v)
        total = sum(len(d) for d in received.values())
        assert total == len(tree) - 1

    def test_payload_matches_sender(self, setup):
        net, tree, part = setup
        received = report_to_parents(net, part, lambda v: ("from", v))
        for p, msgs in received.items():
            for child, payload in msgs.items():
                assert tree[child] == p
                assert payload == ("from", child)

    def test_subset_of_senders(self, setup):
        net, tree, part = setup
        senders = [x for x in part.ut if x != part.root]
        received = report_to_parents(net, part, lambda v: 1, senders=senders)
        total = sum(len(d) for d in received.values())
        assert total == len(senders)

    def test_single_round(self, setup):
        net, _, part = setup
        report_to_parents(net, part, lambda v: 1)
        assert net.metrics.rounds == 1
