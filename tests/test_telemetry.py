"""Tests for the unified telemetry layer (spans, counters, RunRecords,
paper-bound checking)."""

import json

from repro.analysis import run_table2_recorded, table2_verdicts
from repro.congest import Network
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.telemetry import (
    RunRecord,
    TelemetryCollector,
    all_passed,
    check_graph_columns,
    check_table2_relations,
    check_tree_columns,
    collect,
    failures,
    make_run_record,
    peak_rss_kb,
    render_profile,
    verdict_from_dict,
)
from repro.telemetry import events
from repro.treerouting import build_distributed_tree_scheme


def _build_tree(n=80, seed=11):
    graph = random_connected_graph(n, seed=seed)
    tree = spanning_tree_of(graph, style="dfs", seed=seed)
    net = Network(graph)
    return net, build_distributed_tree_scheme(net, tree, seed=seed)


class TestEventBus:
    def test_disabled_by_default(self):
        assert not events.enabled()
        # No-ops, no errors, no state.
        events.emit("x", 3)
        events.gauge("y", 7)
        with events.span("z") as s:
            assert s is None

    def test_collect_attaches_and_detaches(self):
        with collect() as tele:
            assert events.enabled()
            events.emit("c", 2)
        assert not events.enabled()
        assert tele.counter("c") == 2

    def test_span_nesting_and_counter_attribution(self):
        with collect() as tele:
            with events.span("outer"):
                events.emit("n", 1)
                with events.span("inner"):
                    events.emit("n", 10)
        outer = tele.roots[0]
        assert outer.name == "outer"
        assert outer.counters["n"] == 1
        assert outer.children[0].name == "inner"
        assert outer.children[0].counters["n"] == 10
        assert outer.total("n") == 11
        assert tele.counter("n") == 11

    def test_gauge_keeps_maximum(self):
        with collect() as tele:
            events.gauge("m", 5)
            events.gauge("m", 3)
            events.gauge("m", 9)
        assert tele.gauges["m"] == 9

    def test_find_by_name(self):
        with collect() as tele:
            with events.span("a"):
                with events.span("b"):
                    pass
        assert tele.find("b").name == "b"
        assert tele.find("nope") is None


class TestNetworkHooks:
    def test_round_counters_match_metrics(self):
        net = Network(random_connected_graph(60, seed=3))
        with collect() as tele:
            from repro.congest import build_bfs_tree

            build_bfs_tree(net)
        assert tele.counter("congest.rounds") == net.metrics.rounds
        assert tele.counter("congest.messages") == net.metrics.messages

    def test_charged_rounds_counter(self):
        net = Network(random_connected_graph(30, seed=4))
        with collect() as tele:
            net.charge_rounds(17, messages=5, words=9)
        assert tele.counter("congest.charged_rounds") == 17
        assert tele.counter("congest.messages") == 5

    def test_tree_build_emits_stage_spans(self):
        with collect() as tele:
            net, build = _build_tree()
        names = {r.name for r in tele.roots}
        for stage in ("tree/partition", "tree/stage0", "tree/stage1",
                      "tree/stage2", "tree/stage3", "tree/assemble"):
            assert stage in names, stage
        # Span round totals account for every simulated round.
        assert tele.counter("congest.rounds") == net.metrics.rounds
        assert tele.gauges["memory.high_water_words"] == build.max_memory_words

    def test_zero_overhead_when_disabled(self):
        """Hooks must not change measurements for untraced runs."""
        net_plain, build_plain = _build_tree(n=60, seed=9)
        with collect():
            net_traced, build_traced = _build_tree(n=60, seed=9)
        assert build_plain.rounds == build_traced.rounds
        assert build_plain.messages == build_traced.messages
        assert build_plain.max_memory_words == build_traced.max_memory_words


class TestBoundChecker:
    def test_tree_columns_pass(self):
        verdicts = check_tree_columns(
            1000, rounds=2000, table_words=4, label_words=7,
            memory_words=30, hop_diameter_bound=14,
        )
        assert len(verdicts) == 4
        assert all_passed(verdicts)
        assert {v.column for v in verdicts} == {
            "rounds", "table_words", "label_words", "memory_words"
        }

    def test_tree_columns_violation_detected(self):
        verdicts = check_tree_columns(1000, table_words=999)
        assert not all_passed(verdicts)
        [bad] = failures(verdicts)
        assert bad.column == "table_words"
        assert bad.measured == 999

    def test_graph_columns_stretch_violation(self):
        verdicts = check_graph_columns(
            300, 3, epsilon=0.05, stretch_max=100.0
        )
        assert [v.column for v in failures(verdicts)] == ["stretch_max"]

    def test_relations_catch_memory_regression(self):
        ours = {"table_words": 4, "label_words": 7, "memory_words": 500}
        base = {"table_words": 11, "label_words": 10, "memory_words": 60}
        cent = {"table_words": 4, "label_words": 7}
        verdicts = check_table2_relations(ours, base, cent)
        assert "table2/relations/memory_separation" in {
            v.name for v in failures(verdicts)
        }

    def test_verdict_round_trip(self):
        v = check_tree_columns(500, table_words=4)[0]
        again = verdict_from_dict(v.to_dict())
        assert again.name == v.name
        assert again.passed == v.passed
        # limit is rounded for serialization, stays within tolerance.
        assert abs(again.limit - v.limit) < 1e-3


class TestRunRecord:
    def test_table2_record_has_verdicts_for_every_column(self):
        result, record = run_table2_recorded(150, seed=2)
        measured_cols = {"rounds", "table_words", "label_words",
                         "memory_words"}
        assert measured_cols <= {v.column for v in record.verdicts}
        assert record.passed
        assert record.workload["n"] == 150
        assert record.counters["congest.rounds"] > 0
        assert record.wall_s > 0

    def test_json_round_trip(self):
        _, record = run_table2_recorded(120, seed=5)
        blob = record.to_json()
        again = RunRecord.from_json(blob)
        assert again.kind == "table2"
        assert again.columns == json.loads(blob)["columns"]
        assert len(again.verdicts) == len(record.verdicts)
        assert again.passed == record.passed
        assert again.counters == record.counters

    def test_violated_synthetic_record_fails(self):
        record = make_run_record(
            "synthetic",
            workload={"n": 1000},
            columns=[{"scheme": "this-paper", "memory_words": 10_000}],
            verdicts=check_tree_columns(1000, memory_words=10_000),
        )
        assert not record.passed
        assert record.failed_verdicts()[0].column == "memory_words"
        # The failure survives serialization.
        assert not RunRecord.from_json(record.to_json()).passed

    def test_append_jsonl(self, tmp_path):
        record = make_run_record("x", workload={}, columns=[])
        path = tmp_path / "sub" / "records.jsonl"
        record.append_jsonl(path)
        record.append_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert RunRecord.from_json(lines[0]).kind == "x"

    def test_peak_rss_positive(self):
        assert peak_rss_kb() > 0

    def test_table2_verdicts_standalone(self):
        result, _ = run_table2_recorded(120, seed=5)
        verdicts = table2_verdicts(result)
        assert all_passed(verdicts)


class TestProfileRenderer:
    def test_profile_renders_span_tree(self):
        with collect() as tele:
            _build_tree(n=60, seed=7)
        art = tele.profile()
        assert "tree/stage1" in art
        assert "wall_s" in art and "rounds" in art
        assert "totals:" in art

    def test_profile_merges_repeated_siblings(self):
        with collect() as tele:
            for _ in range(3):
                with events.span("repeat"):
                    events.emit("n", 1)
        art = tele.profile()
        assert "repeat x3" in art
        assert art.count("repeat") == 1

    def test_render_profile_from_serialized_record(self):
        _, record = run_table2_recorded(120, seed=5)
        art = render_profile(record.spans, record.counters, record.gauges)
        assert "tree/stage3" in art

    def test_empty_profile(self):
        assert "no spans" in TelemetryCollector().profile()
