"""Unit tests for the serve workload models (seeded traffic)."""

import random
from collections import Counter

import networkx as nx
import pytest

from repro.errors import InputError
from repro.graphs import random_connected_graph
from repro.serve import (
    WORKLOADS,
    adversarial_pairs,
    gravity_pairs,
    make_workload,
    uniform_pairs,
    zipf_pairs,
)


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(80, seed=83)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["uniform", "zipf", "gravity"])
    def test_same_seed_same_stream(self, graph, name):
        nodes = list(graph.nodes)
        a = make_workload(name, graph, nodes, 200, 5)
        b = make_workload(name, graph, nodes, 200, 5)
        c = make_workload(name, graph, nodes, 200, 6)
        assert a == b
        assert a != c
        assert len(a) == 200
        assert all(u != v for u, v in a)

    def test_rng_instance_accepted(self, graph):
        nodes = list(graph.nodes)
        assert uniform_pairs(nodes, 50, random.Random(9)) == \
               uniform_pairs(nodes, 50, 9)


class TestSkewProperties:
    def test_zipf_concentrates_destinations(self, graph):
        nodes = list(graph.nodes)
        zipf = Counter(v for _, v in zipf_pairs(nodes, 3000, 11, alpha=1.3))
        uni = Counter(v for _, v in uniform_pairs(nodes, 3000, 11))
        # The hottest Zipf destination dominates any uniform destination.
        assert zipf.most_common(1)[0][1] > 2 * uni.most_common(1)[0][1]

    def test_gravity_prefers_hubs(self):
        star = nx.star_graph(30)  # vertex 0 has degree 30, leaves 1
        counts = Counter()
        for u, v in gravity_pairs(star, 2000, 13):
            counts[u] += 1
            counts[v] += 1
        # The hub is ~30x likelier per endpoint than any leaf.
        assert counts[0] > 5 * max(counts[v] for v in star if v != 0)

    def test_adversarial_returns_worst_pairs(self, graph):
        # Score by an arbitrary deterministic "stretch": route_length
        # = 10x the exact distance for flagged sources, else exact.
        from repro.graphs.paths import dijkstra

        flagged = set(list(graph.nodes)[:10])

        def route_length(u, v):
            dist, _ = dijkstra(graph, [u])
            return dist[v] * (10.0 if u in flagged else 1.0)

        worst = adversarial_pairs(graph, 20, 17, route_length=route_length)
        assert len(worst) == 20
        # Worst-first ordering: every flagged (10x stretch) pair precedes
        # every unflagged one.
        flags = [u in flagged for u, _ in worst]
        assert any(flags)
        assert flags == sorted(flags, reverse=True)

    def test_adversarial_failures_sort_worst(self, graph):
        nodes = list(graph.nodes)
        dead = nodes[0]

        def route_length(u, v):
            return None if u == dead else 1.0

        worst = adversarial_pairs(graph, 5, 19, route_length=route_length,
                                  pool_factor=8)
        # Failed routes (infinite stretch) outrank every finite pair.
        assert any(u == dead for u, _ in worst)


class TestValidation:
    def test_too_few_nodes(self):
        with pytest.raises(InputError):
            uniform_pairs(["a"], 5)
        with pytest.raises(InputError):
            zipf_pairs(["a"], 5)
        with pytest.raises(InputError):
            gravity_pairs(nx.path_graph(1), 5)

    def test_bad_zipf_alpha(self, graph):
        with pytest.raises(InputError):
            zipf_pairs(list(graph.nodes), 5, alpha=0.0)

    def test_bad_pool_factor(self, graph):
        with pytest.raises(InputError):
            adversarial_pairs(graph, 5, pool_factor=0,
                              route_length=lambda u, v: 1.0)

    def test_unknown_workload(self, graph):
        with pytest.raises(InputError):
            make_workload("bursty", graph, list(graph.nodes), 5, 0)

    def test_adversarial_needs_route_length(self, graph):
        with pytest.raises(InputError):
            make_workload("adversarial", graph, list(graph.nodes), 5, 0)

    def test_registry_dispatch(self, graph):
        nodes = list(graph.nodes)
        for name in WORKLOADS:
            pairs = make_workload(name, graph, nodes, 10, 0,
                                  route_length=lambda u, v: 1.0)
            assert len(pairs) == 10
