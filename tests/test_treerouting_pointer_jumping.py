"""Unit tests for the pointer-jumping engine (Algorithms 1/3/6 skeleton)."""

import pytest

from repro.congest import Network, build_bfs_tree
from repro.errors import InvariantViolation
from repro.graphs import random_connected_graph, spanning_tree_of, subtree_sizes
from repro.treerouting import partition_tree, pointer_jump, required_iterations


@pytest.fixture()
def setup():
    graph = random_connected_graph(200, seed=81)
    tree = spanning_tree_of(graph, style="dfs", seed=81)
    part = partition_tree(tree, seed=7)
    net = Network(graph)
    bfs = build_bfs_tree(net)
    vpar = part.virtual_parent_reference()
    return graph, tree, part, net, bfs, vpar


def virtual_subtree_sizes_reference(tree, part):
    """Ground truth: for x in U(T), the T-subtree size of x."""
    sizes = subtree_sizes(tree)
    return {x: sizes[x] for x in part.ut}


def local_sizes(part):
    forest = part.local_forest
    return {x: len(forest.subtree_vertices(x)) for x in part.ut}


class TestAlgorithm1Shape:
    def test_subtree_size_aggregation(self, setup):
        _, tree, part, net, bfs, vpar = setup
        result = pointer_jump(
            net, bfs, vpar,
            init=local_sizes(part),
            pull=lambda x, own, anc, contribs: own + sum(contribs),
        )
        assert result.values == virtual_subtree_sizes_reference(tree, part)

    def test_trail_lengths_uniform(self, setup):
        _, _, part, net, bfs, vpar = setup
        result = pointer_jump(
            net, bfs, vpar,
            init={x: 1 for x in part.ut},
            pull=lambda x, own, anc, contribs: own,
        )
        lengths = {len(t) for t in result.trail.values()}
        assert lengths == {result.iterations}

    def test_trail_first_entry_is_virtual_parent(self, setup):
        _, _, part, net, bfs, vpar = setup
        result = pointer_jump(
            net, bfs, vpar,
            init={x: 1 for x in part.ut},
            pull=lambda x, own, anc, contribs: own,
        )
        for x, trail in result.trail.items():
            assert trail[0] == vpar[x]

    def test_trail_doubles_ancestors(self, setup):
        _, _, part, net, bfs, vpar = setup
        result = pointer_jump(
            net, bfs, vpar,
            init={x: 1 for x in part.ut},
            pull=lambda x, own, anc, contribs: own,
        )

        def ancestor(x, hops):
            for _ in range(hops):
                if x is None:
                    return None
                x = vpar[x]
            return x

        for x, trail in result.trail.items():
            for i, a in enumerate(trail):
                assert a == ancestor(x, 2 ** i)


class TestAlgorithm6Shape:
    def test_prefix_sum_to_root(self, setup):
        _, _, part, net, bfs, vpar = setup
        init = {x: 1 for x in part.ut}
        init[part.root] = 0
        result = pointer_jump(
            net, bfs, vpar,
            init=init,
            pull=lambda x, own, anc, contribs: own + (anc or 0),
        )

        def vdepth(x):
            d = 0
            while vpar[x] is not None:
                x = vpar[x]
                d += 1
            return d

        for x, total in result.values.items():
            assert total == vdepth(x)


class TestTrailReuse:
    def test_reused_trail_gives_same_answers(self, setup):
        _, tree, part, net, bfs, vpar = setup
        first = pointer_jump(
            net, bfs, vpar,
            init=local_sizes(part),
            pull=lambda x, own, anc, contribs: own + sum(contribs),
        )
        second = pointer_jump(
            net, bfs, vpar,
            init=local_sizes(part),
            pull=lambda x, own, anc, contribs: own + sum(contribs),
            trail=first.trail,
        )
        assert second.values == first.values


class TestCosts:
    def test_rounds_scale_with_members_and_iterations(self, setup):
        _, _, part, net, bfs, vpar = setup
        before = net.metrics.total_rounds
        result = pointer_jump(
            net, bfs, vpar,
            init={x: 1 for x in part.ut},
            pull=lambda x, own, anc, contribs: own,
        )
        rounds = net.metrics.total_rounds - before
        # Each iteration is a Lemma-1 broadcast: 2(M + height).
        expected_floor = result.iterations * 2 * len(part.ut)
        assert rounds >= expected_floor

    def test_members_memory_is_logarithmic(self, setup):
        _, tree, part, net, bfs, vpar = setup
        pointer_jump(
            net, bfs, vpar,
            init={x: 1 for x in part.ut},
            pull=lambda x, own, anc, contribs: own,
            mem_key="t/pj",
        )
        iterations = required_iterations(len(part.ut))
        for x in part.ut:
            stored = dict(net.mem(x).items()).get("t/pj/trail", 0)
            assert stored == iterations

    def test_dangling_parent_rejected(self, setup):
        _, _, part, net, bfs, _ = setup
        with pytest.raises(InvariantViolation):
            pointer_jump(
                net, bfs, {1: 2},
                init={1: 0},
                pull=lambda x, own, anc, contribs: own,
            )


class TestSingletonMember:
    def test_single_member_trivial(self, setup):
        _, _, part, net, bfs, _ = setup
        result = pointer_jump(
            net, bfs, {part.root: None},
            init={part.root: 42},
            pull=lambda x, own, anc, contribs: own + sum(contribs),
        )
        assert result.values == {part.root: 42}
