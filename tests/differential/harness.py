"""Shared machinery for the engine differential tests.

Provides:

* ``TOPOLOGIES`` — named graph families (parameterized by seed);
* ``PROTOCOLS`` — named workloads that drive a network through real
  algorithm code paths (BFS floods, pipelined broadcast, event-driven
  protocols, raw ``send_many``/``tick`` kernels);
* :func:`run_fingerprint` — run a workload on an engine and capture every
  observable output in one comparable structure.

Both engines expose the same duck-typed surface, so a single workload
function serves as the differential oracle driver: whatever it observes on
the reference engine, the fast path must reproduce exactly.
"""

from __future__ import annotations

import os
import random
from collections import Counter
from typing import Any, Callable, Dict, Hashable, List, Tuple

import networkx as nx

from repro.congest.bfs import build_bfs_tree
from repro.congest.broadcast import broadcast_all, convergecast_aggregate
from repro.congest.protocol import FloodMax, run_protocol
from repro.congest.trace import attach_trace
from repro.graphs import (
    grid_graph,
    random_connected_graph,
    random_tree_network,
    ring_of_cliques,
)

NodeId = Hashable

#: CI smoke mode: a reduced seed matrix (set by the bench-smoke workflow).
QUICK = bool(os.environ.get("REPRO_DIFF_QUICK"))


# ---------------------------------------------------------------------------
# Topology families
# ---------------------------------------------------------------------------

def _weighted(graph: nx.Graph, seed: int) -> nx.Graph:
    """Attach deterministic float weights (exercises the CSR weight cache)."""
    rng = random.Random(seed * 7919 + 13)
    for u, v in graph.edges:
        graph[u][v]["weight"] = round(rng.uniform(1.0, 10.0), 3)
    return graph


def _path(seed: int) -> nx.Graph:
    return _weighted(nx.path_graph(12 + (seed % 4) * 5), seed)


def _cycle(seed: int) -> nx.Graph:
    return _weighted(nx.cycle_graph(13 + (seed % 4) * 5), seed)


def _star(seed: int) -> nx.Graph:
    return _weighted(nx.star_graph(10 + (seed % 5) * 4), seed)


def _grid(seed: int) -> nx.Graph:
    return grid_graph(3 + seed % 3, 4 + seed % 2, seed=seed)


def _random_tree(seed: int) -> nx.Graph:
    return random_tree_network(18 + (seed % 4) * 6, seed=seed)


def _gnp(seed: int) -> nx.Graph:
    return random_connected_graph(
        20 + (seed % 3) * 10, avg_degree=4.0 + (seed % 3), seed=seed
    )


def _cliques(seed: int) -> nx.Graph:
    return ring_of_cliques(3 + seed % 3, 3 + seed % 2, seed=seed)


TOPOLOGIES: Dict[str, Callable[[int], nx.Graph]] = {
    "path": _path,
    "cycle": _cycle,
    "star": _star,
    "grid": _grid,
    "random_tree": _random_tree,
    "gnp": _gnp,
    "ring_of_cliques": _cliques,
}


def build_topology(name: str, seed: int) -> nx.Graph:
    return TOPOLOGIES[name](seed)


# ---------------------------------------------------------------------------
# Protocol workloads
# ---------------------------------------------------------------------------

def _proto_bfs(net: Any, seed: int) -> None:
    """BFS floods from two deterministic roots (send_many + deliver_batch)."""
    nodes = sorted(net.nodes(), key=repr)
    build_bfs_tree(net, root=nodes[0])
    build_bfs_tree(net, root=nodes[seed % len(nodes)])


def _proto_broadcast(net: Any, seed: int) -> None:
    """Lemma-1 pipeline: BFS tree, global broadcast, convergecast."""
    bfs = build_bfs_tree(net)
    origins = sorted(net.nodes(), key=repr)[: 3 + seed % 3]
    items = [(v, (repr(v), i)) for i, v in enumerate(origins)]
    broadcast_all(net, bfs, items)
    convergecast_aggregate(net, bfs, lambda v: 1, lambda a, b: a + b)


def _proto_floodmax(net: Any, seed: int) -> None:
    """Event-driven leader election through the protocol driver."""
    bound = net.hop_diameter_upper_bound()
    run_protocol(net, lambda v: FloodMax(bound + 1), max_rounds=10_000)


def _proto_flood_kernel(net: Any, seed: int) -> None:
    """Raw engine kernel: full-neighborhood exchanges, alternating the
    dict-shaped (``tick``) and flat (``deliver_batch``) delivery paths and
    the per-vertex (``send_many``) and whole-round (``flood_all``) fanout
    entry points, with occasional wide payloads (charged extra rounds),
    partial fanouts, and idle gaps."""
    rng = random.Random(seed)
    nodes = sorted(net.nodes(), key=repr)
    wide = list(range(net.message_word_limit + 2))
    for r in range(6):
        payload = wide if r % 3 == 2 else r
        if r % 2:
            net.flood_all("flood", payload)
        else:
            for v in nodes:
                net.send_many(v, net.ports(v), "flood", payload)
        if r % 2:
            net.tick()
        else:
            net.deliver_batch()
        if rng.random() < 0.3:
            net.idle_rounds(1)
    # Partial fanouts (every other port): the non-contiguous batch lane.
    for v in nodes[:5]:
        net.send_many(v, net.ports(v)[::2], "partial", seed)
    net.deliver_batch()
    net.charge_rounds(seed % 4, messages=seed % 3, words=seed % 5)


PROTOCOLS: Dict[str, Callable[[Any, int], None]] = {
    "bfs": _proto_bfs,
    "broadcast_convergecast": _proto_broadcast,
    "floodmax": _proto_floodmax,
    "flood_kernel": _proto_flood_kernel,
}


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

class EdgeCountObserver:
    """Round observer accumulating per-directed-edge message totals."""

    __slots__ = ("edges", "charges")

    def __init__(self) -> None:
        self.edges: Counter = Counter()
        self.charges: List[Tuple[int, int, int]] = []

    def on_round(self, net: Any, delivered: List[Any], words: int) -> None:
        for msg in delivered:
            self.edges[(repr(msg.src), repr(msg.dst))] += 1

    def on_charge(self, net: Any, rounds: int, messages: int, words: int) -> None:
        self.charges.append((rounds, messages, words))


def run_fingerprint(
    engine_cls: Callable[..., Any],
    graph: nx.Graph,
    workload: Callable[[Any, int], None],
    workload_seed: int,
    **net_kwargs: Any,
) -> Dict[str, Any]:
    """Run ``workload`` on a fresh engine; capture every observable output.

    The returned dict compares with ``==``: identical runs on the two
    engines must produce identical fingerprints, covering round counts and
    metrics (phases included), per-directed-edge message totals, charge
    events, per-vertex memory high-waters, and the round-trace timeline.
    """
    net = engine_cls(graph, **net_kwargs)
    edge_obs = net.add_round_observer(EdgeCountObserver())
    trace = attach_trace(net)
    workload(net, workload_seed)
    return {
        "metrics": net.metrics.to_dict(),
        "fingerprint": net.metrics.fingerprint(),
        "memory_high_water": {
            repr(v): hw for v, hw in net.memory_high_water().items()
        },
        "max_memory": net.max_memory(),
        "edges": dict(edge_obs.edges),
        "charges": edge_obs.charges,
        "trace": trace.to_dict(),
        "timeline": trace.timeline(),
    }
