"""Differential tests: the fast-path engine vs the reference simulator.

The :class:`repro.congest.network.Network` fast path is certified by
replaying identical workloads on it and on
:class:`repro.congest.reference.ReferenceNetwork` (the frozen seed engine)
and asserting every observable output matches — metrics, per-edge traffic,
memory high-waters, trace timelines, and byte-identical ``strict``
violations.  See ``docs/performance.md``.

Set ``REPRO_DIFF_QUICK=1`` to run a reduced seed matrix (CI smoke mode).
"""
