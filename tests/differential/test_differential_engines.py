"""Randomized replay: fast-path and vectorized engines vs the reference.

Every case builds one graph, runs one workload on *all three* engines, and
asserts the full observable fingerprint matches the reference oracle —
metrics (with phases), per-directed-edge message totals, charge events,
per-vertex memory high-waters, and the round-trace timeline.

The full matrix is |TOPOLOGIES| x |PROTOCOLS| x |SEEDS| = 7 x 4 x 9 = 252
replays (>= the 200 the acceptance bar asks for), each certifying two
candidate engines; ``REPRO_DIFF_QUICK=1`` shrinks the seed axis for CI
smoke runs.
"""

from __future__ import annotations

import pytest

from repro.congest import ENGINES, ReferenceNetwork

from .harness import (
    PROTOCOLS,
    QUICK,
    TOPOLOGIES,
    build_topology,
    run_fingerprint,
)

SEEDS = range(2) if QUICK else range(9)

#: The engines certified against the reference oracle.
CANDIDATES = ("fastpath", "vectorized")

CASES = [
    pytest.param(topo, proto, seed, id=f"{topo}-{proto}-s{seed}")
    for topo in TOPOLOGIES
    for proto in PROTOCOLS
    for seed in SEEDS
]


@pytest.mark.parametrize("topo,proto,seed", CASES)
def test_engines_agree(topo, proto, seed):
    graph = build_topology(topo, seed)
    workload = PROTOCOLS[proto]
    ref = run_fingerprint(
        ReferenceNetwork, graph, workload, seed, edge_capacity=1, seed=seed
    )
    for name in CANDIDATES:
        # Fresh graph objects per engine: engines must not depend on (or
        # mutate) shared graph state.
        candidate = run_fingerprint(
            ENGINES[name], build_topology(topo, seed), workload, seed,
            edge_capacity=1, seed=seed,
        )
        for key in ref:
            assert candidate[key] == ref[key], (
                f"{name} disagrees with reference on {key!r}"
            )


def test_case_matrix_is_large_enough():
    """The acceptance bar: >= 200 replays, >= 5 topologies, >= 3 protocols,
    certifying both candidate engines three-way."""
    if QUICK:
        pytest.skip("quick mode runs a reduced matrix")
    assert len(TOPOLOGIES) >= 5
    assert len(PROTOCOLS) >= 3
    assert len(CASES) >= 200
    assert len(CANDIDATES) == 2
