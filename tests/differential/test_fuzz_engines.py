"""Seeded protocol fuzzer: random message schedules on all three engines.

Unlike the replay tests (which drive real algorithm code), the fuzzer
generates adversarial *raw* schedules — including deliberate capacity
violations and non-edge sends — and asserts the engines fail identically:
same :class:`~repro.errors.CongestModelViolation` at the same operation, in
the same round, with the byte-identical message.  After a violation each
engine must also be left in the same state (the schedule keeps going), so
post-exception divergence cannot hide.  Besides outcomes and metrics, the
post-run check covers per-vertex memory high-waters *and* the
``last_prefix_scan`` pins, so bulk-free bookkeeping cannot drift either.

Schedules are generated once per seed and applied to each engine
independently; everything is derived from ``random.Random(seed)``, so a
failing case reproduces from its pytest id alone.
"""

from __future__ import annotations

import random
from typing import Any, List, Tuple

import pytest

from repro.congest import ENGINES, ReferenceNetwork
from repro.errors import CongestModelViolation

from .harness import QUICK, TOPOLOGIES, build_topology, run_fingerprint

#: The engines certified against the reference oracle.
CANDIDATES = ("fastpath", "vectorized")

FUZZ_SEEDS = range(4) if QUICK else range(30)
TOPO_NAMES = sorted(TOPOLOGIES)


def make_schedule(graph: Any, seed: int, *, rounds: int = 12) -> List[Tuple]:
    """A deterministic random schedule of engine operations.

    Ops:
      ("send", src, dst, kind, payload)        -- dst may be a NON-neighbor
      ("send_many", src, dsts, kind, payload)  -- dsts may contain a non-edge
      ("flood_all", payload)                   -- whole-round fanout kernel
      ("close", "tick" | "deliver")            -- end the round either way
      ("idle", k) / ("charge", r, m, w)        -- accounting paths
      ("mem", v, key, words) / ("free", prefix) / ("free_key", key)

    Capacity violations arise naturally: several sends may pick the same
    directed edge within one round, and a ``flood_all`` after any send on a
    strict network overloads every already-loaded arc — exercising the
    vectorized engine's fallback-and-replay path mid-schedule.  Wide
    payloads (> word limit) exercise the multi-slot charging path, which
    must never raise.
    """
    rng = random.Random(seed * 6151 + 17)
    nodes = sorted(graph.nodes, key=repr)
    neighbors = {v: sorted(graph.neighbors(v), key=repr) for v in nodes}
    schedule: List[Tuple] = []
    for _ in range(rounds):
        for _ in range(rng.randrange(0, 10)):
            roll = rng.random()
            src = rng.choice(nodes)
            if roll < 0.50:
                # Mostly-legal single sends; ~1 in 12 aims at a non-edge.
                if rng.random() < 0.08:
                    dst = rng.choice(nodes)
                else:
                    dst = rng.choice(neighbors[src])
                payload = rng.choice(
                    [None, rng.randrange(100), list(range(rng.randrange(5, 9)))]
                )
                schedule.append(("send", src, dst, "fuzz", payload))
            elif roll < 0.78:
                dsts = rng.sample(
                    neighbors[src], rng.randrange(1, len(neighbors[src]) + 1)
                )
                if rng.random() < 0.1:
                    dsts.insert(rng.randrange(len(dsts) + 1), rng.choice(nodes))
                schedule.append(("send_many", src, dsts, "fan", None))
            elif roll < 0.84:
                payload = rng.choice(
                    [None, rng.randrange(50), list(range(rng.randrange(5, 9)))]
                )
                schedule.append(("flood_all", payload))
            elif roll < 0.90:
                schedule.append(
                    ("mem", src, rng.choice(["fz/a", "fz/b", "plain"]),
                     rng.randrange(1, 5))
                )
            elif roll < 0.94:
                schedule.append(("free", rng.choice(["fz/", "fz/a", "plain"])))
            elif roll < 0.97:
                schedule.append(
                    ("free_key", rng.choice(["fz/a", "fz/b", "plain", "ghost"]))
                )
            else:
                schedule.append(
                    ("charge", rng.randrange(0, 3), rng.randrange(0, 4),
                     rng.randrange(0, 6))
                )
        schedule.append(("close", rng.choice(["tick", "deliver"])))
        if rng.random() < 0.15:
            schedule.append(("idle", rng.randrange(1, 3)))
    return schedule


def apply_schedule(net: Any, schedule: List[Tuple]) -> List[Tuple]:
    """Run a schedule, recording each op's observable outcome."""
    outcomes: List[Tuple] = []
    for op in schedule:
        tag = op[0]
        try:
            if tag == "send":
                net.send(op[1], op[2], op[3], op[4])
                outcomes.append(("ok",))
            elif tag == "send_many":
                outcomes.append(("ok", net.send_many(op[1], op[2], op[3], op[4])))
            elif tag == "flood_all":
                outcomes.append(("ok", net.flood_all("flood", op[1])))
            elif tag == "close":
                if op[1] == "tick":
                    inboxes = net.tick()
                    outcomes.append((
                        "round",
                        sorted(
                            (repr(v), [(repr(m.src), m.kind, m.words) for m in box])
                            for v, box in inboxes.items()
                        ),
                    ))
                else:
                    delivered = net.deliver_batch()
                    outcomes.append((
                        "round",
                        [(repr(m.src), repr(m.dst), m.kind, m.words)
                         for m in delivered],
                    ))
            elif tag == "idle":
                net.idle_rounds(op[1])
                outcomes.append(("ok",))
            elif tag == "charge":
                net.charge_rounds(op[1], messages=op[2], words=op[3])
                outcomes.append(("ok",))
            elif tag == "mem":
                net.mem(op[1]).store(op[2], op[3])
                outcomes.append(("ok",))
            elif tag == "free":
                net.free_all(op[1])
                outcomes.append(("ok",))
            elif tag == "free_key":
                net.free_key(op[1])
                outcomes.append(("ok",))
        except CongestModelViolation as exc:
            outcomes.append(("violation", str(exc)))
    return outcomes


def _run_fuzz(topo: str, seed: int, *, strict: bool) -> None:
    graph = build_topology(topo, seed)
    schedule = make_schedule(graph, seed)

    ref = ReferenceNetwork(graph, strict=strict)
    ref_outcomes = apply_schedule(ref, schedule)
    ref_waters = {repr(v): hw for v, hw in ref.memory_high_water().items()}
    ref_pins = {repr(v): ref.mem(v).last_prefix_scan for v in ref.nodes()}

    for name in CANDIDATES:
        net = ENGINES[name](build_topology(topo, seed), strict=strict)
        outcomes = apply_schedule(net, schedule)
        for i, (op, a, b) in enumerate(zip(schedule, ref_outcomes, outcomes)):
            assert a == b, f"op {i} {op[0]!r}: reference {a!r} != {name} {b!r}"
        assert net.metrics.fingerprint() == ref.metrics.fingerprint(), name
        assert net.metrics.to_dict() == ref.metrics.to_dict(), name
        assert (
            {repr(v): hw for v, hw in net.memory_high_water().items()}
            == ref_waters
        ), name
        assert (
            {repr(v): net.mem(v).last_prefix_scan for v in net.nodes()}
            == ref_pins
        ), name


@pytest.mark.parametrize(
    "topo,seed",
    [
        pytest.param(TOPO_NAMES[s % len(TOPO_NAMES)], s, id=f"strict-s{s}")
        for s in FUZZ_SEEDS
    ],
)
def test_fuzz_strict_parity(topo, seed):
    """Strict mode: identical violations (op index, round, edge, text)."""
    _run_fuzz(topo, seed, strict=True)


@pytest.mark.parametrize(
    "topo,seed",
    [
        pytest.param(TOPO_NAMES[(s + 3) % len(TOPO_NAMES)], s, id=f"lax-s{s}")
        for s in (range(2) if QUICK else range(12))
    ],
)
def test_fuzz_non_strict_parity(topo, seed):
    """Non-strict mode: overloads pass through; traffic still matches."""
    _run_fuzz(topo, seed, strict=False)


def test_fuzz_schedules_do_violate():
    """Meta-check: the strict matrix actually exercises both violation
    kinds (capacity overload and non-edge send) — guards against a fuzzer
    regression that silently stops generating adversarial ops."""
    kinds = set()
    for s in FUZZ_SEEDS:
        graph = build_topology(TOPO_NAMES[s % len(TOPO_NAMES)], s)
        net = ReferenceNetwork(graph, strict=True)
        for outcome in apply_schedule(net, make_schedule(graph, s)):
            if outcome[0] == "violation":
                kinds.add(
                    "capacity" if "over capacity" in outcome[1] else "non-edge"
                )
    assert kinds == {"capacity", "non-edge"}


def test_fingerprint_helper_covers_timeline():
    """The replay fingerprint includes the trace timeline on both engines."""
    graph = build_topology("gnp", 1)
    fp = run_fingerprint(
        ReferenceNetwork, graph, lambda net, s: net.idle_rounds(3), 0
    )
    assert "rounds 1..3" in fp["timeline"]
