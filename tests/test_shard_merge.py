"""Tests for ServeReport.merge: the exact per-field shard algebra."""

import random

import pytest

from repro.errors import InputError
from repro.graphs import random_connected_graph
from repro.serve import (
    ServeEngine,
    ServeReport,
    compile_scheme,
    serve_pairs,
)
from repro.serve.workloads import make_workload
from repro.shard import partition_pairs
from repro.tz import build_centralized_scheme


@pytest.fixture(scope="module")
def built():
    graph = random_connected_graph(50, seed=31)
    scheme = build_centralized_scheme(graph, 3, seed=31)
    return graph, compile_scheme(scheme, graph)


def _shard_reports(graph, compiled, pairs, workers, **kwargs):
    slices, _ = partition_pairs(pairs, workers)
    reports = []
    for part in slices:
        engine = ServeEngine(compiled, cache_size=4096)
        report, _ = serve_pairs(engine, graph, part, workload="zipf",
                                seed=7, **kwargs)
        reports.append(report)
    return reports


class TestMergeAlgebra:
    def test_empty_list_raises(self):
        with pytest.raises(InputError):
            ServeReport.merge([])

    def test_single_shard_identity(self, built):
        graph, compiled = built
        pairs = make_workload("zipf", graph, compiled.nodes, 300, 7)
        [report] = _shard_reports(graph, compiled, pairs, 1)
        merged = ServeReport.merge([report])
        assert merged == report
        assert merged.shards == 1
        assert merged.sketches["hops"] == report.sketches["hops"]

    def test_merge_equals_single_process(self, built):
        graph, compiled = built
        pairs = make_workload("zipf", graph, compiled.nodes, 400, 7)
        engine = ServeEngine(compiled, cache_size=4096)
        single, _ = serve_pairs(engine, graph, pairs, workload="zipf",
                                seed=7)
        for workers in (2, 4):
            merged = ServeReport.merge(
                _shard_reports(graph, compiled, pairs, workers))
            assert merged == single
            assert merged.shards == workers
            # Sketches merge bucket-exactly, not just within accuracy.
            assert merged.sketches["hops"] == single.sketches["hops"]
            assert merged.sketches["stretch"] == single.sketches["stretch"]
            assert merged.slo_within == single.slo_within
            assert merged.cache_hits == single.cache_hits
            assert merged.cache_misses == single.cache_misses

    def test_order_insensitive(self, built):
        graph, compiled = built
        pairs = make_workload("zipf", graph, compiled.nodes, 300, 7)
        reports = _shard_reports(graph, compiled, pairs, 4)
        merged = ServeReport.merge(reports)
        shuffled = list(reports)
        random.Random(5).shuffle(shuffled)
        remerged = ServeReport.merge(shuffled)
        assert remerged == merged
        assert remerged.sketches["hops"] == merged.sketches["hops"]
        assert remerged.exemplars == merged.exemplars

    def test_zero_query_shard(self, built):
        """A shard that served nothing must not perturb the merge (its
        lone hops sentinel 0 would otherwise drag percentiles down)."""
        graph, compiled = built
        pairs = make_workload("zipf", graph, compiled.nodes, 300, 7)
        reports = _shard_reports(graph, compiled, pairs, 2)
        engine = ServeEngine(compiled, cache_size=4096)
        empty, _ = serve_pairs(engine, graph, [], workload="zipf", seed=7)
        assert empty.queries == 0
        merged_with = ServeReport.merge([*reports, empty])
        merged_without = ServeReport.merge(reports)
        assert merged_with.hops_p50 == merged_without.hops_p50
        assert merged_with.queries == merged_without.queries
        assert merged_with.sketches["hops"] == \
               merged_without.sketches["hops"]

    def test_all_empty_keeps_sentinel(self, built):
        graph, compiled = built
        engine = ServeEngine(compiled, cache_size=16)
        empty, _ = serve_pairs(engine, graph, [], workload="zipf", seed=7)
        merged = ServeReport.merge([empty, empty])
        assert merged.queries == 0
        assert merged.hops_p50 == 0.0
        assert merged.sketches["hops"].count == 1

    def test_stream_identity_mismatch_raises(self, built):
        graph, compiled = built
        pairs = make_workload("zipf", graph, compiled.nodes, 100, 7)
        [a] = _shard_reports(graph, compiled, pairs, 1)
        engine = ServeEngine(compiled, cache_size=4096)
        b, _ = serve_pairs(engine, graph, pairs, workload="zipf", seed=8)
        with pytest.raises(InputError):
            ServeReport.merge([a, b])

    def test_throughput_uses_slowest_shard(self, built):
        graph, compiled = built
        pairs = make_workload("zipf", graph, compiled.nodes, 200, 7)
        reports = _shard_reports(graph, compiled, pairs, 2)
        merged = ServeReport.merge(reports)
        assert merged.serve_s == max(r.serve_s for r in reports)
        assert merged.throughput_qps == pytest.approx(
            merged.queries / merged.serve_s)
