"""Unit tests for routing artifacts and the pure forwarding rule."""

import pytest

from repro.errors import RoutingFailure
from repro.routing import (
    GraphLabel,
    GraphTable,
    Header,
    TreeLabel,
    TreeTable,
    tree_forward,
)


def table(enter, exit_, parent=None, heavy=None, rd=None):
    return TreeTable(enter=enter, exit_=exit_, parent=parent, heavy=heavy,
                     root_distance=rd)


class TestWordSizes:
    def test_tree_table_is_four_words(self):
        assert table(1, 10).word_size() == 4

    def test_root_distance_adds_one_word(self):
        assert table(1, 10, rd=2.5).word_size() == 5

    def test_tree_label_scales_with_light_edges(self):
        assert TreeLabel(enter=3).word_size() == 1
        assert TreeLabel(enter=3, light_edges=((1, 2), (3, 4))).word_size() == 5

    def test_graph_table_sums_trees(self):
        gt = GraphTable(vertex="v")
        gt.trees["r1"] = table(1, 5)
        gt.trees["r2"] = table(2, 3)
        assert gt.word_size() == 1 + (1 + 4) + (1 + 4)

    def test_graph_label_counts_entries(self):
        label = GraphLabel(
            vertex="v",
            entries=(
                ("r", 1.0, TreeLabel(enter=1)),
                None,
            ),
        )
        # 1 (id) + [1 tag + 2 + 1] + [1 tag]
        assert label.word_size() == 6

    def test_header_words(self):
        h = Header(tree="r", tree_label=TreeLabel(enter=1))
        assert h.word_size() == 2


class TestContains:
    def test_inside(self):
        assert table(2, 9).contains(5)

    def test_boundaries_inclusive(self):
        t = table(2, 9)
        assert t.contains(2) and t.contains(9)

    def test_outside(self):
        assert not table(2, 9).contains(10)


class TestNextLightHop:
    def test_finds_matching_edge(self):
        label = TreeLabel(enter=1, light_edges=(("a", "b"), ("c", "d")))
        assert label.next_light_hop("c") == "d"

    def test_none_when_absent(self):
        label = TreeLabel(enter=1, light_edges=(("a", "b"),))
        assert label.next_light_hop("z") is None


class TestTreeForward:
    def test_arrived(self):
        assert tree_forward("v", table(4, 8), TreeLabel(enter=4)) is None

    def test_outside_goes_to_parent(self):
        t = table(4, 8, parent="p", heavy="h")
        assert tree_forward("v", t, TreeLabel(enter=2)) == "p"

    def test_inside_light_edge_wins(self):
        t = table(2, 9, parent="p", heavy="h")
        label = TreeLabel(enter=5, light_edges=(("v", "x"),))
        assert tree_forward("v", t, label) == "x"

    def test_inside_defaults_to_heavy(self):
        t = table(2, 9, parent="p", heavy="h")
        assert tree_forward("v", t, TreeLabel(enter=5)) == "h"

    def test_root_with_outside_target_fails(self):
        t = table(2, 9, parent=None, heavy="h")
        with pytest.raises(RoutingFailure):
            tree_forward("v", t, TreeLabel(enter=1))

    def test_leaf_with_inside_target_fails(self):
        t = table(4, 4, parent="p", heavy=None)
        # enter==4 would be arrival; an interval of width 1 cannot strictly
        # contain another vertex, so craft an inconsistent table:
        t2 = table(4, 6, parent="p", heavy=None)
        with pytest.raises(RoutingFailure):
            tree_forward("v", t2, TreeLabel(enter=5))
