"""Unit tests for the TZ sampling hierarchy."""

import random

import pytest

from repro.errors import InputError
from repro.tz import expected_level_size, sample_hierarchy, virtual_level


class TestSampling:
    def test_level_zero_is_everything(self):
        h = sample_hierarchy(range(100), 3, seed=1)
        assert h.levels[0] == set(range(100))

    def test_levels_nested(self):
        h = sample_hierarchy(range(200), 4, seed=2)
        for i in range(1, h.k):
            assert h.levels[i] <= h.levels[i - 1]

    def test_top_level_nonempty(self):
        for seed in range(10):
            h = sample_hierarchy(range(50), 4, seed=seed)
            assert h.levels[h.k - 1]

    def test_deterministic(self):
        a = sample_hierarchy(range(100), 3, seed=5)
        b = sample_hierarchy(range(100), 3, seed=5)
        assert a.levels == b.levels

    def test_seed_matters(self):
        a = sample_hierarchy(range(100), 3, seed=5)
        b = sample_hierarchy(range(100), 3, seed=6)
        assert a.levels != b.levels

    def test_k1_has_single_level(self):
        h = sample_hierarchy(range(10), 1, seed=0)
        assert len(h.levels) == 1

    def test_rejects_k0(self):
        with pytest.raises(InputError):
            sample_hierarchy(range(10), 0)

    def test_rejects_empty(self):
        with pytest.raises(InputError):
            sample_hierarchy([], 2)

    def test_probability_override(self):
        h = sample_hierarchy(range(100), 2, seed=1, probability=1.0)
        assert h.levels[1] == set(range(100))

    def test_bad_probability_rejected(self):
        with pytest.raises(InputError):
            sample_hierarchy(range(10), 2, probability=1.5)

    def test_sizes_concentrate(self):
        # |A_1| for n=1000, k=2 has mean sqrt(1000) ~ 31.6; allow wide slack.
        h = sample_hierarchy(range(1000), 2, seed=3)
        assert 10 <= len(h.levels[1]) <= 90

    def test_injected_rng_overrides_seed(self):
        a = sample_hierarchy(range(100), 3, seed=0, rng=random.Random(9))
        b = sample_hierarchy(range(100), 3, seed=99, rng=random.Random(9))
        assert a.levels == b.levels

    def test_injected_rng_stream_matters(self):
        a = sample_hierarchy(range(100), 3, rng=random.Random(9))
        b = sample_hierarchy(range(100), 3, rng=random.Random(10))
        assert a.levels != b.levels


class TestLevelOf:
    def test_level_of_consistent(self):
        h = sample_hierarchy(range(100), 3, seed=7)
        for v, lvl in h.level_of.items():
            assert v in h.levels[lvl]
            if lvl + 1 < h.k:
                assert v not in h.levels[lvl + 1]

    def test_vertices_at_level_partition(self):
        h = sample_hierarchy(range(100), 3, seed=7)
        total = sum(len(h.vertices_at_level(i)) for i in range(h.k))
        assert total == 100

    def test_set_at_beyond_k_is_empty(self):
        h = sample_hierarchy(range(10), 2, seed=0)
        assert h.set_at(2) == set()
        assert h.set_at(5) == set()

    def test_set_at_negative_raises(self):
        h = sample_hierarchy(range(10), 2, seed=0)
        with pytest.raises(InputError):
            h.set_at(-1)


class TestHelpers:
    def test_expected_level_size(self):
        assert expected_level_size(100, 2, 1) == pytest.approx(10.0)
        assert expected_level_size(100, 2, 2) == 0.0

    def test_virtual_level_even_k(self):
        assert virtual_level(4) == 2

    def test_virtual_level_odd_k(self):
        assert virtual_level(3) == 2

    def test_virtual_level_k2(self):
        assert virtual_level(2) == 1
