"""Round-trip tests for scheme serialization."""

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.routing import measure_stretch, route_in_tree, sample_pairs
from repro.routing.serialization import (
    decode_id,
    encode_id,
    graph_scheme_from_dict,
    graph_scheme_to_dict,
    load_scheme,
    save_scheme,
    tree_scheme_from_dict,
    tree_scheme_to_dict,
)
from repro.tz import build_centralized_scheme, build_tree_scheme


ids = st.recursive(
    st.one_of(
        st.integers(min_value=-10 ** 9, max_value=10 ** 9),
        st.text(max_size=12),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.none(),
        st.booleans(),
    ),
    lambda inner: st.lists(inner, max_size=3).map(tuple),
    max_leaves=6,
)


class TestIdEncoding:
    @given(ids)
    @settings(max_examples=150, deadline=None)
    def test_round_trip(self, value):
        assert decode_id(json.loads(json.dumps(encode_id(value)))) == value

    def test_unsupported_type_rejected(self):
        with pytest.raises(InputError):
            encode_id(object())

    def test_malformed_blob_rejected(self):
        with pytest.raises(InputError):
            decode_id({"x": 1, "y": 2})

    def test_unknown_tag_rejected(self):
        with pytest.raises(InputError):
            decode_id({"z": 1})


@pytest.fixture(scope="module")
def tree_scheme():
    graph = random_connected_graph(80, seed=211)
    tree = spanning_tree_of(graph, style="dfs", seed=211)
    return graph, tree, build_tree_scheme(tree, root_distance=lambda v: 1.0)


class TestTreeSchemeRoundTrip:
    def test_identity(self, tree_scheme):
        _, _, scheme = tree_scheme
        back = tree_scheme_from_dict(
            json.loads(json.dumps(tree_scheme_to_dict(scheme)))
        )
        assert back.tables == scheme.tables
        assert back.labels == scheme.labels
        assert back.tree_id == scheme.tree_id and back.root == scheme.root

    def test_routing_works_after_reload(self, tree_scheme):
        graph, tree, scheme = tree_scheme
        buf = io.StringIO()
        save_scheme(scheme, buf)
        buf.seek(0)
        loaded = load_scheme(buf)
        nodes = sorted(tree)
        weight = lambda u, v: graph[u][v]["weight"]
        a = route_in_tree(scheme, nodes[0], nodes[-1], weight_of=weight)
        b = route_in_tree(loaded, nodes[0], nodes[-1], weight_of=weight)
        assert a.path == b.path and a.length == b.length

    def test_wrong_kind_rejected(self, tree_scheme):
        _, _, scheme = tree_scheme
        blob = tree_scheme_to_dict(scheme)
        with pytest.raises(InputError):
            graph_scheme_from_dict(blob)

    def test_future_format_rejected(self, tree_scheme):
        _, _, scheme = tree_scheme
        blob = tree_scheme_to_dict(scheme)
        blob["format"] = 99
        with pytest.raises(InputError):
            tree_scheme_from_dict(blob)


class TestGraphSchemeRoundTrip:
    @pytest.fixture(scope="class")
    def built(self):
        graph = random_connected_graph(70, seed=212)
        return graph, build_centralized_scheme(graph, 2, seed=212)

    def test_identity(self, built):
        _, scheme = built
        back = graph_scheme_from_dict(
            json.loads(json.dumps(graph_scheme_to_dict(scheme)))
        )
        assert back.k == scheme.k
        assert back.labels == scheme.labels
        for v in scheme.tables:
            assert back.tables[v].trees == scheme.tables[v].trees

    def test_stretch_identical_after_reload(self, built):
        graph, scheme = built
        buf = io.StringIO()
        save_scheme(scheme, buf)
        buf.seek(0)
        loaded = load_scheme(buf)
        pairs = sample_pairs(list(graph.nodes), 50, seed=1)
        before = measure_stretch(scheme, graph, pairs)
        after = measure_stretch(loaded, graph, pairs)
        assert before.max_stretch == pytest.approx(after.max_stretch)

    def test_save_unknown_object_rejected(self):
        with pytest.raises(InputError):
            save_scheme(object(), io.StringIO())

    def test_load_unknown_kind_rejected(self):
        buf = io.StringIO(json.dumps({"format": 1, "kind": "mystery"}))
        with pytest.raises(InputError):
            load_scheme(buf)


# ---------------------------------------------------------------------------
# Property tests: whole-scheme round trips over arbitrary vertex id types
# ---------------------------------------------------------------------------

#: Vertex ids a scheme may legitimately carry: ints, strings, and nested
#: tuples of both (what the tagged id encoding supports and real graph
#: generators produce, e.g. grid coordinates).
vertex_ids = st.one_of(
    st.integers(min_value=-10 ** 6, max_value=10 ** 6),
    st.text(max_size=8),
    st.tuples(st.integers(min_value=0, max_value=999),
              st.integers(min_value=0, max_value=999)),
    st.tuples(st.text(max_size=4), st.integers(min_value=0, max_value=99)),
)


@st.composite
def parent_maps(draw, min_nodes=2, max_nodes=10):
    """A random rooted tree as a parent mapping over drawn vertex ids."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    labels = draw(st.lists(vertex_ids, min_size=n, max_size=n, unique=True))
    parent = {labels[0]: None}
    for i in range(1, n):
        parent[labels[i]] = labels[draw(
            st.integers(min_value=0, max_value=i - 1))]
    return parent


class TestSchemeRoundTripProperties:
    @given(parent_maps())
    @settings(max_examples=40, deadline=None)
    def test_tree_scheme_round_trip(self, parent):
        scheme = build_tree_scheme(parent, root_distance=lambda v: 1.0)
        back = tree_scheme_from_dict(
            json.loads(json.dumps(tree_scheme_to_dict(scheme)))
        )
        assert back.tree_id == scheme.tree_id
        assert back.root == scheme.root
        assert back.tables == scheme.tables
        assert back.labels == scheme.labels

    @given(parent_maps(min_nodes=3, max_nodes=9),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_graph_scheme_round_trip(self, parent, k, seed):
        import networkx as nx

        graph = nx.Graph()
        for child, par in parent.items():
            graph.add_node(child)
            if par is not None:
                graph.add_edge(child, par, weight=1.0)
        scheme = build_centralized_scheme(graph, k, seed=seed)
        back = graph_scheme_from_dict(
            json.loads(json.dumps(graph_scheme_to_dict(scheme)))
        )
        assert back.k == scheme.k
        assert back.labels == scheme.labels
        assert set(back.tables) == set(scheme.tables)
        for v in scheme.tables:
            assert back.tables[v].trees == scheme.tables[v].trees
        assert {t: s.tables for t, s in back.tree_schemes.items()} == \
               {t: s.tables for t, s in scheme.tree_schemes.items()}
