"""Unit tests for pivots, clusters and bunches (Eq. 1, Claim 6)."""

import math

import pytest

from repro.graphs import dijkstra, random_connected_graph
from repro.tz import (
    all_cluster_trees,
    bunches,
    claim6_bound,
    compute_pivots,
    max_cluster_membership,
    sample_hierarchy,
)


@pytest.fixture(scope="module")
def setup():
    graph = random_connected_graph(100, seed=23)
    hier = sample_hierarchy(list(graph.nodes), 3, seed=23)
    pivots = compute_pivots(graph, hier)
    trees = all_cluster_trees(graph, hier, pivots)
    return graph, hier, pivots, trees


class TestPivots:
    def test_level_zero_pivot_is_self(self, setup):
        graph, hier, pivots, _ = setup
        for v in graph.nodes:
            assert pivots.pivot[0][v] == v
            assert pivots.dist[0][v] == 0.0

    def test_pivot_lies_in_level_set(self, setup):
        graph, hier, pivots, _ = setup
        for i in range(hier.k):
            level = hier.set_at(i)
            for v in graph.nodes:
                assert pivots.pivot[i][v] in level

    def test_pivot_distance_is_set_distance(self, setup):
        graph, hier, pivots, _ = setup
        for i in range(1, hier.k):
            level = sorted(hier.set_at(i), key=repr)
            for v in sorted(graph.nodes)[:10]:
                exact, _ = dijkstra(graph, level)
                assert pivots.dist[i][v] == pytest.approx(exact[v])

    def test_distances_monotone_in_level(self, setup):
        graph, hier, pivots, _ = setup
        for v in graph.nodes:
            for i in range(1, hier.k):
                assert pivots.dist[i][v] >= pivots.dist[i - 1][v] - 1e-12

    def test_next_level_distance_top_is_infinite(self, setup):
        graph, hier, pivots, _ = setup
        v = sorted(graph.nodes)[0]
        assert pivots.next_level_distance(hier.k - 1, v) == math.inf


class TestClusterDefinition:
    def test_membership_matches_eq1(self, setup):
        graph, hier, pivots, trees = setup
        # Check Eq. (1) directly for a few roots.
        for root in sorted(trees, key=repr)[:8]:
            tree = trees[root]
            exact, _ = dijkstra(graph, [root])
            for u in graph.nodes:
                in_cluster = exact[u] < pivots.next_level_distance(tree.level, u)
                assert (u in tree) == in_cluster, (root, u)

    def test_cluster_distances_exact(self, setup):
        graph, _, _, trees = setup
        for root in sorted(trees, key=repr)[:8]:
            tree = trees[root]
            exact, _ = dijkstra(graph, [root])
            for u, d in tree.dist.items():
                assert d == pytest.approx(exact[u])

    def test_root_in_own_cluster(self, setup):
        _, _, _, trees = setup
        for root, tree in trees.items():
            assert root in tree

    def test_tree_parents_are_members_and_edges(self, setup):
        graph, _, _, trees = setup
        for tree in trees.values():
            for v, p in tree.parent.items():
                if p is not None:
                    assert p in tree
                    assert graph.has_edge(v, p)

    def test_tree_parent_decreases_distance(self, setup):
        _, _, _, trees = setup
        for tree in trees.values():
            for v, p in tree.parent.items():
                if p is not None:
                    assert tree.dist[p] < tree.dist[v]

    def test_top_level_cluster_spans_graph(self, setup):
        graph, hier, _, trees = setup
        top = hier.vertices_at_level(hier.k - 1)
        assert top
        for root in top:
            assert len(trees[root].dist) == graph.number_of_nodes()


class TestBunches:
    def test_bunches_invert_membership(self, setup):
        _, _, _, trees = setup
        b = bunches(trees)
        for root, tree in trees.items():
            for v in tree.dist:
                assert root in b[v]

    def test_every_vertex_in_own_bunch(self, setup):
        graph, _, _, trees = setup
        b = bunches(trees)
        for v in graph.nodes:
            assert v in b[v]

    def test_claim6_bound_holds(self, setup):
        graph, hier, _, trees = setup
        _, worst = max_cluster_membership(trees)
        assert worst <= claim6_bound(graph.number_of_nodes(), hier.k)
