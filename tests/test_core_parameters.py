"""Tests for the Theorem-3 parameter presets."""

import pytest

from repro.core.parameters import (
    all_regimes,
    expected_virtual_size,
    preset,
)
from repro.errors import InputError


class TestExpectedVirtualSize:
    def test_k2_is_sqrt(self):
        assert expected_virtual_size(10000, 2) == 100

    def test_k4_is_sqrt(self):
        assert expected_virtual_size(10000, 4) == 100

    def test_odd_k_smaller_than_sqrt(self):
        assert expected_virtual_size(10000, 3) <= 100

    def test_at_least_one(self):
        assert expected_virtual_size(4, 2) >= 1


class TestPresets:
    @pytest.mark.parametrize("regime", all_regimes())
    def test_all_regimes_produce_valid_kwargs(self, regime):
        p = preset(1000, 3, regime)
        kwargs = p.as_kwargs()
        assert kwargs["kappa"] >= 2
        assert 0 < kwargs["epsilon"] < 0.2
        assert kwargs["beta"] >= 3

    def test_polylog_regime_has_largest_kappa(self):
        n, k = 100_000, 4
        kappas = {r: preset(n, k, r).kappa for r in all_regimes()}
        assert kappas["polylog-memory"] >= kappas["balanced"]

    def test_epsilon_shrinks_with_k(self):
        assert preset(1000, 4).epsilon <= preset(1000, 2).epsilon

    def test_unknown_regime_rejected(self):
        with pytest.raises(InputError):
            preset(100, 2, "warp-speed")

    def test_tiny_inputs_rejected(self):
        with pytest.raises(InputError):
            preset(2, 2)
        with pytest.raises(InputError):
            preset(100, 1)

    def test_presets_build_working_schemes(self):
        from repro.core import build_distributed_scheme
        from repro.graphs import random_connected_graph
        from repro.routing import measure_stretch, sample_pairs

        graph = random_connected_graph(150, seed=241)
        for regime in all_regimes():
            p = preset(150, 2, regime)
            report = build_distributed_scheme(graph, 2, seed=24, **p.as_kwargs())
            stretch = measure_stretch(
                report.scheme, graph, sample_pairs(list(graph.nodes), 60, seed=25)
            )
            assert stretch.max_stretch <= 5 + 1e-9, regime
