"""Unit tests for arboricity measurement (footnote 5 machinery)."""

import pytest

from repro.errors import InputError
from repro.hopsets import (
    degeneracy_orientation,
    forest_decomposition,
    nash_williams_lower_bound,
    verify_forest,
)


def cycle_edges(n):
    return [(i, (i + 1) % n) for i in range(n)]


def clique_edges(n):
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


class TestDegeneracy:
    def test_tree_has_degeneracy_one(self):
        edges = [(0, 1), (1, 2), (1, 3), (3, 4)]
        _, deg = degeneracy_orientation(edges)
        assert deg == 1

    def test_cycle_has_degeneracy_two(self):
        _, deg = degeneracy_orientation(cycle_edges(6))
        assert deg == 2

    def test_clique_degeneracy(self):
        _, deg = degeneracy_orientation(clique_edges(5))
        assert deg == 4

    def test_orientation_covers_all_edges(self):
        edges = clique_edges(4)
        oriented, _ = degeneracy_orientation(edges)
        assert sum(len(v) for v in oriented.values()) == len(edges)

    def test_self_loop_rejected(self):
        with pytest.raises(InputError):
            degeneracy_orientation([(1, 1)])


class TestForestDecomposition:
    def test_tree_splits_into_one_forest(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        oriented, _ = degeneracy_orientation(edges)
        forests = forest_decomposition(oriented)
        assert all(verify_forest(f) for f in forests)

    def test_pieces_cover_edges(self):
        edges = clique_edges(5)
        oriented, _ = degeneracy_orientation(edges)
        forests = forest_decomposition(oriented)
        assert sum(len(f) for f in forests) == len(edges)

    def test_piece_count_bounded_by_out_degree(self):
        edges = clique_edges(6)
        oriented, _ = degeneracy_orientation(edges)
        forests = forest_decomposition(oriented)
        assert len(forests) <= max(len(v) for v in oriented.values())


class TestVerifyForest:
    def test_acyclic_ok(self):
        assert verify_forest([(1, 2), (2, 3), (4, 5)])

    def test_cycle_detected(self):
        assert not verify_forest(cycle_edges(3))

    def test_empty_is_forest(self):
        assert verify_forest([])


class TestNashWilliams:
    def test_clique_density(self):
        edges = clique_edges(4)  # 6 edges over 4 vertices: ceil(6/3) = 2
        assert nash_williams_lower_bound(edges, [set(range(4))]) == 2

    def test_tree_density_is_one(self):
        edges = [(0, 1), (1, 2)]
        assert nash_williams_lower_bound(edges, [set(range(3))]) == 1

    def test_sandwiches_degeneracy(self):
        edges = clique_edges(6)
        _, deg = degeneracy_orientation(edges)
        lower = nash_williams_lower_bound(edges, [set(range(6))])
        assert lower <= deg <= 2 * lower
