"""Tests for parallel multi-tree construction (Theorem 2, second claim)."""

import math
import random

import pytest

from repro.congest import Network
from repro.errors import InputError
from repro.graphs import random_connected_graph, spanning_tree_of, tree_distance
from repro.routing import route_in_tree
from repro.treerouting.multi import build_many_tree_schemes, max_trees_per_vertex
from repro.tz import build_tree_scheme


@pytest.fixture(scope="module")
def built():
    graph = random_connected_graph(200, seed=111)
    trees = {
        f"t{i}": spanning_tree_of(graph, style="random", seed=200 + i)
        for i in range(4)
    }
    net = Network(graph)
    build = build_many_tree_schemes(net, trees, seed=4)
    return graph, trees, net, build


class TestMultiTree:
    def test_all_schemes_built(self, built):
        _, trees, _, build = built
        assert set(build.schemes) == set(trees)

    def test_s_measured(self, built):
        _, trees, _, build = built
        assert build.s == max_trees_per_vertex(trees) == len(trees)

    def test_q_uses_s(self, built):
        graph, trees, _, build = built
        n = graph.number_of_nodes()
        assert build.q == pytest.approx(1.0 / math.sqrt(len(trees) * n))

    def test_every_scheme_matches_centralized(self, built):
        _, trees, _, build = built
        for tid, tree in trees.items():
            cent = build_tree_scheme(tree, tree_id=tid)
            assert build.schemes[tid].tables == cent.tables
            assert build.schemes[tid].labels == cent.labels

    def test_routing_exact_in_every_tree(self, built):
        graph, trees, _, build = built
        weight = lambda u, v: graph[u][v]["weight"]
        rng = random.Random(1)
        for tid, tree in trees.items():
            for _ in range(25):
                u, v = rng.sample(list(tree), 2)
                result = route_in_tree(build.schemes[tid], u, v, weight_of=weight)
                assert result.length == pytest.approx(
                    tree_distance(tree, weight, u, v)
                )

    def test_parallel_rounds_below_sequential(self, built):
        _, _, _, build = built
        assert build.rounds_parallel < build.rounds_sequential

    def test_offsets_within_window(self, built):
        graph, trees, _, build = built
        n = graph.number_of_nodes()
        window = math.sqrt(len(trees) * n) * math.log(n) + 1
        for off in build.offsets.values():
            assert 1 <= off <= window

    def test_memory_scales_with_s_not_sqrt_n(self, built):
        graph, trees, _, build = built
        n = graph.number_of_nodes()
        s = len(trees)
        assert build.max_memory_words <= 12 * s * math.log2(n) + 60

    def test_empty_trees_rejected(self, built):
        graph, _, _, _ = built
        with pytest.raises(InputError):
            build_many_tree_schemes(Network(graph), {}, seed=1)
