"""Property-based tests: cluster/bunch invariants and the hopset
inequality over random weighted graphs."""


from hypothesis import given, settings, strategies as st

from repro.congest import Network
from repro.graphs import (
    VirtualGraphOracle,
    dijkstra,
    random_connected_graph,
)
from repro.hopsets import build_hopset, measure_hopbound
from repro.tz import (
    all_cluster_trees,
    compute_pivots,
    sample_hierarchy,
)


graph_cases = st.tuples(
    st.integers(min_value=20, max_value=80),
    st.integers(min_value=0, max_value=10 ** 6),
    st.integers(min_value=2, max_value=4),
)


@given(graph_cases)
@settings(max_examples=15, deadline=None)
def test_cluster_definition_eq1(case):
    n, seed, k = case
    graph = random_connected_graph(n, seed=seed)
    hier = sample_hierarchy(list(graph.nodes), k, seed=seed)
    pivots = compute_pivots(graph, hier)
    trees = all_cluster_trees(graph, hier, pivots)
    nodes = sorted(graph.nodes, key=repr)
    for root in nodes[: min(5, n)]:
        tree = trees[root]
        exact, _ = dijkstra(graph, [root])
        for u in nodes:
            expected = exact[u] < pivots.next_level_distance(tree.level, u)
            assert (u in tree) == expected


@given(graph_cases)
@settings(max_examples=15, deadline=None)
def test_clusters_shortest_path_closed(case):
    n, seed, k = case
    graph = random_connected_graph(n, seed=seed)
    hier = sample_hierarchy(list(graph.nodes), k, seed=seed)
    trees = all_cluster_trees(graph, hier)
    for tree in list(trees.values())[:8]:
        for v, p in tree.parent.items():
            if p is not None:
                assert p in tree
                assert tree.dist[p] < tree.dist[v] + 1e-12


@given(st.tuples(
    st.integers(min_value=30, max_value=90),
    st.integers(min_value=0, max_value=10 ** 6),
    st.integers(min_value=2, max_value=3),
))
@settings(max_examples=10, deadline=None)
def test_hopset_inequality_property(case):
    n, seed, kappa = case
    graph = random_connected_graph(n, seed=seed)
    hier = sample_hierarchy(list(graph.nodes), 2, seed=seed)
    virtual = sorted(hier.set_at(1), key=repr)
    if len(virtual) < 2:
        return
    oracle = VirtualGraphOracle(graph, virtual, n)
    net = Network(graph)
    build = build_hopset(net, oracle, kappa=kappa, seed=seed)
    build.hopset.verify_paths(graph)
    # measure_hopbound raises if no beta <= 512 satisfies the inequality;
    # passing means the hopset property holds for eps = 0.2.
    beta = measure_hopbound(
        oracle.materialize(), build.hopset, epsilon=0.2, sample_sources=4
    )
    assert beta >= 1


@given(graph_cases)
@settings(max_examples=15, deadline=None)
def test_pivot_distances_monotone_property(case):
    n, seed, k = case
    graph = random_connected_graph(n, seed=seed)
    hier = sample_hierarchy(list(graph.nodes), k, seed=seed)
    pivots = compute_pivots(graph, hier)
    for v in graph.nodes:
        ds = [pivots.dist[i][v] for i in range(k)]
        assert ds == sorted(ds)
        assert ds[0] == 0.0
