"""Tests for the EN16b-style tree-routing baseline and landmark routing."""

import math
import random

import pytest

from repro.baselines import (
    build_en16_tree_scheme,
    build_landmark_scheme,
    choose_landmarks,
    route_en16,
)
from repro.congest import Network
from repro.errors import InputError
from repro.graphs import (
    dijkstra,
    random_connected_graph,
    spanning_tree_of,
    tree_distance,
)
from repro.routing import measure_stretch, sample_pairs
from repro.treerouting import build_distributed_tree_scheme


@pytest.fixture(scope="module")
def en16_built():
    graph = random_connected_graph(300, seed=151)
    tree = spanning_tree_of(graph, style="dfs", seed=151)
    net = Network(graph)
    build = build_en16_tree_scheme(net, tree, seed=8)
    return graph, tree, net, build


class TestEn16Routing:
    def test_exact_on_random_pairs(self, en16_built):
        graph, tree, _, build = en16_built
        weight = lambda u, v: graph[u][v]["weight"]
        rng = random.Random(2)
        for _ in range(120):
            u, v = rng.sample(list(tree), 2)
            _, length = route_en16(build.scheme, u, v, weight_of=weight)
            assert length == pytest.approx(tree_distance(tree, weight, u, v))

    def test_route_within_one_local_tree(self, en16_built):
        graph, tree, _, build = en16_built
        weight = lambda u, v: graph[u][v]["weight"]
        part = build.scheme.partition
        roots = part.local_root_reference()
        # find two vertices sharing a local tree
        by_root = {}
        for v, r in roots.items():
            by_root.setdefault(r, []).append(v)
        pool = next(vs for vs in by_root.values() if len(vs) >= 2)
        _, length = route_en16(build.scheme, pool[0], pool[1], weight_of=weight)
        assert length == pytest.approx(
            tree_distance(tree, weight, pool[0], pool[1])
        )

    def test_route_to_self(self, en16_built):
        _, tree, _, build = en16_built
        v = sorted(tree)[0]
        path, length = route_en16(build.scheme, v, v)
        assert path == [v] and length == 0.0


class TestEn16CostShape:
    def test_memory_larger_than_this_paper(self, en16_built):
        graph, tree, _, base = en16_built
        ours = build_distributed_tree_scheme(Network(graph), tree, seed=8)
        assert base.max_memory_words > ours.max_memory_words

    def test_memory_scales_like_sqrt_n(self, en16_built):
        graph, _, _, base = en16_built
        n = graph.number_of_nodes()
        # The broadcast virtual tree costs ~2|U(T)| words; |U(T)| ~ sqrt n.
        assert base.max_memory_words >= math.sqrt(n) / 2

    def test_labels_larger_than_this_paper(self, en16_built):
        graph, tree, _, base = en16_built
        ours = build_distributed_tree_scheme(Network(graph), tree, seed=8)
        assert base.scheme.max_label_words() >= ours.scheme.max_label_words()

    def test_tables_larger_than_this_paper(self, en16_built):
        graph, tree, _, base = en16_built
        ours = build_distributed_tree_scheme(Network(graph), tree, seed=8)
        assert base.scheme.max_table_words() > ours.scheme.max_table_words()


class TestLandmark:
    def test_landmark_count_default_sqrt(self):
        graph = random_connected_graph(100, seed=152)
        marks = choose_landmarks(graph, None, seed=1)
        assert len(marks) == 10

    def test_bad_count_rejected(self):
        graph = random_connected_graph(20, seed=152)
        with pytest.raises(InputError):
            choose_landmarks(graph, 0, seed=1)

    def test_injected_rng_overrides_seed(self):
        graph = random_connected_graph(100, seed=152)
        a = choose_landmarks(graph, 8, seed=0, rng=random.Random(4))
        b = choose_landmarks(graph, 8, seed=99, rng=random.Random(4))
        assert a == b and len(a) == 8

    def test_routing_delivers(self):
        graph = random_connected_graph(90, seed=153)
        scheme = build_landmark_scheme(graph, seed=2)
        pairs = sample_pairs(list(graph.nodes), 80, seed=3)
        report = measure_stretch(scheme, graph, pairs)
        assert report.pairs == 80
        assert report.max_stretch >= 1.0

    def test_route_through_landmark_bound(self):
        graph = random_connected_graph(90, seed=153)
        scheme = build_landmark_scheme(graph, seed=2)
        # stretch of u->v is at most (d(u,l)+d(l,v))/d(u,v) for l = v's mark.
        nodes = sorted(graph.nodes)
        u, v = nodes[3], nodes[60]
        entry = scheme.labels[v].entries[0]
        ell, d_lv, _ = entry
        exact_u, _ = dijkstra(graph, [u])
        from repro.routing import route_in_graph

        result = route_in_graph(scheme, graph, u, v)
        d_ul = dijkstra(graph, [ell])[0][u]
        assert result.length <= d_ul + d_lv + 1e-9

    def test_tables_are_theta_sqrt_n(self):
        graph = random_connected_graph(100, seed=154)
        scheme = build_landmark_scheme(graph, seed=2)
        # 10 landmarks x (1 + 5) words + 1
        assert scheme.max_table_words() >= 10 * 5
