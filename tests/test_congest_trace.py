"""Tests for round-activity tracing."""

import pytest

from repro.congest import Network, build_bfs_tree
from repro.congest.trace import attach_trace
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.treerouting import build_distributed_tree_scheme


@pytest.fixture()
def net():
    return Network(random_connected_graph(80, seed=251))


class TestAttachTrace:
    def test_records_every_simulated_round(self, net):
        trace = attach_trace(net)
        bfs = build_bfs_tree(net)
        assert len(trace.samples) == net.metrics.rounds
        assert trace.samples[0].round_index == 1

    def test_message_totals_match_metrics(self, net):
        trace = attach_trace(net)
        build_bfs_tree(net)
        assert trace.total_messages() == net.metrics.messages

    def test_charges_recorded_with_phase(self, net):
        trace = attach_trace(net)
        net.begin_phase("warp")
        net.charge_rounds(42)
        net.end_phase()
        assert trace.charged_total() == 42
        assert trace.charges[0].phase == "warp"

    def test_phase_attribution_on_samples(self, net):
        trace = attach_trace(net)
        net.begin_phase("hello")
        a = sorted(net.nodes(), key=repr)[0]
        b = net.ports(a)[0]
        net.send(a, b, "x")
        net.tick()
        net.end_phase()
        assert trace.samples[-1].phase == "hello"

    def test_busiest_round(self, net):
        trace = attach_trace(net)
        build_bfs_tree(net)
        busiest = trace.busiest_round
        assert busiest is not None
        assert busiest.messages == max(s.messages for s in trace.samples)

    def test_timeline_renders(self, net):
        trace = attach_trace(net)
        build_bfs_tree(net)
        art = trace.timeline()
        assert "rounds 1.." in art and "[" in art

    def test_empty_timeline(self, net):
        trace = attach_trace(net)
        assert "no simulated rounds" in trace.timeline()
        assert "no simulated rounds" in trace.timeline(mode="rows")

    def test_charge_attribution_across_phases(self, net):
        """Each charge event lands in the phase open at charge time."""
        trace = attach_trace(net)
        net.begin_phase("alpha")
        net.charge_rounds(3)
        net.end_phase()
        net.charge_rounds(5)  # outside any phase
        net.begin_phase("beta")
        net.charge_rounds(7)
        net.end_phase()
        assert [(c.phase, c.rounds) for c in trace.charges] == [
            ("alpha", 3), (None, 5), ("beta", 7),
        ]
        assert trace.charged_total() == 15
        assert net.metrics.charged_rounds == 15

    def test_charge_records_current_round_index(self, net):
        trace = attach_trace(net)
        net.idle_rounds(4)
        net.charge_rounds(2)
        assert trace.charges[0].at_round == 4


class TestTimelineModes:
    def _trace_with(self, rounds):
        from repro.congest.trace import RoundSample, RoundTrace

        trace = RoundTrace()
        for i in range(rounds):
            trace.samples.append(RoundSample(
                round_index=i + 1, messages=(i % 7) + 1, words=i, phase=None,
            ))
        return trace

    def test_rows_mode_one_line_per_round_when_short(self):
        trace = self._trace_with(10)
        art = trace.timeline(mode="rows", max_rows=40)
        lines = art.splitlines()
        assert len(lines) == 11  # header + one row per round
        assert "1 round(s)/row" in lines[0]

    def test_rows_mode_buckets_long_traces(self):
        """A >10k-round trace renders width-capped, not one line/round."""
        trace = self._trace_with(12_000)
        art = trace.timeline(mode="rows", max_rows=40)
        lines = art.splitlines()
        assert len(lines) <= 41
        assert "300 round(s)/row" in lines[0]
        assert "1-300" in lines[1]

    def test_rows_mode_bars_capped_at_width(self):
        trace = self._trace_with(5000)
        art = trace.timeline(width=50, mode="rows", max_rows=25)
        assert max(len(line) for line in art.splitlines()) <= 50 + 24

    def test_rows_message_totals_preserved(self):
        trace = self._trace_with(1000)
        art = trace.timeline(mode="rows", max_rows=10)
        shown = sum(
            int(line.split("|")[0].split()[-1])
            for line in art.splitlines()[1:]
        )
        assert shown == trace.total_messages()

    def test_sparkline_mode_unchanged(self):
        trace = self._trace_with(500)
        art = trace.timeline(mode="sparkline")
        assert art.startswith("rounds 1..500")
        assert len(art.splitlines()) == 2

    def test_unknown_mode_raises(self):
        trace = self._trace_with(5)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            trace.timeline(mode="bogus")

    def test_to_dict_round_trips_counts(self):
        trace = self._trace_with(25)
        d = trace.to_dict()
        assert len(d["samples"]) == 25
        assert d["samples"][0]["round_index"] == 1

    def test_full_tree_build_traceable(self):
        graph = random_connected_graph(120, seed=252)
        tree = spanning_tree_of(graph, style="dfs", seed=252)
        net = Network(graph)
        trace = attach_trace(net)
        build = build_distributed_tree_scheme(net, tree, seed=25)
        # Simulated rounds and charges both present; totals consistent.
        assert trace.samples and trace.charges
        assert (
            len(trace.samples) + trace.charged_total()
            >= build.rounds
        )
