"""Tests for round-activity tracing."""

import pytest

from repro.congest import Network, build_bfs_tree
from repro.congest.trace import attach_trace
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.treerouting import build_distributed_tree_scheme


@pytest.fixture()
def net():
    return Network(random_connected_graph(80, seed=251))


class TestAttachTrace:
    def test_records_every_simulated_round(self, net):
        trace = attach_trace(net)
        bfs = build_bfs_tree(net)
        assert len(trace.samples) == net.metrics.rounds
        assert trace.samples[0].round_index == 1

    def test_message_totals_match_metrics(self, net):
        trace = attach_trace(net)
        build_bfs_tree(net)
        assert trace.total_messages() == net.metrics.messages

    def test_charges_recorded_with_phase(self, net):
        trace = attach_trace(net)
        net.begin_phase("warp")
        net.charge_rounds(42)
        net.end_phase()
        assert trace.charged_total() == 42
        assert trace.charges[0].phase == "warp"

    def test_phase_attribution_on_samples(self, net):
        trace = attach_trace(net)
        net.begin_phase("hello")
        a = sorted(net.nodes(), key=repr)[0]
        b = net.ports(a)[0]
        net.send(a, b, "x")
        net.tick()
        net.end_phase()
        assert trace.samples[-1].phase == "hello"

    def test_busiest_round(self, net):
        trace = attach_trace(net)
        build_bfs_tree(net)
        busiest = trace.busiest_round
        assert busiest is not None
        assert busiest.messages == max(s.messages for s in trace.samples)

    def test_timeline_renders(self, net):
        trace = attach_trace(net)
        build_bfs_tree(net)
        art = trace.timeline()
        assert "rounds 1.." in art and "[" in art

    def test_empty_timeline(self, net):
        trace = attach_trace(net)
        assert "no simulated rounds" in trace.timeline()

    def test_full_tree_build_traceable(self):
        graph = random_connected_graph(120, seed=252)
        tree = spanning_tree_of(graph, style="dfs", seed=252)
        net = Network(graph)
        trace = attach_trace(net)
        build = build_distributed_tree_scheme(net, tree, seed=25)
        # Simulated rounds and charges both present; totals consistent.
        assert trace.samples and trace.charges
        assert (
            len(trace.samples) + trace.charged_total()
            >= build.rounds
        )
