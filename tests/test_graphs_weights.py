"""Unit tests for edge-weight quantization (standard-CONGEST adaptation)."""


import pytest

from repro.errors import InputError
from repro.graphs import (
    aspect_ratio,
    encoded_weight_bits,
    quantization_stretch_bound,
    quantize_weight,
    quantize_weights,
    random_connected_graph,
    raw_weight_bits,
    weight_exponent,
)
from repro.graphs.weights import quantized_distance_sandwich

EPS = 0.1


class TestQuantizeWeight:
    def test_result_is_power_of_base(self):
        w = quantize_weight(3.7, EPS)
        e = weight_exponent(w, EPS)
        assert (1 + EPS) ** e == pytest.approx(w)

    def test_rounds_up(self):
        assert quantize_weight(3.7, EPS) >= 3.7

    def test_within_one_factor(self):
        assert quantize_weight(3.7, EPS) <= 3.7 * (1 + EPS) + 1e-12

    def test_exact_power_unchanged(self):
        w = (1 + EPS) ** 5
        assert quantize_weight(w, EPS) == pytest.approx(w)

    def test_small_weights_ok(self):
        w = quantize_weight(0.001, EPS)
        assert 0.001 <= w <= 0.001 * (1 + EPS) + 1e-12

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(InputError):
            quantize_weight(0.0, EPS)

    def test_nonpositive_epsilon_rejected(self):
        with pytest.raises(InputError):
            quantize_weight(1.0, 0.0)


class TestQuantizeGraph:
    @pytest.fixture(scope="class")
    def graphs(self):
        g = random_connected_graph(80, seed=171, weight_range=(0.5, 500.0))
        return g, quantize_weights(g, EPS)

    def test_original_untouched(self, graphs):
        g, q = graphs
        assert any(
            g[u][v]["weight"] != q[u][v]["weight"] for u, v in g.edges
        ) or True
        # weights of g remain non-quantized floats from the generator
        assert aspect_ratio(g) > 1

    def test_all_weights_quantized(self, graphs):
        _, q = graphs
        for u, v in q.edges:
            weight_exponent(q[u][v]["weight"], EPS)  # raises if not a power

    def test_distance_sandwich(self, graphs):
        g, q = graphs
        nodes = sorted(g.nodes)
        bound = quantization_stretch_bound(EPS)
        for u, v in [(nodes[0], nodes[40]), (nodes[3], nodes[77])]:
            d, dq = quantized_distance_sandwich(g, q, u, v)
            assert d - 1e-9 <= dq <= bound * d + 1e-9


class TestBitAccounting:
    def test_encoded_bits_grow_loglog_in_aspect_ratio(self):
        from repro.graphs import assign_log_uniform_weights

        base = random_connected_graph(60, seed=172)
        small = assign_log_uniform_weights(base, 1.0, 10.0, seed=1)
        huge = assign_log_uniform_weights(base, 1.0, 10.0 ** 9, seed=1)
        small_q = quantize_weights(small, EPS)
        huge_q = quantize_weights(huge, EPS)
        # Λ grows by ~10^8; raw bits grow by ~27; encoded bits by ~5.
        raw_growth = raw_weight_bits(huge) - raw_weight_bits(small)
        enc_growth = encoded_weight_bits(huge_q, EPS) - encoded_weight_bits(small_q, EPS)
        assert raw_growth >= 20
        assert enc_growth <= 6

    def test_raw_bits_theta_log_lambda(self):
        from repro.graphs import assign_log_uniform_weights

        g = assign_log_uniform_weights(
            random_connected_graph(40, seed=173), 1.0, 2 ** 20, seed=2
        )
        assert raw_weight_bits(g) >= 14

    def test_aspect_ratio_positive_weights_only(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(1, 2, weight=-1.0)
        with pytest.raises(InputError):
            aspect_ratio(g)

    def test_smaller_epsilon_needs_more_bits(self):
        from repro.graphs import assign_log_uniform_weights

        wide = assign_log_uniform_weights(
            random_connected_graph(40, seed=174), 1.0, 10 ** 6, seed=3
        )
        g = quantize_weights(wide, 0.01)
        coarse = quantize_weights(wide, 0.5)
        assert encoded_weight_bits(g, 0.01) > encoded_weight_bits(coarse, 0.5)
