"""Unit tests for the forest communication primitives.

The ``setup`` fixture builds on the engine-parametrized ``engine`` fixture,
so every test here runs against reference, fastpath, and vectorized.
"""

import pytest

from repro.congest import Forest, convergecast_up, flood_down
from repro.errors import InputError
from repro.graphs import (
    depths,
    random_connected_graph,
    spanning_tree_of,
    subtree_sizes,
)


@pytest.fixture()
def setup(engine):
    graph = random_connected_graph(70, seed=3)
    tree = spanning_tree_of(graph, style="dfs", seed=3)
    return engine(graph), tree, Forest.from_parent_map(tree)


class TestForest:
    def test_single_root(self, setup):
        _, tree, forest = setup
        assert len(forest.roots) == 1

    def test_depths_match_reference(self, setup):
        _, tree, forest = setup
        assert forest.depth == depths(tree)

    def test_children_sorted(self, setup):
        _, _, forest = setup
        for kids in forest.children.values():
            assert kids == sorted(kids, key=repr)

    def test_leaves_have_no_children(self, setup):
        _, _, forest = setup
        for leaf in forest.leaves():
            assert forest.children[leaf] == []

    def test_subtree_vertices_count(self, setup):
        _, tree, forest = setup
        root = forest.roots[0]
        assert len(forest.subtree_vertices(root)) == len(tree)

    def test_by_depth_partitions(self, setup):
        _, tree, forest = setup
        levels = forest.by_depth()
        assert sum(len(level) for level in levels) == len(tree)

    def test_dangling_parent_rejected(self):
        with pytest.raises(InputError):
            Forest.from_parent_map({1: 2})

    def test_cycle_rejected(self):
        with pytest.raises(InputError):
            Forest.from_parent_map({1: 2, 2: 1})

    def test_multi_root_forest(self):
        forest = Forest.from_parent_map({1: None, 2: None, 3: 1})
        assert sorted(forest.roots) == [1, 2]


class TestFloodDown:
    def test_depth_wave(self, setup):
        net, tree, forest = setup
        values = flood_down(net, forest, lambda r: 0, lambda v, x: x + 1)
        assert values == depths(tree)

    def test_identity_broadcast(self, setup):
        net, _, forest = setup
        root = forest.roots[0]
        values = flood_down(net, forest, lambda r: r, lambda v, x: x)
        assert all(val == root for val in values.values())

    def test_per_child_payloads(self, setup):
        net, tree, forest = setup

        def emit(v, x):
            return {c: (v, c) for c in forest.children[v]}

        values = flood_down(net, forest, lambda r: ("root", r), emit)
        for v, val in values.items():
            if tree[v] is not None:
                assert val == (tree[v], v)

    def test_rounds_equal_height(self, setup):
        net, _, forest = setup
        flood_down(net, forest, lambda r: 0, lambda v, x: x)
        assert net.metrics.rounds == forest.height


class TestConvergecastUp:
    def test_subtree_sizes(self, setup):
        net, tree, forest = setup
        sizes = convergecast_up(
            net, forest, lambda v: 1, lambda v, vals: 1 + sum(vals)
        )
        assert sizes == subtree_sizes(tree)

    def test_max_leaf_depth(self, setup):
        net, tree, forest = setup
        d = depths(tree)
        deepest = convergecast_up(
            net, forest, lambda v: d[v], lambda v, vals: max(vals)
        )
        root = forest.roots[0]
        assert deepest[root] == max(d.values())

    def test_covers_every_vertex(self, setup):
        net, tree, forest = setup
        values = convergecast_up(net, forest, lambda v: 0, lambda v, vals: 0)
        assert set(values) == set(tree)

    def test_one_message_per_edge(self, setup):
        net, tree, forest = setup
        convergecast_up(net, forest, lambda v: 1, lambda v, vals: 1 + sum(vals))
        assert net.metrics.messages == len(tree) - 1
