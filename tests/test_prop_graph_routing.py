"""Property-based tests for general-graph routing (centralized TZ engine,
which shares the router and artifact machinery with the distributed
scheme)."""

import json

from hypothesis import given, settings, strategies as st

from repro.graphs import dijkstra, random_connected_graph
from repro.routing import (
    measure_stretch,
    route_in_graph,
    sample_pairs,
)
from repro.routing.serialization import (
    graph_scheme_from_dict,
    graph_scheme_to_dict,
)
from repro.routing.validation import verify_graph_scheme
from repro.tz import build_centralized_scheme

cases = st.tuples(
    st.integers(min_value=15, max_value=70),
    st.integers(min_value=0, max_value=10 ** 6),
    st.integers(min_value=1, max_value=4),
)


@given(cases)
@settings(max_examples=20, deadline=None)
def test_stretch_bound_property(case):
    n, seed, k = case
    graph = random_connected_graph(n, seed=seed)
    scheme = build_centralized_scheme(graph, k, seed=seed)
    report = measure_stretch(
        scheme, graph, sample_pairs(list(graph.nodes), min(40, n), seed=seed)
    )
    assert report.max_stretch <= max(1, 4 * k - 3) + 1e-9


@given(cases)
@settings(max_examples=15, deadline=None)
def test_scheme_passes_certification(case):
    n, seed, k = case
    graph = random_connected_graph(n, seed=seed)
    scheme = build_centralized_scheme(graph, k, seed=seed)
    verify_graph_scheme(scheme, graph, sample_pairs=8, seed=seed)


@given(cases)
@settings(max_examples=10, deadline=None)
def test_serialization_preserves_routes(case):
    n, seed, k = case
    graph = random_connected_graph(n, seed=seed)
    scheme = build_centralized_scheme(graph, k, seed=seed)
    loaded = graph_scheme_from_dict(
        json.loads(json.dumps(graph_scheme_to_dict(scheme)))
    )
    nodes = sorted(graph.nodes, key=repr)
    for u, v in zip(nodes[:5], nodes[-5:]):
        if u == v:
            continue
        a = route_in_graph(scheme, graph, u, v)
        b = route_in_graph(loaded, graph, u, v)
        assert a.path == b.path


@given(cases)
@settings(max_examples=15, deadline=None)
def test_routes_never_shorter_than_distance(case):
    n, seed, k = case
    graph = random_connected_graph(n, seed=seed)
    scheme = build_centralized_scheme(graph, k, seed=seed)
    nodes = sorted(graph.nodes, key=repr)
    u = nodes[0]
    exact, _ = dijkstra(graph, [u])
    for v in nodes[1:6]:
        result = route_in_graph(scheme, graph, u, v)
        assert result.length >= exact[v] - 1e-9
