"""Property-based tests for the log-bucketed quantile sketch (S18).

Two contracts, checked on adversarial streams:

* **accuracy** — for any stream of non-negative floats and any rank,
  the estimate is within the configured relative error of the exact
  nearest-rank quantile (DDSketch's defining guarantee);
* **mergeability** — splitting a stream at any point and merging the
  two sketches is *bucket-exact* equal to sketching the whole stream,
  so per-shard sketches can be combined without widening the error.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.metrics import QuantileSketch

# Positive magnitudes across ~12 orders of magnitude, plus exact zeros:
# log-bucketed sketches earn their keep (or break) at extreme spread.
magnitudes = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
)
streams = st.lists(magnitudes, min_size=1, max_size=300)
accuracies = st.sampled_from([0.005, 0.01, 0.05])
ranks = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)


def exact_quantile(values, q):
    ordered = sorted(values)
    if q <= 0:
        return ordered[0]
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


@given(streams, ranks, accuracies)
@settings(max_examples=200, deadline=None)
def test_quantile_within_relative_error(values, q, alpha):
    sk = QuantileSketch(relative_accuracy=alpha)
    sk.add_many(values)
    exact = exact_quantile(values, q)
    assert abs(sk.quantile(q) - exact) <= alpha * exact + 1e-9


@given(streams, st.integers(min_value=0, max_value=300))
@settings(max_examples=200, deadline=None)
def test_merge_of_split_equals_whole(values, cut):
    cut = min(cut, len(values))
    whole = QuantileSketch()
    whole.add_many(values)
    left, right = QuantileSketch(), QuantileSketch()
    left.add_many(values[:cut])
    right.add_many(values[cut:])
    merged = left.merge(right)
    assert merged == whole
    assert merged.count == whole.count
    assert merged.min_value == whole.min_value
    assert merged.max_value == whole.max_value


@given(streams)
@settings(max_examples=100, deadline=None)
def test_quantile_monotone_and_bounded(values):
    sk = QuantileSketch()
    sk.add_many(values)
    estimates = sk.quantiles([i / 10 for i in range(11)])
    assert estimates == sorted(estimates)
    assert estimates[0] >= 0.0
    assert estimates[-1] <= max(values) * 1.0000001


@given(magnitudes, st.integers(min_value=1, max_value=50))
@settings(max_examples=100, deadline=None)
def test_weighted_add_equals_repeats(value, repeat):
    weighted = QuantileSketch()
    weighted.add(value, count=repeat)
    repeated = QuantileSketch()
    for _ in range(repeat):
        repeated.add(value)
    assert weighted == repeated
    assert weighted.count == repeat


def test_workload_family_streams_within_bound():
    """Acceptance: p50/p99 within the configured relative error on the
    uniform / zipf / gravity / adversarial hop- and latency-shaped
    streams (deterministic seeds, heavier than the hypothesis sweep)."""
    rng = random.Random(1789)
    zipf_tail = [1.0 / (i + 1) ** 1.1 * 1e4 for i in range(4000)]
    rng.shuffle(zipf_tail)
    families = {
        "uniform": [rng.uniform(0.5, 500.0) for _ in range(4000)],
        "zipf": zipf_tail,
        "gravity": [rng.expovariate(1 / 80.0) * rng.expovariate(1 / 80.0)
                    for _ in range(4000)],
        "adversarial": [10.0 ** rng.randint(-6, 6) for _ in range(4000)],
    }
    alpha = 0.005
    for name, values in families.items():
        sk = QuantileSketch(relative_accuracy=alpha)
        sk.add_many(values)
        for q in (0.5, 0.99):
            exact = exact_quantile(values, q)
            err = abs(sk.quantile(q) - exact)
            assert err <= alpha * exact + 1e-9, (name, q, err)
