"""Tests for the experiment harness (tables and figure sweeps)."""

import pytest

from repro.analysis import (
    fig_multitree,
    fig_sizes_vs_k,
    fig_stretch,
    fig_tree_memory,
    fig_tree_rounds,
    format_records,
    format_table,
    run_table1,
    run_table2,
)


class TestFormatting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].index("|") == lines[2].index("|")

    def test_format_records_empty(self):
        assert "(no data)" in format_records([], title="t")

    def test_format_records_roundtrip(self):
        out = format_records([{"x": 1, "y": 2.5}], title="T")
        assert "T" in out and "2.500" in out


class TestTable2Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(300, seed=3)

    def test_three_rows(self, result):
        assert {r["scheme"] for r in result.rows} == {
            "this-paper", "EN16b-baseline", "TZ01b-centralized"
        }

    def test_paper_shape_holds(self, result):
        ours = result.row("this-paper")
        base = result.row("EN16b-baseline")
        cent = result.row("TZ01b-centralized")
        assert ours["memory_words"] < base["memory_words"]
        assert ours["table_words"] < base["table_words"]
        assert ours["table_words"] == cent["table_words"]
        assert ours["label_words"] == cent["label_words"]

    def test_render_mentions_all_schemes(self, result):
        text = result.render()
        for scheme in ("this-paper", "EN16b-baseline", "TZ01b-centralized"):
            assert scheme in text


class TestTable1Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(120, 2, seed=3, pairs=60)

    def test_rows_present(self, result):
        assert {r["scheme"] for r in result.rows} == {
            "this-paper",
            "TZ01b-centralized",
            "landmark-baseline",
            "tree-cover-baseline",
        }

    def test_tree_cover_row_constant_stretch(self, result):
        cover = result.row("tree-cover-baseline")
        assert cover["stretch_max"] <= 6.0 + 1e-9

    def test_stretch_within_bound(self, result):
        ours = result.row("this-paper")
        assert ours["stretch_max"] <= 4 * 2 - 3 + 1e-9


class TestFigureSweeps:
    def test_tree_rounds_sweep(self):
        records = fig_tree_rounds(sizes=(100, 200), seed=2)
        assert [r["n"] for r in records] == [100, 200]
        assert records[1]["rounds"] > 0

    def test_tree_memory_sweep_shows_gap(self):
        records = fig_tree_memory(sizes=(150, 400), seed=2)
        for r in records:
            assert r["memory_en16b"] > r["memory_this_paper"]

    def test_stretch_sweep_within_bounds(self):
        records = fig_stretch(n=100, ks=(2,), seed=2, pairs=40)
        for r in records:
            assert r["stretch_max"] <= r["bound_4k_minus_3"] + 1e-9

    def test_sizes_vs_k_tables_shrink(self):
        records = fig_sizes_vs_k(n=120, ks=(2, 4), seed=2)
        assert records[1]["table_mean"] <= records[0]["table_mean"] * 1.5

    def test_multitree_parallel_wins(self):
        records = fig_multitree(n=150, tree_counts=(1, 4), seed=2)
        four = records[1]
        assert four["rounds_parallel"] < four["rounds_sequential_sum"]
