"""Larger-scale end-to-end checks (still seconds, thanks to the exact-key
memory accounting fix; these lock in that the library handles thousands of
vertices, not just the unit-test sizes)."""

import math
import random

import pytest

from repro.congest import Network
from repro.core import build_distributed_scheme
from repro.graphs import random_connected_graph, spanning_tree_of, tree_distance
from repro.routing import measure_stretch, route_in_tree, sample_pairs
from repro.treerouting import build_distributed_tree_scheme
from repro.tz import build_tree_scheme


class TestTreeRoutingAtScale:
    @pytest.fixture(scope="class")
    def built(self):
        graph = random_connected_graph(5000, seed=271)
        tree = spanning_tree_of(graph, style="dfs", seed=271)
        net = Network(graph)
        build = build_distributed_tree_scheme(net, tree, seed=27)
        return graph, tree, build

    def test_matches_centralized_at_5000(self, built):
        _, tree, build = built
        cent = build_tree_scheme(tree)
        assert build.scheme.tables == cent.tables
        assert build.scheme.labels == cent.labels

    def test_memory_still_logarithmic(self, built):
        _, tree, build = built
        assert build.max_memory_words <= 12 * math.log2(len(tree)) + 40

    def test_rounds_within_sqrt_polylog_budget(self, built):
        _, tree, build = built
        n = len(tree)
        # Õ(√n + D): at n=5000 the polylog² factor still rivals √n, so the
        # meaningful check is the explicit budget, not rounds < n.
        assert build.rounds <= 2 * math.sqrt(n) * math.log2(n) ** 2

    def test_routing_exact_at_scale(self, built):
        graph, tree, build = built
        weight = lambda u, v: graph[u][v]["weight"]
        rng = random.Random(6)
        for _ in range(30):
            u, v = rng.sample(list(tree), 2)
            result = route_in_tree(build.scheme, u, v, weight_of=weight)
            assert result.length == pytest.approx(tree_distance(tree, weight, u, v))


class TestGeneralSchemeAtScale:
    def test_n_1000_k_3(self):
        graph = random_connected_graph(1000, seed=272)
        report = build_distributed_scheme(graph, 3, seed=27)
        stretch = measure_stretch(
            report.scheme, graph, sample_pairs(list(graph.nodes), 100, seed=28)
        )
        assert stretch.max_stretch <= 9 + 1e-9
        # memory stays within polylog of table size at n=1000 too
        assert report.max_memory_words <= (
            8 * math.log2(1000) ** 2 * report.scheme.max_table_words()
        )
        assert report.max_memory_words < math.sqrt(1000) * report.scheme.max_table_words()
