"""Unit tests for run metrics and phase attribution."""

from repro.congest.metrics import PhaseRecord, RunMetrics


class TestRunMetrics:
    def test_on_round_accumulates(self):
        m = RunMetrics()
        m.on_round(messages=3, words=7)
        m.on_round(messages=2, words=1)
        assert (m.rounds, m.messages, m.message_words) == (2, 5, 8)

    def test_on_charge_separate_counter(self):
        m = RunMetrics()
        m.on_charge(10)
        assert m.rounds == 0
        assert m.charged_rounds == 10
        assert m.total_rounds == 10

    def test_total_combines(self):
        m = RunMetrics()
        m.on_round(1, 1)
        m.on_charge(4)
        assert m.total_rounds == 5

    def test_phase_attribution(self):
        m = RunMetrics()
        m.begin_phase("a")
        m.on_round(1, 1)
        m.on_charge(2)
        m.end_phase()
        m.on_round(1, 1)  # unattributed
        assert m.by_phase() == {"a": 3}

    def test_repeated_phase_names_merge(self):
        m = RunMetrics()
        for _ in range(2):
            m.begin_phase("x")
            m.on_round(1, 1)
            m.end_phase()
        assert m.by_phase() == {"x": 2}

    def test_summary_mentions_phases(self):
        m = RunMetrics()
        m.begin_phase("setup")
        m.on_round(1, 1)
        m.end_phase()
        text = m.summary()
        assert "setup" in text and "rounds=1" in text


class TestPhaseRecord:
    def test_total_rounds(self):
        rec = PhaseRecord(name="p", rounds=2, charged_rounds=3)
        assert rec.total_rounds == 5
