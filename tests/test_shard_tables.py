"""Tests for repro.shard.tables: seal/attach round-trips, byte parity,
shared-memory lifecycle, and the REPRO_NO_NUMPY buffer twin."""

import glob
import os
import subprocess
import sys

import pytest

from repro.errors import InputError
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.serve import (
    ServeEngine,
    compile_scheme,
    from_buffers,
    seal_to_buffers,
)
from repro.serve.workloads import make_workload
from repro.shard.tables import (
    HAVE_NUMPY,
    NO_ID,
    TABLE_FORMAT,
    AttachedTables,
    lower_compiled,
)
from repro.tz import build_centralized_scheme, build_tree_scheme


@pytest.fixture(scope="module")
def built():
    graph = random_connected_graph(60, seed=21)
    scheme = build_centralized_scheme(graph, 3, seed=21)
    return graph, compile_scheme(scheme, graph)


@pytest.fixture(scope="module")
def built_tree():
    graph = random_connected_graph(40, seed=5)
    tree = spanning_tree_of(graph, style="dfs", seed=7)
    scheme = build_tree_scheme(tree, root_distance=lambda v: 1.0)
    return graph, compile_scheme(scheme, graph)


def _routes(compiled, graph, pairs, mode="first"):
    engine = ServeEngine(compiled, mode=mode, cache_size=0)
    return [engine.route_recorded(u, v) for u, v in pairs]


def _same_routes(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert (x.source, x.target) == (y.source, y.target)
        assert x.ok == y.ok
        assert x.path == y.path
        assert x.length == y.length
        assert x.error == y.error


class TestRoundTrip:
    def test_graph_scheme_inline(self, built):
        graph, compiled = built
        lowered = lower_compiled(compiled)
        attached = AttachedTables(lowered.manifest, lowered.payload)
        pairs = make_workload("uniform", graph, compiled.nodes, 400, 9)
        _same_routes(_routes(compiled, graph, pairs),
                     _routes(attached.compiled, graph, pairs))
        attached.close()

    def test_graph_scheme_zipf_best_mode(self, built):
        graph, compiled = built
        lowered = lower_compiled(compiled)
        attached = AttachedTables(lowered.manifest, lowered.payload)
        pairs = make_workload("zipf", graph, compiled.nodes, 400, 17)
        _same_routes(_routes(compiled, graph, pairs, mode="best"),
                     _routes(attached.compiled, graph, pairs, mode="best"))
        attached.close()

    def test_tree_scheme(self, built_tree):
        graph, compiled = built_tree
        lowered = lower_compiled(compiled)
        attached = AttachedTables(lowered.manifest, lowered.payload)
        nodes = list(compiled.nodes)
        pairs = [(nodes[i % len(nodes)], nodes[(i * 7 + 3) % len(nodes)])
                 for i in range(200)]
        _same_routes(_routes(compiled, graph, pairs),
                     _routes(attached.compiled, graph, pairs))
        attached.close()

    def test_rebuilt_structural_equality(self, built):
        _, compiled = built
        lowered = lower_compiled(compiled)
        attached = AttachedTables(lowered.manifest, lowered.payload)
        re = attached.compiled
        assert re.k == compiled.k and re.n == compiled.n
        assert re.nodes == compiled.nodes
        assert re.tree_ids == compiled.tree_ids
        assert re.table_ids == compiled.table_ids
        assert re.default_budget == compiled.default_budget
        assert re.bunch_levels == compiled.bunch_levels
        assert set(re.provenance) == set(compiled.provenance)
        # Decision tables: same candidates in the same order (the packed
        # trees inside are compared by identity fields — their hot arrays
        # are zero-copy memoryviews on the rebuilt side, list-equal in
        # content but not list-typed).
        assert set(re.decisions) == set(compiled.decisions)
        for target, cands in compiled.decisions.items():
            got = re.decisions[target]
            assert len(got) == len(cands)
            for (loc_a, (tree_a, lab_a), w_a, e_a, d_a), \
                    (loc_b, (tree_b, lab_b), w_b, e_b, d_b) in \
                    zip(cands, got):
                assert loc_a == loc_b
                assert tree_a.tree_id == tree_b.tree_id
                assert list(tree_a.enter) == list(tree_b.enter)
                assert lab_a.enter == lab_b.enter
                assert lab_a.light == lab_b.light
                assert list(w_a) == list(w_b)
                assert e_a == e_b and d_a == d_b
        attached.close()

    def test_missing_target_keyerror_parity(self, built):
        graph, compiled = built
        lowered = lower_compiled(compiled)
        attached = AttachedTables(lowered.manifest, lowered.payload)
        engine = ServeEngine(attached.compiled, cache_size=0)
        with pytest.raises(KeyError):
            engine.route("no-such-node", next(iter(compiled.nodes)))
        attached.close()

    def test_manifest_format_and_offsets(self, built):
        _, compiled = built
        lowered = lower_compiled(compiled)
        m = lowered.manifest
        assert m["format"] == TABLE_FORMAT
        assert m["kind"] == "graph"
        assert m["nbytes"] == len(lowered.payload)
        for name, (offset, count, code) in m["arrays"].items():
            assert offset % 8 == 0
            assert code in ("q", "d")
            assert offset + 8 * count <= m["nbytes"]


class TestSharedMemory:
    def test_seal_attach_by_name(self, built):
        graph, compiled = built
        pairs = make_workload("uniform", graph, compiled.nodes, 200, 4)
        with seal_to_buffers(compiled) as sealed:
            # Attach from the manifest alone, like a worker does.
            attached = from_buffers(sealed.manifest)
            _same_routes(_routes(compiled, graph, pairs),
                         _routes(attached.compiled, graph, pairs))
            attached.close()

    def test_double_close_and_double_unlink_safe(self, built):
        _, compiled = built
        sealed = seal_to_buffers(compiled)
        attached = from_buffers(sealed.manifest)
        attached.close()
        attached.close()
        sealed.close()
        sealed.close()
        sealed.unlink()
        sealed.unlink()

    def test_no_leaked_segment(self, built):
        _, compiled = built
        sealed = seal_to_buffers(compiled)
        name = sealed.name.lstrip("/")
        assert glob.glob(f"/dev/shm/*{name}*")
        sealed.close()
        sealed.unlink()
        assert not glob.glob(f"/dev/shm/*{name}*")

    def test_attach_without_name_or_buffer_raises(self, built):
        _, compiled = built
        lowered = lower_compiled(compiled)
        manifest = dict(lowered.manifest)
        manifest.pop("shm", None)
        with pytest.raises(InputError):
            from_buffers(manifest)


class TestBackendParity:
    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_payload_bytes_identical(self, built):
        _, compiled = built
        a = lower_compiled(compiled, backend="numpy")
        b = lower_compiled(compiled, backend="python")
        assert a.manifest["arrays"] == b.manifest["arrays"]
        assert bytes(a.payload) == bytes(b.payload)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_no_numpy_twin_subprocess(self, built, tmp_path):
        """REPRO_NO_NUMPY=1 writes the byte-identical image (arc parity)."""
        graph, compiled = built
        ref = lower_compiled(compiled)
        blob = tmp_path / "python-backend.bin"
        script = (
            "from repro.graphs import random_connected_graph\n"
            "from repro.tz import build_centralized_scheme\n"
            "from repro.serve import compile_scheme\n"
            "from repro.shard.tables import lower_compiled, HAVE_NUMPY\n"
            "assert not HAVE_NUMPY\n"
            "g = random_connected_graph(60, seed=21)\n"
            "c = compile_scheme(build_centralized_scheme(g, 3, seed=21), g)\n"
            "lo = lower_compiled(c)\n"
            f"open({str(blob)!r}, 'wb').write(bytes(lo.payload))\n"
        )
        env = dict(os.environ, REPRO_NO_NUMPY="1",
                   PYTHONPATH=os.pathsep.join(sys.path))
        subprocess.run([sys.executable, "-c", script], check=True, env=env)
        assert blob.read_bytes() == bytes(ref.payload)

    def test_weird_node_ids_roundtrip(self):
        """String/tuple/bool/float ids survive interning distinctly."""
        import networkx as nx

        graph = nx.Graph()
        nodes = ["a", ("b", 1), 1, 1.5, True, "1"]
        for i in range(len(nodes) - 1):
            graph.add_edge(nodes[i], nodes[i + 1], weight=1.0 + i)
        scheme = build_centralized_scheme(graph, 2, seed=3)
        compiled = compile_scheme(scheme, graph)
        lowered = lower_compiled(compiled)
        attached = AttachedTables(lowered.manifest, lowered.payload)
        assert attached.compiled.nodes == compiled.nodes
        pairs = [(u, v) for u in nodes for v in nodes]
        _same_routes(_routes(compiled, graph, pairs),
                     _routes(attached.compiled, graph, pairs))
        attached.close()

    def test_no_id_sentinel_is_negative(self):
        assert NO_ID < 0
