"""Unit tests for machine-word accounting."""

import pytest

from repro.errors import InputError
from repro.wordsize import check_budget, words_of


class TestWordsOf:
    def test_int_is_one_word(self):
        assert words_of(7) == 1

    def test_float_is_one_word(self):
        assert words_of(3.25) == 1

    def test_bool_is_one_word(self):
        assert words_of(True) == 1

    def test_none_is_one_word(self):
        assert words_of(None) == 1

    def test_short_string_is_one_word(self):
        assert words_of("v12") == 1

    def test_long_string_scales(self):
        assert words_of("x" * 17) == 3

    def test_empty_string_is_one_word(self):
        assert words_of("") == 1

    def test_tuple_sums_elements(self):
        assert words_of((1, 2.0, "v")) == 3

    def test_empty_tuple_is_zero(self):
        assert words_of(()) == 0

    def test_nested_containers(self):
        assert words_of([(1, 2), (3, 4)]) == 4

    def test_set_sums_elements(self):
        assert words_of({1, 2, 3}) == 3

    def test_dict_counts_keys_and_values(self):
        assert words_of({1: 2, 3: (4, 5)}) == 5

    def test_custom_word_size_method_wins(self):
        class Payload:
            def word_size(self):
                return 11

        assert words_of(Payload()) == 11

    def test_unknown_type_raises(self):
        with pytest.raises(InputError):
            words_of(object())


class TestCheckBudget:
    def test_within_budget_passes(self):
        check_budget(3, 4, "label")

    def test_equal_budget_passes(self):
        check_budget(4, 4, "label")

    def test_over_budget_raises(self):
        with pytest.raises(InputError, match="label"):
            check_budget(5, 4, "label")
