"""Tests for the BENCH_*.json perf-trajectory store."""

import json

from repro.telemetry.trajectory import (
    TRAJECTORY_SCHEMA,
    append_entry,
    baseline_entry,
    load_trajectory,
    make_entry,
    row_key,
    workload_signature,
)

ROWS = [
    {"scheme": "this-paper", "rounds": 100, "words": 40},
    {"scheme": "baseline", "rounds": 250, "words": 12},
]


class TestEntries:
    def test_make_entry_fields(self):
        e = make_entry("t", ROWS, {"workload": {"n": 100}}, sha="abc",
                       package_version="1.0")
        assert e["name"] == "t"
        assert e["git_sha"] == "abc"
        assert len(e["run_id"]) == 12
        assert e["workload_sig"] == workload_signature(
            ROWS, {"workload": {"n": 100}})

    def test_signature_tracks_workload_not_measurements(self):
        bigger = [dict(r, rounds=r["rounds"] * 2) for r in ROWS]
        assert workload_signature(ROWS) == workload_signature(bigger)
        extra = ROWS + [{"scheme": "third", "rounds": 1, "words": 1}]
        assert workload_signature(ROWS) != workload_signature(extra)
        assert (workload_signature(ROWS, {"workload": {"n": 1}})
                != workload_signature(ROWS, {"workload": {"n": 2}}))

    def test_row_key_prefers_string_field(self):
        assert row_key({"n": 5, "scheme": "x"}) == "scheme=x"
        assert row_key({"n": 5, "rounds": 9}) == "n=5"


class TestLoad:
    def test_missing_file_is_empty_trajectory(self, tmp_path):
        traj = load_trajectory(tmp_path / "BENCH_x.json")
        assert traj["entries"] == []

    def test_legacy_single_object_wraps_as_one_entry(self, tmp_path):
        legacy = {"name": "t", "created_unix": 1.0,
                  "package_version": "0.1", "meta": {}, "data": ROWS}
        path = tmp_path / "BENCH_t.json"
        path.write_text(json.dumps(legacy))
        traj = load_trajectory(path)
        assert len(traj["entries"]) == 1
        entry = traj["entries"][0]
        assert entry["run_id"] == "legacy"
        assert entry["workload_sig"] == workload_signature(ROWS, {})
        assert entry["data"] == ROWS


class TestAppend:
    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        append_entry(path, make_entry("t", ROWS, sha="a", package_version="1"))
        append_entry(path, make_entry("t", ROWS, sha="b", package_version="1"))
        traj = load_trajectory(path)
        assert traj["schema"] == TRAJECTORY_SCHEMA
        assert [e["git_sha"] for e in traj["entries"]] == ["a", "b"]

    def test_same_sha_replaces_not_duplicates(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        append_entry(path, make_entry("t", ROWS, sha="a", package_version="1"))
        newer = make_entry("t", ROWS, sha="a", package_version="2")
        append_entry(path, newer)
        traj = load_trajectory(path)
        assert len(traj["entries"]) == 1
        assert traj["entries"][0]["run_id"] == newer["run_id"]

    def test_same_run_id_replaces(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        e = make_entry("t", ROWS, sha=None, run_id="r1", package_version="1")
        append_entry(path, e)
        append_entry(path, dict(e))
        assert len(load_trajectory(path)["entries"]) == 1

    def test_none_sha_never_matches_none_sha(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        append_entry(path, make_entry("t", ROWS, package_version="1"))
        append_entry(path, make_entry("t", ROWS, package_version="1"))
        assert len(load_trajectory(path)["entries"]) == 2

    def test_max_entries_drops_oldest(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        for i in range(5):
            append_entry(path, make_entry("t", ROWS, sha=f"s{i}",
                                          package_version="1"),
                         max_entries=3)
        shas = [e["git_sha"] for e in load_trajectory(path)["entries"]]
        assert shas == ["s2", "s3", "s4"]


class TestBaseline:
    def test_newest_comparable_entry_wins(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        old = make_entry("t", ROWS, sha="old", package_version="1")
        new = make_entry("t", ROWS, sha="new", package_version="1")
        append_entry(path, old)
        append_entry(path, new)
        cur = make_entry("t", ROWS, sha="head", package_version="1")
        base = baseline_entry(load_trajectory(path), cur)
        assert base["git_sha"] == "new"

    def test_current_sha_and_run_are_skipped(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        cur = make_entry("t", ROWS, sha="head", package_version="1")
        append_entry(path, cur)
        assert baseline_entry(load_trajectory(path), cur) is None

    def test_mismatched_workload_sig_skipped(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        other = make_entry("t", ROWS + [{"scheme": "x", "rounds": 1}],
                           sha="a", package_version="1")
        append_entry(path, other)
        cur = make_entry("t", ROWS, sha="b", package_version="1")
        assert baseline_entry(load_trajectory(path), cur) is None

    def test_empty_history_gives_none(self):
        assert baseline_entry({"entries": []}, None) is None
