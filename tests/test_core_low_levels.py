"""Unit tests for the exact low-level cluster phase (Appendix B)."""


import pytest

from repro.congest import Network
from repro.core import build_exact_low_level_clusters, claim8_hop_limit
from repro.graphs import hop_counts, random_connected_graph
from repro.tz import all_cluster_trees, compute_pivots, sample_hierarchy, virtual_level


@pytest.fixture(scope="module")
def setup():
    graph = random_connected_graph(120, seed=121)
    hier = sample_hierarchy(list(graph.nodes), 4, seed=121)
    pivots = compute_pivots(graph, hier)
    return graph, hier, pivots


class TestClaim8:
    def test_hop_limit_monotone_in_level(self):
        limits = [claim8_hop_limit(10 ** 6, 4, i) for i in range(3)]
        assert limits == sorted(limits)

    def test_hop_limit_capped_at_n(self):
        assert claim8_hop_limit(50, 2, 1) == 50

    def test_claim8_empirically(self, setup):
        graph, hier, pivots = setup
        n = graph.number_of_nodes()
        trees = all_cluster_trees(graph, hier, pivots)
        for root in sorted(trees, key=repr)[:10]:
            tree = trees[root]
            hops = hop_counts(graph, root)
            limit = claim8_hop_limit(n, hier.k, tree.level)
            for u in tree.dist:
                assert hops[u] <= limit


class TestLowLevelPhase:
    def test_covers_exactly_low_level_roots(self, setup):
        graph, hier, pivots = setup
        boundary = virtual_level(hier.k)
        net = Network(graph)
        trees = build_exact_low_level_clusters(net, hier, pivots, boundary)
        expected = {
            v for v in graph.nodes if hier.level_of[v] < boundary
        }
        assert set(trees) == expected

    def test_trees_match_centralized(self, setup):
        graph, hier, pivots = setup
        boundary = virtual_level(hier.k)
        net = Network(graph)
        trees = build_exact_low_level_clusters(net, hier, pivots, boundary)
        reference = all_cluster_trees(graph, hier, pivots)
        for root, tree in trees.items():
            assert tree.dist == pytest.approx(reference[root].dist)
            assert tree.parent == reference[root].parent

    def test_rounds_charged(self, setup):
        graph, hier, pivots = setup
        net = Network(graph)
        build_exact_low_level_clusters(net, hier, pivots, virtual_level(hier.k))
        assert net.metrics.charged_rounds > 0

    def test_memory_charged_per_membership(self, setup):
        graph, hier, pivots = setup
        net = Network(graph)
        trees = build_exact_low_level_clusters(net, hier, pivots, virtual_level(hier.k))
        counts = {v: 0 for v in graph.nodes}
        for tree in trees.values():
            for v in tree.dist:
                counts[v] += 1
        for v in graph.nodes:
            stored = dict(net.mem(v).items()).get("clusters/membership", 0)
            assert stored == 2 * counts[v]
