"""F2: per-vertex memory vs n -- O(log n) (this paper) vs Θ(√n) (EN16b).

The paper's headline (Table 2, last column).  The sweep must show our
memory hugging the log2(n) column while the baseline hugs sqrt(n), with a
widening ratio.
"""

import math

from _util import emit, once

from repro.analysis import fig_tree_memory, format_records

SIZES = (250, 500, 1000, 2000)


def bench_fig_tree_memory(benchmark):
    records = once(benchmark, lambda: fig_tree_memory(sizes=SIZES, seed=3))
    emit("fig2_tree_memory", format_records(
        records, title="F2: construction memory per vertex vs n"
    ), data=records)
    for r in records:
        assert r["memory_this_paper"] <= 12 * math.log2(r["n"]) + 40
        assert r["memory_en16b"] >= math.sqrt(r["n"]) / 2
    ratios = [r["memory_en16b"] / r["memory_this_paper"] for r in records]
    assert ratios[-1] > ratios[0]  # the gap widens with n
