"""F8: parallel multi-tree construction vs the naive sequential schedule.

Theorem 2 (second assertion): s trees in Õ(√(sn) + D) rounds total, versus
the naive s·Õ(√n).  The parallel schedule length must grow like √s while
the sequential sum grows like s.
"""

from _util import emit, once

from repro.analysis import fig_multitree, format_records

COUNTS = (1, 2, 4, 8)


def bench_fig_multitree(benchmark):
    records = once(
        benchmark, lambda: fig_multitree(n=400, tree_counts=COUNTS, seed=3)
    )
    emit("fig8_multitree", format_records(
        records, title="F8: multi-tree construction, parallel vs naive"
    ), data=records)
    for r in records[1:]:
        assert r["rounds_parallel"] < r["rounds_sequential_sum"]
    # Parallel schedule grows sub-linearly in s; the naive sum linearly.
    par_ratio = records[-1]["rounds_parallel"] / records[0]["rounds_parallel"]
    seq_ratio = (
        records[-1]["rounds_sequential_sum"] / records[0]["rounds_sequential_sum"]
    )
    assert par_ratio < seq_ratio
