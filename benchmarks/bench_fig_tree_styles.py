"""F9: tree-shape insensitivity of the tree-routing construction.

The routing tree's depth varies by >10x across spanning-tree styles of the
same network, yet Theorem 2's cost depends only on n and the *network's*
hop-diameter D: rounds and memory must stay within one small band.
"""

from _util import emit, once

from repro.analysis import format_records
from repro.analysis.figures import fig_tree_styles


def bench_fig_tree_styles(benchmark):
    records = once(benchmark, lambda: fig_tree_styles(n=800, seed=3))
    emit("fig9_tree_styles", format_records(
        records, title="F9: tree-routing cost across tree shapes (n=800)"
    ), data=records)
    depths = [r["tree_depth"] for r in records]
    rounds = [r["rounds"] for r in records]
    memories = [r["memory"] for r in records]
    # Depths differ wildly; costs do not.
    assert max(depths) >= 5 * min(depths)
    assert max(rounds) <= 3 * min(rounds)
    assert max(memories) <= 2 * min(memories)
