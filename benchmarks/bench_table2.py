"""T2: regenerate the paper's Table 2 (exact distributed tree routing).

Paper bounds (n vertices, hop-diameter D):

    [LP15, EN16b]   Õ(D+√n) rounds | O(log n) tables | O(log² n) labels | Õ(√n) memory
    [TZ01b]         NA             | O(1)            | O(log n)         | NA
    This paper      Õ(D+√n)        | O(1)            | O(log n)         | O(log n)

The bench builds all three schemes on one (network, deep tree) pair, prints
the measured columns, and asserts the relations the paper claims: our
tables/labels match [TZ01b] exactly, and our memory is strictly below the
[EN16b]-style baseline's (which tracks √n).
"""

import math

from _util import emit, once

from repro.analysis import run_table2_recorded

N = 1500
SEED = 7


def bench_table2(benchmark):
    result, record = once(
        benchmark, lambda: run_table2_recorded(N, seed=SEED, tree_style="dfs")
    )
    emit("table2", result.render(), data=result.rows,
         meta={"workload": record.workload,
               "verdicts": [v.to_dict() for v in record.verdicts],
               "wall_s": record.wall_s,
               "counters": record.counters})
    # Theorems 1/3 closed forms, evaluated by the telemetry bound checker.
    assert record.passed, [v.name for v in record.failed_verdicts()]

    ours = result.row("this-paper")
    base = result.row("EN16b-baseline")
    cent = result.row("TZ01b-centralized")

    # Columns 2-3: match the centralized Thorup-Zwick construction exactly.
    assert ours["table_words"] == cent["table_words"] <= 5
    assert ours["label_words"] == cent["label_words"] <= 1 + 2 * math.log2(N)
    # Baseline's overhead rows.
    assert base["table_words"] > cent["table_words"]
    assert base["label_words"] >= cent["label_words"]
    # Column 5: O(log n) vs Õ(√n).
    assert ours["memory_words"] <= 12 * math.log2(N) + 40
    assert base["memory_words"] >= math.sqrt(N) / 2
    assert ours["memory_words"] < base["memory_words"]
