"""Ablation A1: independence of the aspect ratio Λ (Section 2, footnote 4).

The paper: "our construction time is independent of Λ ... if one does care
about the bit complexity, in our solution the construction time is
proportional to log_n log Λ, as opposed to Ω(log Λ) in all previous
solutions", achieved by rounding weights to powers of (1+ε).

The bench sweeps Λ over six orders of magnitude on an otherwise-identical
workload and measures (a) the construction *rounds* of the tree-routing
scheme -- flat, because nothing in the algorithms iterates over weight
scales -- (b) the per-message weight bits with quantization
(O(log log Λ)) vs exact encoding (Θ(log Λ)), and (c) the stretch cost of
quantization (≤ 1+ε, exact routing in the quantized metric).
"""

import random

from _util import emit, once

from repro.analysis import format_records
from repro.congest import Network
from repro.graphs import (
    assign_log_uniform_weights,
    encoded_weight_bits,
    quantize_weights,
    random_connected_graph,
    raw_weight_bits,
    spanning_tree_of,
    tree_distance,
)
from repro.routing import route_in_tree
from repro.treerouting import build_distributed_tree_scheme

EPS = 0.1
N = 500
RANGES = [(1.0, 10.0), (1.0, 1e3), (1.0, 1e6), (1.0, 1e9)]


def _run():
    records = []
    base = random_connected_graph(N, seed=9)
    for low, high in RANGES:
        graph = assign_log_uniform_weights(base, low, high, seed=9)
        quantized = quantize_weights(graph, EPS)
        tree = spanning_tree_of(quantized, style="dfs", seed=9)
        net = Network(quantized)
        build = build_distributed_tree_scheme(net, tree, seed=9)

        # Routing stays exact w.r.t. the quantized metric.
        weight = lambda u, v: quantized[u][v]["weight"]
        rng = random.Random(0)
        worst = 1.0
        for _ in range(40):
            u, v = rng.sample(list(tree), 2)
            got = route_in_tree(build.scheme, u, v, weight_of=weight).length
            exact = tree_distance(tree, weight, u, v)
            worst = max(worst, got / exact if exact else 1.0)
        records.append({
            "lambda": f"{high / low:.0e}",
            "rounds": build.rounds,
            "weight_bits_quantized": encoded_weight_bits(quantized, EPS),
            "weight_bits_exact": raw_weight_bits(graph),
            "routing_worst_ratio": worst,
        })
    return records


def bench_ablation_aspect_ratio(benchmark):
    records = once(benchmark, _run)
    emit("ablation_aspect_ratio", format_records(
        records, title="A1: aspect-ratio independence (tree routing, n=500)"
    ), data=records)
    rounds = [r["rounds"] for r in records]
    # (a) construction rounds do not grow with Λ.
    assert max(rounds) <= 1.2 * min(rounds)
    # (b) quantized bits grow ~log log Λ; exact bits ~log Λ.
    assert records[-1]["weight_bits_exact"] - records[0]["weight_bits_exact"] >= 20
    assert (
        records[-1]["weight_bits_quantized"] - records[0]["weight_bits_quantized"]
        <= 6
    )
    # (c) routing is exact in the quantized metric.
    for r in records:
        assert r["routing_worst_ratio"] <= 1.0 + 1e-9
