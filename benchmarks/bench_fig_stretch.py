"""F4: measured stretch vs the 4k-3 bound, per k (Theorem 3).

Stretch is the worst routed-length / distance ratio over a fixed pair
sample.  The measured maximum must sit below the bound for every k, and the
bound must be the binding constraint's *shape*: larger k may allow larger
worst-case stretch.
"""

from _util import emit, once

from repro.analysis import fig_stretch, format_records


def bench_fig_stretch(benchmark):
    records = once(
        benchmark, lambda: fig_stretch(n=500, ks=(2, 3, 4), seed=3, pairs=250)
    )
    emit("fig4_stretch", format_records(
        records, title="F4: measured stretch vs 4k-3 bound"
    ), data=records)
    for r in records:
        assert r["stretch_max"] <= r["bound_4k_minus_3"] + 1e-9
        assert r["stretch_mean"] >= 1.0
