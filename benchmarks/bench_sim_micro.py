"""Engine microbenchmark entry (see ``sim_micro.py`` for the workloads).

Differentially certified timing: all three engines replay identical
kernels on the fig7 graph family (plus the 10k-vertex ``vec_flood_10k``
scale row); deterministic outputs must match exactly, the fast path must
clear :data:`sim_micro.FIG7_MIN_SPEEDUP`, and the vectorized engine must
clear :data:`sim_micro.FIG7_VEC_MIN_SPEEDUP` on the same workload.
"""

from _util import emit, once
from sim_micro import (
    FIG7_MIN_SPEEDUP,
    FIG7_VEC_MIN_SPEEDUP,
    render,
    run_sim_micro,
)


def bench_sim_micro(benchmark):
    records, meta = once(benchmark, run_sim_micro)
    emit("sim_micro", render(records), data=records, meta=meta)
    assert meta["engines_equal"]
    assert meta["fig7_flood_speedup_wall"] >= FIG7_MIN_SPEEDUP, (
        f"fast engine regressed: fig7_flood only "
        f"{meta['fig7_flood_speedup_wall']}x faster than the reference"
    )
    assert meta["fig7_flood_speedup_vec"] >= FIG7_VEC_MIN_SPEEDUP, (
        f"vectorized engine regressed: fig7_flood only "
        f"{meta['fig7_flood_speedup_vec']}x faster than the reference"
    )
