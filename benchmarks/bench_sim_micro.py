"""Engine microbenchmark entry (see ``sim_micro.py`` for the workloads).

Differentially certified timing: both engines replay identical kernels on
the fig7 graph family; deterministic outputs must match exactly and the
pure engine workload (``fig7_flood``) must clear the
:data:`sim_micro.FIG7_MIN_SPEEDUP` gate.
"""

from _util import emit, once
from sim_micro import FIG7_MIN_SPEEDUP, render, run_sim_micro


def bench_sim_micro(benchmark):
    records, meta = once(benchmark, run_sim_micro)
    emit("sim_micro", render(records), data=records, meta=meta)
    assert meta["engines_equal"]
    assert meta["fig7_flood_speedup_wall"] >= FIG7_MIN_SPEEDUP, (
        f"fast engine regressed: fig7_flood only "
        f"{meta['fig7_flood_speedup_wall']}x faster than the reference"
    )
