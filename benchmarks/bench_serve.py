"""S16: the packed query-serving engine vs the reference router.

The serving subsystem's contract is twofold: the compiled engine must
return **byte-identical paths** to ``route_in_graph`` (differential
suite), and it must be **materially faster** to justify existing --
this bench gates on >= 3x the per-query reference throughput on the F7
(fig7 / random connected) graph family under the cache-friendly Zipf
workload that serving tiers exist for.

Per workload the bench reports reference and engine throughput, the
speedup, the decision-cache hit rate, and the stretch-SLO fraction;
rows land in ``BENCH_serve.json`` so the regression gate and the
dashboard track serving performance commit over commit.  Path equality
over the full query stream is asserted *before* any timing, so a
throughput win can never mask a correctness regression.
"""

import time

from _util import emit, once

from repro.errors import RoutingFailure
from repro.graphs import random_connected_graph
from repro.routing.router import route_in_graph
from repro.serve import ServeEngine, compile_scheme, run_serving
from repro.tz import build_centralized_scheme

N = 300
K = 3
SEED = 7
QUERIES = 8000
#: Gate: packed-engine throughput vs the per-query reference baseline on
#: the Zipf workload (ISSUE acceptance).  Measured ~3.5-4.5x; 3.0 is the
#: contract.
MIN_SPEEDUP = 3.0

WORKLOADS = ("uniform", "zipf")


def _reference_throughput(scheme, graph, pairs):
    started = time.perf_counter()
    for u, v in pairs:
        try:
            route_in_graph(scheme, graph, u, v)
        except RoutingFailure:
            pass
    return len(pairs) / (time.perf_counter() - started)


def _run():
    graph = random_connected_graph(N, seed=SEED)
    scheme = build_centralized_scheme(graph, K, seed=SEED)
    compiled = compile_scheme(scheme, graph)

    rows = []
    for workload in WORKLOADS:
        report, results = run_serving(
            scheme, graph, workload=workload, queries=QUERIES, seed=SEED,
        )
        # Correctness first: every served path must be byte-identical to
        # the reference router's (failures included).
        engine = ServeEngine(compiled, cache_size=0)
        for r in results:
            try:
                ref = route_in_graph(scheme, graph, r.source, r.target)
                assert r.ok and r.path == ref.path, (r.source, r.target)
            except RoutingFailure as exc:
                assert not r.ok and r.error == str(exc), (r.source, r.target)

        pairs = [(r.source, r.target) for r in results]
        ref_qps = _reference_throughput(scheme, graph, pairs)
        # Re-serve the identical stream cold for the timed comparison
        # (run_serving's per-query latency probes tax its own number).
        eng = ServeEngine(compiled, cache_size=4096)
        started = time.perf_counter()
        eng.route_many(pairs)
        eng_qps = len(pairs) / (time.perf_counter() - started)

        rows.append({
            "workload": workload,
            "queries": len(pairs),
            "ref_qps": round(ref_qps),
            "engine_qps": round(eng_qps),
            "speedup": round(eng_qps / ref_qps, 2),
            "cache_hit_rate": round(eng.cache.hit_rate, 4),
            "hops_p50": report.hops_p50,
            "hops_p99": report.hops_p99,
            "failures": report.failures,
            "slo_fraction": report.slo_fraction,
        })
    return rows


def bench_serve(benchmark):
    rows = once(benchmark, _run)

    header = (f"{'workload':<10} {'ref q/s':>10} {'engine q/s':>11} "
              f"{'speedup':>8} {'hit rate':>9} {'SLO':>7}")
    lines = [f"serve: packed engine vs reference (n={N}, k={K}, "
             f"{QUERIES} queries)", header]
    for row in rows:
        lines.append(
            f"{row['workload']:<10} {row['ref_qps']:>10} "
            f"{row['engine_qps']:>11} {row['speedup']:>7.2f}x "
            f"{row['cache_hit_rate']:>8.1%} {row['slo_fraction']:>7.2%}"
        )
    emit("serve", "\n".join(lines), data=rows,
         meta={"n": N, "k": K, "seed": SEED, "queries": QUERIES,
               "min_speedup": MIN_SPEEDUP})

    by_workload = {row["workload"]: row for row in rows}
    # The serving gate (cache-friendly regime).
    assert by_workload["zipf"]["speedup"] >= MIN_SPEEDUP, rows
    # Even with a cold, useless cache the packed tables must still win.
    assert by_workload["uniform"]["speedup"] >= 1.5, rows
    # Every query lands within the 4k-3 stretch SLO on this family.
    for row in rows:
        assert row["failures"] == 0, rows
        assert row["slo_fraction"] == 1.0, rows
