"""S16: the packed query-serving engine vs the reference router.

The serving subsystem's contract is twofold: the compiled engine must
return **byte-identical paths** to ``route_in_graph`` (differential
suite), and it must be **materially faster** to justify existing --
this bench gates on >= 3x the per-query reference throughput on the F7
(fig7 / random connected) graph family under the cache-friendly Zipf
workload that serving tiers exist for.

Per workload the bench reports reference and engine throughput, the
speedup, the decision-cache hit rate, and the stretch-SLO fraction;
rows land in ``BENCH_serve.json`` so the regression gate and the
dashboard track serving performance commit over commit.  Path equality
over the full query stream is asserted *before* any timing, so a
throughput win can never mask a correctness regression.

The S20 shard section measures aggregate QPS of the :class:`ShardPool`
at 1/2/4/8 fork workers on the zipf and gravity workloads
(``shard_qps_{1,2,4,8}`` columns).  Before any timing the 2-worker
merged report is asserted field-identical to a single-process run on
the same stream, so scaling can never mask a merge regression.  The
>= 2.5x-at-4-workers gate is enforced only on hosts with >= 4 CPUs --
on fewer cores the workers timeshare and the "scaling" measured is
just context-switch overhead.
"""

import os
import time

from _util import emit, once

from repro.errors import RoutingFailure
from repro.graphs import random_connected_graph
from repro.metrics import ServeMetrics
from repro.routing.router import route_in_graph
from repro.serve import (
    ServeEngine,
    compile_scheme,
    run_serving,
    serve_pairs,
)
from repro.serve.workloads import make_workload
from repro.shard import ShardPool
from repro.tracing import Tracer
from repro.tz import build_centralized_scheme

N = 300
K = 3
SEED = 7
QUERIES = 8000
#: Gate: packed-engine throughput vs the per-query reference baseline on
#: the Zipf workload (ISSUE acceptance).  Measured ~3.5-4.5x; 3.0 is the
#: contract.
MIN_SPEEDUP = 3.0
#: Gate: serving with the live metrics registry attached (S18) may cost
#: at most this fraction of metrics-disabled throughput.  True cost is
#: ~0% (batch-end counter adds; hop counting defers to scrape time), so
#: the margin absorbs host noise the interleaved passes can't cancel.
MAX_METRICS_OVERHEAD = 0.05
#: Gate: serving with the sampled query tracer attached (S19) may cost
#: at most this fraction of tracer-free throughput -- both with tracing
#: structurally off (rate 0: one sampler call per query) and at the 1%
#: head-sampling rate the ISSUE names.
MAX_TRACE_OVERHEAD = 0.05
#: Timing passes per configuration; best-of damps scheduler noise so the
#: overhead ratio compares steady-state loops, not warmup jitter.
PASSES = 8

WORKLOADS = ("uniform", "zipf")

#: S20 shard scaling: worker counts measured per workload.
SHARD_WORKER_COUNTS = (1, 2, 4, 8)
#: Gate: 4 fork workers over one shared table image must deliver at
#: least this multiple of the 1-worker aggregate QPS (ISSUE acceptance).
#: Only meaningful with >= 4 CPUs -- on fewer cores the workers
#: timeshare a core and the ratio measures scheduler overhead, so the
#: gate is skipped (the columns are still recorded for the dashboard).
MIN_SHARD_SPEEDUP = 2.5
#: Serve passes per worker count; best-of keeps the warm-cache
#: steady-state comparable across counts (pass 1 is the cold outlier).
SHARD_PASSES = 3
SHARD_WORKLOADS = ("zipf", "gravity")


def _one_pass(compiled, pairs, metrics=None, tracer=None):
    """One cold route_many pass -> (wall qps, cpu qps)."""
    eng = ServeEngine(compiled, cache_size=4096, metrics=metrics,
                      tracer=tracer)
    w0 = time.perf_counter()
    c0 = time.process_time()
    eng.route_many(pairs)
    c1 = time.process_time()
    w1 = time.perf_counter()
    return len(pairs) / (w1 - w0), len(pairs) / (c1 - c0)


def _engine_qps_arms(compiled, pairs):
    """Best-of-``PASSES`` route_many throughput across four arms: plain,
    live metrics (S18), tracer off (rate 0), tracer at 1% head sampling
    (S19).  Returns the best wall/cpu q/s per arm.

    The reported q/s are wall clock (comparable to the reference
    baseline), but the *overhead* ratios are computed from CPU time --
    CI hosts share cores, and wall-clock steal was seen swinging the
    ratio by +-20% between passes while the true cost is ~0%.  The arms
    are also interleaved pass by pass on fresh cold engines (and fresh
    tracers, so the sampler stream is identical every pass) so a
    sustained contention window taxes all arms alike rather than
    skewing whichever ran last."""
    arms = ("plain", "on", "trace_off", "trace_on")
    best = {f"{arm}_{clk}": 0.0 for arm in arms for clk in ("w", "c")}

    def fold(arm, w, c):
        best[f"{arm}_w"] = max(best[f"{arm}_w"], w)
        best[f"{arm}_c"] = max(best[f"{arm}_c"], c)

    for _ in range(PASSES):
        fold("plain", *_one_pass(compiled, pairs))
        fold("on", *_one_pass(compiled, pairs, metrics=ServeMetrics()))
        fold("trace_off", *_one_pass(compiled, pairs,
                                     tracer=Tracer(rate=0.0, seed=SEED)))
        fold("trace_on", *_one_pass(compiled, pairs,
                                    tracer=Tracer(rate=0.01, seed=SEED)))
    return best


def _overhead(best, arm):
    return max(0.0, 1.0 - best[f"{arm}_c"] / best["plain_c"])


def _reference_throughput(scheme, graph, pairs):
    started = time.perf_counter()
    for u, v in pairs:
        try:
            route_in_graph(scheme, graph, u, v)
        except RoutingFailure:
            pass
    return len(pairs) / (time.perf_counter() - started)


def _shard_qps(compiled, graph, pairs, workload, workers):
    """Best-of-``SHARD_PASSES`` aggregate QPS of a fork pool.

    Aggregate QPS is the merged report's ``queries / max shard
    serve_s`` -- the slowest shard bounds the tier, exactly as the
    merge algebra defines it.  One pool per worker count: the sealed
    image and the LRU caches persist across passes, so best-of compares
    warm steady states.
    """
    best = 0.0
    with ShardPool(compiled, graph, workers=workers, start="fork",
                   metrics=False, seed=SEED) as pool:
        for _ in range(SHARD_PASSES):
            merged, _ = pool.serve(pairs, workload=workload, seed=SEED)
            best = max(best, merged.throughput_qps)
    return best


def _shard_rows(compiled, graph):
    """S20 scaling columns: ``shard_qps_{1,2,4,8}`` per workload.

    Correctness first: the 2-worker merged report must be
    field-identical to the single-process report on the same stream
    before any worker count is timed.  The pre-check runs with a cache
    big enough that nothing evicts -- N per-shard LRUs hold strictly
    more than one LRU of the same size, so hit counters only match
    exactly while capacity never binds (docs/sharding.md)."""
    rows = []
    cache_size = QUERIES * 2  # no evictions: exact hit-counter parity
    for workload in SHARD_WORKLOADS:
        pairs = make_workload(workload, graph, compiled.nodes,
                              QUERIES, SEED)
        engine = ServeEngine(compiled, cache_size=cache_size)
        single, _ = serve_pairs(engine, graph, pairs,
                                workload=workload, seed=SEED)
        with ShardPool(compiled, graph, workers=2, start="fork",
                       metrics=False, cache_size=cache_size,
                       seed=SEED) as pool:
            merged, _ = pool.serve(pairs, workload=workload, seed=SEED)
        assert merged == single, (workload, merged, single)
        assert merged.sketches["hops"] == single.sketches["hops"]

        row = {"workload": workload, "kind": "shard",
               "queries": len(pairs)}
        for workers in SHARD_WORKER_COUNTS:
            row[f"shard_qps_{workers}"] = round(
                _shard_qps(compiled, graph, pairs, workload, workers))
        row["speedup_4"] = round(
            row["shard_qps_4"] / row["shard_qps_1"], 2)
        rows.append(row)
    return rows


def _run():
    graph = random_connected_graph(N, seed=SEED)
    scheme = build_centralized_scheme(graph, K, seed=SEED)
    compiled = compile_scheme(scheme, graph)

    rows = []
    for workload in WORKLOADS:
        report, results = run_serving(
            scheme, graph, workload=workload, queries=QUERIES, seed=SEED,
        )
        # Correctness first: every served path must be byte-identical to
        # the reference router's (failures included).
        engine = ServeEngine(compiled, cache_size=0)
        for r in results:
            try:
                ref = route_in_graph(scheme, graph, r.source, r.target)
                assert r.ok and r.path == ref.path, (r.source, r.target)
            except RoutingFailure as exc:
                assert not r.ok and r.error == str(exc), (r.source, r.target)

        pairs = [(r.source, r.target) for r in results]
        ref_qps = _reference_throughput(scheme, graph, pairs)
        # Re-serve the identical stream cold for the timed comparison
        # (run_serving's per-query latency probes tax its own number).
        eng = ServeEngine(compiled, cache_size=4096)
        eng.route_many(pairs)
        best = _engine_qps_arms(compiled, pairs)
        eng_qps = best["plain_w"]

        rows.append({
            "workload": workload,
            "queries": len(pairs),
            "ref_qps": round(ref_qps),
            "engine_qps": round(eng_qps),
            "speedup": round(eng_qps / ref_qps, 2),
            "metrics_qps": round(best["on_w"]),
            "metrics_overhead": round(_overhead(best, "on"), 4),
            "trace_qps": round(best["trace_on_w"]),
            "trace_overhead": round(_overhead(best, "trace_on"), 4),
            "trace_off_overhead": round(_overhead(best, "trace_off"), 4),
            "cache_hit_rate": round(eng.cache.hit_rate, 4),
            "hops_p50": report.hops_p50,
            "hops_p99": report.hops_p99,
            "failures": report.failures,
            "slo_fraction": report.slo_fraction,
        })
    return rows, _shard_rows(compiled, graph)


def bench_serve(benchmark):
    rows, shard_rows = once(benchmark, _run)

    header = (f"{'workload':<10} {'ref q/s':>10} {'engine q/s':>11} "
              f"{'speedup':>8} {'metrics q/s':>12} {'m-ovh':>7} "
              f"{'trace q/s':>10} {'t-ovh':>7} {'hit rate':>9} {'SLO':>7}")
    lines = [f"serve: packed engine vs reference (n={N}, k={K}, "
             f"{QUERIES} queries)", header]
    for row in rows:
        lines.append(
            f"{row['workload']:<10} {row['ref_qps']:>10} "
            f"{row['engine_qps']:>11} {row['speedup']:>7.2f}x "
            f"{row['metrics_qps']:>12} {row['metrics_overhead']:>6.1%} "
            f"{row['trace_qps']:>10} {row['trace_overhead']:>6.1%} "
            f"{row['cache_hit_rate']:>8.1%} {row['slo_fraction']:>7.2%}"
        )
    cpus = os.cpu_count() or 1
    lines.append("")
    lines.append(f"shard pool: aggregate q/s vs fork workers "
                 f"({cpus} CPUs)")
    lines.append(f"{'workload':<10} "
                 + " ".join(f"{'w=' + str(w):>10}"
                            for w in SHARD_WORKER_COUNTS)
                 + f" {'x4':>7}")
    for row in shard_rows:
        lines.append(
            f"{row['workload']:<10} "
            + " ".join(f"{row[f'shard_qps_{w}']:>10}"
                       for w in SHARD_WORKER_COUNTS)
            + f" {row['speedup_4']:>6.2f}x"
        )
    emit("serve", "\n".join(lines), data=rows + shard_rows,
         meta={"n": N, "k": K, "seed": SEED, "queries": QUERIES,
               "min_speedup": MIN_SPEEDUP,
               "max_metrics_overhead": MAX_METRICS_OVERHEAD,
               "max_trace_overhead": MAX_TRACE_OVERHEAD,
               "min_shard_speedup": MIN_SHARD_SPEEDUP,
               "shard_gate_cpus": cpus})

    # The 4-worker scaling gate (only meaningful with real parallelism).
    if cpus >= 4:
        for row in shard_rows:
            assert row["speedup_4"] >= MIN_SHARD_SPEEDUP, shard_rows

    by_workload = {row["workload"]: row for row in rows}
    # The serving gate (cache-friendly regime).
    assert by_workload["zipf"]["speedup"] >= MIN_SPEEDUP, rows
    # Even with a cold, useless cache the packed tables must still win.
    assert by_workload["uniform"]["speedup"] >= 1.5, rows
    for row in rows:
        # Live metrics must stay effectively free on the serve loop (S18).
        assert row["metrics_overhead"] <= MAX_METRICS_OVERHEAD, rows
        # Tracing structurally off and 1%-sampled tracing both stay under
        # the S19 overhead gate.
        assert row["trace_off_overhead"] <= MAX_TRACE_OVERHEAD, rows
        assert row["trace_overhead"] <= MAX_TRACE_OVERHEAD, rows
        assert row["failures"] == 0, rows
        # Every query lands within the 4k-3 stretch SLO on this family.
        assert row["slo_fraction"] == 1.0, rows
