"""Ablation A3: the approximation slack ε of the high levels (Appendix B).

ε controls the approximate-cluster sandwich ``C_{6ε} ⊆ C̃ ⊆ C``: smaller ε
means approximate clusters hug the exact ones (better stretch, stretch
bound 4k-3+O(kε)) but demands a better hopset approximation.  The sweep
measures the realized stretch and how much of the exact clusters the
approximate ones cover.
"""

from _util import emit, once

from repro.analysis import format_records
from repro.core import build_distributed_scheme
from repro.graphs import random_connected_graph
from repro.routing import measure_stretch, sample_pairs
from repro.tz import all_cluster_trees, sample_hierarchy

N = 400
K = 3


def _run():
    graph = random_connected_graph(N, seed=31)
    pairs = sample_pairs(list(graph.nodes), 150, seed=32)
    hierarchy = sample_hierarchy(list(graph.nodes), K, seed=33)
    exact_trees = all_cluster_trees(graph, hierarchy)
    records = []
    for eps in (0.01, 0.05, 0.15):
        report = build_distributed_scheme(
            graph, K, epsilon=eps, seed=33, hierarchy=hierarchy
        )
        stretch = measure_stretch(report.scheme, graph, pairs)
        # Coverage: |C̃(v)| / |C(v)| averaged over the high-level roots.
        covered, total = 0, 0
        for root, scheme in report.scheme.tree_schemes.items():
            covered += len(scheme.tables)
            total += len(exact_trees[root].dist)
        records.append({
            "epsilon": eps,
            "stretch_max": stretch.max_stretch,
            "stretch_mean": stretch.mean_stretch,
            "cluster_coverage": round(covered / total, 4),
            "table_max": report.scheme.max_table_words(),
        })
    return records


def bench_ablation_epsilon(benchmark):
    records = once(benchmark, _run)
    emit("ablation_epsilon", format_records(
        records, title=f"A3: approximation slack epsilon (n={N}, k={K})"
    ), data=records)
    for r in records:
        # C̃ ⊆ C always (Claim 9): coverage can never exceed 1.
        assert r["cluster_coverage"] <= 1.0 + 1e-12
        assert r["stretch_max"] <= 4 * K - 3 + 1e-9
    # Tighter epsilon covers at least as much of the exact clusters.
    assert records[0]["cluster_coverage"] >= records[-1]["cluster_coverage"] - 1e-9
