"""Ablation A2: the sampling rate q of the tree routing (Section 3).

``q`` splits the construction's work between the local phase (depth
Õ(1/q) floods) and the global phase (Õ(qn + D) broadcast rounds per
pointer-jump iteration).  The paper picks q = 1/√n to balance them.  The
sweep shows the U-shape: rounds blow up at both extremes, and q = 1/√n
sits near the bottom; the artifacts are identical at every q (output
independence is also property-tested).
"""

import math

from _util import emit, once

from repro.analysis import format_records
from repro.congest import Network
from repro.graphs import random_connected_graph, spanning_tree_of
from repro.treerouting import build_distributed_tree_scheme

N = 1000


def _run():
    graph = random_connected_graph(N, seed=21)
    tree = spanning_tree_of(graph, style="dfs", seed=21)
    records = []
    sqrt_q = 1.0 / math.sqrt(N)
    for factor, label in [
        (0.1, "q = 0.1/√n"),
        (1.0, "q = 1/√n (paper)"),
        (10.0, "q = 10/√n"),
        (None, "q = 0.9 (all local roots)"),
    ]:
        q = 0.9 if factor is None else min(0.9, factor * sqrt_q)
        net = Network(graph)
        build = build_distributed_tree_scheme(net, tree, seed=21, q=q)
        records.append({
            "q": label,
            "rounds": build.rounds,
            "ut_size": build.ut_size,
            "max_local_depth": build.partition.max_local_depth,
            "memory": build.max_memory_words,
        })
    return records


def bench_ablation_q(benchmark):
    records = once(benchmark, _run)
    emit("ablation_q", format_records(
        records, title=f"A2: sampling rate q (tree routing, n={N})"
    ), data=records)
    by_label = {r["q"]: r for r in records}
    paper = by_label["q = 1/√n (paper)"]
    # The balanced choice beats both extremes.
    assert paper["rounds"] < by_label["q = 0.1/√n"]["rounds"]
    assert paper["rounds"] < by_label["q = 0.9 (all local roots)"]["rounds"]
