"""Engine microbenchmark: fast-path vs reference simulator wall-clock.

Times identical communication kernels on :class:`repro.congest.Network`
(the fast-path engine) and :class:`repro.congest.ReferenceNetwork` (the
frozen seed engine) over the F7 graph family
(``random_connected_graph(800, avg_degree=6.0, seed=3)`` — the largest
size of ``bench_fig_graph_rounds``):

* ``fig7_flood``    — full-neighborhood exchanges (``send_many`` over the
  cached port tables + ``deliver_batch``): the pure engine round-trip,
  and the workload the >= 3x speedup gate is pinned to;
* ``fig7_bfs``      — repeated BFS-tree floods (mixed algorithm/engine);
* ``fig7_floodmax`` — event-driven leader election via ``run_protocol``
  (per-message ``send_message`` path, dict-shaped ``tick`` delivery).

Every workload first replays on both engines and asserts the deterministic
outputs are identical (``RunMetrics.fingerprint()`` and the memory
high-water) — a benchmark that compared engines computing different things
would be meaningless.  Deterministic columns (rounds, messages, words,
memory) are hard-gated by the perf-trajectory regression checker; the
``*_wall_s`` / ``speedup_wall`` columns are soft (report-only) like every
wall-clock metric (see ``repro.telemetry.regress``).

Runs standalone (``python benchmarks/sim_micro.py``) or through the
``bench_sim_micro`` pytest/run_all entry; both emit ``BENCH_sim_micro.json``
via the shared trajectory writer.
"""

from __future__ import annotations

import pathlib
import sys
import time
from typing import Any, Callable, Dict, List, Tuple

if __package__ in (None, ""):  # standalone: make src/ + benchmarks/ importable
    _HERE = pathlib.Path(__file__).resolve().parent
    for p in (str(_HERE), str(_HERE.parent / "src")):
        if p not in sys.path:
            sys.path.insert(0, p)

from repro.congest import Network, ReferenceNetwork
from repro.congest.bfs import build_bfs_tree
from repro.congest.protocol import FloodMax, run_protocol
from repro.graphs import random_connected_graph

#: The F7 family parameters (largest size of ``bench_fig_graph_rounds``).
FIG7_N = 800
FIG7_SEED = 3

#: The acceptance gate: the pure engine workload must beat the reference
#: by at least this factor (measured ~3.5x on the development machine).
FIG7_MIN_SPEEDUP = 3.0

#: Timing repetitions per engine (best-of, to shed scheduler noise).
BEST_OF = 3


def _fig7_graph():
    return random_connected_graph(FIG7_N, avg_degree=6.0, seed=FIG7_SEED)


def _flood(net: Any) -> None:
    nodes = list(net.nodes())
    for _ in range(25):
        for v in nodes:
            net.send_many(v, net.ports(v), "flood")
        net.deliver_batch()


def _bfs(net: Any) -> None:
    for _ in range(12):
        build_bfs_tree(net)


def _floodmax(net: Any) -> None:
    bound = net.hop_diameter_upper_bound()
    run_protocol(net, lambda v: FloodMax(bound + 1), max_rounds=10_000)


WORKLOADS: Dict[str, Callable[[Any], None]] = {
    "fig7_flood": _flood,
    "fig7_bfs": _bfs,
    "fig7_floodmax": _floodmax,
}


def _time_engine(engine_cls, workload: Callable[[Any], None]) -> Tuple[float, Any]:
    """Best-of-``BEST_OF`` wall time; returns (seconds, last network)."""
    best = float("inf")
    net = None
    for _ in range(BEST_OF):
        net = engine_cls(_fig7_graph())
        started = time.perf_counter()
        workload(net)
        best = min(best, time.perf_counter() - started)
    return best, net


def run_sim_micro() -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Measure every workload on both engines; return (records, meta).

    Raises ``AssertionError`` if the engines' deterministic outputs ever
    diverge — equality is a precondition of the comparison, enforced here
    and (exhaustively) by ``tests/differential/``.
    """
    records: List[Dict[str, Any]] = []
    for name, workload in WORKLOADS.items():
        ref_s, ref_net = _time_engine(ReferenceNetwork, workload)
        fast_s, fast_net = _time_engine(Network, workload)
        assert fast_net.metrics.fingerprint() == ref_net.metrics.fingerprint(), (
            f"{name}: engine metrics diverged"
        )
        assert fast_net.max_memory() == ref_net.max_memory(), (
            f"{name}: engine memory accounting diverged"
        )
        m = fast_net.metrics
        records.append({
            "workload": name,
            "n": FIG7_N,
            "rounds": m.rounds,
            "messages": m.messages,
            "message_words": m.message_words,
            "max_memory": fast_net.max_memory(),
            "ref_wall_s": round(ref_s, 4),
            "fast_wall_s": round(fast_s, 4),
            "speedup_wall": round(ref_s / fast_s, 2),
        })
    meta = {
        "family": f"random_connected_graph(n={FIG7_N}, seed={FIG7_SEED})",
        "best_of": BEST_OF,
        "engines_equal": True,
        "fig7_flood_speedup_wall": next(
            r["speedup_wall"] for r in records if r["workload"] == "fig7_flood"
        ),
        "min_speedup_gate": FIG7_MIN_SPEEDUP,
    }
    return records, meta


def render(records: List[Dict[str, Any]]) -> str:
    header = (
        f"{'workload':<16}{'rounds':>8}{'messages':>10}{'words':>10}"
        f"{'ref s':>9}{'fast s':>9}{'speedup':>9}"
    )
    lines = ["engine microbenchmark: fast path vs reference (fig7 family)",
             header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r['workload']:<16}{r['rounds']:>8}{r['messages']:>10}"
            f"{r['message_words']:>10}{r['ref_wall_s']:>9.3f}"
            f"{r['fast_wall_s']:>9.3f}{r['speedup_wall']:>8.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    from _util import emit

    recs, meta = run_sim_micro()
    emit("sim_micro", render(recs), data=recs, meta=meta)
    flood = meta["fig7_flood_speedup_wall"]
    if flood < FIG7_MIN_SPEEDUP:
        raise SystemExit(
            f"fig7_flood speedup {flood}x below the {FIG7_MIN_SPEEDUP}x gate"
        )
