"""Engine microbenchmark: fast-path and vectorized vs reference wall-clock.

Times identical communication kernels on the three round engines —
:class:`repro.congest.ReferenceNetwork` (the frozen seed oracle),
:class:`repro.congest.Network` (the eager fast path), and
:class:`repro.congest.VectorizedNetwork` (the deferred whole-round
kernel) — over the F7 graph family
(``random_connected_graph(800, avg_degree=6.0, seed=3)`` — the largest
size of ``bench_fig_graph_rounds``) plus one 10k-vertex scale row:

* ``fig7_flood``    — full-neighborhood exchanges (``send_many`` over the
  cached port tables + ``deliver_batch``): the pure engine round-trip.
  Pinned to two gates: fast path >= 3x and vectorized >= 10x over the
  reference;
* ``fig7_bfs``      — repeated BFS-tree floods (mixed algorithm/engine);
* ``fig7_floodmax`` — event-driven leader election via ``run_protocol``
  (per-message ``send_message`` path, dict-shaped ``tick`` delivery);
* ``vec_flood``     — the whole-round ``flood_all`` kernel on the F7
  graph: the vectorized engine's O(1)-per-round fast lane;
* ``vec_flood_10k`` — the same kernel at n=10,000 (4 rounds).  The graph
  is built once outside the timed region (generation dominates engine
  time by an order of magnitude and would drown the comparison).

Every workload first replays on all three engines and asserts the
deterministic outputs are identical (``RunMetrics.fingerprint()`` and the
memory high-water) — a benchmark that compared engines computing different
things would be meaningless.  Deterministic columns (rounds, messages,
words, memory) are hard-gated by the perf-trajectory regression checker;
the ``*_wall_s`` / ``speedup_*`` columns are soft (report-only) like every
wall-clock metric (see ``repro.telemetry.regress``).

Runs standalone (``python benchmarks/sim_micro.py``) or through the
``bench_sim_micro`` pytest/run_all entry; both emit ``BENCH_sim_micro.json``
via the shared trajectory writer.
"""

from __future__ import annotations

import pathlib
import sys
import time
from typing import Any, Callable, Dict, List, Tuple

if __package__ in (None, ""):  # standalone: make src/ + benchmarks/ importable
    _HERE = pathlib.Path(__file__).resolve().parent
    for p in (str(_HERE), str(_HERE.parent / "src")):
        if p not in sys.path:
            sys.path.insert(0, p)

from repro.congest import Network, ReferenceNetwork, VectorizedNetwork
from repro.congest.bfs import build_bfs_tree
from repro.congest.protocol import FloodMax, run_protocol
from repro.graphs import random_connected_graph

#: The F7 family parameters (largest size of ``bench_fig_graph_rounds``).
FIG7_N = 800
FIG7_SEED = 3

#: The scale row: the vectorized kernel at 10k vertices.
VEC10K_N = 10_000
VEC10K_ROUNDS = 4

#: The acceptance gates, both pinned to ``fig7_flood``: the eager fast
#: path must beat the reference by >= 3x (measured ~3.5x on the
#: development machine) and the vectorized engine by >= 10x (measured
#: ~25-30x).
FIG7_MIN_SPEEDUP = 3.0
FIG7_VEC_MIN_SPEEDUP = 10.0

#: Timing repetitions per engine (best-of, to shed scheduler noise).
BEST_OF = 3


def _fig7_graph():
    return random_connected_graph(FIG7_N, avg_degree=6.0, seed=FIG7_SEED)


def _vec10k_graph():
    return random_connected_graph(VEC10K_N, avg_degree=6.0, seed=FIG7_SEED)


def _flood(net: Any) -> None:
    nodes = list(net.nodes())
    for _ in range(25):
        for v in nodes:
            net.send_many(v, net.ports(v), "flood")
        net.deliver_batch()


def _bfs(net: Any) -> None:
    for _ in range(12):
        build_bfs_tree(net)


def _floodmax(net: Any) -> None:
    bound = net.hop_diameter_upper_bound()
    run_protocol(net, lambda v: FloodMax(bound + 1), max_rounds=10_000)


def _flood_kernel(net: Any) -> None:
    for _ in range(25):
        net.flood_all("flood")
        net.deliver_batch()


def _flood_kernel_10k(net: Any) -> None:
    for _ in range(VEC10K_ROUNDS):
        net.flood_all("flood")
        net.deliver_batch()


#: name -> (graph factory, workload, vertex count).  The graph is built
#: once per workload and shared by every engine/repetition: the engines
#: are certified (tests/differential) not to mutate it, and rebuilding a
#: 10k-vertex graph per repetition would dominate the timings.
WORKLOADS: Dict[str, Tuple[Callable[[], Any], Callable[[Any], None], int]] = {
    "fig7_flood": (_fig7_graph, _flood, FIG7_N),
    "fig7_bfs": (_fig7_graph, _bfs, FIG7_N),
    "fig7_floodmax": (_fig7_graph, _floodmax, FIG7_N),
    "vec_flood": (_fig7_graph, _flood_kernel, FIG7_N),
    "vec_flood_10k": (_vec10k_graph, _flood_kernel_10k, VEC10K_N),
}


def _time_engine(
    engine_cls, graph, workload: Callable[[Any], None]
) -> Tuple[float, Any]:
    """Best-of-``BEST_OF`` wall time; returns (seconds, last network)."""
    best = float("inf")
    net = None
    for _ in range(BEST_OF):
        net = engine_cls(graph)
        started = time.perf_counter()
        workload(net)
        best = min(best, time.perf_counter() - started)
    return best, net


def run_sim_micro() -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Measure every workload on all three engines; return (records, meta).

    Raises ``AssertionError`` if the engines' deterministic outputs ever
    diverge — equality is a precondition of the comparison, enforced here
    and (exhaustively) by ``tests/differential/``.
    """
    records: List[Dict[str, Any]] = []
    for name, (graph_of, workload, n) in WORKLOADS.items():
        graph = graph_of()
        ref_s, ref_net = _time_engine(ReferenceNetwork, graph, workload)
        fast_s, fast_net = _time_engine(Network, graph, workload)
        vec_s, vec_net = _time_engine(VectorizedNetwork, graph, workload)
        for label, net in (("fast", fast_net), ("vectorized", vec_net)):
            assert net.metrics.fingerprint() == ref_net.metrics.fingerprint(), (
                f"{name}: {label} engine metrics diverged"
            )
            assert net.max_memory() == ref_net.max_memory(), (
                f"{name}: {label} engine memory accounting diverged"
            )
        m = vec_net.metrics
        records.append({
            "workload": name,
            "n": n,
            "rounds": m.rounds,
            "messages": m.messages,
            "message_words": m.message_words,
            "max_memory": vec_net.max_memory(),
            "ref_wall_s": round(ref_s, 4),
            "fast_wall_s": round(fast_s, 4),
            "vec_wall_s": round(vec_s, 4),
            "speedup_wall": round(ref_s / fast_s, 2),
            "speedup_vec": round(ref_s / vec_s, 2),
        })
    by_name = {r["workload"]: r for r in records}
    meta = {
        "family": f"random_connected_graph(n={FIG7_N}, seed={FIG7_SEED})",
        "best_of": BEST_OF,
        "engines_equal": True,
        "fig7_flood_speedup_wall": by_name["fig7_flood"]["speedup_wall"],
        "fig7_flood_speedup_vec": by_name["fig7_flood"]["speedup_vec"],
        "vec_flood_10k_wall_s": by_name["vec_flood_10k"]["vec_wall_s"],
        "min_speedup_gate": FIG7_MIN_SPEEDUP,
        "vec_min_speedup_gate": FIG7_VEC_MIN_SPEEDUP,
    }
    return records, meta


def render(records: List[Dict[str, Any]]) -> str:
    header = (
        f"{'workload':<16}{'n':>7}{'rounds':>8}{'messages':>10}{'words':>10}"
        f"{'ref s':>9}{'fast s':>9}{'vec s':>9}{'fast x':>9}{'vec x':>10}"
    )
    lines = ["engine microbenchmark: fast/vectorized vs reference (fig7 family)",
             header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r['workload']:<16}{r['n']:>7}{r['rounds']:>8}{r['messages']:>10}"
            f"{r['message_words']:>10}{r['ref_wall_s']:>9.3f}"
            f"{r['fast_wall_s']:>9.3f}{r['vec_wall_s']:>9.3f}"
            f"{r['speedup_wall']:>8.2f}x{r['speedup_vec']:>9.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    from _util import emit

    recs, meta = run_sim_micro()
    emit("sim_micro", render(recs), data=recs, meta=meta)
    flood = meta["fig7_flood_speedup_wall"]
    if flood < FIG7_MIN_SPEEDUP:
        raise SystemExit(
            f"fig7_flood speedup {flood}x below the {FIG7_MIN_SPEEDUP}x gate"
        )
    vec = meta["fig7_flood_speedup_vec"]
    if vec < FIG7_VEC_MIN_SPEEDUP:
        raise SystemExit(
            f"fig7_flood vectorized speedup {vec}x below the "
            f"{FIG7_VEC_MIN_SPEEDUP}x gate"
        )
