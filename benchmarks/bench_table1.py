"""T1: regenerate the paper's Table 1 (compact routing for general graphs).

Paper bounds for "This paper" (Theorem 3): rounds (n^{1/2+1/k}+D)·γ, tables
Õ(n^{1/k}), labels O(k log n), stretch 4k-5+o(1) (we implement the
described 4k-3+o(1) rule; see DESIGN.md substitution 3), memory Õ(n^{1/k}).

The bench builds our distributed scheme, the centralized [TZ01b] scheme and
the landmark baseline on one workload, prints every measured column, and
asserts the shape claims: stretch within the bound, labels O(k log n),
memory within a polylog factor of the table size (the headline), and far
below the Θ(√n·table) regime of prior work.
"""

import math

from _util import emit, once

from repro.analysis import run_table1_recorded

N = 600
K = 3
SEED = 7


def bench_table1(benchmark):
    result, record = once(
        benchmark, lambda: run_table1_recorded(N, K, seed=SEED, pairs=150)
    )
    emit("table1", result.render(), data=result.rows,
         meta={"workload": record.workload,
               "verdicts": [v.to_dict() for v in record.verdicts],
               "wall_s": record.wall_s,
               "counters": record.counters})
    # Theorems 1/3 closed forms, evaluated by the telemetry bound checker.
    assert record.passed, [v.name for v in record.failed_verdicts()]

    ours = result.row("this-paper")
    cent = result.row("TZ01b-centralized")

    assert ours["stretch_max"] <= 4 * K - 3 + 1e-9
    assert cent["stretch_max"] <= 4 * K - 3 + 1e-9
    assert ours["label_words"] <= K * (4 + 2 * math.log2(N))
    # Headline: memory within polylog of table size, not sqrt(n) x table.
    assert ours["memory_words"] <= 8 * math.log2(N) ** 2 * ours["table_words"]
    assert ours["memory_words"] < math.sqrt(N) * ours["table_words"]
