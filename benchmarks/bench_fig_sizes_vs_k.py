"""F5: general-scheme table/label words vs k.

Theorem 3: tables Õ(n^{1/k}) (shrink as k grows), labels O(k log n) (grow
linearly in k), memory within polylog of the table size at every k.
"""

import math

from _util import emit, once

from repro.analysis import fig_sizes_vs_k, format_records

N = 500


def bench_fig_sizes_vs_k(benchmark):
    records = once(benchmark, lambda: fig_sizes_vs_k(n=N, ks=(2, 3, 4), seed=3))
    emit("fig5_sizes_vs_k", format_records(
        records, title="F5: table/label words vs k (general scheme)"
    ), data=records)
    # Tables shrink with k (mean; the max is noisier at small n).
    means = [r["table_mean"] for r in records]
    assert means[-1] < means[0]
    # Labels are O(k log n).
    for r in records:
        assert r["label_max"] <= r["k"] * (4 + 2 * math.log2(N))
        assert r["memory_words"] <= 8 * math.log2(N) ** 2 * r["table_max"]
