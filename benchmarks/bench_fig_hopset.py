"""F6: hopset quality vs κ (the paper's 1/ρ memory knob, Theorem 1).

Larger κ means less hopset storage per virtual vertex (Õ(κ m^{1/κ}), the
paper's Õ(n^{ρ/2})) at the price of a larger hop bound β.  The bench
measures size, max out-degree (the memory), and the empirical β for which
the (β, ε)-hopset inequality holds.
"""

from _util import emit, once

from repro.analysis import fig_hopset, format_records


def bench_fig_hopset(benchmark):
    records = once(
        benchmark, lambda: fig_hopset(n=1200, kappas=(1, 2, 3), seed=3, epsilon=0.1)
    )
    emit("fig6_hopset", format_records(
        records, title="F6: hopset size / memory / measured beta vs kappa"
    ), data=records)
    # The hopset property held for every kappa (measure_hopbound raises
    # otherwise), and memory decreases as kappa grows.
    degrees = [r["max_out_degree"] for r in records]
    assert degrees[-1] <= degrees[0]
    for r in records:
        assert r["measured_beta"] >= 1
