"""F1: tree-routing construction rounds vs n.

Theorem 2 claims Õ(√n + D) rounds.  The sweep holds the network family (so
D stays ~log n) and grows n; the normalized column rounds/(√n·log²n) must
stay bounded, i.e. the measured curve has the √n·polylog shape, not n.
"""

from _util import emit, once

from repro.analysis import fig_tree_rounds, format_records

SIZES = (250, 500, 1000, 2000)


def bench_fig_tree_rounds(benchmark):
    records = once(benchmark, lambda: fig_tree_rounds(sizes=SIZES, seed=3))
    emit("fig1_tree_rounds", format_records(
        records, title="F1: tree-routing construction rounds vs n"
    ), data=records)
    # Shape: the normalized constant does not grow with n.
    normalized = [r["rounds_per_sqrt_n_log2"] for r in records]
    assert max(normalized) <= 3 * normalized[0] + 1.0
    # Sub-linear growth: 8x vertices must cost far less than 8x rounds.
    ratio = records[-1]["rounds"] / records[0]["rounds"]
    assert ratio < (SIZES[-1] / SIZES[0]) * 0.8
