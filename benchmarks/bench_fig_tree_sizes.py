"""F3: tree-routing label/table words vs n.

Table 2 columns 2-3: this paper O(1)/O(log n); prior work
O(log n)/O(log² n).  The sweep shows our table size flat at <= 5 words
while the baseline's artifacts stay strictly larger at every n.
"""

import math

from _util import emit, once

from repro.analysis import fig_tree_sizes, format_records

SIZES = (250, 500, 1000, 2000)


def bench_fig_tree_sizes(benchmark):
    records = once(benchmark, lambda: fig_tree_sizes(sizes=SIZES, seed=3))
    emit("fig3_tree_sizes", format_records(
        records, title="F3: tree-routing artifact sizes vs n (words)"
    ), data=records)
    for r in records:
        assert r["table_this_paper"] <= 5  # O(1), n-independent
        assert r["label_this_paper"] <= 1 + 2 * math.log2(r["n"])
        assert r["table_en16b"] > r["table_this_paper"]
        assert r["label_en16b"] >= r["label_this_paper"]
    tables = [r["table_this_paper"] for r in records]
    assert max(tables) == min(tables)  # flat across the sweep
