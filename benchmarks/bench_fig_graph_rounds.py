"""F7: general-scheme construction rounds and memory vs n (k = 3).

Theorem 3: rounds (n^{1/2+1/k}+D)·(log n)^{O(...)}; memory Õ(n^{1/k}).
At laptop scales the hop bound B is capped at n, so the absolute round
counts carry large polylog constants; the *shape* assertions are that the
memory column grows like n^{1/k} (far slower than √n) and that rounds grow
sub-quadratically.
"""


from _util import emit, once

from repro.analysis import fig_graph_rounds, format_records

SIZES = (200, 400, 800)


def bench_fig_graph_rounds(benchmark):
    records = once(
        benchmark, lambda: fig_graph_rounds(sizes=SIZES, k=3, seed=3)
    )
    emit("fig7_graph_rounds", format_records(
        records, title="F7: general-scheme construction cost vs n (k=3)"
    ), data=records)
    # Memory grows much slower than sqrt(n): compare growth ratios.
    m0, m1 = records[0]["memory_max"], records[-1]["memory_max"]
    n0, n1 = records[0]["n"], records[-1]["n"]
    assert m1 / m0 <= (n1 / n0) ** 0.95  # clearly sub-linear
    for r in records:
        assert r["rounds_parallel"] <= r["rounds_sequential"]
