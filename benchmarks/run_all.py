"""Run every benchmark without pytest: ``python benchmarks/run_all.py``.

Discovers each ``bench_*.py`` module's ``bench_*`` entry point, drives it
with a stub of the pytest-benchmark fixture (the benches only use
``benchmark.pedantic``), and lets ``_util.emit`` handle persistence:
``results/<name>.{txt,json}``, the appended ``BENCH_<name>.json``
trajectory entry, and the inline regression verdict.

Flags::

    --quick          only the fast smoke subset (full workloads, fewer
                     benches) -- what CI's bench-smoke job runs
    --only NAME      run just these benches (repeatable); name with or
                     without the ``bench_`` prefix
    --regress MODE   warn (default) | enforce | off -- enforce exits 1
                     when any hard metric regressed vs the trajectory

``--quick`` keeps the *workloads* untouched (it only skips slow benches),
so quick-run entries stay comparable with full-run entries of the same
bench -- the workload signature guards the regression gate either way.
"""

from __future__ import annotations

import argparse
import importlib
import pathlib
import sys
import time
from typing import List

BENCH_DIR = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

import _util  # noqa: E402

#: Fast benches (sub-second each at full workload) for CI smoke runs.
QUICK = (
    "bench_fig_tree_rounds",
    "bench_serve",
    "bench_sim_micro",
    "bench_table2",
)


class _StubBenchmark:
    """Minimal stand-in for the pytest-benchmark fixture.

    The benches call only ``benchmark.pedantic(fn, rounds=1,
    iterations=1)`` (via ``_util.once``); anything else raises so a new
    usage pattern is caught immediately.
    """

    def __init__(self) -> None:
        self.elapsed_s = 0.0

    def pedantic(self, fn, *, rounds=1, iterations=1, **kwargs):
        result = None
        started = time.perf_counter()
        for _ in range(rounds * iterations):
            result = fn()
        self.elapsed_s = time.perf_counter() - started
        return result

    def __call__(self, fn, *args, **kwargs):  # pragma: no cover
        return self.pedantic(lambda: fn(*args, **kwargs))


def discover() -> List[str]:
    return sorted(p.stem for p in BENCH_DIR.glob("bench_*.py"))


def run_bench(module_name: str) -> float:
    """Import one bench module and run its entry function; wall seconds."""
    module = importlib.import_module(module_name)
    entry = getattr(module, module_name)
    stub = _StubBenchmark()
    started = time.perf_counter()
    entry(stub)
    return time.perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_all", description="Run the benchmark suite standalone."
    )
    parser.add_argument("--quick", action="store_true",
                        help="fast smoke subset only (what CI runs)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="NAME", help="run just these benches")
    parser.add_argument("--regress", choices=("warn", "enforce", "off"),
                        default="warn",
                        help="regression gate mode (default warn)")
    parser.add_argument("--list", action="store_true",
                        help="list discovered benches and exit")
    args = parser.parse_args(argv)

    names = discover()
    if args.list:
        for name in names:
            tag = " [quick]" if name in QUICK else ""
            print(name + tag)
        return 0
    if args.quick:
        names = [n for n in names if n in QUICK]
    if args.only:
        wanted = {n if n.startswith("bench_") else f"bench_{n}"
                  for n in args.only}
        unknown = wanted - set(names)
        if unknown:
            print(f"unknown bench(es): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        names = [n for n in names if n in wanted]

    timings = []
    for name in names:
        print(f"--- {name} ---")
        timings.append((name, run_bench(name)))

    print("\n===== run_all summary =====")
    for name, seconds in timings:
        print(f"  {name:<32} {seconds:8.2f}s")

    if args.regress != "off" and _util.LAST_REPORTS:
        failed = [r.name for r in _util.LAST_REPORTS if not r.passed]
        warned = [r.name for r in _util.LAST_REPORTS if r.status == "warn"]
        print(f"regression gate ({args.regress}): "
              f"{len(_util.LAST_REPORTS)} bench(es), "
              f"{len(failed)} fail, {len(warned)} warn")
        if failed and args.regress == "enforce":
            print(f"perf regression in: {', '.join(failed)}",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
