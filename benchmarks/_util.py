"""Shared helpers for the benchmark harness.

Every bench prints its measured table/figure (so ``pytest benchmarks/
--benchmark-only -s`` reproduces the EXPERIMENTS.md data verbatim) and also
writes it under ``benchmarks/results/`` for later inspection.

Benches that pass structured ``data`` additionally get the machine-readable
twin of the ``.txt`` block (``benchmarks/results/<name>.json``) and a
``BENCH_<name>.json`` at the repo root — the perf-trajectory files that
accumulate across PRs (docs/observability.md).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Dict, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def emit(
    name: str,
    text: str,
    *,
    data: Any = None,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Print a rendered result block and persist it.

    ``text`` goes to ``results/<name>.txt`` verbatim.  When ``data`` is
    given (records/rows of the same result), a JSON payload with
    provenance — name, timestamp, package version, optional ``meta``
    (workload params, verdicts) — is written both as the result's JSON
    twin and as the repo-root ``BENCH_<name>.json`` trajectory file.
    """
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        from repro import __version__

        payload = {
            "name": name,
            "created_unix": round(time.time(), 3),
            "package_version": __version__,
            "meta": meta or {},
            "data": data,
        }
        blob = json.dumps(payload, indent=2, default=repr) + "\n"
        (RESULTS_DIR / f"{name}.json").write_text(blob)
        (REPO_ROOT / f"BENCH_{name}.json").write_text(blob)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The builds here are deterministic, heavyweight preprocessing runs;
    statistical repetition adds minutes without information.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
