"""Shared helpers for the benchmark harness.

Every bench prints its measured table/figure (so ``pytest benchmarks/
--benchmark-only -s`` reproduces the EXPERIMENTS.md data verbatim) and also
writes it under ``benchmarks/results/`` for later inspection.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered result block and persist it."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The builds here are deterministic, heavyweight preprocessing runs;
    statistical repetition adds minutes without information.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
