"""Shared helpers for the benchmark harness.

Every bench prints its measured table/figure (so ``pytest benchmarks/
--benchmark-only -s`` reproduces the EXPERIMENTS.md data verbatim) and also
writes it under ``benchmarks/results/`` for later inspection.

Benches that pass structured ``data`` additionally get the machine-readable
twin of the ``.txt`` block (``benchmarks/results/<name>.json``) and an
**appended** entry in the repo-root ``BENCH_<name>.json`` trajectory — the
perf history that accumulates across PRs (docs/observability.md).  Appends
are idempotent: re-running a bench at the same git SHA replaces that SHA's
entry instead of duplicating it.  After appending, the entry is compared
against the trajectory baseline (:mod:`repro.telemetry.regress`) and the
verdict printed; ``LAST_REPORTS`` collects the reports so drivers such as
``run_all.py`` can gate on them.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Dict, List, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Regression reports produced by :func:`emit` this process, in order.
#: ``run_all.py`` reads this to decide its exit code.
LAST_REPORTS: List[Any] = []


def emit(
    name: str,
    text: str,
    *,
    data: Any = None,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Print a rendered result block and persist it.

    ``text`` goes to ``results/<name>.txt`` verbatim.  When ``data`` is
    given (records/rows of the same result), a JSON payload with
    provenance — name, timestamp, package version, optional ``meta``
    (workload params, verdicts) — is written as the result's JSON twin,
    appended to the repo-root ``BENCH_<name>.json`` trajectory, and
    checked against the trajectory baseline for regressions.
    """
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is None:
        return

    from repro import __version__
    from repro.telemetry import trajectory as traj
    from repro.telemetry.regress import Tolerances, compare_payload

    entry = traj.make_entry(
        name, data, meta or {},
        sha=traj.git_sha(REPO_ROOT),
        package_version=__version__,
    )
    payload = {
        "name": name,
        "created_unix": round(time.time(), 3),
        "package_version": __version__,
        "meta": meta or {},
        "data": data,
        "run_id": entry["run_id"],
        "git_sha": entry["git_sha"],
        "workload_sig": entry["workload_sig"],
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, default=repr) + "\n"
    )

    bench_path = REPO_ROOT / f"BENCH_{name}.json"
    history = traj.load_trajectory(bench_path)
    baseline = traj.baseline_entry(history, entry)
    traj.append_entry(bench_path, entry)

    report = compare_payload(entry, baseline, Tolerances())
    report.name = name
    LAST_REPORTS.append(report)
    print(report.render())


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The builds here are deterministic, heavyweight preprocessing runs;
    statistical repetition adds minutes without information.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
