"""Ablation A4: source-side candidate selection ("first" vs "best").

Appendix B routes through the first level whose pivot tree contains the
source (the 4k-3 analysis).  The paper notes the 4k-5 refinement picks
candidates more carefully at a polylog table cost; our "best" mode is the
source-side version: among all label entries whose tree contains the
source, choose the one minimizing the advertised
source→root→destination bound (uses the root_distance word the tables
already carry).  The bench quantifies the gain across graph families.
"""

from _util import emit, once

from repro.analysis import format_records
from repro.core import build_distributed_scheme
from repro.graphs import grid_graph, random_connected_graph, ring_of_cliques
from repro.routing import measure_stretch, sample_pairs

K = 3


def _run():
    workloads = {
        "random-500": random_connected_graph(500, seed=41),
        "grid-20x20": grid_graph(20, 20, seed=41),
        "cliques-16x16": ring_of_cliques(16, 16, seed=41),
    }
    records = []
    for name, graph in workloads.items():
        report = build_distributed_scheme(graph, K, seed=42)
        pairs = sample_pairs(list(graph.nodes), 150, seed=43)
        first = measure_stretch(report.scheme, graph, pairs, mode="first")
        best = measure_stretch(report.scheme, graph, pairs, mode="best")
        records.append({
            "workload": name,
            "first_max": first.max_stretch,
            "best_max": best.max_stretch,
            "first_mean": first.mean_stretch,
            "best_mean": best.mean_stretch,
        })
    return records


def bench_ablation_mode(benchmark):
    records = once(benchmark, _run)
    emit("ablation_mode", format_records(
        records, title=f"A4: routing mode first vs best (k={K})"
    ), data=records)
    for r in records:
        assert r["best_mean"] <= r["first_mean"] + 1e-9
        assert r["best_max"] <= 4 * K - 3 + 1e-9
        assert r["first_max"] <= 4 * K - 3 + 1e-9
