"""S16 compiler: pack routing-scheme artifacts into flat serving tables.

The preprocessing phase produces dict-of-dataclass artifacts
(:mod:`repro.routing.artifacts`) that are convenient to build and verify but
slow to *serve*: every forwarded hop pays two hash lookups plus attribute
access on a frozen dataclass, and every light-edge test is a linear scan of
the label.  This module compiles a :class:`TreeRoutingScheme` or
:class:`GraphRoutingScheme` (in memory, or straight from its
:mod:`repro.routing.serialization` JSON) into the packed form the query
engine (:mod:`repro.serve.engine`) consumes, in the same spirit as the
CSR fast path of the CONGEST engine (docs/performance.md):

* vertex ids and cluster-tree ids are **interned** to dense ints;
* each cluster tree becomes one :class:`PackedTree`: contiguous
  ``enter``/``exit``/``parent``/``heavy`` arrays indexed by a tree-local
  vertex index, with the edge weight to the parent / heavy child
  precomputed next to the pointer (``None`` marks a hop that is not a real
  graph edge, so the engine can reproduce the reference router's
  ``RoutingFailure`` exactly);
* each destination label becomes one :class:`PackedLabel` per usable level:
  the destination's DFS enter time plus the light-edge scan collapsed into
  a first-match dict ``local index -> (next hop, weight)``.

Compilation is pure preprocessing: nothing here is on the per-query path.
The packed form is documented in docs/serving.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO, Any, Dict, Hashable, List, Optional, Tuple, Union

import networkx as nx

from ..errors import InputError
from ..routing.artifacts import (
    GraphRoutingScheme,
    TreeLabel,
    TreeRoutingScheme,
    TreeTable,
)
from ..routing.serialization import load_scheme
from ..telemetry import events as _tele

NodeId = Hashable

#: Sentinel local index meaning "no such vertex in this tree".
NO_VERTEX = -1


@dataclass
class PackedTree:
    """One cluster tree in flat, array-indexed form.

    Arrays are indexed by a *tree-local* vertex index ``li``; ``ids[li]``
    recovers the original vertex id (needed for reported paths and for
    byte-identical failure messages).  ``parent``/``heavy`` store the local
    index of the neighbour (:data:`NO_VERTEX` at the root / at leaves) and
    ``parent_id``/``heavy_id`` the original id (a forwarding target may
    legitimately leave the packed vertex set on malformed schemes, and the
    reference router only notices one hop later -- we must match that).
    """

    tree_id: Hashable
    ids: List[NodeId] = field(default_factory=list)
    local: Dict[NodeId, int] = field(default_factory=dict)
    enter: List[int] = field(default_factory=list)
    exit_: List[int] = field(default_factory=list)
    parent: List[int] = field(default_factory=list)
    parent_id: List[Optional[NodeId]] = field(default_factory=list)
    parent_w: List[Optional[float]] = field(default_factory=list)
    heavy: List[int] = field(default_factory=list)
    heavy_id: List[Optional[NodeId]] = field(default_factory=list)
    heavy_w: List[Optional[float]] = field(default_factory=list)
    root_distance: List[float] = field(default_factory=list)

    #: One-attribute-load bundle of the hot arrays, built by ``seal()``.
    #: Short routes are common, so the per-query cost of binding ten
    #: attributes would rival the hop loop itself; the engine unpacks
    #: this tuple instead.
    hot: Optional[tuple] = None

    def member(self, vertex: NodeId) -> bool:
        return vertex in self.local

    def seal(self) -> "PackedTree":
        self.hot = (
            self.enter, self.exit_,
            self.parent, self.parent_id, self.parent_w,
            self.heavy, self.heavy_id, self.heavy_w,
            self.local, self.tree_id,
        )
        return self

    @property
    def size(self) -> int:
        return len(self.ids)


@dataclass(frozen=True)
class PackedLabel:
    """A destination's tree label, compiled for O(1) light-edge decisions.

    ``light`` maps a tree-local index to ``(next_local, next_id, weight)``
    for the *first* light edge leaving that vertex (the reference scan
    returns the first match).  ``weight`` is ``None`` when the light edge is
    not an edge of the served graph.
    """

    enter: int
    light: Dict[int, Tuple[int, NodeId, Optional[float]]]
    words: int


@dataclass(frozen=True)
class PackedEntry:
    """One usable level of a destination's graph label."""

    __slots__ = ("level", "tree_index", "dist_to_root", "label")

    level: int
    tree_index: int
    dist_to_root: float
    label: PackedLabel


@dataclass(frozen=True)
class DecisionProvenance:
    """Origin of one packed decision-table candidate (S19 tracing).

    The decision table (:attr:`CompiledGraphScheme.decisions`) strips every
    candidate down to bare tuples for speed; this side-table keeps, in the
    *same candidate order*, what each tuple came from — the hierarchy level,
    the cluster-tree (= landmark) identity, and the label's advertised
    distance to the tree root — so a sampled :class:`~repro.tracing.QueryTrace`
    can annotate the committed decision without touching the hot path.
    """

    __slots__ = ("level", "tree_id", "tree_index", "root", "dist_to_root",
                 "tree_size", "label_words")

    level: int
    tree_id: Hashable
    tree_index: int
    root: Optional[NodeId]
    dist_to_root: float
    tree_size: int
    label_words: int


class CompiledTreeScheme:
    """A :class:`TreeRoutingScheme` packed for serving."""

    kind = "tree"

    def __init__(
        self,
        scheme: TreeRoutingScheme,
        graph: Optional[nx.Graph] = None,
    ) -> None:
        self.tree_id = scheme.tree_id
        self.root = scheme.root
        self.vertex_count = len(scheme.tables)
        #: Reference hop budget: ``2 * len(tables) + 2`` (router.py).
        self.default_budget = 2 * len(scheme.tables) + 2
        adj = _adjacency(graph)
        self.tree = _pack_tree(scheme.tree_id, scheme.tables, adj,
                               weighted=graph is not None)
        self.labels: Dict[NodeId, PackedLabel] = {
            v: _pack_label(label, self.tree, adj, weighted=graph is not None)
            for v, label in scheme.labels.items()
        }
        self.nodes: List[NodeId] = list(scheme.tables)
        #: Single-tree provenance for traced queries (level 0 by definition).
        self.provenance = DecisionProvenance(
            level=0,
            tree_id=scheme.tree_id,
            tree_index=0,
            root=scheme.root,
            dist_to_root=0.0,
            tree_size=self.tree.size,
            label_words=0,
        )

    def table_words(self) -> int:
        """Words across all packed per-vertex rows (5 words per vertex)."""
        return 5 * self.tree.size


class CompiledGraphScheme:
    """A :class:`GraphRoutingScheme` packed for serving.

    Per-tree structure is compiled from the **per-vertex tables** (not from
    ``tree_schemes``): the reference router consults only
    ``scheme.tables[at].trees``, and a scheme whose per-vertex tables are
    out of sync with its tree schemes must fail identically here.
    """

    kind = "graph"

    def __init__(self, scheme: GraphRoutingScheme, graph: nx.Graph) -> None:
        if graph is None:
            raise InputError("compiling a graph scheme requires the graph "
                             "(edge checks, weights, hop budget)")
        self.k = scheme.k
        self.n = graph.number_of_nodes()
        #: Reference hop budget: ``4 * graph.number_of_nodes() + 4``.
        self.default_budget = 4 * self.n + 4
        #: Vertices owning a GraphTable at all -- the reference raises
        #: ``KeyError`` (not ``RoutingFailure``) on a vertex outside this
        #: set, and the engine must match.
        self.table_ids = frozenset(scheme.tables)
        adj = _adjacency(graph)

        # -- intern cluster-tree ids over the union of per-vertex tables ----
        tree_ids: List[Hashable] = []
        tree_index: Dict[Hashable, int] = {}
        members: Dict[int, Dict[NodeId, TreeTable]] = {}
        for v, table in scheme.tables.items():
            for tid, row in table.trees.items():
                ti = tree_index.get(tid)
                if ti is None:
                    ti = tree_index[tid] = len(tree_ids)
                    tree_ids.append(tid)
                    members[ti] = {}
                members[ti][v] = row
        self.tree_ids = tree_ids
        self.tree_index = tree_index
        with _tele.span("serve/compile/trees", trees=len(tree_ids)):
            self.trees: List[PackedTree] = [
                _pack_tree(tree_ids[ti], members[ti], adj, weighted=True)
                for ti in range(len(tree_ids))
            ]

        # -- pack destination labels ----------------------------------------
        with _tele.span("serve/compile/labels", labels=len(scheme.labels)):
            self.entries: Dict[NodeId, Tuple[PackedEntry, ...]] = {}
            for v, label in scheme.labels.items():
                packed: List[PackedEntry] = []
                for i, entry in enumerate(label.entries):
                    if entry is None:
                        continue
                    tid, dist, tree_label = entry
                    ti = tree_index.get(tid)
                    if ti is None:
                        # The reference router skips this entry for every
                        # source (`has_tree` is False everywhere).
                        continue
                    packed.append(PackedEntry(
                        level=i,
                        tree_index=ti,
                        dist_to_root=dist,
                        label=_pack_label(tree_label, self.trees[ti], adj,
                                          weighted=True),
                    ))
                self.entries[v] = tuple(packed)
        self.nodes: List[NodeId] = list(scheme.labels)

        # -- flat decision table --------------------------------------------
        #: ``decisions[target]`` is the per-target candidate scan of
        #: ``entries[target]`` pre-resolved into bare tuples
        #: ``(local, (tree, label), root_distance, level, dist_to_root)``,
        #: in level order.  The engine's source rule is then one membership
        #: probe per candidate with zero dataclass attribute loads -- the
        #: decision scan runs on every cache miss, and attribute chasing on
        #: :class:`PackedEntry` was a measurable share of it.
        self.decisions = _decision_table(self.trees, self.entries)

        # -- provenance side-table (S19 tracing) ----------------------------
        #: ``provenance[target][i]`` describes ``decisions[target][i]``:
        #: candidate order is identical, so a replayed decision scan can
        #: recover level / landmark / tree identity from the committed
        #: candidate index alone.  ``bunch_levels[target]`` is the set of
        #: hierarchy levels present in the target's usable label — its bunch
        #: membership as the serving layer sees it.
        self.provenance = _provenance_table(self.trees, self.entries)
        self.bunch_levels = _bunch_levels(self.entries)

    def table_words(self) -> int:
        """Words across all packed per-tree rows (5 words per membership)."""
        return 5 * sum(t.size for t in self.trees)


CompiledScheme = Union[CompiledTreeScheme, CompiledGraphScheme]
Scheme = Union[TreeRoutingScheme, GraphRoutingScheme]


def compile_scheme(
    scheme: Scheme,
    graph: Optional[nx.Graph] = None,
) -> CompiledScheme:
    """Pack a built scheme for serving.

    ``graph`` supplies edge weights and the edge-existence check; it is
    required for graph schemes and optional for tree schemes (hop counts
    are served when omitted, exactly like ``route_in_tree`` without
    ``weight_of``).
    """
    with _tele.span("serve/compile", kind=type(scheme).__name__):
        if isinstance(scheme, TreeRoutingScheme):
            return CompiledTreeScheme(scheme, graph)
        if isinstance(scheme, GraphRoutingScheme):
            return CompiledGraphScheme(scheme, graph)
    raise InputError(f"cannot compile {type(scheme).__name__}")


def compile_from_json(
    source: Union[str, IO[str]],
    graph: Optional[nx.Graph] = None,
) -> CompiledScheme:
    """Load a serialized scheme (path or open file) and compile it."""
    if isinstance(source, str):
        with open(source) as fp:
            scheme = load_scheme(fp)
    else:
        scheme = load_scheme(source)
    return compile_scheme(scheme, graph)


def seal_to_buffers(compiled: CompiledScheme, *, backend=None):
    """Lower a compiled scheme into one shared-memory table image (S20).

    Thin entry point over :func:`repro.shard.tables.seal_to_buffers`
    (imported lazily: the shard subsystem depends on this module).  Returns
    a :class:`~repro.shard.tables.SealedTables` whose JSON-able manifest is
    all a :class:`~repro.shard.ShardPool` worker needs to attach the same
    image zero-copy via :func:`from_buffers`.
    """
    from ..shard.tables import seal_to_buffers as _seal

    return _seal(compiled, backend=backend)


def from_buffers(manifest, buffer=None):
    """Rebuild a compiled scheme from a table-image manifest (S20).

    Counterpart of :func:`seal_to_buffers`; see
    :func:`repro.shard.tables.from_buffers`.
    """
    from ..shard.tables import from_buffers as _from

    return _from(manifest, buffer)


# ---------------------------------------------------------------------------
# Packing helpers
# ---------------------------------------------------------------------------

def _decision_table(
    trees: List[PackedTree],
    entries: Dict[NodeId, Tuple[PackedEntry, ...]],
) -> Dict[NodeId, Tuple[Tuple[Dict[NodeId, int],
                              Tuple[PackedTree, PackedLabel],
                              List[float], int, float], ...]]:
    """Resolve packed entries into the engine's bare candidate tuples.

    Shared between compilation and shared-memory reconstruction
    (:mod:`repro.shard.tables`), so the two code paths cannot drift.
    """
    return {
        v: tuple(
            (trees[e.tree_index].local,
             (trees[e.tree_index], e.label),
             trees[e.tree_index].root_distance,
             e.level, e.dist_to_root)
            for e in packed_entries
        )
        for v, packed_entries in entries.items()
    }


def _provenance_table(
    trees: List[PackedTree],
    entries: Dict[NodeId, Tuple[PackedEntry, ...]],
) -> Dict[NodeId, Tuple[DecisionProvenance, ...]]:
    """Candidate-order-aligned provenance rows (see ``provenance`` above)."""
    roots = [_tree_root(t) for t in trees]
    return {
        v: tuple(
            DecisionProvenance(
                level=e.level,
                tree_id=trees[e.tree_index].tree_id,
                tree_index=e.tree_index,
                root=roots[e.tree_index],
                dist_to_root=e.dist_to_root,
                tree_size=trees[e.tree_index].size,
                label_words=e.label.words,
            )
            for e in packed_entries
        )
        for v, packed_entries in entries.items()
    }


def _bunch_levels(
    entries: Dict[NodeId, Tuple[PackedEntry, ...]],
) -> Dict[NodeId, Tuple[int, ...]]:
    return {
        v: tuple(e.level for e in packed_entries)
        for v, packed_entries in entries.items()
    }


def _adjacency(
    graph: Optional[nx.Graph],
) -> Optional[Dict[Tuple[NodeId, NodeId], float]]:
    """Undirected edge -> weight map (both orientations), or None."""
    if graph is None:
        return None
    adj: Dict[Tuple[NodeId, NodeId], float] = {}
    for u, v, data in graph.edges(data=True):
        w = float(data.get("weight", 1.0))
        adj[(u, v)] = w
        adj[(v, u)] = w
    return adj


def _pack_tree(
    tree_id: Hashable,
    tables: Dict[NodeId, TreeTable],
    adj: Optional[Dict[Tuple[NodeId, NodeId], float]],
    *,
    weighted: bool,
) -> PackedTree:
    """Flatten one tree's per-vertex tables into a :class:`PackedTree`."""
    packed = PackedTree(tree_id=tree_id)
    for v in tables:
        packed.local[v] = len(packed.ids)
        packed.ids.append(v)
    for v, row in tables.items():
        packed.enter.append(row.enter)
        packed.exit_.append(row.exit_)
        packed.root_distance.append(row.root_distance or 0.0)
        for neighbour, idx_list, id_list, w_list in (
            (row.parent, packed.parent, packed.parent_id, packed.parent_w),
            (row.heavy, packed.heavy, packed.heavy_id, packed.heavy_w),
        ):
            if neighbour is None:
                idx_list.append(NO_VERTEX)
                id_list.append(None)
                w_list.append(None)
            else:
                idx_list.append(packed.local.get(neighbour, NO_VERTEX))
                id_list.append(neighbour)
                w_list.append(_edge_weight(adj, v, neighbour,
                                           weighted=weighted))
    return packed.seal()


def _pack_label(
    label: TreeLabel,
    tree: PackedTree,
    adj: Optional[Dict[Tuple[NodeId, NodeId], float]],
    *,
    weighted: bool,
) -> PackedLabel:
    light: Dict[int, Tuple[int, NodeId, Optional[float]]] = {}
    for u, v in label.light_edges:
        li = tree.local.get(u)
        if li is None or li in light:
            # Unreachable decision point for the engine / later duplicate:
            # the reference scan matches the first listed edge only.
            continue
        light[li] = (
            tree.local.get(v, NO_VERTEX),
            v,
            _edge_weight(adj, u, v, weighted=weighted),
        )
    return PackedLabel(enter=label.enter, light=light,
                       words=label.word_size())


def _tree_root(tree: PackedTree) -> Optional[NodeId]:
    """The tree's root vertex (no parent pointer), or None if malformed."""
    for li, parent in enumerate(tree.parent):
        if parent == NO_VERTEX and tree.parent_id[li] is None:
            return tree.ids[li]
    return None


def _edge_weight(
    adj: Optional[Dict[Tuple[NodeId, NodeId], float]],
    u: NodeId,
    v: NodeId,
    *,
    weighted: bool,
) -> Optional[float]:
    """Hop cost of forwarding ``u -> v``.

    Unweighted serving (tree schemes without a graph) charges 1.0 per hop.
    Weighted serving returns ``None`` for a non-edge so the engine can
    raise the reference router's "not an edge" failure at hop time.
    """
    if not weighted or adj is None:
        return 1.0
    return adj.get((u, v))


def _jsonable_summary(compiled: CompiledScheme) -> Dict[str, Any]:
    """Small provenance blob for RunRecords / benchmark twins."""
    if compiled.kind == "tree":
        return {
            "kind": "tree",
            "vertices": compiled.vertex_count,
            "packed_words": compiled.table_words(),
        }
    return {
        "kind": "graph",
        "k": compiled.k,
        "n": compiled.n,
        "trees": len(compiled.trees),
        "memberships": sum(t.size for t in compiled.trees),
        "packed_words": compiled.table_words(),
    }
