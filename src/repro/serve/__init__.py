"""S16: the query-serving subsystem (docs/serving.md).

Preprocessing builds schemes; this package *serves* them at volume:

* :mod:`~repro.serve.compile` -- pack scheme artifacts into flat,
  integer-indexed tables (interned ids, per-tree arrays, precomputed hop
  weights);
* :mod:`~repro.serve.engine` -- the batched query engine: LRU decision
  cache, per-query hop caps, count-and-continue failure policy,
  differentially tested against the reference routers;
* :mod:`~repro.serve.workloads` -- seeded traffic models (uniform, Zipf,
  gravity, adversarial worst-stretch mining);
* :mod:`~repro.serve.harness` -- throughput / latency / cache / stretch-SLO
  reporting behind the ``repro serve`` CLI.
"""

from .compile import (
    CompiledGraphScheme,
    CompiledScheme,
    CompiledTreeScheme,
    PackedLabel,
    PackedTree,
    compile_from_json,
    compile_scheme,
    from_buffers,
    seal_to_buffers,
)
from .engine import DecisionCache, ServeEngine, ServeResult
from .harness import (
    SKETCH_ACCURACY,
    ServeReport,
    percentile,
    run_serving,
    run_serving_recorded,
    serve_pairs,
    slo_verdict,
)
from .workloads import (
    WORKLOADS,
    adversarial_pairs,
    gravity_pairs,
    make_workload,
    uniform_pairs,
    zipf_pairs,
)

__all__ = [
    "SKETCH_ACCURACY",
    "CompiledGraphScheme",
    "CompiledScheme",
    "CompiledTreeScheme",
    "DecisionCache",
    "PackedLabel",
    "PackedTree",
    "ServeEngine",
    "ServeReport",
    "ServeResult",
    "WORKLOADS",
    "adversarial_pairs",
    "compile_from_json",
    "compile_scheme",
    "from_buffers",
    "gravity_pairs",
    "make_workload",
    "percentile",
    "run_serving",
    "run_serving_recorded",
    "seal_to_buffers",
    "serve_pairs",
    "slo_verdict",
    "uniform_pairs",
    "zipf_pairs",
]
