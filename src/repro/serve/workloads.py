"""S16 workload models: who queries whom, and how skewed.

Serving throughput is meaningless without a traffic model.  Every model
here is a pure function of ``(population, count, seed)`` -- same seed,
same query stream, across processes and platforms -- so benchmark entries
stay comparable across commits and the differential tests can replay the
exact stream against both engines.

* ``uniform`` -- sources and destinations uniform over ordered pairs
  (the pair model of :func:`repro.routing.router.sample_pairs`);
* ``zipf`` -- destinations follow a Zipf law of exponent ``alpha`` over a
  seeded popularity ranking (hot destinations: the cache-friendly regime
  every CDN/DNS trace exhibits); sources uniform;
* ``gravity`` -- both endpoints drawn proportionally to vertex degree
  (hubs talk to hubs; degree-weighted traffic matrices);
* ``adversarial`` -- worst-stretch pair mining: score a seeded candidate
  pool by measured stretch against exact distances and keep the worst
  pairs (the SLO stress regime).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import InputError
from ..graphs.paths import dijkstra

NodeId = Hashable
Pair = Tuple[NodeId, NodeId]


def _rng(seed) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def uniform_pairs(
    nodes: Sequence[NodeId], count: int, seed=0
) -> List[Pair]:
    """Distinct ordered pairs, uniform over the population."""
    rng = _rng(seed)
    nodes = list(nodes)
    if len(nodes) < 2:
        raise InputError("need at least two vertices to form query pairs")
    return [tuple(rng.sample(nodes, 2)) for _ in range(count)]


def zipf_pairs(
    nodes: Sequence[NodeId],
    count: int,
    seed=0,
    *,
    alpha: float = 1.1,
) -> List[Pair]:
    """Zipf-skewed destinations (rank ``r`` has weight ``r^-alpha``).

    The popularity ranking itself is a seeded shuffle of the population,
    so two runs with one seed hit the *same* hot destinations.  Sampling
    is a bisect over the cumulative weights -- O(log n) per query.
    """
    rng = _rng(seed)
    nodes = list(nodes)
    if len(nodes) < 2:
        raise InputError("need at least two vertices to form query pairs")
    if alpha <= 0:
        raise InputError("zipf alpha must be positive")
    ranked = list(nodes)
    rng.shuffle(ranked)
    cumulative = list(itertools.accumulate(
        (r + 1) ** -alpha for r in range(len(ranked))
    ))
    total = cumulative[-1]
    pairs: List[Pair] = []
    for _ in range(count):
        target = ranked[bisect.bisect_left(cumulative,
                                           rng.random() * total)]
        source = rng.choice(nodes)
        while source == target:
            source = rng.choice(nodes)
        pairs.append((source, target))
    return pairs


def gravity_pairs(
    graph: nx.Graph,
    count: int,
    seed=0,
) -> List[Pair]:
    """Degree-weighted endpoints: P(v) proportional to deg(v) at both ends."""
    rng = _rng(seed)
    nodes = list(graph.nodes)
    if len(nodes) < 2:
        raise InputError("need at least two vertices to form query pairs")
    weights = list(itertools.accumulate(
        max(1, graph.degree(v)) for v in nodes
    ))
    total = weights[-1]

    def draw() -> NodeId:
        return nodes[bisect.bisect_left(weights, rng.random() * total)]

    pairs: List[Pair] = []
    for _ in range(count):
        source = draw()
        target = draw()
        while target == source:
            target = draw()
        pairs.append((source, target))
    return pairs


def adversarial_pairs(
    graph: nx.Graph,
    count: int,
    seed=0,
    *,
    route_length: Callable[[NodeId, NodeId], Optional[float]],
    pool_factor: int = 4,
) -> List[Pair]:
    """Mine the worst-stretch pairs a scheme serves.

    Scores a seeded uniform candidate pool of ``pool_factor * count``
    pairs by measured stretch (``route_length`` over exact Dijkstra
    distance; ``None`` -- a routing failure -- sorts worst of all) and
    returns the ``count`` worst, worst first.  Exact distances are
    computed once per distinct source, like ``measure_stretch``.
    """
    if pool_factor < 1:
        raise InputError("pool_factor must be >= 1")
    pool = uniform_pairs(list(graph.nodes), count * pool_factor, seed)
    by_source: Dict[NodeId, List[NodeId]] = {}
    for u, v in pool:
        by_source.setdefault(u, []).append(v)
    scored: List[Tuple[float, Pair]] = []
    for u, targets in by_source.items():
        dist, _ = dijkstra(graph, [u])
        for v in targets:
            routed = route_length(u, v)
            if routed is None:
                stretch = float("inf")
            else:
                exact = dist.get(v, 0.0)
                stretch = routed / exact if exact > 0 else 1.0
            scored.append((stretch, (u, v)))
    scored.sort(key=lambda item: (-item[0], repr(item[1])))
    return [pair for _, pair in scored[:count]]


#: Registry the harness and CLI expose.  Each generator takes
#: ``(graph, nodes, count, seed, **params)`` and returns a pair list;
#: ``adversarial`` additionally requires a ``route_length`` callable.
WORKLOADS = ("uniform", "zipf", "gravity", "adversarial")


def make_workload(
    name: str,
    graph: nx.Graph,
    nodes: Sequence[NodeId],
    count: int,
    seed=0,
    *,
    zipf_alpha: float = 1.1,
    route_length: Optional[Callable[[NodeId, NodeId], Optional[float]]] = None,
) -> List[Pair]:
    """Generate ``count`` seeded queries of the named workload."""
    if name == "uniform":
        return uniform_pairs(nodes, count, seed)
    if name == "zipf":
        return zipf_pairs(nodes, count, seed, alpha=zipf_alpha)
    if name == "gravity":
        return gravity_pairs(graph, count, seed)
    if name == "adversarial":
        if route_length is None:
            raise InputError(
                "the adversarial workload mines worst-stretch pairs and "
                "needs a route_length callable"
            )
        return adversarial_pairs(graph, count, seed,
                                 route_length=route_length)
    raise InputError(f"unknown workload {name!r} "
                     f"(choose from {', '.join(WORKLOADS)})")
