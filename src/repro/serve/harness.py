"""S16 serving harness: run a workload against a scheme, report SLOs.

``run_serving`` compiles a scheme, generates a seeded workload, serves it
through the batched engine, and reports what a serving tier is judged on:
throughput (queries/s), per-query hop and latency percentiles, cache hit
rate, the count-and-continue failure tally, and a **stretch-SLO verdict**
-- the fraction of queries delivered within the paper's stretch bound
(``4k-3`` for Theorem 3 schemes), attached as a
:class:`~repro.telemetry.bounds.BoundVerdict` so ``--strict`` runs and the
dashboard treat it like every other paper bound.

``run_serving_recorded`` wraps the run in a telemetry collector and emits
the :class:`~repro.telemetry.RunRecord` behind ``repro serve --json``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from ..graphs.paths import dijkstra
from ..telemetry import events as _tele
from ..telemetry.bounds import BoundVerdict
from ..telemetry.runrecord import RunRecord, make_run_record
from .compile import CompiledGraphScheme, Scheme, _jsonable_summary, compile_scheme
from .engine import ServeEngine, ServeResult
from .workloads import make_workload

NodeId = Hashable


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]) of a non-empty sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class ServeReport:
    """Everything one serving run is judged on."""

    workload: str
    queries: int
    seed: int
    mode: str
    cache_size: int
    compile_s: float
    serve_s: float
    throughput_qps: float
    hops_p50: float
    hops_p90: float
    hops_p99: float
    hops_max: float
    latency_us_p50: float
    latency_us_p90: float
    latency_us_p99: float
    cache_hit_rate: float
    failures: int
    slo_bound: Optional[float] = None
    slo_fraction: Optional[float] = None
    slo_target: Optional[float] = None
    packed: Dict[str, Any] = field(default_factory=dict)

    @property
    def slo_ok(self) -> Optional[bool]:
        if self.slo_fraction is None or self.slo_target is None:
            return None
        return self.slo_fraction >= self.slo_target

    def to_row(self) -> Dict[str, Any]:
        """One flat, JSON-ready row (RunRecord column / bench twin)."""
        row = {
            "workload": self.workload,
            "queries": self.queries,
            "seed": self.seed,
            "mode": self.mode,
            "cache_size": self.cache_size,
            "compile_s": round(self.compile_s, 4),
            "serve_s": round(self.serve_s, 4),
            "throughput_qps": round(self.throughput_qps, 1),
            "hops_p50": self.hops_p50,
            "hops_p90": self.hops_p90,
            "hops_p99": self.hops_p99,
            "hops_max": self.hops_max,
            "latency_us_p50": round(self.latency_us_p50, 2),
            "latency_us_p90": round(self.latency_us_p90, 2),
            "latency_us_p99": round(self.latency_us_p99, 2),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "failures": self.failures,
        }
        if self.slo_fraction is not None:
            row["slo_bound"] = round(self.slo_bound, 4)
            row["slo_fraction"] = round(self.slo_fraction, 4)
            row["slo_target"] = self.slo_target
            row["slo_ok"] = self.slo_ok
        row.update(self.packed)
        return row

    def render(self) -> str:
        lines = [
            f"workload={self.workload} queries={self.queries} "
            f"seed={self.seed} mode={self.mode}",
            f"throughput    {self.throughput_qps:>12.0f} queries/s "
            f"(serve {self.serve_s:.3f}s, compile {self.compile_s:.3f}s)",
            f"hops          p50={self.hops_p50:.0f} p90={self.hops_p90:.0f} "
            f"p99={self.hops_p99:.0f} max={self.hops_max:.0f}",
            f"latency (us)  p50={self.latency_us_p50:.1f} "
            f"p90={self.latency_us_p90:.1f} p99={self.latency_us_p99:.1f}",
            f"cache         size={self.cache_size} "
            f"hit_rate={self.cache_hit_rate:.1%}",
            f"failures      {self.failures} (count-and-continue)",
        ]
        if self.slo_fraction is not None:
            status = "PASS" if self.slo_ok else "FAIL"
            lines.append(
                f"stretch SLO   {self.slo_fraction:.2%} of queries within "
                f"{self.slo_bound:.3g}x (target {self.slo_target:.0%}): "
                f"{status}"
            )
        return "\n".join(lines)


def slo_verdict(report: ServeReport) -> Optional[BoundVerdict]:
    """The stretch-SLO as a standard bound verdict (None without SLO data)."""
    if report.slo_fraction is None:
        return None
    return BoundVerdict(
        name=f"serve/{report.workload}/stretch-slo",
        column="slo_fraction",
        formula=(f"frac(stretch <= {report.slo_bound:.3g}) "
                 f">= {report.slo_target}"),
        measured=round(report.slo_fraction, 4),
        limit=report.slo_target,
        passed=bool(report.slo_ok),
    )


def run_serving(
    scheme: Scheme,
    graph: nx.Graph,
    *,
    workload: str = "uniform",
    queries: int = 1000,
    seed: int = 0,
    mode: str = "first",
    cache_size: int = 4096,
    zipf_alpha: float = 1.1,
    slo_bound: Optional[float] = None,
    slo_target: float = 0.99,
    engine: Optional[ServeEngine] = None,
) -> Tuple[ServeReport, List[ServeResult]]:
    """Serve ``queries`` seeded queries of ``workload`` against ``scheme``.

    ``slo_bound`` defaults to the paper's ``4k-3`` for graph schemes (the
    SLO is skipped for tree schemes, whose tree routing is exact).  Pass a
    prebuilt ``engine`` to serve with a warm cache; by default the run
    compiles fresh and starts cold.
    """
    with _tele.span("serve/run", workload=workload, queries=queries):
        started = time.perf_counter()
        if engine is None:
            compiled = compile_scheme(scheme, graph)
            engine = ServeEngine(compiled, mode=mode, cache_size=cache_size)
        else:
            compiled = engine.compiled
            mode = engine.mode
            cache_size = engine.cache.maxsize
        compile_s = time.perf_counter() - started

        with _tele.span("serve/workload", workload=workload):
            pairs = make_workload(
                workload, graph, compiled.nodes, queries, seed,
                zipf_alpha=zipf_alpha,
                route_length=_route_length_probe(compiled, graph, mode),
            )

        perf_counter = time.perf_counter
        route_recorded = engine.route_recorded
        latencies_us: List[float] = []
        results: List[ServeResult] = []
        with _tele.span("serve/queries", count=len(pairs)):
            serve_started = perf_counter()
            for u, v in pairs:
                q0 = perf_counter()
                results.append(route_recorded(u, v))
                latencies_us.append((perf_counter() - q0) * 1e6)
            serve_s = perf_counter() - serve_started
        _tele.emit("serve.queries", len(results))
        _tele.emit("serve.failures", engine.failures)

        if slo_bound is None and isinstance(compiled, CompiledGraphScheme):
            slo_bound = 4.0 * compiled.k - 3.0
        slo_fraction = None
        if slo_bound is not None:
            with _tele.span("serve/slo", bound=slo_bound):
                slo_fraction = _slo_fraction(graph, results, slo_bound)

        hops = [r.hops for r in results if r.ok] or [0]
        stats = engine.stats()
        report = ServeReport(
            workload=workload,
            queries=len(results),
            seed=seed,
            mode=mode,
            cache_size=cache_size,
            compile_s=compile_s,
            serve_s=serve_s,
            throughput_qps=len(results) / serve_s if serve_s > 0 else 0.0,
            hops_p50=percentile(hops, 50),
            hops_p90=percentile(hops, 90),
            hops_p99=percentile(hops, 99),
            hops_max=max(hops),
            latency_us_p50=percentile(latencies_us, 50),
            latency_us_p90=percentile(latencies_us, 90),
            latency_us_p99=percentile(latencies_us, 99),
            cache_hit_rate=stats["cache_hit_rate"],
            failures=engine.failures,
            slo_bound=slo_bound,
            slo_fraction=slo_fraction,
            slo_target=slo_target if slo_fraction is not None else None,
            packed=_jsonable_summary(compiled),
        )
        if slo_fraction is not None:
            _tele.gauge("serve.slo_fraction", slo_fraction)
        return report, results


def run_serving_recorded(
    scheme: Scheme,
    graph: nx.Graph,
    **kwargs: Any,
) -> Tuple[ServeReport, RunRecord]:
    """``run_serving`` under a collector, returning the RunRecord."""
    from ..telemetry import collect

    started = time.perf_counter()
    with collect() as tele:
        report, _ = run_serving(scheme, graph, **kwargs)
    verdict = slo_verdict(report)
    record = make_run_record(
        "serve",
        workload={
            "workload": report.workload,
            "queries": report.queries,
            "seed": report.seed,
            "mode": report.mode,
            "cache_size": report.cache_size,
        },
        columns=[report.to_row()],
        verdicts=[verdict] if verdict is not None else [],
        collector=tele,
        wall_s=time.perf_counter() - started,
    )
    return report, record


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def _route_length_probe(compiled, graph: nx.Graph, mode: str):
    """A side engine for adversarial mining (None on routing failure).

    Uses its own engine so mining never warms the measured cache.
    """
    probe = ServeEngine(compiled, mode=mode, cache_size=0)

    def route_length(u: NodeId, v: NodeId) -> Optional[float]:
        result = probe.route_recorded(u, v)
        return result.length if result.ok else None

    return route_length


def _slo_fraction(
    graph: nx.Graph,
    results: Sequence[ServeResult],
    bound: float,
) -> float:
    """Fraction of queries delivered within ``bound`` times the exact
    distance (failed queries count as violations), one Dijkstra per
    distinct source like ``measure_stretch``."""
    if not results:
        return 1.0
    by_source: Dict[NodeId, List[ServeResult]] = {}
    for r in results:
        by_source.setdefault(r.source, []).append(r)
    within = 0
    for source, rs in by_source.items():
        dist, _ = dijkstra(graph, [source])
        for r in rs:
            if not r.ok:
                continue
            exact = dist.get(r.target, 0.0)
            stretch = r.length / exact if exact > 0 else 1.0
            if stretch <= bound + 1e-9:
                within += 1
    return within / len(results)
