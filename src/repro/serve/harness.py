"""S16 serving harness: run a workload against a scheme, report SLOs.

``run_serving`` compiles a scheme, generates a seeded workload, serves it
through the batched engine, and reports what a serving tier is judged on:
throughput (queries/s), per-query hop and latency percentiles, cache hit
rate, the count-and-continue failure tally, and a **stretch-SLO verdict**
-- the fraction of queries delivered within the paper's stretch bound
(``4k-3`` for Theorem 3 schemes), attached as a
:class:`~repro.telemetry.bounds.BoundVerdict` so ``--strict`` runs and the
dashboard treat it like every other paper bound.

``run_serving_recorded`` wraps the run in a telemetry collector and emits
the :class:`~repro.telemetry.RunRecord` behind ``repro serve --json``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import networkx as nx

from ..graphs.paths import dijkstra
from ..metrics.serve import ServeMetrics, exemplar_payload

if TYPE_CHECKING:  # pragma: no cover
    from ..tracing.model import QueryTrace
    from ..tracing.sampler import Tracer
from ..metrics.sketch import QuantileSketch
from ..telemetry import events as _tele
from ..telemetry.bounds import BoundVerdict
from ..telemetry.runrecord import RunRecord, make_run_record
from .compile import CompiledGraphScheme, Scheme, _jsonable_summary, compile_scheme
from .engine import ServeEngine, ServeResult
from .workloads import make_workload

NodeId = Hashable

#: Relative accuracy of the harness percentile sketches.  0.005 keeps
#: integer hop percentiles *exact* after rounding for paths under 100
#: hops (``alpha * h < 0.5``), so the hard-gated ``hops_p50``/``hops_p99``
#: trajectory columns cannot drift.
SKETCH_ACCURACY = 0.005


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]) of a non-empty sequence.

    The exact reference implementation: report percentiles are computed
    through :class:`~repro.metrics.sketch.QuantileSketch` (one pass, no
    sort), and the differential tests check the sketch against this
    function within the configured relative error.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class ServeReport:
    """Everything one serving run is judged on."""

    workload: str
    queries: int
    seed: int
    mode: str
    cache_size: int
    #: wall-clock columns are measurements of *this machine at this
    #: moment*, not of routing behavior — excluded from equality so two
    #: reports compare on what they computed, which is also what makes
    #: the merged N-shard report field-identical to the 1-process one.
    compile_s: float = field(compare=False)
    serve_s: float = field(compare=False)
    throughput_qps: float = field(compare=False)
    hops_p50: float
    hops_p90: float
    hops_p99: float
    hops_max: float
    latency_us_p50: float = field(compare=False)
    latency_us_p90: float = field(compare=False)
    latency_us_p99: float = field(compare=False)
    cache_hit_rate: float
    failures: int
    slo_bound: Optional[float] = None
    slo_fraction: Optional[float] = None
    slo_target: Optional[float] = None
    #: raw LRU counters behind ``cache_hit_rate`` — summable across
    #: shards where the rounded rate is not (S20 merge).
    cache_hits: int = 0
    cache_misses: int = 0
    #: raw count behind ``slo_fraction`` (queries within the bound),
    #: summable across shards.
    slo_within: Optional[int] = None
    #: shard count for merged reports (None for single-process runs);
    #: excluded from equality so merged == single-process holds.
    shards: Optional[int] = field(default=None, compare=False)
    packed: Dict[str, Any] = field(default_factory=dict)
    #: per-distribution quantile sketches ("hops", "latency_us", and
    #: "stretch" when the SLO ran) -- the source of the report's
    #: percentile columns, queryable at any rank via ``quantiles()``.
    sketches: Dict[str, QuantileSketch] = field(
        default_factory=dict, repr=False, compare=False)
    #: live-metrics snapshot (populated when ``run_serving`` is given a
    #: :class:`~repro.metrics.ServeMetrics` bundle).
    metrics: Dict[str, Any] = field(
        default_factory=dict, repr=False, compare=False)
    #: sampled query traces (populated when ``run_serving`` is given a
    #: :class:`~repro.tracing.Tracer`); excluded from ``to_row()`` and
    #: report equality so tracing cannot perturb differential checks.
    traces: List["QueryTrace"] = field(
        default_factory=list, repr=False, compare=False)
    #: worst-stretch exemplars (``Histogram.exemplars()`` payloads,
    #: worst-first) when a metrics bundle fed the stretch histogram;
    #: compared through :func:`ServeReport.merge`'s deterministic
    #: re-heapify, not dataclass equality (heap tie-order is
    #: arrival-dependent at the reservoir boundary).
    exemplars: List[Dict[str, Any]] = field(
        default_factory=list, repr=False, compare=False)

    @property
    def slo_ok(self) -> Optional[bool]:
        if self.slo_fraction is None or self.slo_target is None:
            return None
        return self.slo_fraction >= self.slo_target

    def quantiles(self, name: str = "latency_us",
                  qs: Sequence[float] = (0.5, 0.9, 0.99)) -> List[float]:
        """Arbitrary-rank quantiles of a recorded distribution.

        ``name`` is one of the ``sketches`` keys (``"hops"``,
        ``"latency_us"``, or ``"stretch"`` on SLO-checked runs); each
        estimate is within :data:`SKETCH_ACCURACY` relative error.
        """
        sketch = self.sketches.get(name)
        if sketch is None:
            raise KeyError(
                f"no {name!r} sketch (have {sorted(self.sketches)})")
        return sketch.quantiles(qs)

    def to_row(self) -> Dict[str, Any]:
        """One flat, JSON-ready row (RunRecord column / bench twin)."""
        row = {
            "workload": self.workload,
            "queries": self.queries,
            "seed": self.seed,
            "mode": self.mode,
            "cache_size": self.cache_size,
            "compile_s": round(self.compile_s, 4),
            "serve_s": round(self.serve_s, 4),
            "throughput_qps": round(self.throughput_qps, 1),
            "hops_p50": self.hops_p50,
            "hops_p90": self.hops_p90,
            "hops_p99": self.hops_p99,
            "hops_max": self.hops_max,
            "latency_us_p50": round(self.latency_us_p50, 2),
            "latency_us_p90": round(self.latency_us_p90, 2),
            "latency_us_p99": round(self.latency_us_p99, 2),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "failures": self.failures,
        }
        if self.slo_fraction is not None:
            row["slo_bound"] = round(self.slo_bound, 4)
            row["slo_fraction"] = round(self.slo_fraction, 4)
            row["slo_target"] = self.slo_target
            row["slo_ok"] = self.slo_ok
        if self.shards is not None:
            row["shards"] = self.shards
        row.update(self.packed)
        return row

    def render(self) -> str:
        lines = [
            f"workload={self.workload} queries={self.queries} "
            f"seed={self.seed} mode={self.mode}",
            f"throughput    {self.throughput_qps:>12.0f} queries/s "
            f"(serve {self.serve_s:.3f}s, compile {self.compile_s:.3f}s)",
            f"hops          p50={self.hops_p50:.0f} p90={self.hops_p90:.0f} "
            f"p99={self.hops_p99:.0f} max={self.hops_max:.0f}",
            f"latency (us)  p50={self.latency_us_p50:.1f} "
            f"p90={self.latency_us_p90:.1f} p99={self.latency_us_p99:.1f}",
            f"cache         size={self.cache_size} "
            f"hit_rate={self.cache_hit_rate:.1%}",
            f"failures      {self.failures} (count-and-continue)",
        ]
        if self.slo_fraction is not None:
            status = "PASS" if self.slo_ok else "FAIL"
            lines.append(
                f"stretch SLO   {self.slo_fraction:.2%} of queries within "
                f"{self.slo_bound:.3g}x (target {self.slo_target:.0%}): "
                f"{status}"
            )
        if self.shards is not None:
            lines.insert(1, f"shards        {self.shards} workers "
                            "(merged report)")
        return "\n".join(lines)

    @classmethod
    def merge(cls, reports: Sequence["ServeReport"],
              *, exemplar_limit: Optional[int] = None) -> "ServeReport":
        """Merge per-shard reports into the exact whole-stream report.

        Every field is combined by its own algebra so the merged N-shard
        report **equals** the 1-process report on the same stream:

        * counters (``queries``/``failures``/``cache_hits``/
          ``cache_misses``/``slo_within``) sum;
        * percentile columns recompute from the bucket-exact
          :meth:`QuantileSketch.merge` of the shard sketches (hop
          sketches of shards with zero delivered queries are skipped —
          their single ``0`` is the empty-run sentinel, which the merged
          sketch re-adds only if *no* shard delivered);
        * ``cache_hit_rate`` / ``slo_fraction`` recompute from the summed
          raw counters (rounding first would not be order-insensitive);
        * exemplar reservoirs re-heapify deterministically: worst value
          first, payload JSON as the tie-break, truncated to
          ``exemplar_limit`` (default: the widest shard reservoir);
        * wall-clock fields take the slowest shard (``serve_s`` /
          ``compile_s`` = max) and throughput recomputes as total
          queries over that span — the aggregate-QPS definition the
          shard bench gates on.

        ``serve_s``-derived and latency fields are *report-level* merges;
        they are excluded from dataclass equality already.  Raises
        :class:`~repro.errors.InputError` on an empty list or when shards
        disagree on stream identity (workload/seed/mode/cache/SLO).
        """
        from ..errors import InputError

        reports = list(reports)
        if not reports:
            raise InputError("cannot merge an empty list of shard reports")
        first = reports[0]
        for r in reports[1:]:
            for attr in ("workload", "seed", "mode", "cache_size",
                         "slo_bound", "slo_target"):
                if getattr(r, attr) != getattr(first, attr):
                    raise InputError(
                        f"shard reports disagree on {attr}: "
                        f"{getattr(first, attr)!r} != {getattr(r, attr)!r}")

        queries = sum(r.queries for r in reports)
        failures = sum(r.failures for r in reports)
        cache_hits = sum(r.cache_hits for r in reports)
        cache_misses = sum(r.cache_misses for r in reports)
        lookups = cache_hits + cache_misses

        hops = QuantileSketch(SKETCH_ACCURACY)
        lat = QuantileSketch(SKETCH_ACCURACY)
        for r in reports:
            if "latency_us" in r.sketches:
                lat.merge(r.sketches["latency_us"])
            if "hops" in r.sketches and r.queries - r.failures > 0:
                hops.merge(r.sketches["hops"])
        if hops.count == 0:
            hops.add(0)
        sketches = {"hops": hops, "latency_us": lat}

        stretch: Optional[QuantileSketch] = None
        if any("stretch" in r.sketches for r in reports):
            stretch = QuantileSketch(SKETCH_ACCURACY)
            for r in reports:
                if "stretch" in r.sketches:
                    stretch.merge(r.sketches["stretch"])
            sketches["stretch"] = stretch

        slo_within: Optional[int] = None
        slo_fraction: Optional[float] = None
        if any(r.slo_fraction is not None for r in reports):
            slo_within = sum(r.slo_within or 0 for r in reports)
            slo_fraction = slo_within / queries if queries else 1.0

        combined = [dict(x) for r in reports for x in r.exemplars]
        combined.sort(key=_exemplar_order)
        if exemplar_limit is None:
            exemplar_limit = max(
                (len(r.exemplars) for r in reports), default=0)
        exemplars = combined[:exemplar_limit]

        serve_s = max(r.serve_s for r in reports)
        compile_s = max(r.compile_s for r in reports)
        return cls(
            workload=first.workload,
            queries=queries,
            seed=first.seed,
            mode=first.mode,
            cache_size=first.cache_size,
            compile_s=compile_s,
            serve_s=serve_s,
            throughput_qps=queries / serve_s if serve_s > 0 else 0.0,
            hops_p50=float(round(hops.quantile(0.5))),
            hops_p90=float(round(hops.quantile(0.9))),
            hops_p99=float(round(hops.quantile(0.99))),
            hops_max=float(hops.max_value or 0.0),
            latency_us_p50=lat.quantile(0.5),
            latency_us_p90=lat.quantile(0.9),
            latency_us_p99=lat.quantile(0.99),
            cache_hit_rate=(round(cache_hits / lookups, 4)
                            if lookups else 0.0),
            failures=failures,
            slo_bound=first.slo_bound,
            slo_fraction=slo_fraction,
            slo_target=first.slo_target if slo_fraction is not None
            else None,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            slo_within=slo_within,
            shards=len(reports),
            packed=next((dict(r.packed) for r in reports if r.packed), {}),
            sketches=sketches,
            metrics={},
            traces=[t for r in reports for t in r.traces],
            exemplars=exemplars,
        )


def _exemplar_order(x: Dict[str, Any]) -> Tuple[float, str]:
    """Deterministic worst-first exemplar ordering (value, then payload).

    The JSON tie-break makes the merged reservoir independent of shard
    ordering even when two exemplars share a stretch value exactly.
    """
    value = float(x.get("value", 0.0))
    rest = {k: v for k, v in x.items() if k != "value"}
    return (-value, json.dumps(rest, sort_keys=True, default=repr))


def slo_verdict(report: ServeReport) -> Optional[BoundVerdict]:
    """The stretch-SLO as a standard bound verdict (None without SLO data)."""
    if report.slo_fraction is None:
        return None
    return BoundVerdict(
        name=f"serve/{report.workload}/stretch-slo",
        column="slo_fraction",
        formula=(f"frac(stretch <= {report.slo_bound:.3g}) "
                 f">= {report.slo_target}"),
        measured=round(report.slo_fraction, 4),
        limit=report.slo_target,
        passed=bool(report.slo_ok),
    )


def run_serving(
    scheme: Scheme,
    graph: nx.Graph,
    *,
    workload: str = "uniform",
    queries: int = 1000,
    seed: int = 0,
    mode: str = "first",
    cache_size: int = 4096,
    zipf_alpha: float = 1.1,
    slo_bound: Optional[float] = None,
    slo_target: float = 0.99,
    engine: Optional[ServeEngine] = None,
    metrics: Optional[ServeMetrics] = None,
    tracer: Optional["Tracer"] = None,
) -> Tuple[ServeReport, List[ServeResult]]:
    """Serve ``queries`` seeded queries of ``workload`` against ``scheme``.

    ``slo_bound`` defaults to the paper's ``4k-3`` for graph schemes (the
    SLO is skipped for tree schemes, whose tree routing is exact).  Pass a
    prebuilt ``engine`` to serve with a warm cache; by default the run
    compiles fresh and starts cold.  Pass a
    :class:`~repro.metrics.ServeMetrics` bundle to emit into the live
    registry (counters, QPS meter, hop/latency/stretch histograms with
    worst-stretch exemplars, SLO budget); the report then carries the
    registry snapshot in its ``metrics`` section.  Pass a
    :class:`~repro.tracing.Tracer` to sample per-query traces (S19): the
    head tier fires during serving, the tail tier is fed post-hoc from
    the measured stretches, and the finished traces — with exact
    per-level stretch attribution — land in ``report.traces``.
    """
    with _tele.span("serve/run", workload=workload, queries=queries):
        started = time.perf_counter()
        if engine is None:
            compiled = compile_scheme(scheme, graph)
            engine = ServeEngine(compiled, mode=mode, cache_size=cache_size,
                                 metrics=metrics, tracer=tracer)
        else:
            compiled = engine.compiled
            mode = engine.mode
        compile_s = time.perf_counter() - started

        with _tele.span("serve/workload", workload=workload):
            pairs = make_workload(
                workload, graph, compiled.nodes, queries, seed,
                zipf_alpha=zipf_alpha,
                route_length=_route_length_probe(compiled, graph, mode),
            )
        return serve_pairs(
            engine, graph, pairs,
            workload=workload, seed=seed, compile_s=compile_s,
            slo_bound=slo_bound, slo_target=slo_target,
            metrics=metrics, tracer=tracer,
        )


def serve_pairs(
    engine: ServeEngine,
    graph: nx.Graph,
    pairs: Sequence[Tuple[NodeId, NodeId]],
    *,
    workload: str = "pairs",
    seed: int = 0,
    compile_s: float = 0.0,
    slo: bool = True,
    slo_bound: Optional[float] = None,
    slo_target: float = 0.99,
    metrics: Optional[ServeMetrics] = None,
    tracer: Optional["Tracer"] = None,
) -> Tuple[ServeReport, List[ServeResult]]:
    """Serve an explicit pair stream through ``engine`` and report.

    The measurement core of :func:`run_serving`, split out so shard
    workers (:mod:`repro.shard.worker`) run the *identical* code path on
    their partition of the stream — same timing structure, same sketch
    accuracy, same SLO algebra — which is what makes the merged N-shard
    report equal to the 1-process one.  ``slo=False`` skips stretch
    scoring entirely (the scaling bench measures raw throughput);
    otherwise ``slo_bound`` defaults to the paper's ``4k-3`` for graph
    schemes exactly like :func:`run_serving`.
    """
    compiled = engine.compiled
    mode = engine.mode
    cache_size = engine.cache.maxsize
    if metrics is not None and engine.metrics is None:
        engine.metrics = metrics
    elif metrics is None:
        metrics = engine.metrics
    if tracer is not None and engine.tracer is None:
        engine.tracer = tracer
    elif tracer is None:
        tracer = engine.tracer
    # Results[i] gets trace ordinal trace_base + i (a pre-warmed
    # engine may already have consumed ordinals).
    trace_base = tracer.seq if tracer is not None else 0

    perf_counter = time.perf_counter
    route_recorded = engine.route_recorded
    lat_sketch = QuantileSketch(SKETCH_ACCURACY)
    lat_add = lat_sketch.add
    observe = metrics.observe_query if metrics is not None else None
    results: List[ServeResult] = []
    with _tele.span("serve/queries", count=len(pairs)):
        serve_started = perf_counter()
        for u, v in pairs:
            q0 = perf_counter()
            results.append(route_recorded(u, v))
            q1 = perf_counter()
            lat_add((q1 - q0) * 1e6)
            if observe is not None:
                observe((q1 - q0) * 1e6, q1 - serve_started)
        serve_s = perf_counter() - serve_started
    _tele.emit("serve.queries", len(results))
    _tele.emit("serve.failures", engine.failures)

    if (slo and slo_bound is None
            and isinstance(compiled, CompiledGraphScheme)):
        slo_bound = 4.0 * compiled.k - 3.0
    slo_fraction = None
    slo_within: Optional[int] = None
    stretches: Optional[List[Optional[float]]] = None
    stretch_sketch: Optional[QuantileSketch] = None
    if slo and slo_bound is not None:
        with _tele.span("serve/slo", bound=slo_bound):
            stretches = _per_query_stretch(graph, results)
        slo_within = sum(1 for s in stretches
                         if s is not None and s <= slo_bound + 1e-9)
        slo_fraction = slo_within / len(results) if results else 1.0
        stretch_sketch = QuantileSketch(SKETCH_ACCURACY)
        for s in stretches:
            if s is not None:
                stretch_sketch.add(s)
        if metrics is not None:
            _feed_stretch_metrics(metrics, results, stretches,
                                  slo_bound, serve_s,
                                  tracer=tracer, base=trace_base)

    traces: List["QueryTrace"] = []
    if tracer is not None:
        with _tele.span("serve/traces", head=len(tracer.head)):
            traces = tracer.finalize(engine, results, stretches,
                                     graph=graph, base=trace_base)
        _tele.emit("serve.traces", len(traces))

    hops_sketch = QuantileSketch(SKETCH_ACCURACY)
    for r in results:
        if r.ok:
            hops_sketch.add(r.hops)
    if hops_sketch.count == 0:
        hops_sketch.add(0)
    sketches = {"hops": hops_sketch, "latency_us": lat_sketch}
    if stretch_sketch is not None:
        sketches["stretch"] = stretch_sketch
    stats = engine.stats()
    report = ServeReport(
        workload=workload,
        queries=len(results),
        seed=seed,
        mode=mode,
        cache_size=cache_size,
        compile_s=compile_s,
        serve_s=serve_s,
        throughput_qps=len(results) / serve_s if serve_s > 0 else 0.0,
        # Hop percentiles stay exact integers (alpha * hops < 0.5).
        hops_p50=float(round(hops_sketch.quantile(0.5))),
        hops_p90=float(round(hops_sketch.quantile(0.9))),
        hops_p99=float(round(hops_sketch.quantile(0.99))),
        hops_max=float(hops_sketch.max_value or 0.0),
        latency_us_p50=lat_sketch.quantile(0.5),
        latency_us_p90=lat_sketch.quantile(0.9),
        latency_us_p99=lat_sketch.quantile(0.99),
        cache_hit_rate=stats["cache_hit_rate"],
        failures=engine.failures,
        slo_bound=slo_bound if slo else None,
        slo_fraction=slo_fraction,
        slo_target=slo_target if slo_fraction is not None else None,
        cache_hits=stats["cache_hits"],
        cache_misses=stats["cache_misses"],
        slo_within=slo_within,
        packed=_jsonable_summary(compiled),
        sketches=sketches,
        metrics=(metrics.snapshot(now=serve_s)
                 if metrics is not None else {}),
        traces=traces,
        exemplars=(metrics.stretch.exemplars()
                   if metrics is not None else []),
    )
    if slo_fraction is not None:
        _tele.gauge("serve.slo_fraction", slo_fraction)
    return report, results


def run_serving_recorded(
    scheme: Scheme,
    graph: nx.Graph,
    **kwargs: Any,
) -> Tuple[ServeReport, RunRecord]:
    """``run_serving`` under a collector, returning the RunRecord."""
    from ..telemetry import collect

    started = time.perf_counter()
    with collect() as tele:
        report, _ = run_serving(scheme, graph, **kwargs)
    verdict = slo_verdict(report)
    record = make_run_record(
        "serve",
        workload={
            "workload": report.workload,
            "queries": report.queries,
            "seed": report.seed,
            "mode": report.mode,
            "cache_size": report.cache_size,
        },
        columns=[report.to_row()],
        verdicts=[verdict] if verdict is not None else [],
        collector=tele,
        metrics=report.metrics,
        traces=[t.to_dict() for t in report.traces],
        wall_s=time.perf_counter() - started,
    )
    return report, record


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def _route_length_probe(compiled, graph: nx.Graph, mode: str):
    """A side engine for adversarial mining (None on routing failure).

    Uses its own engine so mining never warms the measured cache.
    """
    probe = ServeEngine(compiled, mode=mode, cache_size=0)

    def route_length(u: NodeId, v: NodeId) -> Optional[float]:
        result = probe.route_recorded(u, v)
        return result.length if result.ok else None

    return route_length


def _per_query_stretch(
    graph: nx.Graph,
    results: Sequence[ServeResult],
) -> List[Optional[float]]:
    """Stretch per query (None for failures, which count as violations),
    one Dijkstra per distinct source like ``measure_stretch``."""
    by_source: Dict[NodeId, List[int]] = {}
    for i, r in enumerate(results):
        by_source.setdefault(r.source, []).append(i)
    out: List[Optional[float]] = [None] * len(results)
    for source, indices in by_source.items():
        dist, _ = dijkstra(graph, [source])
        for i in indices:
            r = results[i]
            if not r.ok:
                continue
            exact = dist.get(r.target, 0.0)
            out[i] = r.length / exact if exact > 0 else 1.0
    return out


def _feed_stretch_metrics(
    metrics: ServeMetrics,
    results: Sequence[ServeResult],
    stretches: Sequence[Optional[float]],
    slo_bound: float,
    serve_s: float,
    *,
    tracer: Optional["Tracer"] = None,
    base: int = 0,
) -> None:
    """Replay per-query stretch into the live bundle after the fact.

    The serve loop measures latency online but stretch needs the exact
    distances, so the SLO feed happens post-hoc: each query is scored at
    the virtual time it was (approximately) served, spreading the batch
    uniformly over ``serve_s``.  With a tracer active, exemplar payloads
    carry the query's trace id (S19), so a Prometheus exemplar and
    ``repro explain`` point at the same query.
    """
    tick = serve_s / len(results) if results else 0.0
    hist = metrics.stretch
    slo = metrics.slo
    for i, (r, stretch) in enumerate(zip(results, stretches)):
        now = (i + 1) * tick
        if stretch is not None:
            hist.sketch.add(stretch)
            if hist.wants_exemplar(stretch):
                trace_id = (tracer.trace_id(base + i)
                            if tracer is not None else None)
                hist.offer_exemplar(
                    stretch, exemplar_payload(r, trace_id=trace_id))
        bad = stretch is None or stretch > slo_bound + 1e-9
        slo.record(0.0 if bad else 1.0, 1.0 if bad else 0.0, now)
    metrics.budget_gauge.value = slo.budget_remaining
