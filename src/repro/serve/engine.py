"""S16 batched query engine over packed routing tables.

``ServeEngine.route`` answers one ``source -> target`` query against a
:mod:`compiled <repro.serve.compile>` scheme; ``route_many`` answers a
batch with the **count-and-continue** failure policy a serving tier needs
(a ``RoutingFailure`` becomes a recorded :class:`ServeResult`, never an
abort).  The engine is differentially tested against the reference
simulator (``route_in_graph`` / ``route_in_tree``): on every query it must
return the byte-identical path *and* raise byte-identical
``RoutingFailure``s (same message, same partial path) -- see
``tests/test_serve_differential.py``.

Per-query work:

1. **decision** (graph schemes): scan the destination label's packed
   entries in level order and commit to a tree exactly like the source
   rule in :func:`repro.routing.router.route_in_graph` (``mode="first"``
   is the 4k-3 analysis; ``mode="best"`` the source-side refinement).
2. **forwarding**: a tight loop over the packed tree's flat arrays --
   integer compares plus one dict probe for the light edge -- with the
   weight of every hop precomputed at compile time.

Successful queries are memoized whole (path and length) in a bounded LRU
keyed by ``(source, target)``: routing is deterministic per engine, so a
hot pair (Zipf workloads) skips both the decision scan and the hop loop.
Failures are never cached -- they re-raise through the reference code
path every time, keeping the differential contract trivially intact.

The two forwarding loops are kept separate on purpose: ``route_in_tree``
checks the next hop's table membership *inside* the hop's own iteration
(before appending it to the path), while ``route_in_graph`` only notices a
table-less vertex at the start of the *next* iteration (after appending) --
collapsing them would silently change failure paths and budget accounting.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable, Iterable, List, Optional, Tuple

from ..errors import RoutingFailure

#: On-disk format version of :meth:`DecisionCache.save`.
CACHE_FORMAT = 1

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics.serve import ServeMetrics
    from ..tracing.sampler import Tracer
from .compile import (
    NO_VERTEX,
    CompiledGraphScheme,
    CompiledScheme,
    CompiledTreeScheme,
    PackedLabel,
    PackedTree,
)

NodeId = Hashable


class ServeResult:
    """Outcome of one served query (success or recorded failure).

    A ``__slots__`` class rather than a dataclass: one of these is built
    per query, and on short routes the constructor is a measurable share
    of the per-query budget.
    """

    __slots__ = ("source", "target", "path", "length", "ok", "error",
                 "cached")

    def __init__(
        self,
        source: NodeId,
        target: NodeId,
        path: List[NodeId],
        length: float,
        ok: bool,
        error: Optional[str] = None,
        cached: bool = False,
    ) -> None:
        self.source = source
        self.target = target
        self.path = path
        self.length = length
        self.ok = ok
        self.error = error
        self.cached = cached

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self.ok else f"failed: {self.error}"
        return (f"ServeResult({self.source!r}->{self.target!r} "
                f"hops={self.hops} length={self.length:.3f} {state})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServeResult):
            return NotImplemented
        return (self.source, self.target, self.path, self.length,
                self.ok, self.error) == (
            other.source, other.target, other.path, other.length,
            other.ok, other.error)


class DecisionCache:
    """A bounded LRU of complete routing decisions.

    Values are ``(path_tuple, length)`` for successfully served
    ``(source, target)`` pairs; per engine the route is deterministic, so
    a hit answers the query outright.  Backed by
    :class:`collections.OrderedDict`, whose C-level linked list
    makes both the move-to-end on hit and the evict-oldest on overflow
    O(1).  (A plain insertion-ordered dict looks equivalent but is not:
    repeated delete-front/insert-back leaves tombstones that
    ``next(iter(...))`` must skip, degrading eviction to O(n).)
    ``maxsize <= 0`` disables caching.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key, value) -> None:
        if self.maxsize <= 0:
            return
        data = self._data
        if key in data:
            data.move_to_end(key)
        elif len(data) >= self.maxsize:
            data.popitem(last=False)
        data[key] = value

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- persistence (S20 warm restarts) -------------------------------------

    def entries(self) -> List[Tuple[tuple, tuple]]:
        """Cached decisions oldest-first (the LRU order save/load keeps)."""
        return [(key, value) for key, value in self._data.items()]

    def preload(self, entries: Iterable[Tuple[tuple, tuple]]) -> None:
        """Insert decisions (oldest-first) without touching hit counters."""
        for key, (path, length) in entries:
            self.put(tuple(key), (tuple(path), length))

    def save(self, path: str) -> None:
        """Persist the cache as versioned JSON (id-codec encoded).

        Node ids round-trip through the serialization codec
        (:func:`~repro.routing.serialization.encode_id`), so int / str /
        tuple ids all survive; entries are written oldest-first so
        ``load`` rebuilds the identical LRU eviction order.  Hit/miss
        counters are run-scoped and deliberately not persisted.
        """
        from ..routing.serialization import encode_id

        blob = {
            "format": CACHE_FORMAT,
            "maxsize": self.maxsize,
            "entries": [
                [encode_id(key[0]), encode_id(key[1]),
                 [encode_id(v) for v in value[0]], value[1]]
                for key, value in self._data.items()
            ],
        }
        with open(path, "w") as fp:
            json.dump(blob, fp)

    @classmethod
    def load(cls, path: str,
             maxsize: Optional[int] = None) -> "DecisionCache":
        """Rebuild a saved cache (``maxsize`` overrides the saved bound).

        A restarted server that serves through the loaded cache starts at
        the original run's warm hit rate instead of paying the cold-start
        window again (tested in ``tests/test_serve_harness.py``).
        """
        from ..errors import InputError
        from ..routing.serialization import decode_id

        with open(path) as fp:
            blob = json.load(fp)
        if blob.get("format") != CACHE_FORMAT:
            raise InputError(
                f"decision-cache format {blob.get('format')!r} != "
                f"{CACHE_FORMAT} (re-save with this version)")
        cache = cls(maxsize if maxsize is not None else blob["maxsize"])
        cache.preload(
            ((decode_id(src), decode_id(tgt)),
             (tuple(decode_id(v) for v in path), length))
            for src, tgt, path, length in blob["entries"]
        )
        return cache


class ServeEngine:
    """Serve ``route(source, target)`` queries from a compiled scheme.

    ``metrics`` optionally attaches a live
    :class:`~repro.metrics.serve.ServeMetrics` bundle; the engine then
    feeds query/failure/cache counters and per-hop counts.  The hook is
    zero-overhead when absent -- one ``is not None`` check per batch
    (``route_many``) or per recorded query.

    ``tracer`` optionally attaches a :class:`~repro.tracing.Tracer`
    (S19).  Same discipline: with no tracer the query path allocates
    nothing for tracing; with one attached, the batched loop pays one
    integer compare per query against the sampler's precomputed next
    pick and only *records* picked ordinals -- the replay into
    :class:`~repro.tracing.QueryTrace` objects happens at
    ``Tracer.finalize``, off the serving loop (single ``route_recorded``
    queries replay immediately; their cost is per-query anyway).  Trace
    construction never happens unguarded inside the serving loops (lint
    rule REP007).
    """

    def __init__(
        self,
        compiled: CompiledScheme,
        *,
        mode: str = "first",
        cache_size: int = 4096,
        cache: Optional[DecisionCache] = None,
        max_hops: Optional[int] = None,
        metrics: Optional["ServeMetrics"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if mode not in ("first", "best"):
            raise ValueError(f"unknown mode {mode!r}")
        self.compiled = compiled
        self.mode = mode
        #: ``cache`` (e.g. a :meth:`DecisionCache.load`-ed warm cache)
        #: takes precedence over ``cache_size``.
        self.cache = cache if cache is not None else DecisionCache(cache_size)
        self.max_hops = max_hops
        self.metrics = metrics
        self.tracer = tracer
        self.failures = 0
        self.queries = 0
        self._is_tree = isinstance(compiled, CompiledTreeScheme)

    # -- single query --------------------------------------------------------

    def route(self, source: NodeId, target: NodeId) -> ServeResult:
        """Answer one query; raises :class:`RoutingFailure` like the
        reference router (use :meth:`route_many` for count-and-continue)."""
        self.queries += 1
        if self._is_tree:
            return self._route_tree(source, target)
        return self._route_graph(source, target)

    def route_recorded(self, source: NodeId, target: NodeId) -> ServeResult:
        """Answer one query, converting failures into a recorded result."""
        try:
            result = self.route(source, target)
        except RoutingFailure as exc:
            self.failures += 1
            result = ServeResult(
                source=source, target=target,
                path=list(exc.path) if exc.path else [source],
                length=0.0, ok=False, error=str(exc),
            )
        m = self.metrics
        if m is not None:
            m.record_result(result.ok, len(result.path) - 1, result.cached)
        t = self.tracer
        if t is not None and t.sample_head():
            t.capture_pair(self, source, target)
        return result

    # -- batch ---------------------------------------------------------------

    def route_many(
        self, queries: Iterable[Tuple[NodeId, NodeId]]
    ) -> List[ServeResult]:
        """Answer a batch under the count-and-continue failure policy.

        Semantically identical to ``[route_recorded(u, v) for u, v in
        queries]`` (the differential suite certifies this), but the graph
        path is a specialized loop with the per-query dispatch, cache
        bookkeeping, and exception plumbing hoisted out -- this is the
        serving tier's hot entry point.
        """
        if self._is_tree:
            return [self.route_recorded(u, v) for u, v in queries]
        return self._route_many_graph(queries)

    def _route_many_graph(
        self, queries: Iterable[Tuple[NodeId, NodeId]]
    ) -> List[ServeResult]:
        compiled: CompiledGraphScheme = self.compiled
        cache = self.cache
        cache_on = cache.maxsize > 0
        data = cache._data
        move_to_end = data.move_to_end
        popitem = data.popitem
        maxsize = cache.maxsize
        decide = self._decide
        forward = self._forward_graph
        decisions = compiled.decisions
        first = self.mode == "first"
        budget = self.max_hops or compiled.default_budget
        # Tracing hook (S19, zero-overhead when absent): the head pick
        # schedule folds into the `served` counter the loop keeps anyway
        # -- `next_sample_at` is the value of `served` at the sampler's
        # precomputed next pick (never reached when detached), so the
        # per-query cost is one integer compare.  Picks are only
        # *recorded*; the replay into a trace is deferred to
        # Tracer.finalize, off the serving loop (same discipline as the
        # metrics batch-end fold below).  Ordinal of query i in this
        # batch is `base + i`, counting every query, so trace ids align
        # with the batch's result order.
        tracer = self.tracer
        if tracer is not None:
            base = tracer.seq
            defer = tracer.defer
            next_sample_at = tracer._next_pick - base + 1
            if next_sample_at <= 0:  # rate 0: pick ordinal is -1 (never)
                next_sample_at = -1
        else:
            base = 0
            defer = None
            next_sample_at = -1
        results: List[ServeResult] = []
        append = results.append
        served = 0
        failed = 0
        hits = 0
        misses = 0
        for key in queries:
            source, target = key
            served += 1
            if source == target:
                append(ServeResult(source, target, [source], 0.0, True))
                if served == next_sample_at:
                    next_sample_at = defer(base + served - 1, source,
                                           target) - base + 1
                continue
            if cache_on:
                entry = data.get(key)
                if entry is not None:
                    move_to_end(key)
                    hits += 1
                    append(ServeResult(source, target, list(entry[0]),
                                       entry[1], True, None, True))
                    if served == next_sample_at:
                        next_sample_at = defer(base + served - 1, source,
                                               target) - base + 1
                    continue
                misses += 1
            try:
                # Fast path for the default source rule; any miss (or
                # "best" mode) drops to _decide, which re-runs the lookup
                # and raises the reference's exact error.
                decision = None
                if first:
                    cands = decisions.get(target)
                    if cands is not None:
                        for cand in cands:
                            if source in cand[0]:
                                decision = cand[1]
                                break
                if decision is None:
                    decision = decide(compiled, source, target)
                path, length = forward(compiled, decision[0], decision[1],
                                       source, target, budget=budget)
            except RoutingFailure as exc:
                failed += 1
                append(ServeResult(
                    source, target,
                    list(exc.path) if exc.path else [source],
                    0.0, False, str(exc),
                ))
                if served == next_sample_at:
                    next_sample_at = defer(base + served - 1, source,
                                           target) - base + 1
                continue
            if cache_on:
                if len(data) >= maxsize:
                    popitem(last=False)
                data[key] = (tuple(path), length)
            append(ServeResult(source, target, path, length, True))
            if served == next_sample_at:
                next_sample_at = defer(base + served - 1, source,
                                       target) - base + 1
        if tracer is not None:
            tracer.seq = base + served
        self.queries += served
        self.failures += failed
        cache.hits += hits
        cache.misses += misses
        # Live-metrics hook (zero-overhead when absent): counters fold at
        # batch end from the already-accumulated locals, and hop counting
        # over the finished batch is deferred to scrape time -- per-query
        # Python ops inside the loop above, or even an inline C-level
        # Counter sweep here, would tax the <= 5% serve_metrics_overhead
        # bench gate.
        m = self.metrics
        if m is not None:
            m.record_batch(served, failed, hits, misses)
            m.defer_path_lengths(results, failed)
        return results

    # -- graph scheme --------------------------------------------------------

    def _route_graph(self, source: NodeId, target: NodeId) -> ServeResult:
        compiled: CompiledGraphScheme = self.compiled
        if source == target:
            return ServeResult(source=source, target=target, path=[source],
                               length=0.0, ok=True)

        cache_on = self.cache.maxsize > 0
        if cache_on:
            entry = self.cache.get((source, target))
            if entry is not None:
                return ServeResult(source=source, target=target,
                                   path=list(entry[0]), length=entry[1],
                                   ok=True, cached=True)

        tree, label = self._decide(compiled, source, target)
        path, length = self._forward_graph(
            compiled, tree, label, source, target,
            budget=self.max_hops or compiled.default_budget,
        )
        if cache_on:
            self.cache.put((source, target), (tuple(path), length))
        return ServeResult(source=source, target=target, path=path,
                           length=length, ok=True)

    def _decide(
        self,
        compiled: CompiledGraphScheme,
        source: NodeId,
        target: NodeId,
    ) -> Tuple[PackedTree, PackedLabel]:
        """The source rule: pick the committed tree for this query.

        Mirrors ``route_in_graph``: scan usable label entries in level
        order, keep those whose tree contains the source, score by the
        advertised source-root-target upper bound; ``"first"`` commits to
        the first candidate, ``"best"`` minimizes ``(bound, level)``.
        Runs over the compiler's flat ``decisions`` table.
        """
        cands = compiled.decisions.get(target)
        if cands is None:
            raise KeyError(target)  # parity: scheme.labels[target]
        if source not in compiled.table_ids:
            raise KeyError(source)  # parity: scheme.tables[source]
        if self.mode == "first":
            for cand in cands:
                if source in cand[0]:
                    return cand[1]
        else:
            best: Optional[Tuple[float, int, tuple]] = None
            for local, pair, root_distance, level, dist_to_root in cands:
                li = local.get(source)
                if li is None:
                    continue
                bound = root_distance[li] + dist_to_root
                if best is None or (bound, level) < (best[0], best[1]):
                    best = (bound, level, pair)
            if best is not None:
                return best[2]
        raise RoutingFailure(
            f"no common cluster tree between {source!r} and {target!r} "
            "(top-level cluster should always be shared)"
        )

    def _forward_graph(
        self,
        compiled: CompiledGraphScheme,
        tree: PackedTree,
        label: PackedLabel,
        source: NodeId,
        target: NodeId,
        *,
        budget: int,
    ) -> Tuple[List[NodeId], float]:
        """The ``route_in_graph`` hop loop over packed arrays."""
        (enter, exit_, parent, parent_id, parent_w,
         heavy, heavy_id, heavy_w, local, tree_id) = tree.hot
        light = label.light
        dest_enter = label.enter

        path = [source]
        length = 0.0
        at_id = source
        li = local.get(source, NO_VERTEX)
        for _ in range(budget):
            if li == NO_VERTEX:
                if at_id not in compiled.table_ids:
                    raise KeyError(at_id)  # parity: scheme.tables[at]
                raise RoutingFailure(
                    f"vertex {at_id!r} has no table for tree "
                    f"{tree_id!r}", path
                )
            e = enter[li]
            if e == dest_enter:
                if at_id != target:
                    raise RoutingFailure(
                        f"tree routing terminated at {at_id!r}, "
                        f"not {target!r}", path
                    )
                return path, length
            if e <= dest_enter <= exit_[li]:
                hop = light.get(li)
                if hop is None:
                    nid = heavy_id[li]
                    if nid is None:
                        raise RoutingFailure(
                            f"vertex {at_id!r} is a leaf yet the target "
                            f"(enter={dest_enter}) is strictly inside its "
                            "interval"
                        )
                    nli, w = heavy[li], heavy_w[li]
                else:
                    nli, nid, w = hop
            else:
                nid = parent_id[li]
                if nid is None:
                    raise RoutingFailure(
                        f"vertex {at_id!r} is the root yet the target "
                        f"(enter={dest_enter}) is outside its interval"
                    )
                nli, w = parent[li], parent_w[li]
            if w is None:
                raise RoutingFailure(
                    f"({at_id!r}, {nid!r}) is not an edge", path
                )
            length += w
            li, at_id = nli, nid
            path.append(at_id)
        raise RoutingFailure(f"exceeded hop budget {budget}", path)

    # -- tree scheme ---------------------------------------------------------

    def _route_tree(self, source: NodeId, target: NodeId) -> ServeResult:
        compiled: CompiledTreeScheme = self.compiled
        label = compiled.labels[target]  # parity: scheme.labels[target]
        path, length = self._forward_tree(
            compiled.tree, label, source,
            budget=self.max_hops or compiled.default_budget,
        )
        return ServeResult(source=source, target=target, path=path,
                           length=length, ok=True)

    def _forward_tree(
        self,
        tree: PackedTree,
        label: PackedLabel,
        source: NodeId,
        *,
        budget: int,
    ) -> Tuple[List[NodeId], float]:
        """The ``route_in_tree`` hop loop over packed arrays.

        Unlike the graph loop, the next hop's table membership is checked
        before the hop is appended (same iteration, same budget charge),
        and arrival is wherever the forwarding rule stops -- the reference
        never compares against ``target`` here.  Weighted serving of a hop
        that is not a graph edge charges 1.0 (the reference would surface
        whatever its user-supplied ``weight_of`` raises; valid schemes
        never take that path).
        """
        (enter, exit_, parent, parent_id, parent_w,
         heavy, heavy_id, heavy_w, local, _tree_id) = tree.hot
        light = label.light
        dest_enter = label.enter

        li = local.get(source)
        if li is None:
            raise KeyError(source)  # parity: scheme.tables[source]
        path = [source]
        length = 0.0
        at_id = source
        for _ in range(budget):
            e = enter[li]
            if e == dest_enter:
                return path, length
            if e <= dest_enter <= exit_[li]:
                hop = light.get(li)
                if hop is None:
                    nid = heavy_id[li]
                    if nid is None:
                        raise RoutingFailure(
                            f"vertex {at_id!r} is a leaf yet the target "
                            f"(enter={dest_enter}) is strictly inside its "
                            "interval"
                        )
                    nli, w = heavy[li], heavy_w[li]
                else:
                    nli, nid, w = hop
            else:
                nid = parent_id[li]
                if nid is None:
                    raise RoutingFailure(
                        f"vertex {at_id!r} is the root yet the target "
                        f"(enter={dest_enter}) is outside its interval"
                    )
                nli, w = parent[li], parent_w[li]
            if nli == NO_VERTEX:
                raise RoutingFailure(
                    f"forwarded to {nid!r}, which has no table", path
                )
            length += w if w is not None else 1.0
            li, at_id = nli, nid
            path.append(at_id)
        raise RoutingFailure(f"exceeded hop budget {budget}", path)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "queries": self.queries,
            "failures": self.failures,
            "cache_size": len(self.cache),
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": round(self.cache.hit_rate, 4),
        }
