"""S19 stretch attribution: split ``actual - optimal`` exactly.

For a traced query answered at route cost ``actual`` with shortest-path
cost ``optimal``, one Dijkstra from the *target* prices every hop of the
route: hop ``u -> v`` of weight ``w`` makes ``d(u,t) - d(v,t)`` of
shortest-path progress, so its **excess** is ``w - (d(u,t) - d(v,t))``
(0.0 on a shortest path; per-hop excesses telescope to
``actual - optimal``).

Two exact decompositions are then published on the trace:

* ``attribution`` — per hierarchy level.  TZ-style forwarding commits a
  query to exactly one cluster tree, so a single query charges its whole
  excess to the committed level; aggregated over traced queries (as
  ``repro explain`` does) this yields the per-level table of the
  Elkin–Neiman analysis.  The bucket is written in closed form as
  ``actual - optimal`` — not as the float sum of hop excesses — so
  ``sum(attribution.values()) == actual - optimal`` holds *exactly*
  (acceptance criterion, asserted in tests).
* ``phases`` — ascent (parent hops, toward the committed landmark) vs
  descent (heavy/light hops).  Ascent is the float sum of parent-hop
  excesses; descent is the closed-form remainder, so the phase sum is
  exact too.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

import networkx as nx

from ..graphs.paths import dijkstra
from .model import QueryTrace

NodeId = Hashable


def attribute_traces(graph: nx.Graph, traces: Iterable[QueryTrace]) -> None:
    """Attribute every successful trace in place, caching one Dijkstra
    per distinct target."""
    cache: Dict[NodeId, Dict[NodeId, float]] = {}
    for trace in traces:
        attribute(graph, trace, cache)


def attribute(
    graph: nx.Graph,
    trace: QueryTrace,
    dist_cache: Optional[Dict[NodeId, Dict[NodeId, float]]] = None,
) -> None:
    """Fill ``optimal`` / ``stretch`` / per-hop ``excess`` /
    ``attribution`` / ``phases`` on one trace.

    Failed traces get per-hop excesses for whatever prefix was walked but
    no attribution (there is no defined stretch to split).  A target
    unreachable from the source (disconnected graph) is left
    unattributed as well.
    """
    dist = dist_cache.get(trace.target) if dist_cache is not None else None
    if dist is None:
        dist, _parents = dijkstra(graph, [trace.target])
        if dist_cache is not None:
            dist_cache[trace.target] = dist
    for hop in trace.hops:
        du = dist.get(hop.source)
        dv = dist.get(hop.dest)
        if du is None or dv is None:
            hop.excess = None
        else:
            hop.excess = hop.weight - (du - dv)
    if not trace.ok:
        return
    optimal = 0.0 if trace.source == trace.target else dist.get(trace.source)
    if optimal is None:
        return
    trace.optimal = optimal
    trace.stretch = trace.length / optimal if optimal > 0 else 1.0
    excess = trace.length - optimal
    # Closed-form buckets (see module docstring): exact by construction.
    trace.attribution = {str(trace.level): excess}
    ascent = sum(h.excess for h in trace.hops
                 if h.kind == "parent" and h.excess is not None)
    trace.phases = {"ascent": ascent, "descent": excess - ascent}


def attribution_residual(trace: QueryTrace) -> Optional[float]:
    """``|sum(attribution) - (actual - optimal)|`` — 0.0 when exact.

    ``None`` for traces without an attribution (failures, unreachable
    targets, un-attributed runs).
    """
    if not trace.attribution or trace.optimal is None:
        return None
    total = sum(trace.attribution.values())
    return abs(total - (trace.length - trace.optimal))
