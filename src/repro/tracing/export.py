"""S19 trace export: JSONL persistence for ``repro explain``.

One JSON object per line, in trace-id order — the shape
``repro serve --trace-out`` writes and ``repro explain`` reads.  The
Chrome/Perfetto rendering of the same traces lives with the other
trace_event plumbing in :mod:`repro.telemetry.chrometrace`
(``write_chrome_trace(..., queries=...)``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from .model import QueryTrace


def write_traces_jsonl(
    path: Union[str, Path],
    traces: Iterable[Union[QueryTrace, Dict[str, Any]]],
) -> Path:
    """Write traces (objects or already-dict form) as JSONL."""
    out = Path(path)
    with out.open("w") as fp:
        for trace in traces:
            d = trace.to_dict() if isinstance(trace, QueryTrace) else trace
            fp.write(json.dumps(d, sort_keys=True) + "\n")
    return out


def read_traces_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a trace JSONL file back into dicts (blank lines skipped)."""
    traces: List[Dict[str, Any]] = []
    with Path(path).open() as fp:
        for line in fp:
            line = line.strip()
            if line:
                traces.append(json.loads(line))
    return traces
