"""S19 trace recorder: replay one served query into a :class:`QueryTrace`.

Routing is deterministic per engine, so a sampled query is *replayed*
here — after the serving loop has already answered it — rather than
instrumented inline.  The replay mirrors ``ServeEngine._decide`` /
``_forward_graph`` / ``_forward_tree`` step for step (same candidate
order, same failure messages, same budget accounting; the differential
suite certifies the trace agrees with the served result on every query),
but additionally records the committed candidate's
:class:`~repro.serve.compile.DecisionProvenance` and one
:class:`~repro.tracing.model.HopSpan` per forwarded hop.

Keeping the recorder out of :mod:`repro.serve.engine` is what lets the
hot loops stay allocation-free when tracing is off: the engine's only
tracing code is a sampler guard around :meth:`Tracer.capture_pair`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Optional, Tuple

from ..errors import RoutingFailure
from ..serve.compile import (
    NO_VERTEX,
    CompiledGraphScheme,
    CompiledTreeScheme,
    PackedLabel,
    PackedTree,
)
from .model import HopSpan, QueryTrace

if TYPE_CHECKING:  # pragma: no cover
    from ..serve.engine import ServeEngine

NodeId = Hashable


def replay_query(
    engine: "ServeEngine",
    source: NodeId,
    target: NodeId,
    *,
    trace_id: str = "",
    via: str = "head",
) -> QueryTrace:
    """Replay ``source -> target`` on ``engine`` into a trace.

    ``RoutingFailure`` becomes a failed trace carrying the reference
    router's exact message; ``KeyError`` (unknown source/target) propagates
    exactly like ``ServeEngine.route`` so the tracer can never observe a
    query the engine itself could not.
    """
    compiled = engine.compiled
    if isinstance(compiled, CompiledTreeScheme):
        return _replay_tree(engine, compiled, source, target, trace_id, via)
    return _replay_graph(engine, compiled, source, target, trace_id, via)


# ---------------------------------------------------------------------------
# Graph schemes
# ---------------------------------------------------------------------------

def _replay_graph(
    engine: "ServeEngine",
    compiled: CompiledGraphScheme,
    source: NodeId,
    target: NodeId,
    trace_id: str,
    via: str,
) -> QueryTrace:
    trace = QueryTrace(trace_id, source, target, via=via, mode=engine.mode)
    if source == target:
        trace.ok = True
        return trace
    trace.bunch_levels = compiled.bunch_levels.get(target, ())
    try:
        idx, tree, label = _decide_indexed(engine, compiled, source, target)
    except RoutingFailure as exc:
        trace.error = str(exc)
        return trace
    prov = compiled.provenance[target][idx]
    trace.candidate_index = idx
    trace.level = prov.level
    trace.tree_id = prov.tree_id
    trace.root = prov.root
    trace.dist_to_root = prov.dist_to_root
    budget = engine.max_hops or compiled.default_budget
    _walk_graph(trace, compiled, tree, label, source, target, budget)
    return trace


def _decide_indexed(
    engine: "ServeEngine",
    compiled: CompiledGraphScheme,
    source: NodeId,
    target: NodeId,
) -> Tuple[int, PackedTree, PackedLabel]:
    """``ServeEngine._decide`` with the committed candidate index kept."""
    cands = compiled.decisions.get(target)
    if cands is None:
        raise KeyError(target)  # parity: scheme.labels[target]
    if source not in compiled.table_ids:
        raise KeyError(source)  # parity: scheme.tables[source]
    if engine.mode == "first":
        for idx, cand in enumerate(cands):
            if source in cand[0]:
                return idx, cand[1][0], cand[1][1]
    else:
        best: Optional[Tuple[float, int, int, tuple]] = None
        for idx, (local, pair, root_distance, level, dist_to_root) \
                in enumerate(cands):
            li = local.get(source)
            if li is None:
                continue
            bound = root_distance[li] + dist_to_root
            if best is None or (bound, level) < (best[0], best[1]):
                best = (bound, level, idx, pair)
        if best is not None:
            return best[2], best[3][0], best[3][1]
    raise RoutingFailure(
        f"no common cluster tree between {source!r} and {target!r} "
        "(top-level cluster should always be shared)"
    )


def _walk_graph(
    trace: QueryTrace,
    compiled: CompiledGraphScheme,
    tree: PackedTree,
    label: PackedLabel,
    source: NodeId,
    target: NodeId,
    budget: int,
) -> None:
    """The ``_forward_graph`` hop loop, recording one span per hop.

    On failure the trace keeps the partial hop list and the accumulated
    length walked so far (the served ``ServeResult`` reports length 0.0
    for failures; the trace keeps the forensic value instead).
    """
    (enter, exit_, parent, parent_id, parent_w,
     heavy, heavy_id, heavy_w, local, tree_id) = tree.hot
    light = label.light
    dest_enter = label.enter
    hops = trace.hops
    length = 0.0
    at_id = source
    li = local.get(source, NO_VERTEX)
    for _ in range(budget):
        if li == NO_VERTEX:
            if at_id not in compiled.table_ids:
                raise KeyError(at_id)  # parity: scheme.tables[at]
            return _fail(trace, length,
                         f"vertex {at_id!r} has no table for tree "
                         f"{tree_id!r}")
        e = enter[li]
        if e == dest_enter:
            if at_id != target:
                return _fail(trace, length,
                             f"tree routing terminated at {at_id!r}, "
                             f"not {target!r}")
            trace.ok = True
            trace.length = length
            return
        if e <= dest_enter <= exit_[li]:
            hop = light.get(li)
            if hop is None:
                nid = heavy_id[li]
                if nid is None:
                    return _fail(trace, length,
                                 f"vertex {at_id!r} is a leaf yet the "
                                 f"target (enter={dest_enter}) is strictly "
                                 "inside its interval")
                nli, w, kind = heavy[li], heavy_w[li], "heavy"
            else:
                nli, nid, w = hop
                kind = "light"
        else:
            nid = parent_id[li]
            if nid is None:
                return _fail(trace, length,
                             f"vertex {at_id!r} is the root yet the target "
                             f"(enter={dest_enter}) is outside its interval")
            nli, w, kind = parent[li], parent_w[li], "parent"
        if w is None:
            return _fail(trace, length,
                         f"({at_id!r}, {nid!r}) is not an edge")
        hops.append(HopSpan(len(hops), at_id, nid, kind, w))
        length += w
        li, at_id = nli, nid
    _fail(trace, length, f"exceeded hop budget {budget}")


# ---------------------------------------------------------------------------
# Tree schemes
# ---------------------------------------------------------------------------

def _replay_tree(
    engine: "ServeEngine",
    compiled: CompiledTreeScheme,
    source: NodeId,
    target: NodeId,
    trace_id: str,
    via: str,
) -> QueryTrace:
    trace = QueryTrace(trace_id, source, target, via=via, mode=engine.mode)
    prov = compiled.provenance
    trace.level = prov.level
    trace.tree_id = prov.tree_id
    trace.root = prov.root
    trace.dist_to_root = prov.dist_to_root
    trace.candidate_index = 0
    trace.bunch_levels = (0,)
    label = compiled.labels[target]  # parity: scheme.labels[target]
    budget = engine.max_hops or compiled.default_budget
    _walk_tree(trace, compiled.tree, label, source, budget)
    return trace


def _walk_tree(
    trace: QueryTrace,
    tree: PackedTree,
    label: PackedLabel,
    source: NodeId,
    budget: int,
) -> None:
    """The ``_forward_tree`` hop loop, recording one span per hop."""
    (enter, exit_, parent, parent_id, parent_w,
     heavy, heavy_id, heavy_w, local, _tree_id) = tree.hot
    light = label.light
    dest_enter = label.enter
    li = local.get(source)
    if li is None:
        raise KeyError(source)  # parity: scheme.tables[source]
    hops = trace.hops
    length = 0.0
    at_id = source
    for _ in range(budget):
        e = enter[li]
        if e == dest_enter:
            trace.ok = True
            trace.length = length
            return
        if e <= dest_enter <= exit_[li]:
            hop = light.get(li)
            if hop is None:
                nid = heavy_id[li]
                if nid is None:
                    return _fail(trace, length,
                                 f"vertex {at_id!r} is a leaf yet the "
                                 f"target (enter={dest_enter}) is strictly "
                                 "inside its interval")
                nli, w, kind = heavy[li], heavy_w[li], "heavy"
            else:
                nli, nid, w = hop
                kind = "light"
        else:
            nid = parent_id[li]
            if nid is None:
                return _fail(trace, length,
                             f"vertex {at_id!r} is the root yet the target "
                             f"(enter={dest_enter}) is outside its interval")
            nli, w, kind = parent[li], parent_w[li], "parent"
        if nli == NO_VERTEX:
            return _fail(trace, length,
                         f"forwarded to {nid!r}, which has no table")
        w = w if w is not None else 1.0
        hops.append(HopSpan(len(hops), at_id, nid, kind, w))
        length += w
        li, at_id = nli, nid
    _fail(trace, length, f"exceeded hop budget {budget}")


def _fail(trace: QueryTrace, length: float, message: str) -> None:
    trace.ok = False
    trace.error = message
    trace.length = length
