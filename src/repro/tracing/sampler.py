"""S19 two-tier trace sampling: seeded head rate + worst-stretch tail.

**Head tier** — :meth:`Tracer.sample_head` retains each query with
probability ``rate`` via geometric gap-skipping: the seeded rng draws the
ordinal of the *next* sampled query (one uniform per sampled query, not
per query), so the per-query cost is an integer compare.  The sampled set
is a pure function of ``(seed, rate)``, so it is deterministic under a
fixed seed (property-tested).  At ``rate <= 0`` no rng is consumed at
all: the method degrades to one integer increment.  Both shapes are what
the ``trace_off_overhead`` / ``trace_overhead`` ~0 bench gates measure.

**Tail tier** — :class:`TailBuffer` is a bounded min-heap over offered
queries keyed by stretch (failed queries key as ``+inf``, so they always
out-rank successes).  It retains the true worst-stretch queries of the
stream regardless of the head rate.  Eviction tie-breaks go through an
*injected* rng that is drawn on **every** offer — accepted or not — so the
retained set is a pure function of the seed and the offer sequence, never
of heap internals (the reproducibility regression test pins it).

The hot-path contract mirrors ``ServeMetrics``: with no tracer attached
the engine pays one hoisted ``is not None`` check; with a tracer attached,
trace objects are only ever built for sampled queries, via a *replay* of
the already-answered query (:mod:`repro.tracing.recorder`) — never inline
in the serving loop (lint rule REP007 enforces this shape).
"""

from __future__ import annotations

import heapq
import math
import random
from typing import TYPE_CHECKING, Any, Hashable, List, Optional, Sequence

from .model import QueryTrace
from .recorder import replay_query

if TYPE_CHECKING:  # pragma: no cover
    from ..serve.engine import ServeEngine, ServeResult

NodeId = Hashable


class TailEntry:
    """One retained worst-stretch / failed query in the tail buffer."""

    __slots__ = ("ordinal", "source", "target", "key", "failed")

    def __init__(
        self,
        ordinal: int,
        source: NodeId,
        target: NodeId,
        key: float,
        failed: bool,
    ) -> None:
        self.ordinal = ordinal
        self.source = source
        self.target = target
        self.key = key
        self.failed = failed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = "failed" if self.failed else f"stretch={self.key:.4f}"
        return f"TailEntry(#{self.ordinal} {self.source!r}->{self.target!r} {what})"


class TailBuffer:
    """Bounded retention of the worst-stretch and failed queries.

    ``offer`` is O(log limit); ties on the stretch key are broken by a
    draw from the injected rng (one draw per offer, unconditionally) so
    two runs with the same seed and offer sequence retain the identical
    set — see the module docstring.
    """

    def __init__(
        self,
        limit: int = 16,
        *,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> None:
        self.limit = int(limit)
        self._rng = rng if rng is not None else random.Random(seed)
        # Min-heap of (key, tie, ordinal, source, target, failed); the
        # ordinal makes comparisons total even for exotic vertex ids.
        self._heap: List[tuple] = []
        self.offered = 0

    def __len__(self) -> int:
        return len(self._heap)

    def offer(
        self,
        ordinal: int,
        source: NodeId,
        target: NodeId,
        stretch: Optional[float],
        *,
        failed: bool = False,
    ) -> bool:
        """Offer one query; returns True when it is (now) retained.

        The tie-break draw happens before the capacity check so the rng
        stream depends only on the offer sequence (bugfix: an accepted/
        rejected-dependent draw made retention depend on heap state).
        """
        self.offered += 1
        tie = self._rng.random()
        if self.limit <= 0:
            return False
        if failed:
            key = float("inf")
        elif stretch is None:
            return False
        else:
            key = float(stretch)
        item = (key, tie, ordinal, source, target, failed)
        heap = self._heap
        if len(heap) < self.limit:
            heapq.heappush(heap, item)
            return True
        if (key, tie, ordinal) > heap[0][:3]:
            heapq.heapreplace(heap, item)
            return True
        return False

    def worst(self, n: Optional[int] = None) -> List[TailEntry]:
        """Retained entries, worst first (failures before any success)."""
        ranked = sorted(self._heap, reverse=True)
        if n is not None:
            ranked = ranked[:n]
        return [TailEntry(ordinal=o, source=s, target=t, key=k, failed=f)
                for k, _tie, o, s, t, f in ranked]

    def ordinals(self) -> List[int]:
        return [item[2] for item in sorted(self._heap, reverse=True)]


class Tracer:
    """Two-tier query sampler + bounded trace store for one engine.

    Attach via ``ServeEngine(..., tracer=...)`` or
    ``run_serving(..., tracer=...)``.  ``seq`` counts every query the
    engine answers (the query *ordinal*); ``trace_id(ordinal)`` is the
    stable id ``{prefix}-{ordinal:06d}`` shared with Prometheus exemplars
    and ``repro explain``.
    """

    def __init__(
        self,
        rate: float = 0.01,
        seed: int = 0,
        *,
        tail_limit: int = 16,
        head_limit: int = 256,
        prefix: str = "q",
        tail_seed: Optional[int] = None,
    ) -> None:
        self.rate = float(rate)
        self.seed = int(seed)
        self.prefix = prefix
        self.head_limit = int(head_limit)
        self._head_rng = random.Random(seed)
        # The tail tie-break rng is seeded independently of the head rng
        # so head sampling never perturbs tail retention (and vice versa).
        self.tail = TailBuffer(
            tail_limit,
            rng=random.Random(seed + 1 if tail_seed is None else tail_seed),
        )
        self.seq = 0
        self.head: List[QueryTrace] = []
        self.head_dropped = 0
        # Head picks from batched serving awaiting replay: the engine's
        # batch loop only records (ordinal, source, target) here (one
        # list append per *sampled* query); the trace itself materializes
        # in :meth:`finalize`, mirroring how ServeMetrics defers hop
        # counting to scrape time.
        self.pending: List[tuple] = []
        # Ordinal of the next head-sampled query (-1: never).  Drawing the
        # gap to the next pick instead of one Bernoulli coin per query
        # keeps the per-query hot-path cost at a single integer compare.
        self._next_pick = self._draw_next(-1) if self.rate > 0.0 else -1

    def _draw_next(self, current: int) -> int:
        """Ordinal of the first sampled query after ``current``.

        The gap is geometric with success probability ``rate``: one
        uniform per sampled query, and the resulting set is distributed
        exactly as per-query Bernoulli coins."""
        if self.rate >= 1.0:
            return current + 1
        u = 1.0 - self._head_rng.random()  # (0, 1]: log never sees 0
        gap = math.log(u) / math.log1p(-self.rate)
        # Subnormal rates overflow the gap to +inf: effectively "never".
        return current + 1 + int(gap) if math.isfinite(gap) else -1

    # -- hot-path side -------------------------------------------------------

    def sample_head(self) -> bool:
        """Count one query; True iff the head tier samples it.

        Called once per query by the engine.  ``rate <= 0`` consumes no
        randomness (pure ordinal counting for tail/exemplar trace ids);
        ``rate > 0`` consumes one draw per *sampled* query."""
        ordinal = self.seq
        self.seq = ordinal + 1
        if ordinal != self._next_pick:
            return False
        self._next_pick = self._draw_next(ordinal)
        return True

    def defer(self, ordinal: int, source: NodeId, target: NodeId) -> int:
        """Record a head pick for replay at :meth:`finalize`.

        The batched engine tracks the ordinal and next-pick locally (so
        its loop pays an integer compare per query, not a method call)
        and calls this only on picks; the return value is the ordinal of
        the next head-sampled query.  ``head_limit`` bounds the pending
        list too, so a high rate cannot grow memory past the limit.
        """
        if len(self.head) + len(self.pending) >= self.head_limit:
            self.head_dropped += 1
        else:
            self.pending.append((ordinal, source, target))
        self._next_pick = self._draw_next(ordinal)
        return self._next_pick

    def trace_id(self, ordinal: int) -> str:
        return f"{self.prefix}-{ordinal:06d}"

    def capture_pair(
        self,
        engine: "ServeEngine",
        source: NodeId,
        target: NodeId,
        *,
        via: str = "head",
        ordinal: Optional[int] = None,
    ) -> Optional[QueryTrace]:
        """Replay one sampled query into a stored :class:`QueryTrace`.

        Routing is deterministic per engine, so the replay reproduces the
        served decision and hop sequence exactly (including failures)
        without the serving loop ever building trace objects for
        unsampled queries.
        """
        if ordinal is None:
            ordinal = self.seq - 1
        if via == "head" and len(self.head) >= self.head_limit:
            self.head_dropped += 1
            return None
        trace = replay_query(engine, source, target,
                             trace_id=self.trace_id(ordinal), via=via)
        if via == "head":
            self.head.append(trace)
        return trace

    # -- post-run side -------------------------------------------------------

    def tail_trace_ids(self, limit: Optional[int] = None) -> List[str]:
        """Trace ids currently retained by the tail, worst first."""
        return [self.trace_id(e.ordinal) for e in self.tail.worst(limit)]

    def finalize(
        self,
        engine: "ServeEngine",
        results: Sequence["ServeResult"],
        stretches: Optional[Sequence[Optional[float]]] = None,
        *,
        graph: Any = None,
        base: int = 0,
    ) -> List[QueryTrace]:
        """Offer the run to the tail tier and assemble the final traces.

        ``base`` is the tracer's ``seq`` before the run started, aligning
        ``results[i]`` with ordinal ``base + i``.  Pending head picks from
        batched serving are replayed first, then tail-retained queries
        not already head-sampled; when ``graph`` is given, every trace
        gets its exact stretch attribution.
        """
        if self.pending:
            pending, self.pending = self.pending, []
            for ordinal, source, target in pending:
                self.capture_pair(engine, source, target, ordinal=ordinal)
        for i, result in enumerate(results):
            stretch = stretches[i] if stretches is not None else None
            self.tail.offer(base + i, result.source, result.target, stretch,
                            failed=not result.ok)
        traces = list(self.head)
        have = {t.trace_id for t in traces}
        for entry in self.tail.worst():
            tid = self.trace_id(entry.ordinal)
            if tid in have:
                for t in traces:
                    if t.trace_id == tid:
                        t.via = "head+tail"
                        break
                continue
            trace = self.capture_pair(engine, entry.source, entry.target,
                                      via="tail", ordinal=entry.ordinal)
            if trace is not None:
                traces.append(trace)
                have.add(tid)
        if graph is not None:
            from .attribution import attribute_traces
            attribute_traces(graph, traces)
        traces.sort(key=lambda t: t.trace_id)
        return traces
