"""S19 ``repro explain``: replay trace files into attribution tables.

Consumes the JSONL written by ``repro serve --trace-out`` (or the
``traces`` section of a serve RunRecord), selects traces by id or by
worst excess, and renders:

* an aggregate **per-level attribution table** — how much of the total
  ``actual - optimal`` cost each hierarchy level is responsible for
  across the selected queries (the Elkin–Neiman decomposition, measured);
* one **per-query drill-down** per selected trace: committed level /
  landmark / tree, bunch membership, phase split, and the hop-by-hop
  span list with per-hop excess.

The run is recorded as a RunRecord of kind ``explain`` whose
``explain/attribution-exact`` verdict asserts that on every selected
trace the per-level buckets sum exactly to ``actual - optimal``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import InputError
from ..telemetry.bounds import BoundVerdict
from ..telemetry.runrecord import RunRecord, make_run_record

_DRILLDOWN_LIMIT = 8  # per-query hop tables rendered in full


def select_traces(
    traces: Sequence[Dict[str, Any]],
    *,
    trace_id: Optional[str] = None,
    worst: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Pick the traces to explain.

    ``trace_id`` selects exactly one (error when absent); ``worst`` the N
    worst by excess, failed queries first; neither selects everything.
    """
    if trace_id is not None:
        picked = [t for t in traces if t.get("trace_id") == trace_id]
        if not picked:
            known = ", ".join(
                str(t.get("trace_id")) for t in list(traces)[:8])
            raise InputError(
                f"trace id {trace_id!r} not found "
                f"(file holds {len(traces)}: {known}{'...' if len(traces) > 8 else ''})"
            )
        return picked
    ranked = sorted(traces, key=_badness, reverse=True)
    if worst is not None:
        return ranked[:worst]
    return ranked


def _badness(trace: Dict[str, Any]) -> Tuple[int, float]:
    """Sort key: failures outrank everything, then excess."""
    if not trace.get("ok", False):
        return (1, trace.get("length") or 0.0)
    optimal = trace.get("optimal")
    if optimal is None:
        return (0, 0.0)
    return (0, float(trace.get("length", 0.0)) - float(optimal))


def _trace_excess(trace: Dict[str, Any]) -> Optional[float]:
    optimal = trace.get("optimal")
    if not trace.get("ok", False) or optimal is None:
        return None
    return float(trace.get("length", 0.0)) - float(optimal)


def _residual(trace: Dict[str, Any]) -> Optional[float]:
    """|sum(per-level attribution) - (actual - optimal)| for one trace."""
    attribution = trace.get("attribution") or {}
    excess = _trace_excess(trace)
    if not attribution or excess is None:
        return None
    return abs(sum(attribution.values()) - excess)


def per_level_table(
    traces: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Aggregate the selected traces' attributions by hierarchy level."""
    levels: Dict[str, Dict[str, Any]] = {}
    for trace in traces:
        for level, excess in (trace.get("attribution") or {}).items():
            row = levels.setdefault(level, {
                "level": level, "queries": 0, "excess": 0.0,
                "optimal": 0.0, "actual": 0.0,
            })
            row["queries"] += 1
            row["excess"] += excess
            row["optimal"] += float(trace.get("optimal") or 0.0)
            row["actual"] += float(trace.get("length") or 0.0)
    out = []
    for key in sorted(levels, key=lambda s: (len(s), s)):
        row = levels[key]
        optimal = row["optimal"]
        row["stretch"] = round(row["actual"] / optimal, 4) if optimal else 1.0
        row["excess"] = round(row["excess"], 6)
        row["optimal"] = round(optimal, 6)
        row["actual"] = round(row["actual"], 6)
        out.append(row)
    return out


def run_explain(
    traces: Sequence[Dict[str, Any]],
    *,
    trace_id: Optional[str] = None,
    worst: Optional[int] = None,
    source: str = "",
) -> Tuple[str, RunRecord]:
    """Explain selected traces; returns (report text, RunRecord)."""
    if not traces:
        raise InputError("no traces to explain (empty trace file?)")
    selected = select_traces(traces, trace_id=trace_id, worst=worst)

    columns: List[Dict[str, Any]] = []
    residuals: List[float] = []
    for trace in selected:
        excess = _trace_excess(trace)
        residual = _residual(trace)
        if residual is not None:
            residuals.append(residual)
        columns.append({
            "trace_id": trace.get("trace_id"),
            "source": trace.get("source"),
            "target": trace.get("target"),
            "via": trace.get("via"),
            "ok": trace.get("ok", False),
            "level": trace.get("level"),
            "tree_id": trace.get("tree_id"),
            "hops": len(trace.get("hops") or []),
            "actual": trace.get("length"),
            "optimal": trace.get("optimal"),
            "excess": excess,
            "stretch": trace.get("stretch"),
            "attribution_residual": residual,
        })

    max_residual = max(residuals) if residuals else 0.0
    verdict = BoundVerdict(
        name="explain/attribution-exact",
        column="attribution_residual",
        formula="sum_level attribution == actual - optimal (exactly)",
        measured=max_residual,
        limit=0.0,
        passed=max_residual <= 0.0,
    )
    record = make_run_record(
        "explain",
        workload={
            "traces": len(traces),
            "selected": len(selected),
            "trace_id": trace_id,
            "worst": worst,
            "source": source,
        },
        columns=columns,
        verdicts=[verdict],
        traces=[dict(t) for t in selected],
    )
    return _render(selected, columns, verdict), record


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------

def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _table(rows: List[Dict[str, Any]], keys: List[str]) -> List[str]:
    cells = [[_fmt(row.get(k)) for k in keys] for row in rows]
    widths = [max(len(k), *(len(c[i]) for c in cells)) if cells else len(k)
              for i, k in enumerate(keys)]
    lines = ["  ".join(k.ljust(widths[i]) for i, k in enumerate(keys))]
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in cells:
        lines.append("  ".join(c.ljust(widths[i])
                               for i, c in enumerate(row_cells)))
    return lines


def _render(
    selected: List[Dict[str, Any]],
    columns: List[Dict[str, Any]],
    verdict: BoundVerdict,
) -> str:
    lines: List[str] = []
    lines.append(f"repro explain — {len(selected)} trace(s)")
    lines.append("")
    lines.append("Per-level stretch attribution (aggregate over selection):")
    level_rows = per_level_table(selected)
    if level_rows:
        lines.extend(_table(
            level_rows, ["level", "queries", "actual", "optimal",
                         "excess", "stretch"]))
    else:
        lines.append("  (no attributed traces — failures only?)")
    lines.append("")
    lines.append("Selected queries, worst first:")
    lines.extend(_table(
        columns, ["trace_id", "source", "target", "via", "ok", "level",
                  "hops", "actual", "optimal", "excess", "stretch"]))
    for trace in selected[:_DRILLDOWN_LIMIT]:
        lines.append("")
        lines.extend(_drilldown(trace))
    if len(selected) > _DRILLDOWN_LIMIT:
        lines.append("")
        lines.append(f"... {len(selected) - _DRILLDOWN_LIMIT} more trace(s) "
                     "without drill-down (see --json)")
    lines.append("")
    status = "PASS" if verdict.passed else "FAIL"
    lines.append(f"[{status}] {verdict.name}: max residual "
                 f"{verdict.measured!r} (exactness limit {verdict.limit})")
    return "\n".join(lines)


def _drilldown(trace: Dict[str, Any]) -> List[str]:
    lines = [f"-- {trace.get('trace_id')}  "
             f"{trace.get('source')} -> {trace.get('target')}  "
             f"(via {trace.get('via')}, mode {trace.get('mode')})"]
    if trace.get("ok", False):
        lines.append(
            f"   committed: level {trace.get('level')} "
            f"tree {trace.get('tree_id')!r} root {trace.get('root')!r} "
            f"(candidate #{trace.get('candidate_index')} of bunch levels "
            f"{trace.get('bunch_levels')})")
        phases = trace.get("phases") or {}
        lines.append(
            f"   cost: actual {_fmt(trace.get('length'))} = optimal "
            f"{_fmt(trace.get('optimal'))} + ascent excess "
            f"{_fmt(phases.get('ascent'))} + descent excess "
            f"{_fmt(phases.get('descent'))}")
    else:
        lines.append(f"   FAILED: {trace.get('error')}")
        lines.append(f"   walked {_fmt(trace.get('length'))} over "
                     f"{len(trace.get('hops') or [])} hop(s) before failing")
    hops = trace.get("hops") or []
    if hops:
        lines.extend("   " + line for line in _table(
            hops, ["index", "kind", "source", "dest", "weight", "excess"]))
    else:
        lines.append("   (no hops: source == target or failed pre-hop)")
    return lines
