"""S19: sampled per-query tracing and stretch forensics for `repro.serve`.

Layout (docs/observability.md, "Per-query tracing & stretch forensics"):

* :mod:`model` — ``QueryTrace`` / ``HopSpan``: one sampled query's hop
  spans annotated with the committed decision's provenance.
* :mod:`sampler` — ``Tracer`` (seeded head sampling at a configurable
  rate) + ``TailBuffer`` (bounded worst-stretch / failed-query
  retention with injected-rng tie-breaks).
* :mod:`recorder` — off-hot-path replay of a served query into a trace
  (byte-identical decisions and failure messages to ``ServeEngine``).
* :mod:`attribution` — exact split of ``actual - optimal`` per
  hierarchy level and per ascent/descent phase.
* :mod:`export` — JSONL persistence (``repro serve --trace-out``).
* :mod:`explain` — the ``repro explain`` attribution tables +
  RunRecord kind ``explain``.
"""

from .attribution import attribute, attribute_traces, attribution_residual
from .explain import per_level_table, run_explain, select_traces
from .export import read_traces_jsonl, write_traces_jsonl
from .model import HopSpan, QueryTrace
from .recorder import replay_query
from .sampler import TailBuffer, TailEntry, Tracer

__all__ = [
    "HopSpan",
    "QueryTrace",
    "TailBuffer",
    "TailEntry",
    "Tracer",
    "attribute",
    "attribute_traces",
    "attribution_residual",
    "per_level_table",
    "read_traces_jsonl",
    "replay_query",
    "run_explain",
    "select_traces",
    "write_traces_jsonl",
]
