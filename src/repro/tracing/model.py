"""S19 trace model: per-query hop spans with decision provenance.

A :class:`QueryTrace` is the causal record of one served query: which
hierarchy level / cluster tree / landmark the source rule committed to
(from the compiler's :class:`~repro.serve.compile.DecisionProvenance`
side-table), every forwarded hop annotated with its decision kind
(``parent`` ascent, ``heavy``/``light`` descent), and — once
:mod:`repro.tracing.attribution` has run — an exact split of
``actual - optimal`` route cost.

Traces are built *off* the hot path (see :mod:`repro.tracing.recorder`);
both classes use ``__slots__`` anyway so a burst of sampled captures stays
cheap, matching the ``ServeResult`` discipline.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

NodeId = Hashable

#: Hop kinds, in the order the forwarding rule considers them.
HOP_KINDS = ("light", "heavy", "parent")


def _json_id(value: Any) -> Any:
    """A vertex id as JSON scalar (kept as-is when already jsonable)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


class HopSpan:
    """One forwarded hop inside a traced query.

    ``kind`` names the forwarding decision that produced the hop:
    ``"parent"`` (ascent toward the committed tree's root), ``"heavy"``
    (heavy-child descent) or ``"light"`` (light-edge shortcut from the
    destination label).  ``excess`` is filled by attribution: the hop's
    weight minus the shortest-path progress it makes toward the target
    (0.0 for a hop on a shortest path).
    """

    __slots__ = ("index", "source", "dest", "kind", "weight", "excess")

    def __init__(
        self,
        index: int,
        source: NodeId,
        dest: NodeId,
        kind: str,
        weight: float,
        excess: Optional[float] = None,
    ) -> None:
        self.index = index
        self.source = source
        self.dest = dest
        self.kind = kind
        self.weight = weight
        self.excess = excess

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "source": _json_id(self.source),
            "dest": _json_id(self.dest),
            "kind": self.kind,
            "weight": self.weight,
            "excess": self.excess,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "HopSpan":
        return cls(
            index=int(d.get("index", 0)),
            source=d.get("source"),
            dest=d.get("dest"),
            kind=str(d.get("kind", "?")),
            weight=float(d.get("weight", 0.0)),
            excess=d.get("excess"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HopSpan({self.source!r}->{self.dest!r} {self.kind} "
                f"w={self.weight})")


class QueryTrace:
    """The full trace of one sampled query.

    ``via`` records the sampling tier that retained it (``"head"`` for the
    seeded rate sampler, ``"tail"`` for the worst-stretch / failure
    buffer).  ``attribution`` maps hierarchy level (as a string key, for
    JSON) to the share of ``actual - optimal`` charged to it; the committed
    level's bucket is computed in closed form so the per-trace sum is
    *exactly* ``actual - optimal`` (asserted in tests and by
    ``repro explain``).  ``phases`` splits the same excess into ``ascent``
    (parent hops) and ``descent`` (heavy/light hops), again exactly.
    """

    __slots__ = (
        "trace_id", "source", "target", "via", "mode",
        "ok", "error", "level", "tree_id", "root", "candidate_index",
        "dist_to_root", "bunch_levels", "hops", "length",
        "optimal", "stretch", "attribution", "phases",
    )

    def __init__(
        self,
        trace_id: str,
        source: NodeId,
        target: NodeId,
        *,
        via: str = "head",
        mode: str = "first",
    ) -> None:
        self.trace_id = trace_id
        self.source = source
        self.target = target
        self.via = via
        self.mode = mode
        self.ok = False
        self.error: Optional[str] = None
        self.level: Optional[int] = None
        self.tree_id: Optional[Hashable] = None
        self.root: Optional[NodeId] = None
        self.candidate_index: Optional[int] = None
        self.dist_to_root: Optional[float] = None
        self.bunch_levels: Tuple[int, ...] = ()
        self.hops: List[HopSpan] = []
        self.length = 0.0
        self.optimal: Optional[float] = None
        self.stretch: Optional[float] = None
        self.attribution: Dict[str, float] = {}
        self.phases: Dict[str, float] = {}

    @property
    def excess(self) -> Optional[float]:
        """``actual - optimal`` route cost, when attribution has run."""
        if not self.ok or self.optimal is None:
            return None
        return self.length - self.optimal

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "source": _json_id(self.source),
            "target": _json_id(self.target),
            "via": self.via,
            "mode": self.mode,
            "ok": self.ok,
            "level": self.level,
            "tree_id": _json_id(self.tree_id),
            "root": _json_id(self.root),
            "candidate_index": self.candidate_index,
            "dist_to_root": self.dist_to_root,
            "bunch_levels": list(self.bunch_levels),
            "hops": [h.to_dict() for h in self.hops],
            "length": self.length,
            "optimal": self.optimal,
            "stretch": self.stretch,
            "attribution": dict(self.attribution),
            "phases": dict(self.phases),
        }
        if self.error is not None:
            out["error"] = self.error
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "QueryTrace":
        trace = cls(
            trace_id=str(d.get("trace_id", "")),
            source=d.get("source"),
            target=d.get("target"),
            via=str(d.get("via", "head")),
            mode=str(d.get("mode", "first")),
        )
        trace.ok = bool(d.get("ok", False))
        trace.error = d.get("error")
        trace.level = d.get("level")
        trace.tree_id = d.get("tree_id")
        trace.root = d.get("root")
        trace.candidate_index = d.get("candidate_index")
        trace.dist_to_root = d.get("dist_to_root")
        trace.bunch_levels = tuple(d.get("bunch_levels", ()))
        trace.hops = [HopSpan.from_dict(h) for h in d.get("hops", [])]
        trace.length = float(d.get("length", 0.0))
        trace.optimal = d.get("optimal")
        trace.stretch = d.get("stretch")
        trace.attribution = dict(d.get("attribution", {}))
        trace.phases = dict(d.get("phases", {}))
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self.ok else f"failed: {self.error}"
        return (f"QueryTrace({self.trace_id} "
                f"{self.source!r}->{self.target!r} via={self.via} "
                f"level={self.level} hops={len(self.hops)} {state})")
