"""repro -- a reproduction of "Near-Optimal Distributed Routing with Low
Memory" (Elkin & Neiman, PODC 2018).

The package builds compact routing schemes for weighted graphs on a
simulated CONGEST network, with the paper's headline guarantee: per-vertex
memory during preprocessing within a polylog factor of the final routing
tables and labels.

Quickstart
----------

Exact tree routing with O(1) tables, O(log n) labels and O(log n) memory
(Theorem 2)::

    import networkx as nx
    from repro import (
        Network, build_distributed_tree_scheme, route_in_tree,
        random_connected_graph, spanning_tree_of,
    )

    graph = random_connected_graph(500, seed=1)
    tree = spanning_tree_of(graph, style="dfs")
    net = Network(graph)
    build = build_distributed_tree_scheme(net, tree)
    result = route_in_tree(build.scheme, source, target,
                           weight_of=lambda u, v: graph[u][v]["weight"])

General graphs with stretch 4k-3+o(1), tables Õ(n^{1/k}), labels
O(k log n), memory Õ(n^{1/k}) (Theorem 3)::

    from repro import build_distributed_scheme, route_in_graph

    report = build_distributed_scheme(graph, k=3)
    route = route_in_graph(report.scheme, graph, source, target)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the measured
reproduction of the paper's Tables 1-2.
"""

from .congest import (
    BfsTree,
    Forest,
    MemoryMeter,
    Message,
    Network,
    RunMetrics,
    broadcast_all,
    build_bfs_tree,
    convergecast_up,
    flood_down,
)
from .core import BuildReport, build_distributed_scheme
from .errors import (
    CongestModelViolation,
    InputError,
    InvariantViolation,
    MemoryAccountingError,
    ReproError,
    RoutingFailure,
)
from .graphs import (
    caterpillar_tree,
    grid_graph,
    random_connected_graph,
    random_tree_network,
    ring_of_cliques,
    spanning_tree_of,
)
from .hopsets import Hopset, build_hopset, hopset_bellman_ford, measure_hopbound
from .telemetry import (
    BoundVerdict,
    RunRecord,
    TelemetryCollector,
    collect,
)
from .routing import (
    GraphLabel,
    GraphRoutingScheme,
    GraphTable,
    RouteResult,
    StretchReport,
    TreeLabel,
    TreeRoutingScheme,
    TreeTable,
    measure_stretch,
    route_in_graph,
    route_in_tree,
    sample_pairs,
    tree_forward,
)
from .treerouting import (
    DistributedTreeBuild,
    build_distributed_tree_scheme,
    partition_tree,
)
from .treerouting.multi import MultiTreeBuild, build_many_tree_schemes
from .tz import (
    build_centralized_scheme,
    build_distance_oracle,
    build_tree_scheme,
    sample_hierarchy,
)

__version__ = "1.0.0"

__all__ = [
    "BfsTree",
    "BoundVerdict",
    "BuildReport",
    "CongestModelViolation",
    "DistributedTreeBuild",
    "Forest",
    "GraphLabel",
    "GraphRoutingScheme",
    "GraphTable",
    "Hopset",
    "InputError",
    "InvariantViolation",
    "MemoryAccountingError",
    "MemoryMeter",
    "Message",
    "MultiTreeBuild",
    "Network",
    "ReproError",
    "RouteResult",
    "RoutingFailure",
    "RunMetrics",
    "RunRecord",
    "TelemetryCollector",
    "StretchReport",
    "TreeLabel",
    "TreeRoutingScheme",
    "TreeTable",
    "broadcast_all",
    "build_bfs_tree",
    "build_centralized_scheme",
    "build_distance_oracle",
    "build_distributed_scheme",
    "build_distributed_tree_scheme",
    "build_hopset",
    "build_many_tree_schemes",
    "build_tree_scheme",
    "caterpillar_tree",
    "collect",
    "convergecast_up",
    "flood_down",
    "grid_graph",
    "hopset_bellman_ford",
    "measure_hopbound",
    "measure_stretch",
    "partition_tree",
    "random_connected_graph",
    "random_tree_network",
    "ring_of_cliques",
    "route_in_graph",
    "route_in_tree",
    "sample_hierarchy",
    "sample_pairs",
    "spanning_tree_of",
    "tree_forward",
]
