"""Centralized shortest-path reference algorithms.

These are the ground-truth oracles against which the distributed algorithms
are validated, plus the *hop-bounded* Bellman-Ford that both the paper's
definitions (t-bounded distances ``d^{(t)}``, Section 2) and the distributed
explorations rely on.

Notation from the paper:

* ``d_G(u, v)``        -- weighted shortest-path distance;
* ``d^{(t)}_G(u, v)``  -- the length of the shortest path with at most ``t``
  edges ("hops"); note this is *not* a metric;
* ``h(u, v)``          -- the number of edges of the (minimum-hop) shortest
  path realizing ``d_G(u, v)`` (Appendix B uses vertices-on-path; we use
  edge count and adjust constants accordingly).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, Hashable, Iterable, Mapping, Optional, Tuple

import networkx as nx

from ..errors import InputError

NodeId = Hashable
INF = math.inf


def dijkstra(
    graph: nx.Graph,
    sources: Iterable[NodeId],
    *,
    predicate: Optional[Callable[[NodeId, float], bool]] = None,
) -> Tuple[Dict[NodeId, float], Dict[NodeId, Optional[NodeId]]]:
    """Multi-source Dijkstra with an optional expansion predicate.

    ``predicate(v, dist)`` decides whether ``v`` *continues the exploration*
    (the "limited Dijkstra exploration" used to grow clusters in Appendix B:
    vertices that fail the predicate still receive a distance but do not
    relax their neighbours).  Returns ``(dist, parent)``; unreached vertices
    are absent.
    """
    dist: Dict[NodeId, float] = {}
    parent: Dict[NodeId, Optional[NodeId]] = {}
    heap: list = []
    for s in sources:
        dist[s] = 0.0
        parent[s] = None
        heapq.heappush(heap, (0.0, repr(s), s))
    while heap:
        d, _, u = heapq.heappop(heap)
        if d > dist.get(u, INF):
            continue
        if predicate is not None and not predicate(u, d):
            continue
        for v in graph.neighbors(u):
            nd = d + float(graph[u][v].get("weight", 1.0))
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, repr(v), v))
    return dist, parent


def distances_to_set(graph: nx.Graph, targets: Iterable[NodeId]) -> Dict[NodeId, float]:
    """``d_G(v, S)`` for every vertex ``v`` (used for pivot distances)."""
    targets = list(targets)
    if not targets:
        return {v: INF for v in graph.nodes}
    dist, _ = dijkstra(graph, targets)
    return {v: dist.get(v, INF) for v in graph.nodes}


def nearest_in_set(
    graph: nx.Graph, targets: Iterable[NodeId]
) -> Tuple[Dict[NodeId, float], Dict[NodeId, Optional[NodeId]]]:
    """For every vertex: distance to the nearest target and *which* target.

    Implemented as multi-source Dijkstra that propagates the source identity
    along shortest-path trees (the classical "Voronoi" construction).
    """
    targets = list(targets)
    dist: Dict[NodeId, float] = {}
    owner: Dict[NodeId, Optional[NodeId]] = {}
    heap: list = []
    for s in targets:
        dist[s] = 0.0
        owner[s] = s
        heapq.heappush(heap, (0.0, repr(s), s, s))
    while heap:
        d, _, u, src = heapq.heappop(heap)
        if d > dist.get(u, INF) or owner.get(u) != src:
            continue
        for v in graph.neighbors(u):
            nd = d + float(graph[u][v].get("weight", 1.0))
            if nd < dist.get(v, INF):
                dist[v] = nd
                owner[v] = src
                heapq.heappush(heap, (nd, repr(v), v, src))
    full_dist = {v: dist.get(v, INF) for v in graph.nodes}
    full_owner = {v: owner.get(v) for v in graph.nodes}
    return full_dist, full_owner


def bounded_bellman_ford(
    graph: nx.Graph,
    sources: Mapping[NodeId, float],
    hops: int,
    *,
    forward_if: Optional[Callable[[NodeId, float], bool]] = None,
) -> Tuple[Dict[NodeId, float], Dict[NodeId, Optional[NodeId]], int]:
    """Hop-bounded multi-source Bellman-Ford: ``d^{(hops)}`` from ``sources``.

    ``sources`` maps each source to its initial estimate (0 for true sources;
    the distributed algorithms seed intermediate estimates).  ``forward_if``
    is the *limited exploration* rule of Appendix B: a vertex relaxes its
    neighbours in an iteration only when ``forward_if(v, estimate)`` holds
    (applied uniformly, sources included; in the paper's uses the exploration
    root trivially satisfies the rule).

    Returns ``(dist, parent, iterations_used)``; iterations stop early once a
    full pass changes nothing (then ``d^{(t)} = d^{(hops)}`` for all larger
    ``t``), which the caller may *not* use to reduce charged rounds -- the
    exploration still occupies ``hops`` rounds in the distributed execution.
    """
    if hops < 0:
        raise InputError("hops must be non-negative")
    dist: Dict[NodeId, float] = dict(sources)
    parent: Dict[NodeId, Optional[NodeId]] = {s: None for s in sources}
    frontier = set(sources)
    iterations = 0
    for _ in range(hops):
        if not frontier:
            break
        iterations += 1
        updates: Dict[NodeId, Tuple[float, NodeId]] = {}
        for u in frontier:
            du = dist[u]
            if forward_if is not None and not forward_if(u, du):
                continue
            for v in graph.neighbors(u):
                nd = du + float(graph[u][v].get("weight", 1.0))
                if nd < dist.get(v, INF) and nd < updates.get(v, (INF, None))[0]:
                    updates[v] = (nd, u)
        frontier = set()
        for v, (nd, via) in updates.items():
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = via
                frontier.add(v)
    return dist, parent, iterations


def hop_counts(graph: nx.Graph, source: NodeId) -> Dict[NodeId, int]:
    """Minimum number of hops of a *weighted shortest* path from ``source``.

    Computed by Dijkstra on the lexicographic key (distance, hops), so ties
    in distance resolve to the fewest-hops path -- this is the quantity
    ``h(u, v)`` bounded by Claim 8.
    """
    dist: Dict[NodeId, Tuple[float, int]] = {source: (0.0, 0)}
    heap = [(0.0, 0, repr(source), source)]
    while heap:
        d, h, _, u = heapq.heappop(heap)
        if (d, h) > dist.get(u, (INF, 0)):
            continue
        for v in graph.neighbors(u):
            cand = (d + float(graph[u][v].get("weight", 1.0)), h + 1)
            if cand < dist.get(v, (INF, 0)):
                dist[v] = cand
                heapq.heappush(heap, (cand[0], cand[1], repr(v), v))
    return {v: dh[1] for v, dh in dist.items()}


def shortest_path_diameter(graph: nx.Graph) -> int:
    """``S``: the maximum, over all pairs, of the hops of a shortest path.

    Exact and O(n * m log n); only call on small graphs (tests, reporting).
    """
    worst = 0
    for source in graph.nodes:
        hops = hop_counts(graph, source)
        worst = max(worst, max(hops.values()))
    return worst


def eccentricity_hops(graph: nx.Graph, source: NodeId) -> int:
    """Unweighted eccentricity of ``source`` (for hop-diameter estimates)."""
    lengths = nx.single_source_shortest_path_length(graph, source)
    return max(lengths.values())


def hop_diameter(graph: nx.Graph) -> int:
    """Exact hop-diameter ``D`` of the underlying unweighted graph."""
    return nx.diameter(graph)
