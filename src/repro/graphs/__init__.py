"""Graph toolkit (substrate S3 of DESIGN.md): generators, reference
shortest-path algorithms, rooted-tree utilities, and the implicit virtual
graph oracle of Appendix B."""

from .generators import (
    caterpillar_tree,
    grid_graph,
    random_connected_graph,
    random_tree_network,
    ring_of_cliques,
    spanning_tree_of,
    subtree_parent_map,
)
from .paths import (
    bounded_bellman_ford,
    dijkstra,
    distances_to_set,
    eccentricity_hops,
    hop_counts,
    hop_diameter,
    nearest_in_set,
    shortest_path_diameter,
)
from .trees import (
    children_map,
    depths,
    dfs_intervals,
    heavy_children,
    light_edge_lists,
    postorder,
    subtree_sizes,
    tree_distance,
    tree_path,
    tree_root,
)
from .validation import (
    assert_laminar_intervals,
    require_tree_in_graph,
    require_weighted_connected,
    verify_claim7,
)
from .virtual import VirtualGraphOracle, default_hop_bound
from .weights import (
    aspect_ratio,
    assign_log_uniform_weights,
    encoded_weight_bits,
    quantization_stretch_bound,
    quantize_weight,
    quantize_weights,
    raw_weight_bits,
    weight_exponent,
)

__all__ = [
    "VirtualGraphOracle",
    "aspect_ratio",
    "assign_log_uniform_weights",
    "encoded_weight_bits",
    "quantization_stretch_bound",
    "quantize_weight",
    "quantize_weights",
    "raw_weight_bits",
    "weight_exponent",
    "assert_laminar_intervals",
    "bounded_bellman_ford",
    "caterpillar_tree",
    "children_map",
    "default_hop_bound",
    "depths",
    "dfs_intervals",
    "dijkstra",
    "distances_to_set",
    "eccentricity_hops",
    "grid_graph",
    "heavy_children",
    "hop_counts",
    "hop_diameter",
    "light_edge_lists",
    "nearest_in_set",
    "postorder",
    "random_connected_graph",
    "random_tree_network",
    "require_tree_in_graph",
    "require_weighted_connected",
    "ring_of_cliques",
    "shortest_path_diameter",
    "spanning_tree_of",
    "subtree_parent_map",
    "subtree_sizes",
    "tree_distance",
    "tree_path",
    "tree_root",
    "verify_claim7",
]
