"""Seeded workload generators.

Every benchmark and test builds its inputs here, so experiments are
reproducible from a single integer seed.  The families mirror the regimes
the paper's bounds distinguish:

* low hop-diameter, many vertices (random graphs, where D << sqrt(n) << n and
  the sqrt(n) term of the round bounds dominates);
* grid-like graphs (moderate D, sparse);
* deep spanning trees inside shallow networks -- the exact situation the
  distributed *tree* routing of Section 3 is designed for ("the hop-diameter
  of T may be much larger than the hop-diameter D of G").

All graphs are connected, undirected, and carry float ``weight`` attributes.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Optional, Tuple

import networkx as nx

from ..errors import InputError

NodeId = Hashable


def _assign_weights(
    graph: nx.Graph,
    rng: random.Random,
    low: float,
    high: float,
) -> nx.Graph:
    for u, v in graph.edges:
        graph[u][v]["weight"] = rng.uniform(low, high)
    return graph


def _connect(graph: nx.Graph, rng: random.Random) -> nx.Graph:
    """Add random edges between components until the graph is connected."""
    components = [sorted(c, key=repr) for c in nx.connected_components(graph)]
    while len(components) > 1:
        a = rng.choice(components[0])
        b = rng.choice(components[1])
        graph.add_edge(a, b)
        merged = components[0] + components[1]
        components = [merged] + components[2:]
    return graph


def random_connected_graph(
    n: int,
    *,
    avg_degree: float = 6.0,
    weight_range: Tuple[float, float] = (1.0, 10.0),
    seed: int = 0,
) -> nx.Graph:
    """A connected Erdos-Renyi-style weighted graph with ~``avg_degree``.

    These graphs have hop-diameter O(log n) whp, the regime where the
    paper's sqrt(n)-type terms dominate the round complexity.
    """
    if n < 2:
        raise InputError("need n >= 2")
    rng = random.Random(seed)
    p = min(1.0, avg_degree / max(1, n - 1))
    graph = nx.gnp_random_graph(n, p, seed=seed)
    _connect(graph, rng)
    return _assign_weights(graph, rng, *weight_range)


def grid_graph(
    rows: int,
    cols: int,
    *,
    weight_range: Tuple[float, float] = (1.0, 10.0),
    seed: int = 0,
) -> nx.Graph:
    """A weighted 2-D grid, relabelled to integer ids (moderate D = rows+cols)."""
    rng = random.Random(seed)
    grid = nx.grid_2d_graph(rows, cols)
    graph = nx.convert_node_labels_to_integers(grid, ordering="sorted")
    return _assign_weights(graph, rng, *weight_range)


def ring_of_cliques(
    cliques: int,
    clique_size: int,
    *,
    weight_range: Tuple[float, float] = (1.0, 10.0),
    seed: int = 0,
) -> nx.Graph:
    """Dense local clusters joined in a cycle (models hub-and-spoke WANs)."""
    if cliques < 3 or clique_size < 2:
        raise InputError("need >= 3 cliques of size >= 2")
    rng = random.Random(seed)
    graph = nx.ring_of_cliques(cliques, clique_size)
    return _assign_weights(graph, rng, *weight_range)


def random_tree_network(
    n: int,
    *,
    weight_range: Tuple[float, float] = (1.0, 10.0),
    seed: int = 0,
) -> nx.Graph:
    """A uniformly random weighted tree (depth Theta(sqrt(n)) typically)."""
    rng = random.Random(seed)
    tree = nx.random_labeled_tree(n, seed=seed) if hasattr(
        nx, "random_labeled_tree"
    ) else nx.random_tree(n, seed=seed)
    return _assign_weights(tree, rng, *weight_range)


def caterpillar_tree(
    spine: int,
    legs_per_vertex: int = 1,
    *,
    weight_range: Tuple[float, float] = (1.0, 10.0),
    seed: int = 0,
) -> nx.Graph:
    """A deep path with pendant leaves: the worst case for naive tree routing
    (tree depth ~ spine >> network hop-diameter when embedded in G)."""
    if spine < 2:
        raise InputError("need spine >= 2")
    rng = random.Random(seed)
    graph = nx.Graph()
    next_id = spine
    for i in range(spine):
        if i + 1 < spine:
            graph.add_edge(i, i + 1)
        for _ in range(legs_per_vertex):
            graph.add_edge(i, next_id)
            next_id += 1
    return _assign_weights(graph, rng, *weight_range)


def spanning_tree_of(
    graph: nx.Graph,
    *,
    style: str = "shortest-path",
    root: Optional[NodeId] = None,
    seed: int = 0,
) -> Dict[NodeId, Optional[NodeId]]:
    """Extract a spanning tree of ``graph`` as a parent map.

    Styles:

    * ``"shortest-path"`` -- Dijkstra tree from ``root`` (weighted SPT);
    * ``"bfs"``           -- BFS tree (minimum hop depth);
    * ``"dfs"``           -- DFS tree (maximally deep: tree depth can approach
      n even when the network's hop-diameter is tiny, which is exactly the
      regime Section 3 targets);
    * ``"random"``        -- random spanning tree (uniform-ish via random
      edge weights + MST).
    """
    rng = random.Random(seed)
    if root is None:
        root = min(graph.nodes, key=repr)
    if style == "shortest-path":
        paths = nx.single_source_dijkstra_path(graph, root, weight="weight")
        parent: Dict[NodeId, Optional[NodeId]] = {root: None}
        for v, path in paths.items():
            if v != root:
                parent[v] = path[-2]
        return parent
    if style == "bfs":
        parent = {root: None}
        for u, v in nx.bfs_edges(graph, root):
            parent[v] = u
        return parent
    if style == "dfs":
        parent = {root: None}
        for u, v in nx.dfs_edges(graph, root):
            parent[v] = u
        return parent
    if style == "random":
        shadow = nx.Graph()
        for u, v in graph.edges:
            shadow.add_edge(u, v, weight=rng.random())
        mst = nx.minimum_spanning_tree(shadow)
        parent = {root: None}
        for u, v in nx.bfs_edges(mst, root):
            parent[v] = u
        return parent
    raise InputError(f"unknown spanning-tree style {style!r}")


def subtree_parent_map(
    graph: nx.Graph,
    vertices,
    root: NodeId,
) -> Dict[NodeId, Optional[NodeId]]:
    """BFS parent map of the subgraph induced by ``vertices``, rooted at
    ``root`` (used to build non-spanning routing trees for tests)."""
    sub = graph.subgraph(vertices)
    if not nx.is_connected(sub):
        raise InputError("requested subtree vertices are not connected")
    parent: Dict[NodeId, Optional[NodeId]] = {root: None}
    for u, v in nx.bfs_edges(sub, root):
        parent[v] = u
    return parent
