"""The implicit virtual graph ``G' = (V', E')`` of Appendix B.

``V' = A_{k/2}`` is a ~sqrt(n)-vertex sample and ``E'`` corresponds to
``B``-bounded distances in ``G`` with ``B = Theta(sqrt(n) log n)`` (Claim 7
guarantees that whp every shortest path with >= B hops passes through V', so
``d_{G'} = d_G`` on V').

The paper's central memory trick is that G' is **never materialized**: edges
are discovered on the fly by B-bounded explorations in G.  This module is
that oracle.  :class:`VirtualGraphOracle` answers

* ``explore(source, initial) -> B-bounded distances`` (one Bellman-Ford
  iteration of Lemma 2 restricted to E'-edges), and
* ``edge_row(v) -> {u: weight}`` for construction steps that need the
  incident E'-edges of one virtual vertex at a time (hopset construction),

while counting how many virtual edges were ever *computed* -- tests assert
this stays far below ``|V'|^2``, i.e. the graph really was left implicit.

Round accounting: each B-bounded exploration costs ``B`` rounds in G
(charged by the callers, who know which phase they run in).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx

from ..errors import InputError
from .paths import bounded_bellman_ford

NodeId = Hashable


def default_hop_bound(n: int, c: float = 2.0) -> int:
    """``B = min(n, ceil(c * sqrt(n) * ln n))`` -- Claim 7's bound, capped.

    The paper uses ``B = 4 sqrt(n) ln n``; at laptop scales that exceeds
    ``n``, so we cap (a cap only makes explorations more complete, never
    less correct).
    """
    if n < 1:
        raise InputError("n must be positive")
    return int(min(n, math.ceil(c * math.sqrt(n) * max(1.0, math.log(n)))))


class VirtualGraphOracle:
    """B-bounded-distance access to the implicit virtual graph."""

    def __init__(
        self,
        graph: nx.Graph,
        virtual_vertices: Iterable[NodeId],
        hop_bound: int,
    ) -> None:
        self.graph = graph
        self.virtual_vertices: List[NodeId] = sorted(set(virtual_vertices), key=repr)
        self._virtual_set: Set[NodeId] = set(self.virtual_vertices)
        if hop_bound < 1:
            raise InputError("hop bound must be >= 1")
        self.hop_bound = hop_bound
        self.edges_computed = 0
        self._row_cache: Dict[NodeId, Dict[NodeId, float]] = {}

    @property
    def m(self) -> int:
        """Number of virtual vertices ``|V'|``."""
        return len(self.virtual_vertices)

    def is_virtual(self, v: NodeId) -> bool:
        return v in self._virtual_set

    # -- one Bellman-Ford step over E' -------------------------------------

    def relax_virtual_edges(
        self,
        estimates: Mapping[NodeId, float],
        *,
        forward_if: Optional[Callable[[NodeId, float], bool]] = None,
    ) -> Tuple[Dict[NodeId, float], Dict[NodeId, Optional[NodeId]]]:
        """One E'-relaxation: B-bounded exploration in G seeded by
        ``estimates`` (virtual vertices' current Bellman-Ford values).

        Returns the improved estimates *for all of V* (the distributed
        exploration reaches ordinary vertices too -- the approximate-cluster
        stage needs them) and the Bellman-Ford parents in G.  This is the
        "first it will initiate an exploration in G for B rounds" step in the
        proof of Lemma 2.
        """
        dist, parent, _ = bounded_bellman_ford(
            self.graph,
            dict(estimates),
            self.hop_bound,
            forward_if=forward_if,
        )
        return dist, parent

    # -- explicit edge rows (for hopset construction) ------------------------

    def edge_row(self, v: NodeId) -> Dict[NodeId, float]:
        """The E'-edges incident on virtual vertex ``v``: B-bounded distances
        from ``v`` to every other virtual vertex it can reach in B hops.

        Cached; the total number of distinct rows ever computed is what
        tests use to verify G' stays implicit.
        """
        if v not in self._virtual_set:
            raise InputError(f"{v!r} is not a virtual vertex")
        if v in self._row_cache:
            return self._row_cache[v]
        dist, _, _ = bounded_bellman_ford(self.graph, {v: 0.0}, self.hop_bound)
        row = {
            u: d
            for u, d in dist.items()
            if u != v and u in self._virtual_set and d < math.inf
        }
        self._row_cache[v] = row
        self.edges_computed += len(row)
        return row

    def bounded_distance(self, u: NodeId, v: NodeId) -> float:
        """``d^{(B)}_G(u, v)`` between two virtual vertices (oracle query)."""
        return self.edge_row(u).get(v, math.inf)

    # -- reference-only helpers (tests / validation) --------------------------

    def materialize(self) -> nx.Graph:
        """Build G' explicitly.  FOR TESTS ONLY -- the algorithms never call
        this (and a test asserts they don't need to)."""
        virt = nx.Graph()
        virt.add_nodes_from(self.virtual_vertices)
        for v in self.virtual_vertices:
            for u, w in self.edge_row(v).items():
                if virt.has_edge(v, u):
                    virt[v][u]["weight"] = min(virt[v][u]["weight"], w)
                else:
                    virt.add_edge(v, u, weight=w)
        return virt
