"""Input and invariant validators shared by tests and the public API."""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional

import networkx as nx

from ..errors import InputError, InvariantViolation
from .paths import hop_counts
from .trees import children_map, tree_root

NodeId = Hashable


def require_weighted_connected(graph: nx.Graph) -> None:
    """API-boundary check: undirected, connected, positive finite weights."""
    if graph.is_directed():
        raise InputError("graph must be undirected")
    if graph.number_of_nodes() == 0:
        raise InputError("graph must be non-empty")
    if not nx.is_connected(graph):
        raise InputError("graph must be connected")
    for u, v, data in graph.edges(data=True):
        w = data.get("weight", 1.0)
        if not (w > 0) or w != w or w == float("inf"):
            raise InputError(f"edge ({u!r}, {v!r}) has invalid weight {w!r}")


def require_tree_in_graph(
    graph: nx.Graph, parent: Mapping[NodeId, Optional[NodeId]]
) -> None:
    """The routing tree must be a subgraph of the network: every tree edge
    is a graph edge and every tree vertex a graph vertex."""
    tree_root(parent)  # raises if not exactly one root
    children_map(parent)  # raises on dangling parents
    for v, p in parent.items():
        if v not in graph:
            raise InputError(f"tree vertex {v!r} is not in the network")
        if p is not None and not graph.has_edge(v, p):
            raise InputError(f"tree edge ({p!r}, {v!r}) is not a network edge")


def verify_claim7(
    graph: nx.Graph,
    virtual_vertices,
    hop_bound: int,
    *,
    sample_sources: int = 16,
) -> bool:
    """Empirically check Claim 7: shortest paths of >= ``hop_bound`` hops
    contain a virtual vertex.  Samples a few sources (exact check is
    all-pairs).  Returns True when no violation was found."""
    virtual = set(virtual_vertices)
    sources = sorted(graph.nodes, key=repr)[:sample_sources]
    for s in sources:
        hops = hop_counts(graph, s)
        import networkx as _nx

        paths = _nx.single_source_dijkstra_path(graph, s, weight="weight")
        for t, h in hops.items():
            if h < hop_bound:
                continue
            if not any(v in virtual for v in paths[t][1:-1]):
                return False
    return True


def assert_laminar_intervals(intervals: Dict[NodeId, tuple]) -> None:
    """DFS intervals must pairwise nest or be disjoint."""
    items = sorted(intervals.values())
    stack: list = []
    for enter, exit_ in items:
        while stack and stack[-1] < enter:
            stack.pop()
        if stack and exit_ > stack[-1]:
            raise InvariantViolation(
                f"interval ({enter}, {exit_}) crosses an open interval"
            )
        stack.append(exit_)
