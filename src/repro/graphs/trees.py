"""Centralized rooted-tree utilities.

The Thorup-Zwick tree-routing scheme (recalled in Section 3 of the paper)
needs, per vertex: its subtree size, its *heavy child* (the child with the
largest subtree), the *light edges* on its root path (edges to non-heavy
children -- at most ``log2 n`` of them on any root path), and DFS entry/exit
times consistent with subtree sizes.  This module computes all of these
centrally; the distributed stages of :mod:`repro.treerouting` are validated
against these reference values, and the centralized TZ baseline
(:mod:`repro.tz.tree_scheme`) is built directly from them.

Trees are represented as parent maps (``root -> None``), matching
:class:`repro.congest.primitives.Forest`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..errors import InputError

NodeId = Hashable
ParentMap = Mapping[NodeId, Optional[NodeId]]


def tree_root(parent: ParentMap) -> NodeId:
    roots = [v for v, p in parent.items() if p is None]
    if len(roots) != 1:
        raise InputError(f"expected exactly one root, found {len(roots)}")
    return roots[0]


def children_map(parent: ParentMap) -> Dict[NodeId, List[NodeId]]:
    children: Dict[NodeId, List[NodeId]] = {v: [] for v in parent}
    for v, p in parent.items():
        if p is not None:
            if p not in children:
                raise InputError(f"parent {p!r} of {v!r} missing from tree")
            children[p].append(v)
    for v in children:
        children[v].sort(key=repr)
    return children


def depths(parent: ParentMap) -> Dict[NodeId, int]:
    root = tree_root(parent)
    children = children_map(parent)
    out = {root: 0}
    stack = [root]
    while stack:
        v = stack.pop()
        for c in children[v]:
            out[c] = out[v] + 1
            stack.append(c)
    if len(out) != len(parent):
        raise InputError("parent map contains a cycle")
    return out


def postorder(parent: ParentMap) -> List[NodeId]:
    """Vertices in post-order (children before parents)."""
    root = tree_root(parent)
    children = children_map(parent)
    order: List[NodeId] = []
    stack: List[Tuple[NodeId, bool]] = [(root, False)]
    while stack:
        v, expanded = stack.pop()
        if expanded:
            order.append(v)
        else:
            stack.append((v, True))
            for c in reversed(children[v]):
                stack.append((c, False))
    return order


def subtree_sizes(parent: ParentMap) -> Dict[NodeId, int]:
    children = children_map(parent)
    sizes: Dict[NodeId, int] = {}
    for v in postorder(parent):
        sizes[v] = 1 + sum(sizes[c] for c in children[v])
    return sizes


def heavy_children(parent: ParentMap) -> Dict[NodeId, Optional[NodeId]]:
    """The child with the largest subtree, per vertex (None for leaves).

    Ties break deterministically by vertex repr, matching the distributed
    implementation so the two can be compared field by field.
    """
    children = children_map(parent)
    sizes = subtree_sizes(parent)
    heavy: Dict[NodeId, Optional[NodeId]] = {}
    for v, kids in children.items():
        heavy[v] = max(kids, key=lambda c: (sizes[c], repr(c))) if kids else None
    return heavy


def light_edge_lists(parent: ParentMap) -> Dict[NodeId, List[Tuple[NodeId, NodeId]]]:
    """For each vertex ``y``: the light edges on the root-to-``y`` path.

    An edge ``(u, v)`` (v a child of u) is *light* when ``v`` is not the
    heavy child of ``u``.  Any root path has at most ``log2 n`` light edges,
    because crossing a light edge at least halves the subtree size.
    """
    root = tree_root(parent)
    children = children_map(parent)
    heavy = heavy_children(parent)
    lists: Dict[NodeId, List[Tuple[NodeId, NodeId]]] = {root: []}
    stack = [root]
    while stack:
        u = stack.pop()
        for v in children[u]:
            inherited = lists[u]
            lists[v] = inherited if v == heavy[u] else inherited + [(u, v)]
            stack.append(v)
    return lists


def dfs_intervals(parent: ParentMap) -> Dict[NodeId, Tuple[int, int]]:
    """DFS entry/exit numbering with subtree-size-consistent ranges.

    Vertex ``v`` gets ``[enter, exit]`` with
    ``exit - enter + 1 == subtree_size(v)``; descendants' intervals nest.
    The DFS visits children in the deterministic port order used everywhere
    in this library (sorted by repr), matching Algorithm 4's distributed
    assignment so the two can be compared exactly.
    """
    root = tree_root(parent)
    children = children_map(parent)
    sizes = subtree_sizes(parent)
    intervals: Dict[NodeId, Tuple[int, int]] = {root: (1, sizes[root])}
    stack = [root]
    while stack:
        u = stack.pop()
        enter, _ = intervals[u]
        offset = enter + 1
        for v in children[u]:
            intervals[v] = (offset, offset + sizes[v] - 1)
            offset += sizes[v]
            stack.append(v)
    return intervals


def tree_path(parent: ParentMap, u: NodeId, v: NodeId) -> List[NodeId]:
    """The unique u-v path in the tree (via lowest common ancestor)."""
    depth = depths(parent)
    a, b = u, v
    left: List[NodeId] = [a]
    right: List[NodeId] = [b]
    while depth[a] > depth[b]:
        a = parent[a]
        left.append(a)
    while depth[b] > depth[a]:
        b = parent[b]
        right.append(b)
    while a != b:
        a = parent[a]
        b = parent[b]
        left.append(a)
        right.append(b)
    return left + right[-2::-1]


def tree_distance(
    parent: ParentMap,
    weight_of,
    u: NodeId,
    v: NodeId,
) -> float:
    """Weighted length of the unique tree path (``weight_of(a, b)`` gives
    the edge weight)."""
    path = tree_path(parent, u, v)
    return sum(weight_of(path[i], path[i + 1]) for i in range(len(path) - 1))
