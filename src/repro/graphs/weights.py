"""Edge-weight quantization for the standard CONGEST model (Section 2).

The CONGEST RAM model lets a message carry one edge weight; the *standard*
CONGEST model only allows O(log n) bits.  The paper's remedy (end of
Section 2): "we round all edge weights to the closest power of (1+ε).  As a
result, each edge weight can now be represented with
O(log log Λ + log 1/ε) bits", so the construction time becomes proportional
to ``log_n log Λ`` — in contrast to all previous solutions, whose running
time is at least *linear* in log Λ.

This module implements that rounding and the bit accounting, and the
ablation bench ``benchmarks/bench_ablation_aspect_ratio.py`` demonstrates
the claim: quantized weights keep message bit-width flat while the aspect
ratio Λ grows by orders of magnitude, and the routing scheme built on the
quantized graph loses only a (1+ε) factor of stretch.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, Tuple

import networkx as nx

from ..errors import InputError

NodeId = Hashable


def assign_log_uniform_weights(
    graph: nx.Graph, low: float, high: float, *, seed: int = 0
) -> nx.Graph:
    """Re-weight a copy of ``graph`` with log-uniform weights in [low, high].

    Uniform sampling of a wide range produces almost no mass near the
    bottom, so its realized aspect ratio stays small; log-uniform sampling
    actually realizes Λ ≈ high/low, which is what the aspect-ratio
    experiments need.
    """
    if not (0 < low <= high):
        raise InputError("need 0 < low <= high")
    rng = random.Random(f"logw/{seed}")
    out = graph.copy()
    lo, hi = math.log(low), math.log(high)
    for u, v, data in out.edges(data=True):
        data["weight"] = math.exp(rng.uniform(lo, hi))
    return out


def aspect_ratio(graph: nx.Graph) -> float:
    """Λ: the ratio of the largest to the smallest edge weight."""
    weights = [float(d.get("weight", 1.0)) for _, _, d in graph.edges(data=True)]
    if not weights:
        raise InputError("graph has no edges")
    low, high = min(weights), max(weights)
    if low <= 0:
        raise InputError("weights must be positive")
    return high / low


def quantize_weight(weight: float, epsilon: float) -> float:
    """Round ``weight`` up to the nearest power of ``1 + epsilon``.

    Rounding *up* keeps quantized distances an over-estimate of true
    distances by at most (1+ε) per edge, hence (1+ε) per path -- the
    one-sided error the paper's analysis absorbs into ε-rescaling.
    """
    if weight <= 0:
        raise InputError("weights must be positive")
    if epsilon <= 0:
        raise InputError("epsilon must be positive")
    base = 1.0 + epsilon
    exponent = math.ceil(math.log(weight, base) - 1e-12)
    return base ** exponent


def quantize_weights(graph: nx.Graph, epsilon: float) -> nx.Graph:
    """A copy of ``graph`` with every weight rounded to a power of 1+ε."""
    out = graph.copy()
    for u, v, data in out.edges(data=True):
        data["weight"] = quantize_weight(float(data.get("weight", 1.0)), epsilon)
    return out


def weight_exponent(weight: float, epsilon: float) -> int:
    """The integer exponent ``e`` with ``weight = (1+ε)^e`` (quantized
    weights only) -- this is what a standard-CONGEST message carries."""
    base = 1.0 + epsilon
    e = round(math.log(weight, base))
    if not math.isclose(base ** e, weight, rel_tol=1e-9):
        raise InputError(f"{weight} is not a power of {base}")
    return e


def encoded_weight_bits(graph: nx.Graph, epsilon: float) -> int:
    """Bits per quantized weight: O(log log Λ + log 1/ε).

    Exponents live in a range of size ``log_{1+ε} Λ``; encoding an exponent
    takes ``ceil(log2(range + 1)) + 1`` bits (sign included).
    """
    lam = aspect_ratio(graph)
    exponent_range = math.log(lam, 1.0 + epsilon) + 1.0
    return math.ceil(math.log2(exponent_range + 1)) + 1


def raw_weight_bits(graph: nx.Graph, resolution: float = None) -> int:
    """Bits to send an *exact* weight at the graph's own resolution:
    Θ(log Λ) -- what previous solutions pay per message.

    ``resolution`` defaults to the smallest edge weight (fixed-point
    encoding with that unit).
    """
    weights = [float(d.get("weight", 1.0)) for _, _, d in graph.edges(data=True)]
    if not weights:
        raise InputError("graph has no edges")
    unit = resolution if resolution is not None else min(weights)
    return math.ceil(math.log2(max(weights) / unit + 1)) + 1


def quantization_stretch_bound(epsilon: float) -> float:
    """Distances in the quantized graph over-estimate by at most 1+ε."""
    return 1.0 + epsilon


def quantized_distance_sandwich(
    graph: nx.Graph, quantized: nx.Graph, u: NodeId, v: NodeId
) -> Tuple[float, float]:
    """(d_G(u,v), d_G'(u,v)) for tests: d <= d' <= (1+ε) d."""
    d = nx.dijkstra_path_length(graph, u, v, weight="weight")
    dq = nx.dijkstra_path_length(quantized, u, v, weight="weight")
    return d, dq
