"""Routing-phase simulator and stretch measurement.

The preprocessing phase (whether centralized or distributed) ends with every
vertex holding a table and every destination owning a label.  This module
simulates the *routing phase*: a message hops vertex to vertex, and each
vertex's forwarding decision consumes **only** its own table, the
destination label, and the O(log n)-word header -- exactly the information
model of the paper's introduction.

``route_in_graph`` implements the Appendix B scheme: the *source* scans the
destination label's level entries in increasing order and commits to the
first pivot tree that contains the source itself (mode ``"first"``, the
4k-3 analysis), or to the candidate minimizing the advertised
source-to-root-to-destination upper bound (mode ``"best"``, the
source-side refinement); the choice is written into the header and every
subsequent hop is pure tree routing.

``measure_stretch`` compares routed path lengths against exact Dijkstra
distances over a pair sample -- the "Stretch" column of Table 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import networkx as nx

from ..errors import RoutingFailure
from ..graphs.paths import dijkstra
from .artifacts import GraphRoutingScheme, Header, TreeRoutingScheme
from .tree_router import tree_forward

NodeId = Hashable


@dataclass
class RouteResult:
    """Outcome of routing one message."""

    path: List[NodeId]
    length: float
    header_words: int

    @property
    def hops(self) -> int:
        return len(self.path) - 1


def route_in_tree(
    scheme: TreeRoutingScheme,
    source: NodeId,
    target: NodeId,
    *,
    weight_of=None,
    max_hops: Optional[int] = None,
) -> RouteResult:
    """Route ``source -> target`` inside one tree scheme.

    ``weight_of(u, v)`` supplies edge weights for the path-length report
    (hop count is used when omitted).  The hop budget guards against a buggy
    scheme looping forever; exact tree routing never exceeds ``2 * depth``.
    """
    label = scheme.labels[target]
    budget = max_hops if max_hops is not None else 2 * len(scheme.tables) + 2
    path = [source]
    length = 0.0
    at = source
    for _ in range(budget):
        nxt = tree_forward(at, scheme.tables[at], label)
        if nxt is None:
            return RouteResult(path=path, length=length, header_words=label.word_size())
        if nxt not in scheme.tables:
            raise RoutingFailure(f"forwarded to {nxt!r}, which has no table", path)
        length += weight_of(at, nxt) if weight_of is not None else 1.0
        at = nxt
        path.append(at)
    raise RoutingFailure(f"exceeded hop budget {budget}", path)


def route_in_graph(
    scheme: GraphRoutingScheme,
    graph: nx.Graph,
    source: NodeId,
    target: NodeId,
    *,
    mode: str = "first",
) -> RouteResult:
    """Route ``source -> target`` with the general-graph scheme."""
    if source == target:
        return RouteResult(path=[source], length=0.0, header_words=0)
    label = scheme.labels[target]
    source_table = scheme.tables[source]

    candidates: List[Tuple[float, int, Header]] = []
    for i, entry in enumerate(label.entries):
        if entry is None:
            continue
        tree_id, dist_to_root, tree_label = entry
        if not source_table.has_tree(tree_id):
            continue
        my_table = source_table.trees[tree_id]
        bound = (my_table.root_distance or 0.0) + dist_to_root
        candidates.append((bound, i, Header(tree=tree_id, tree_label=tree_label)))
        if mode == "first":
            break
    if not candidates:
        raise RoutingFailure(
            f"no common cluster tree between {source!r} and {target!r} "
            "(top-level cluster should always be shared)"
        )
    if mode == "best":
        header = min(candidates, key=lambda c: (c[0], c[1]))[2]
    else:
        header = candidates[0][2]

    def weight_of(u: NodeId, v: NodeId) -> float:
        return float(graph[u][v].get("weight", 1.0))

    path = [source]
    length = 0.0
    at = source
    budget = 4 * graph.number_of_nodes() + 4
    for _ in range(budget):
        table = scheme.tables[at].trees.get(header.tree)
        if table is None:
            raise RoutingFailure(
                f"vertex {at!r} has no table for tree {header.tree!r}", path
            )
        nxt = tree_forward(at, table, header.tree_label)
        if nxt is None:
            if at != target:
                raise RoutingFailure(
                    f"tree routing terminated at {at!r}, not {target!r}", path
                )
            return RouteResult(path=path, length=length, header_words=header.word_size())
        if not graph.has_edge(at, nxt):
            raise RoutingFailure(f"({at!r}, {nxt!r}) is not an edge", path)
        length += weight_of(at, nxt)
        at = nxt
        path.append(at)
    raise RoutingFailure(f"exceeded hop budget {budget}", path)


@dataclass
class StretchReport:
    """Stretch statistics over a pair sample."""

    pairs: int
    max_stretch: float
    mean_stretch: float
    worst_pair: Optional[Tuple[NodeId, NodeId]]

    def __str__(self) -> str:
        return (
            f"pairs={self.pairs} max_stretch={self.max_stretch:.4f} "
            f"mean_stretch={self.mean_stretch:.4f} worst={self.worst_pair}"
        )


def sample_pairs(
    nodes: Sequence[NodeId],
    count: int,
    seed: int = 0,
    *,
    rng: Optional[random.Random] = None,
) -> List[Tuple[NodeId, NodeId]]:
    """A deterministic sample of distinct ordered vertex pairs.

    Pass ``rng`` to draw from a caller-owned :class:`random.Random`
    stream (``seed`` is then ignored): experiment drivers that compare
    several schemes hand each measurement the same generator -- or the
    same ``seed`` -- so every scheme is scored on the *identical* pair
    sample and stretch deltas are never sampling noise.
    """
    rng = rng if rng is not None else random.Random(seed)
    nodes = list(nodes)
    pairs = []
    for _ in range(count):
        u, v = rng.sample(nodes, 2)
        pairs.append((u, v))
    return pairs


def measure_stretch(
    scheme: GraphRoutingScheme,
    graph: nx.Graph,
    pairs: Union[int, Sequence[Tuple[NodeId, NodeId]]],
    *,
    mode: str = "first",
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> StretchReport:
    """Route every pair and compare against exact distances.

    ``pairs`` is either an explicit pair sequence (reuse one sample
    across schemes for an apples-to-apples comparison) or an ``int``
    count, in which case a deterministic sample is drawn here via
    :func:`sample_pairs` with ``seed`` / ``rng``.
    """
    if isinstance(pairs, int):
        pairs = sample_pairs(list(graph.nodes), pairs, seed, rng=rng)
    by_source: Dict[NodeId, List[NodeId]] = {}
    for u, v in pairs:
        by_source.setdefault(u, []).append(v)
    worst = 0.0
    worst_pair: Optional[Tuple[NodeId, NodeId]] = None
    total = 0.0
    count = 0
    for u, targets in by_source.items():
        dist, _ = dijkstra(graph, [u])
        for v in targets:
            result = route_in_graph(scheme, graph, u, v, mode=mode)
            exact = dist[v]
            stretch = result.length / exact if exact > 0 else 1.0
            total += stretch
            count += 1
            if stretch > worst:
                worst = stretch
                worst_pair = (u, v)
    return StretchReport(
        pairs=count,
        max_stretch=worst,
        mean_stretch=total / max(1, count),
        worst_pair=worst_pair,
    )
