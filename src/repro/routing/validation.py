"""Structural validation of routing schemes.

A released routing stack needs a way to certify artifacts before deploying
them (e.g. after deserialization, or after a third party's preprocessing).
``verify_tree_scheme`` checks every structural property the forwarding rule
relies on, and optionally certifies *functional* correctness by routing a
pair sample.  ``verify_graph_scheme`` does the same for the general-graph
artifacts.

All checks raise :class:`~repro.errors.InvariantViolation` with a precise
message; returning normally means the scheme passed.
"""

from __future__ import annotations

import random
from typing import Hashable, Mapping, Optional

import networkx as nx

from ..errors import InvariantViolation
from ..graphs.trees import tree_distance
from .artifacts import GraphRoutingScheme, TreeRoutingScheme
from .router import route_in_graph, route_in_tree

NodeId = Hashable


def verify_tree_scheme(
    scheme: TreeRoutingScheme,
    tree_parent: Optional[Mapping[NodeId, Optional[NodeId]]] = None,
    *,
    weight_of=None,
    sample_pairs: int = 0,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> None:
    """Certify a tree scheme's structure (and optionally its routing).

    Structure checks (always): DFS entries form a permutation of 1..n;
    intervals nest along parent pointers; widths are consistent (a parent's
    interval covers its children's); heavy children are children; labels'
    entry times match tables; light edges connect parent to child and are
    never the heavy child.  When ``tree_parent`` is given, parents must
    match it exactly.  With ``sample_pairs > 0``, routes that many random
    pairs and (given ``weight_of``) compares lengths to tree distances;
    pass ``rng`` to draw the sample from a caller-owned
    :class:`random.Random` stream (``seed`` is then ignored), the same
    injection pattern as :func:`repro.routing.router.sample_pairs`.
    """
    n = len(scheme.tables)
    if set(scheme.labels) != set(scheme.tables):
        raise InvariantViolation("tables and labels cover different vertex sets")

    enters = sorted(t.enter for t in scheme.tables.values())
    if enters != list(range(1, n + 1)):
        raise InvariantViolation("DFS entry times are not a permutation of 1..n")

    by_vertex = scheme.tables
    roots = [v for v, t in by_vertex.items() if t.parent is None]
    if roots != [scheme.root]:
        raise InvariantViolation(
            f"expected the unique parentless vertex to be {scheme.root!r}, "
            f"found {roots!r}"
        )
    root_table = by_vertex[scheme.root]
    if (root_table.enter, root_table.exit_) != (1, n):
        raise InvariantViolation("root interval must be (1, n)")

    children = {v: [] for v in by_vertex}
    for v, t in by_vertex.items():
        if t.exit_ < t.enter:
            raise InvariantViolation(f"empty interval at {v!r}")
        if t.parent is not None:
            p = by_vertex.get(t.parent)
            if p is None:
                raise InvariantViolation(f"parent {t.parent!r} of {v!r} has no table")
            if not (p.enter < t.enter and t.exit_ <= p.exit_):
                raise InvariantViolation(f"interval of {v!r} not nested in parent's")
            children[t.parent].append(v)
        if tree_parent is not None and t.parent != tree_parent[v]:
            raise InvariantViolation(f"parent mismatch at {v!r}")

    for v, t in by_vertex.items():
        if t.heavy is not None and t.heavy not in children[v]:
            raise InvariantViolation(f"heavy child of {v!r} is not a child")
        interval_sum = sum(
            by_vertex[c].exit_ - by_vertex[c].enter + 1 for c in children[v]
        )
        if t.exit_ - t.enter != interval_sum:
            raise InvariantViolation(f"children intervals of {v!r} do not tile")

    for v, label in scheme.labels.items():
        if label.enter != by_vertex[v].enter:
            raise InvariantViolation(f"label entry time of {v!r} disagrees")
        for (a, b) in label.light_edges:
            if by_vertex.get(b) is None or by_vertex[b].parent != a:
                raise InvariantViolation(
                    f"light edge ({a!r}, {b!r}) in label of {v!r} is not a "
                    "parent-child edge"
                )
            if by_vertex[a].heavy == b:
                raise InvariantViolation(
                    f"light edge ({a!r}, {b!r}) is the heavy child edge"
                )

    if sample_pairs > 0:
        rng = rng if rng is not None else random.Random(seed)
        nodes = sorted(by_vertex, key=repr)
        parent_map = {v: t.parent for v, t in by_vertex.items()}
        for _ in range(sample_pairs):
            u, v = rng.sample(nodes, 2)
            result = route_in_tree(scheme, u, v, weight_of=weight_of)
            if result.path[-1] != v:
                raise InvariantViolation(f"route {u!r}->{v!r} ended elsewhere")
            if weight_of is not None:
                expected = tree_distance(parent_map, weight_of, u, v)
                if abs(result.length - expected) > 1e-9:
                    raise InvariantViolation(
                        f"route {u!r}->{v!r} length {result.length} != tree "
                        f"distance {expected}"
                    )


def verify_graph_scheme(
    scheme: GraphRoutingScheme,
    graph: nx.Graph,
    *,
    sample_pairs: int = 0,
    stretch_bound: Optional[float] = None,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> None:
    """Certify a general-graph scheme.

    Structure: every label entry references an existing tree scheme, the
    entry's tree label matches that tree scheme's label for the vertex, and
    the vertex's table holds a tree table for its own level-0 tree.  Every
    per-tree scheme is structurally verified.  With ``sample_pairs > 0``,
    routes random pairs, checks delivery over real edges, and (with
    ``stretch_bound``) checks realized stretch.  ``rng`` injects a
    caller-owned pair-sampling stream, as in ``verify_tree_scheme``.
    """
    for tree_id, tree_scheme in scheme.tree_schemes.items():
        verify_tree_scheme(tree_scheme)
        for v, table in tree_scheme.tables.items():
            if scheme.tables[v].trees.get(tree_id) != table:
                raise InvariantViolation(
                    f"vertex {v!r} table for tree {tree_id!r} out of sync"
                )

    for v, label in scheme.labels.items():
        if len(label.entries) != scheme.k:
            raise InvariantViolation(f"label of {v!r} has {len(label.entries)} "
                                     f"entries, expected k={scheme.k}")
        for entry in label.entries:
            if entry is None:
                continue
            tree_id, dist, tree_label = entry
            ts = scheme.tree_schemes.get(tree_id)
            if ts is None:
                raise InvariantViolation(
                    f"label of {v!r} references unknown tree {tree_id!r}"
                )
            if ts.labels.get(v) != tree_label:
                raise InvariantViolation(
                    f"label of {v!r} for tree {tree_id!r} is stale"
                )
            if dist < 0:
                raise InvariantViolation("negative advertised distance")
        if all(e is None for e in label.entries):
            raise InvariantViolation(f"label of {v!r} has no usable entry")

    if sample_pairs > 0:
        from ..graphs.paths import dijkstra

        rng = rng if rng is not None else random.Random(seed)
        nodes = sorted(scheme.labels, key=repr)
        for _ in range(sample_pairs):
            u, v = rng.sample(nodes, 2)
            result = route_in_graph(scheme, graph, u, v)
            if result.path[-1] != v:
                raise InvariantViolation(f"route {u!r}->{v!r} ended elsewhere")
            if stretch_bound is not None:
                exact = dijkstra(graph, [u])[0][v]
                if result.length > stretch_bound * exact + 1e-9:
                    raise InvariantViolation(
                        f"stretch of {u!r}->{v!r} exceeds {stretch_bound}"
                    )
