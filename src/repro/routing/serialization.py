"""JSON (de)serialization of routing schemes.

The preprocessing phase is expensive; routers only need the artifacts.
This module round-trips :class:`~repro.routing.artifacts.TreeRoutingScheme`
and :class:`~repro.routing.artifacts.GraphRoutingScheme` through plain JSON
so schemes can be built once and shipped to the vertices (or to disk).

Vertex and tree ids may be ints, floats, strings, ``None``, booleans, or
(possibly nested) tuples of those -- everything the library's constructions
produce.  JSON cannot key maps by such values, so all maps are stored as
``[encoded_key, value]`` pair lists, and ids are wrapped in one-element tag
objects (``{"i": 5}``, ``{"s": "v"}``, ``{"t": [...]}``).

Round-trip identity (``load(save(s)) == s``) is property-tested in
``tests/test_routing_serialization.py``.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Hashable, Union

from ..errors import InputError
from .artifacts import (
    GraphLabel,
    GraphRoutingScheme,
    GraphTable,
    TreeLabel,
    TreeRoutingScheme,
    TreeTable,
)

NodeId = Hashable

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Id encoding
# ---------------------------------------------------------------------------

def encode_id(value: Any) -> Any:
    """Wrap an id so JSON round-trips preserve its type."""
    if value is None or isinstance(value, bool):
        return {"b": value}
    if isinstance(value, int):
        return {"i": value}
    if isinstance(value, float):
        return {"f": value}
    if isinstance(value, str):
        return {"s": value}
    if isinstance(value, tuple):
        return {"t": [encode_id(x) for x in value]}
    raise InputError(f"cannot serialize id of type {type(value).__name__}")


def decode_id(blob: Any) -> Any:
    if not isinstance(blob, dict) or len(blob) != 1:
        raise InputError(f"malformed id blob: {blob!r}")
    tag, value = next(iter(blob.items()))
    if tag in ("b", "i", "f", "s"):
        return value
    if tag == "t":
        return tuple(decode_id(x) for x in value)
    raise InputError(f"unknown id tag {tag!r}")


# ---------------------------------------------------------------------------
# Artifact encoding
# ---------------------------------------------------------------------------

def _encode_tree_table(table: TreeTable) -> Dict[str, Any]:
    return {
        "enter": table.enter,
        "exit": table.exit_,
        "parent": encode_id(table.parent),
        "heavy": encode_id(table.heavy),
        "root_distance": table.root_distance,
    }


def _decode_tree_table(blob: Dict[str, Any]) -> TreeTable:
    return TreeTable(
        enter=blob["enter"],
        exit_=blob["exit"],
        parent=decode_id(blob["parent"]),
        heavy=decode_id(blob["heavy"]),
        root_distance=blob.get("root_distance"),
    )


def _encode_tree_label(label: TreeLabel) -> Dict[str, Any]:
    return {
        "enter": label.enter,
        "light": [[encode_id(u), encode_id(v)] for u, v in label.light_edges],
    }


def _decode_tree_label(blob: Dict[str, Any]) -> TreeLabel:
    return TreeLabel(
        enter=blob["enter"],
        light_edges=tuple((decode_id(u), decode_id(v)) for u, v in blob["light"]),
    )


def tree_scheme_to_dict(scheme: TreeRoutingScheme) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "kind": "tree",
        "tree_id": encode_id(scheme.tree_id),
        "root": encode_id(scheme.root),
        "tables": [
            [encode_id(v), _encode_tree_table(t)] for v, t in scheme.tables.items()
        ],
        "labels": [
            [encode_id(v), _encode_tree_label(l)] for v, l in scheme.labels.items()
        ],
    }


def tree_scheme_from_dict(blob: Dict[str, Any]) -> TreeRoutingScheme:
    _check_header(blob, "tree")
    return TreeRoutingScheme(
        tree_id=decode_id(blob["tree_id"]),
        root=decode_id(blob["root"]),
        tables={decode_id(v): _decode_tree_table(t) for v, t in blob["tables"]},
        labels={decode_id(v): _decode_tree_label(l) for v, l in blob["labels"]},
    )


def graph_scheme_to_dict(scheme: GraphRoutingScheme) -> Dict[str, Any]:
    labels = []
    for v, label in scheme.labels.items():
        entries = []
        for entry in label.entries:
            if entry is None:
                entries.append(None)
            else:
                tree_id, dist, tree_label = entry
                entries.append(
                    [encode_id(tree_id), dist, _encode_tree_label(tree_label)]
                )
        labels.append([encode_id(v), entries])
    tables = []
    for v, table in scheme.tables.items():
        tables.append([
            encode_id(v),
            [[encode_id(t), _encode_tree_table(tt)] for t, tt in table.trees.items()],
        ])
    return {
        "format": FORMAT_VERSION,
        "kind": "graph",
        "k": scheme.k,
        "tables": tables,
        "labels": labels,
        "tree_schemes": [
            [encode_id(t), tree_scheme_to_dict(s)]
            for t, s in scheme.tree_schemes.items()
        ],
    }


def graph_scheme_from_dict(blob: Dict[str, Any]) -> GraphRoutingScheme:
    _check_header(blob, "graph")
    tables: Dict[NodeId, GraphTable] = {}
    for v_blob, tree_list in blob["tables"]:
        v = decode_id(v_blob)
        table = GraphTable(vertex=v)
        for t_blob, tt_blob in tree_list:
            table.trees[decode_id(t_blob)] = _decode_tree_table(tt_blob)
        tables[v] = table
    labels: Dict[NodeId, GraphLabel] = {}
    for v_blob, entry_list in blob["labels"]:
        v = decode_id(v_blob)
        entries = []
        for entry in entry_list:
            if entry is None:
                entries.append(None)
            else:
                t_blob, dist, l_blob = entry
                entries.append((decode_id(t_blob), dist, _decode_tree_label(l_blob)))
        labels[v] = GraphLabel(vertex=v, entries=tuple(entries))
    tree_schemes = {
        decode_id(t): tree_scheme_from_dict(s) for t, s in blob["tree_schemes"]
    }
    return GraphRoutingScheme(
        k=blob["k"], tables=tables, labels=labels, tree_schemes=tree_schemes
    )


def _check_header(blob: Dict[str, Any], kind: str) -> None:
    if blob.get("format") != FORMAT_VERSION:
        raise InputError(
            f"unsupported scheme format {blob.get('format')!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    if blob.get("kind") != kind:
        raise InputError(f"expected a {kind!r} scheme, found {blob.get('kind')!r}")


# ---------------------------------------------------------------------------
# File convenience
# ---------------------------------------------------------------------------

Scheme = Union[TreeRoutingScheme, GraphRoutingScheme]


def save_scheme(scheme: Scheme, fp: IO[str]) -> None:
    """Write a scheme as JSON to an open text file."""
    if isinstance(scheme, TreeRoutingScheme):
        json.dump(tree_scheme_to_dict(scheme), fp)
    elif isinstance(scheme, GraphRoutingScheme):
        json.dump(graph_scheme_to_dict(scheme), fp)
    else:
        raise InputError(f"cannot serialize {type(scheme).__name__}")


def load_scheme(fp: IO[str]) -> Scheme:
    """Read back a scheme written by :func:`save_scheme`."""
    blob = json.load(fp)
    kind = blob.get("kind")
    if kind == "tree":
        return tree_scheme_from_dict(blob)
    if kind == "graph":
        return graph_scheme_from_dict(blob)
    raise InputError(f"unknown scheme kind {kind!r}")
