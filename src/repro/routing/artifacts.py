"""Routing-scheme artifacts: tables, labels, headers.

Both the centralized Thorup-Zwick constructions (:mod:`repro.tz`) and the
paper's distributed constructions (:mod:`repro.treerouting`,
:mod:`repro.core`) produce the *same* artifact types, so the routing-phase
simulator (:mod:`repro.routing.router`) and the benchmarks can treat them
uniformly and compare sizes word for word.

Word accounting follows :mod:`repro.wordsize`: a vertex id, a port, a DFS
time, and a distance each cost one word.  ``word_size()`` on each artifact
is what Tables 1-2's "Table size" / "Label size" columns report.

Tree routing (Section 3, after [TZ01b]):

* :class:`TreeTable` -- what a vertex stores: its DFS interval, its parent,
  and its heavy child.  **O(1) words.**
* :class:`TreeLabel` -- what a destination advertises: its DFS enter time
  and the light edges on its root path.  **O(log n) words** (<= log2 n light
  edges of 2 words each).

General graphs (Appendix B):

* :class:`GraphTable` -- the tree tables of every cluster tree containing
  the vertex, keyed by the tree's root.  **Õ(n^{1/k}) words** via Claim 6.
* :class:`GraphLabel` -- per level ``i``: the (approximate) ``i``-pivot, the
  advertised distance to it, and the vertex's tree label in the pivot's
  cluster tree.  **O(k log n) words** -- the improvement over the
  O(k log^2 n) labels of [EN16b, LPP16].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

NodeId = Hashable
TreeId = Hashable


@dataclass(frozen=True)
class TreeTable:
    """Per-vertex routing table for one tree: O(1) words.

    ``enter``/``exit_`` delimit the vertex's DFS interval (descendant test),
    ``parent`` and ``heavy`` are neighbour ids (``None`` at the root / at
    leaves).  ``root_distance`` (optional, +1 word) is the weighted distance
    to the tree root; the general-graph scheme stores it to pick the best
    candidate tree at the source.
    """

    enter: int
    exit_: int
    parent: Optional[NodeId]
    heavy: Optional[NodeId]
    root_distance: Optional[float] = None

    def word_size(self) -> int:
        words = 4  # enter, exit, parent, heavy
        if self.root_distance is not None:
            words += 1
        return words

    def contains(self, enter_time: int) -> bool:
        """Is the vertex with DFS entry ``enter_time`` in my subtree?"""
        return self.enter <= enter_time <= self.exit_


@dataclass(frozen=True)
class TreeLabel:
    """Destination label for one tree: O(log n) words.

    ``light_edges`` lists the (parent, child) pairs of the non-heavy edges
    on the root-to-vertex path, ordered root-first; there are at most
    ``log2 n`` of them.
    """

    enter: int
    light_edges: Tuple[Tuple[NodeId, NodeId], ...] = ()

    def word_size(self) -> int:
        return 1 + 2 * len(self.light_edges)

    def next_light_hop(self, at: NodeId) -> Optional[NodeId]:
        """The light edge leaving ``at`` on the path to me, if any."""
        for u, v in self.light_edges:
            if u == at:
                return v
        return None


@dataclass(frozen=True)
class GraphLabel:
    """Destination label for the general-graph scheme: O(k log n) words.

    ``entries[i]`` describes level ``i``: the (approximate) ``i``-pivot
    ``w``, the advertised distance from the vertex to ``w``'s tree root
    along the cluster tree, and the vertex's :class:`TreeLabel` in ``w``'s
    tree.  A level whose pivot's cluster does not contain the vertex stores
    ``None`` (possible only on distance ties; see
    :mod:`repro.tz.graph_scheme`).
    """

    vertex: NodeId
    entries: Tuple[Optional[Tuple[NodeId, float, TreeLabel]], ...]

    def word_size(self) -> int:
        words = 1  # own id
        for entry in self.entries:
            words += 1  # presence tag
            if entry is not None:
                _, _, tree_label = entry
                words += 2 + tree_label.word_size()
        return words


@dataclass
class GraphTable:
    """Per-vertex table for the general-graph scheme: Õ(n^{1/k}) words.

    Maps the root of every cluster tree containing this vertex to the
    vertex's :class:`TreeTable` in that tree.
    """

    vertex: NodeId
    trees: Dict[TreeId, TreeTable] = field(default_factory=dict)

    def word_size(self) -> int:
        return 1 + sum(1 + table.word_size() for table in self.trees.values())

    def has_tree(self, root: TreeId) -> bool:
        return root in self.trees


@dataclass(frozen=True)
class Header:
    """Message header attached during routing: O(log n) words.

    For tree routing the header is just the destination's tree label.  For
    general-graph routing the source additionally commits to a tree
    (``tree``), after which every intermediate vertex routes purely within
    that tree.
    """

    tree: TreeId
    tree_label: TreeLabel

    def word_size(self) -> int:
        return 1 + self.tree_label.word_size()


@dataclass
class TreeRoutingScheme:
    """A complete exact routing scheme for one tree.

    Produced by both the centralized construction
    (:func:`repro.tz.tree_scheme.build_tree_scheme`) and the distributed one
    (:func:`repro.treerouting.scheme.build_distributed_tree_scheme`); the
    two are compared field by field in tests.
    """

    tree_id: TreeId
    root: NodeId
    tables: Dict[NodeId, TreeTable]
    labels: Dict[NodeId, TreeLabel]

    def max_table_words(self) -> int:
        return max(t.word_size() for t in self.tables.values())

    def max_label_words(self) -> int:
        return max(l.word_size() for l in self.labels.values())


@dataclass
class GraphRoutingScheme:
    """A complete compact routing scheme for a general graph."""

    k: int
    tables: Dict[NodeId, GraphTable]
    labels: Dict[NodeId, GraphLabel]
    tree_schemes: Dict[TreeId, TreeRoutingScheme]

    def max_table_words(self) -> int:
        return max(t.word_size() for t in self.tables.values())

    def max_label_words(self) -> int:
        return max(l.word_size() for l in self.labels.values())

    def mean_table_words(self) -> float:
        return sum(t.word_size() for t in self.tables.values()) / len(self.tables)
