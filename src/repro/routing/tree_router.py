"""The Thorup-Zwick tree-routing forwarding rule.

Section 3 recalls the rule: at an intermediate vertex ``y`` holding its
:class:`~repro.routing.artifacts.TreeTable` and given the destination's
:class:`~repro.routing.artifacts.TreeLabel`,

1. if the destination's DFS entry time is outside ``y``'s interval, the
   destination is not in ``y``'s subtree: forward to ``y``'s parent;
2. otherwise, if the label lists a light edge ``(y, x)``, forward to ``x``;
3. otherwise forward to ``y``'s heavy child.

This function is *pure*: it sees exactly the information a real router would
(its own table, the label from the header) -- the routing-phase simulator
builds on it and the tests check that no extra state could possibly be
consulted.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..errors import RoutingFailure
from .artifacts import TreeLabel, TreeTable

NodeId = Hashable


def tree_forward(at: NodeId, table: TreeTable, label: TreeLabel) -> Optional[NodeId]:
    """Next hop from ``at`` toward the vertex labelled ``label``.

    Returns ``None`` when ``at`` *is* the destination (DFS entry times are
    unique within a tree).  Raises :class:`RoutingFailure` if the table is
    inconsistent (no viable hop), which a correct scheme never triggers.
    """
    if table.enter == label.enter:
        return None
    if not table.contains(label.enter):
        if table.parent is None:
            raise RoutingFailure(
                f"vertex {at!r} is the root yet the target "
                f"(enter={label.enter}) is outside its interval"
            )
        return table.parent
    light = label.next_light_hop(at)
    if light is not None:
        return light
    if table.heavy is None:
        raise RoutingFailure(
            f"vertex {at!r} is a leaf yet the target (enter={label.enter}) "
            "is strictly inside its interval"
        )
    return table.heavy
