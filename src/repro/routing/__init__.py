"""Routing artifacts and the routing-phase simulator (S9 of DESIGN.md)."""

from .artifacts import (
    GraphLabel,
    GraphRoutingScheme,
    GraphTable,
    Header,
    TreeLabel,
    TreeRoutingScheme,
    TreeTable,
)
from .router import (
    RouteResult,
    StretchReport,
    measure_stretch,
    route_in_graph,
    route_in_tree,
    sample_pairs,
)
from .serialization import (
    graph_scheme_from_dict,
    graph_scheme_to_dict,
    load_scheme,
    save_scheme,
    tree_scheme_from_dict,
    tree_scheme_to_dict,
)
from .tree_router import tree_forward
from .validation import verify_graph_scheme, verify_tree_scheme

__all__ = [
    "GraphLabel",
    "GraphRoutingScheme",
    "GraphTable",
    "Header",
    "RouteResult",
    "StretchReport",
    "TreeLabel",
    "TreeRoutingScheme",
    "TreeTable",
    "measure_stretch",
    "route_in_graph",
    "route_in_tree",
    "sample_pairs",
    "graph_scheme_from_dict",
    "graph_scheme_to_dict",
    "load_scheme",
    "save_scheme",
    "tree_forward",
    "tree_scheme_from_dict",
    "tree_scheme_to_dict",
    "verify_graph_scheme",
    "verify_tree_scheme",
]
