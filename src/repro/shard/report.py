"""S20 report transport: ServeReports across the worker pipe, exactly.

Workers measure with the ordinary :class:`~repro.serve.ServeReport`; this
module flattens one to a plain JSON-able payload for the pipe and back
without losing anything the merge algebra needs: sketches round-trip
through :meth:`QuantileSketch.to_dict` (bucket-exact by construction),
exemplar payloads are already plain dicts, and the raw counters ride
next to their derived rates.  Query results travel as bare tuples — the
packed tables themselves never cross the boundary (REP008), only
measurements do.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from ..metrics.sketch import QuantileSketch
from ..serve.engine import ServeResult
from ..serve.harness import ServeReport

NodeId = Hashable

#: ServeReport fields copied verbatim (JSON-able scalars).
_SCALAR_FIELDS = (
    "workload", "queries", "seed", "mode", "cache_size",
    "compile_s", "serve_s", "throughput_qps",
    "hops_p50", "hops_p90", "hops_p99", "hops_max",
    "latency_us_p50", "latency_us_p90", "latency_us_p99",
    "cache_hit_rate", "failures",
    "slo_bound", "slo_fraction", "slo_target",
    "cache_hits", "cache_misses", "slo_within", "shards",
)


def report_payload(
    report: ServeReport,
    results: Optional[Sequence[ServeResult]] = None,
) -> Dict[str, Any]:
    """Flatten a report (and optionally its per-query results) for the pipe."""
    payload: Dict[str, Any] = {
        name: getattr(report, name) for name in _SCALAR_FIELDS
    }
    payload["packed"] = dict(report.packed)
    payload["sketches"] = {
        name: sketch.to_dict() for name, sketch in report.sketches.items()
    }
    payload["exemplars"] = [dict(x) for x in report.exemplars]
    payload["metrics"] = dict(report.metrics)
    if results is not None:
        payload["results"] = [
            (r.source, r.target, r.path, r.length, r.ok, r.error, r.cached)
            for r in results
        ]
    return payload


def payload_report(
    payload: Dict[str, Any],
) -> Tuple[ServeReport, Optional[List[ServeResult]]]:
    """Rebuild ``(report, results-or-None)`` from a pipe payload."""
    kwargs = {name: payload[name] for name in _SCALAR_FIELDS}
    report = ServeReport(
        **kwargs,
        packed=dict(payload["packed"]),
        sketches={
            name: QuantileSketch.from_dict(blob)
            for name, blob in payload["sketches"].items()
        },
        exemplars=[dict(x) for x in payload["exemplars"]],
        metrics=dict(payload["metrics"]),
    )
    raw = payload.get("results")
    if raw is None:
        return report, None
    results = [
        ServeResult(source, target, list(path), length, ok, error, cached)
        for source, target, path, length, ok, error, cached in raw
    ]
    return report, results


def shards_section(
    shard_reports: Sequence[ServeReport],
    *,
    seeds: Sequence[int],
    shm: bool,
    manifest: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """The RunRecord ``shards`` rows: one per worker plus provenance.

    Per-shard rows carry the partition sizes and per-shard measurements;
    the table-image provenance (segment size, backend) rides on row 0 so
    the record stays flat and diffable.
    """
    rows: List[Dict[str, Any]] = []
    for i, report in enumerate(shard_reports):
        row = {
            "shard": i,
            "seed": seeds[i],
            "queries": report.queries,
            "failures": report.failures,
            "serve_s": round(report.serve_s, 4),
            "throughput_qps": round(report.throughput_qps, 1),
            "cache_hit_rate": round(report.cache_hit_rate, 4),
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "shm": shm,
        }
        if i == 0 and manifest is not None:
            row["image_nbytes"] = manifest["nbytes"]
            row["image_backend"] = manifest["backend"]
        rows.append(row)
    return rows
