"""S20 table image: packed routing tables in one shared-memory buffer.

The serve compiler (:mod:`repro.serve.compile`) already interns vertex and
tree ids to dense ints and flattens every cluster tree into parallel
``enter``/``exit``/``parent``/``heavy`` lists.  This module lowers those
lists one step further, into **typed arrays laid out in a single byte
image** that N shard workers can map read-only through
:mod:`multiprocessing.shared_memory` — one copy of the tables per host, not
per process, which is the serving-tier analogue of the paper's low-memory
budget.

Layout.  Every column is an 8-byte array (``q`` = int64, ``d`` = float64)
at an 8-aligned offset; a JSON-able *manifest* records
``{name: (offset, count, code)}`` plus the interned **id universe** (every
vertex / tree id, encoded with the serialization codec so tuples, strs and
ints round-trip exactly).  Optional ids are lowered as ``-1`` and optional
weights as NaN; :func:`from_buffers` rehydrates both back to ``None`` so
the engine's reference-parity checks (``w is None`` → "not an edge")
behave byte-identically.

Backends.  The writer packs through ``numpy`` when available and through
:mod:`array` under ``REPRO_NO_NUMPY=1`` — the two paths must produce the
**same bytes** (tested array-for-array).  The reader deliberately hands the
engine ``memoryview.cast`` views in *both* backends: indexing a memoryview
yields native Python ints/floats, so the worker hot loop is type- and
byte-identical to the in-process engine no matter how the image was
written (numpy scalar types would leak into paths and comparisons).

Lifecycle.  :func:`seal_to_buffers` creates the segment (the caller owns
``unlink``); :func:`from_buffers` attaches by manifest alone — workers
never receive the packed objects themselves (lint rule REP008) — and
unregisters the attach-side resource-tracker entry so only the owner
cleans up.  ``AttachedTables.close`` releases every exported view before
closing the mapping; the compiled scheme it produced must not be used
afterwards.
"""

from __future__ import annotations

import json
import os
from array import array
from multiprocessing import shared_memory
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import InputError
from ..routing.serialization import decode_id, encode_id
from ..serve.compile import (
    CompiledGraphScheme,
    CompiledScheme,
    CompiledTreeScheme,
    DecisionProvenance,
    PackedEntry,
    PackedLabel,
    PackedTree,
    _bunch_levels,
    _decision_table,
    _provenance_table,
)

NodeId = Hashable

#: Manifest format version (bump on any layout change).
TABLE_FORMAT = 1

#: Sentinel universe index for "no such id" (root's parent, leaf's heavy).
NO_ID = -1

_NAN = float("nan")

#: Fixed column order — shared by the writer (layout) and the parity test.
_INT_CODE = "q"
_FLOAT_CODE = "d"


def _import_numpy():
    """Import numpy unless disabled via ``REPRO_NO_NUMPY=1`` (same gate as
    :mod:`repro.congest.vectorized`)."""
    if os.environ.get("REPRO_NO_NUMPY", "").strip() == "1":
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is an install extra
        return None
    return numpy


HAVE_NUMPY = _import_numpy() is not None


# ---------------------------------------------------------------------------
# Id universe
# ---------------------------------------------------------------------------

class _Universe:
    """Dense interning of ids keyed by their *encoded* form.

    Keying by the codec output (not the raw object) keeps ``1``, ``1.0``
    and ``True`` distinct — as dict keys they would collide.
    """

    def __init__(self) -> None:
        self.encoded: List[Any] = []
        self._index: Dict[str, int] = {}

    def index(self, value: NodeId) -> int:
        blob = encode_id(value)
        key = json.dumps(blob, sort_keys=True)
        idx = self._index.get(key)
        if idx is None:
            idx = self._index[key] = len(self.encoded)
            self.encoded.append(blob)
        return idx

    def opt_index(self, value: Optional[NodeId]) -> int:
        return NO_ID if value is None else self.index(value)


def _sort_key(value: NodeId) -> str:
    """Deterministic order for unordered id sets (frozensets)."""
    return json.dumps(encode_id(value), sort_keys=True)


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

class _Writer:
    """Accumulates named 8-byte columns into one contiguous image."""

    def __init__(self, backend: Optional[str]) -> None:
        if backend is None:
            backend = "numpy" if HAVE_NUMPY else "python"
        if backend not in ("numpy", "python"):
            raise InputError(f"unknown table backend {backend!r}")
        if backend == "numpy" and not HAVE_NUMPY:
            raise InputError("numpy backend requested but numpy is "
                             "unavailable (REPRO_NO_NUMPY=1?)")
        self.backend = backend
        self.arrays: Dict[str, Tuple[int, int, str]] = {}
        self._chunks: List[bytes] = []
        self._offset = 0

    def add(self, name: str, code: str, values: Sequence) -> None:
        if self.backend == "numpy":
            np = _import_numpy()
            dtype = np.int64 if code == _INT_CODE else np.float64
            raw = np.asarray(list(values), dtype=dtype).tobytes()
        else:
            raw = array(code, values).tobytes()
        self.arrays[name] = (self._offset, len(raw) // 8, code)
        self._chunks.append(raw)
        self._offset += len(raw)

    def payload(self) -> bytes:
        return b"".join(self._chunks)


class LoweredTables:
    """A lowered image not yet backed by shared memory (testable inline)."""

    def __init__(self, manifest: Dict[str, Any], payload: bytes) -> None:
        self.manifest = manifest
        self.payload = payload


def lower_compiled(
    compiled: CompiledScheme,
    *,
    backend: Optional[str] = None,
) -> LoweredTables:
    """Lower a compiled scheme into (manifest, payload bytes)."""
    uni = _Universe()
    writer = _Writer(backend)

    if isinstance(compiled, CompiledTreeScheme):
        kind = "tree"
        trees: List[PackedTree] = [compiled.tree]
        per_target = [(v, ((0, 0, 0.0, label),))
                      for v, label in compiled.labels.items()]
        scalars: Dict[str, Any] = {
            "vertex_count": compiled.vertex_count,
            "default_budget": compiled.default_budget,
            "tree_id_u": uni.index(compiled.tree_id),
            "root_u": uni.opt_index(compiled.root),
        }
    elif isinstance(compiled, CompiledGraphScheme):
        kind = "graph"
        trees = compiled.trees
        per_target = [
            (v, tuple((e.level, e.tree_index, e.dist_to_root, e.label)
                      for e in packed))
            for v, packed in compiled.entries.items()
        ]
        scalars = {
            "k": compiled.k,
            "n": compiled.n,
            "default_budget": compiled.default_budget,
        }
    else:
        raise InputError(f"cannot lower {type(compiled).__name__}")

    # -- tree columns (concatenated over trees, tree_sizes slices them) -----
    t_cols: Dict[str, List] = {name: [] for name in (
        "t_ids_u", "t_enter", "t_exit", "t_parent", "t_parent_u",
        "t_heavy", "t_heavy_u")}
    t_fcols: Dict[str, List[float]] = {name: [] for name in (
        "t_parent_w", "t_heavy_w", "t_rootdist")}
    for tree in trees:
        t_cols["t_ids_u"].extend(uni.index(v) for v in tree.ids)
        t_cols["t_enter"].extend(tree.enter)
        t_cols["t_exit"].extend(tree.exit_)
        t_cols["t_parent"].extend(tree.parent)
        t_cols["t_parent_u"].extend(uni.opt_index(v) for v in tree.parent_id)
        t_cols["t_heavy"].extend(tree.heavy)
        t_cols["t_heavy_u"].extend(uni.opt_index(v) for v in tree.heavy_id)
        t_fcols["t_parent_w"].extend(
            _NAN if w is None else float(w) for w in tree.parent_w)
        t_fcols["t_heavy_w"].extend(
            _NAN if w is None else float(w) for w in tree.heavy_w)
        t_fcols["t_rootdist"].extend(float(x) for x in tree.root_distance)

    # -- label columns (entry-offset indexed, light-offset indexed) ---------
    label_targets_u: List[int] = []
    entry_offsets = [0]
    entry_level: List[int] = []
    entry_tree: List[int] = []
    entry_enter: List[int] = []
    entry_words: List[int] = []
    entry_dist: List[float] = []
    light_offsets = [0]
    light_li: List[int] = []
    light_next_li: List[int] = []
    light_next_u: List[int] = []
    light_w: List[float] = []
    for v, entries in per_target:
        label_targets_u.append(uni.index(v))
        for level, tree_index, dist, label in entries:
            entry_level.append(level)
            entry_tree.append(tree_index)
            entry_dist.append(float(dist))
            entry_enter.append(label.enter)
            entry_words.append(label.words)
            for li, (nli, nid, w) in label.light.items():
                light_li.append(li)
                light_next_li.append(nli)
                light_next_u.append(uni.index(nid))
                light_w.append(_NAN if w is None else float(w))
            light_offsets.append(len(light_li))
        entry_offsets.append(len(entry_level))

    writer.add("tree_sizes", _INT_CODE, [t.size for t in trees])
    if kind == "graph":
        writer.add("tree_ids_u", _INT_CODE,
                   [uni.index(t.tree_id) for t in trees])
        writer.add("table_ids_u", _INT_CODE,
                   [uni.index(v)
                    for v in sorted(compiled.table_ids, key=_sort_key)])
    for name, values in t_cols.items():
        writer.add(name, _INT_CODE, values)
    for name, values in t_fcols.items():
        writer.add(name, _FLOAT_CODE, values)
    writer.add("label_targets_u", _INT_CODE, label_targets_u)
    writer.add("entry_offsets", _INT_CODE, entry_offsets)
    writer.add("entry_level", _INT_CODE, entry_level)
    writer.add("entry_tree", _INT_CODE, entry_tree)
    writer.add("entry_enter", _INT_CODE, entry_enter)
    writer.add("entry_words", _INT_CODE, entry_words)
    writer.add("entry_dist", _FLOAT_CODE, entry_dist)
    writer.add("light_offsets", _INT_CODE, light_offsets)
    writer.add("light_li", _INT_CODE, light_li)
    writer.add("light_next_li", _INT_CODE, light_next_li)
    writer.add("light_next_u", _INT_CODE, light_next_u)
    writer.add("light_w", _FLOAT_CODE, light_w)

    payload = writer.payload()
    manifest = {
        "format": TABLE_FORMAT,
        "kind": kind,
        "backend": writer.backend,
        "nbytes": len(payload),
        "scalars": scalars,
        "universe": uni.encoded,
        "arrays": {name: list(spec) for name, spec in writer.arrays.items()},
    }
    return LoweredTables(manifest, payload)


# ---------------------------------------------------------------------------
# Shared-memory seal / attach
# ---------------------------------------------------------------------------

def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop a spawn-started worker's resource-tracker registration.

    A spawned process runs its *own* resource tracker: attaching registers
    the segment there, and when the worker exits its tracker would warn
    about a "leaked" segment and unlink it out from under the owner.
    """
    try:  # pragma: no branch
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


class SealedTables:
    """An owned shared-memory image: the sealer closes *and* unlinks."""

    def __init__(self, manifest: Dict[str, Any],
                 shm: shared_memory.SharedMemory) -> None:
        self.manifest = manifest
        self.shm = shm
        self.name = shm.name
        self._closed = False
        self._unlinked = False

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            pass

    def unlink(self) -> None:
        """Destroy the segment system-wide (idempotent, crash-tolerant)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SealedTables":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
        self.unlink()


def seal_to_buffers(
    compiled: CompiledScheme,
    *,
    backend: Optional[str] = None,
) -> SealedTables:
    """Lower ``compiled`` and publish the image in a shared-memory segment.

    The returned :class:`SealedTables` owns the segment: callers must
    ``close()`` and ``unlink()`` it (or use it as a context manager).  Its
    ``manifest`` — a small JSON-able dict including the segment name — is
    all a worker needs to :func:`from_buffers` the tables back.
    """
    lowered = lower_compiled(compiled, backend=backend)
    shm = shared_memory.SharedMemory(
        create=True, size=max(1, len(lowered.payload)))
    shm.buf[:len(lowered.payload)] = lowered.payload
    manifest = dict(lowered.manifest)
    manifest["shm"] = shm.name
    return SealedTables(manifest, shm)


class AttachedTables:
    """A compiled scheme rebuilt over zero-copy views of a table image."""

    def __init__(
        self,
        manifest: Dict[str, Any],
        buffer: Any,
        shm: Optional[shared_memory.SharedMemory] = None,
    ) -> None:
        if manifest.get("format") != TABLE_FORMAT:
            raise InputError(
                f"table image format {manifest.get('format')!r} != "
                f"{TABLE_FORMAT} (re-seal with this version)")
        self.manifest = manifest
        self._shm = shm
        self._views: List[memoryview] = []
        base = memoryview(buffer)
        self._views.append(base)
        if not base.readonly:
            base = base.toreadonly()
            self._views.append(base)
        arrays: Dict[str, memoryview] = {}
        for name, (offset, count, code) in manifest["arrays"].items():
            view = base[offset:offset + 8 * count].cast(code)
            self._views.append(view)
            arrays[name] = view
        self.arrays = arrays
        # _rebuild slices per-tree windows out of the column views; every
        # slice is itself an export of the mapping and must be released
        # before the segment can close, so they register here too.
        self.compiled = _rebuild(manifest, arrays, self._views.append)
        self._closed = False

    def close(self) -> None:
        """Release every exported view, then the mapping (idempotent).

        The ``compiled`` scheme built from this image must not be used
        after close — its hot arrays point into the released buffer.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        for view in reversed(self._views):
            view.release()
        self._views = []
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - external view alive
                pass

    def __enter__(self) -> "AttachedTables":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def from_buffers(
    manifest: Dict[str, Any],
    buffer: Any = None,
    *,
    untrack: bool = False,
) -> AttachedTables:
    """Rebuild a compiled scheme from a manifest (+ optional buffer).

    With ``buffer=None`` the shared-memory segment named in the manifest is
    attached — the worker-side entry point: the manifest dict is the *only*
    thing that crosses the process boundary (REP008).  Pass an explicit
    buffer (e.g. ``LoweredTables.payload``) to rebuild without shared
    memory, which is how the differential tests run in-process.

    ``untrack=True`` drops the attach-side resource-tracker registration;
    pass it only when the attaching process runs its **own** tracker
    (e.g. a process started outside :mod:`multiprocessing`), which would
    otherwise unlink the owner's segment when the attacher exits.  Both
    fork- and spawn-started :class:`~repro.shard.pool.ShardPool` workers
    share the owner's tracker (on POSIX the tracker fd rides in spawn
    preparation data) and must leave its registration alone — the
    tracker's cache is one set per name, so an attach-side unregister
    would clobber the owner's and turn the final unlink into tracker
    noise.
    """
    if buffer is not None:
        return AttachedTables(manifest, buffer)
    name = manifest.get("shm")
    if not name:
        raise InputError("manifest has no shm segment name and no buffer "
                         "was supplied")
    shm = shared_memory.SharedMemory(name=name)
    if untrack:
        _untrack(shm)
    return AttachedTables(manifest, shm.buf, shm=shm)


# ---------------------------------------------------------------------------
# Reconstruction
# ---------------------------------------------------------------------------

def _rebuild(manifest: Dict[str, Any],
             arrays: Dict[str, memoryview],
             keep) -> CompiledScheme:
    universe = [decode_id(blob) for blob in manifest["universe"]]
    trees = _rebuild_trees(manifest, arrays, universe, keep)
    labels = _rebuild_labels(manifest, arrays, universe, trees)
    scalars = manifest["scalars"]

    if manifest["kind"] == "tree":
        compiled_t = object.__new__(CompiledTreeScheme)
        compiled_t.tree_id = universe[scalars["tree_id_u"]]
        root_u = scalars["root_u"]
        compiled_t.root = None if root_u == NO_ID else universe[root_u]
        compiled_t.vertex_count = scalars["vertex_count"]
        compiled_t.default_budget = scalars["default_budget"]
        compiled_t.tree = trees[0]
        compiled_t.labels = {
            target: entries[0][3] for target, entries in labels
        }
        compiled_t.nodes = list(trees[0].ids)
        compiled_t.provenance = DecisionProvenance(
            level=0, tree_id=compiled_t.tree_id, tree_index=0,
            root=compiled_t.root, dist_to_root=0.0,
            tree_size=trees[0].size, label_words=0,
        )
        return compiled_t

    compiled_g = object.__new__(CompiledGraphScheme)
    compiled_g.k = scalars["k"]
    compiled_g.n = scalars["n"]
    compiled_g.default_budget = scalars["default_budget"]
    compiled_g.table_ids = frozenset(
        universe[u] for u in arrays["table_ids_u"])
    compiled_g.tree_ids = [universe[u] for u in arrays["tree_ids_u"]]
    compiled_g.tree_index = {
        tid: i for i, tid in enumerate(compiled_g.tree_ids)}
    compiled_g.trees = trees
    compiled_g.entries = {
        target: tuple(
            PackedEntry(level=level, tree_index=ti, dist_to_root=dist,
                        label=label)
            for level, ti, dist, label in entries)
        for target, entries in labels
    }
    compiled_g.nodes = list(compiled_g.entries)
    compiled_g.decisions = _decision_table(trees, compiled_g.entries)
    compiled_g.provenance = _provenance_table(trees, compiled_g.entries)
    compiled_g.bunch_levels = _bunch_levels(compiled_g.entries)
    return compiled_g


def _rebuild_trees(
    manifest: Dict[str, Any],
    arrays: Dict[str, memoryview],
    universe: List[NodeId],
    keep,
) -> List[PackedTree]:
    sizes = list(arrays["tree_sizes"])
    if manifest["kind"] == "graph":
        tree_ids = [universe[u] for u in arrays["tree_ids_u"]]
    else:
        tree_ids = [universe[manifest["scalars"]["tree_id_u"]]]

    def window(name: str, start: int, end: int) -> memoryview:
        view = arrays[name][start:end]
        keep(view)
        return view

    trees: List[PackedTree] = []
    start = 0
    for ti, size in enumerate(sizes):
        end = start + size
        tree = PackedTree(tree_id=tree_ids[ti])
        tree.ids = [universe[u] for u in arrays["t_ids_u"][start:end]]
        tree.local = {v: i for i, v in enumerate(tree.ids)}
        # Hot integer columns stay zero-copy views into the shared image.
        tree.enter = window("t_enter", start, end)
        tree.exit_ = window("t_exit", start, end)
        tree.parent = window("t_parent", start, end)
        tree.heavy = window("t_heavy", start, end)
        tree.root_distance = window("t_rootdist", start, end)
        # Optional columns rehydrate their None sentinels (-1 / NaN): the
        # engine's edge checks compare against None, not a sentinel.
        tree.parent_id = [None if u == NO_ID else universe[u]
                          for u in arrays["t_parent_u"][start:end]]
        tree.heavy_id = [None if u == NO_ID else universe[u]
                         for u in arrays["t_heavy_u"][start:end]]
        tree.parent_w = [None if w != w else w
                         for w in arrays["t_parent_w"][start:end]]
        tree.heavy_w = [None if w != w else w
                        for w in arrays["t_heavy_w"][start:end]]
        trees.append(tree.seal())
        start = end
    return trees


def _rebuild_labels(
    manifest: Dict[str, Any],
    arrays: Dict[str, memoryview],
    universe: List[NodeId],
    trees: List[PackedTree],
) -> List[Tuple[NodeId, List[Tuple[int, int, float, PackedLabel]]]]:
    entry_offsets = arrays["entry_offsets"]
    light_offsets = arrays["light_offsets"]
    entry_level = arrays["entry_level"]
    entry_tree = arrays["entry_tree"]
    entry_enter = arrays["entry_enter"]
    entry_words = arrays["entry_words"]
    entry_dist = arrays["entry_dist"]
    light_li = arrays["light_li"]
    light_next_li = arrays["light_next_li"]
    light_next_u = arrays["light_next_u"]
    light_w = arrays["light_w"]
    out: List[Tuple[NodeId, List[Tuple[int, int, float, PackedLabel]]]] = []
    for i, target_u in enumerate(arrays["label_targets_u"]):
        entries: List[Tuple[int, int, float, PackedLabel]] = []
        for e in range(entry_offsets[i], entry_offsets[i + 1]):
            light: Dict[int, Tuple[int, NodeId, Optional[float]]] = {}
            for j in range(light_offsets[e], light_offsets[e + 1]):
                w = light_w[j]
                light[light_li[j]] = (
                    light_next_li[j],
                    universe[light_next_u[j]],
                    None if w != w else w,
                )
            entries.append((
                entry_level[e], entry_tree[e], entry_dist[e],
                PackedLabel(enter=entry_enter[e], light=light,
                            words=entry_words[e]),
            ))
        out.append((universe[target_u], entries))
    return out
