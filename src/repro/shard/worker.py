"""S20 shard worker: one process (or thread), one engine, one pipe.

A worker is deliberately thin: it **attaches** the shared table image
from the manifest in its :class:`WorkerSpec` (never receives the packed
objects — lint rule REP008), builds an ordinary
:class:`~repro.serve.ServeEngine` with its own LRU cache and optional
:class:`~repro.metrics.ServeMetrics` bundle, and then answers a tiny
message protocol over its pipe:

========  ==============================================================
op        reply
========  ==============================================================
"serve"   ``("report", payload)`` — runs the partition through
          :func:`~repro.serve.harness.serve_pairs` (the exact
          single-process measurement path) with the per-call stream
          parameters (workload/seed/SLO) carried in the message, and
          ships the report (plus per-query results when
          ``collect_results``)
"cache"   ``("cache", entries)`` — the LRU's decisions oldest-first,
          for merged warm-cache persistence (``--cache-file``)
"stop"    none; the worker cleans up and exits
"crash"   none; dies via ``os._exit`` *skipping* all cleanup — a test
          hook proving the pool's leaked-segment guard
========  ==============================================================

Any serve-time exception is reported as ``("error", traceback)`` rather
than killing the worker, so one poisoned query slice cannot strand the
pool.  ``worker_main`` runs equally as a forked/spawned process target or
on an in-process thread (the pool's ``start="thread"`` mode, which is
also what lets coverage see this file — pytest-cov does not follow child
processes).
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.serve import ServeMetrics
from ..serve.compile import CompiledScheme
from ..serve.engine import DecisionCache, ServeEngine
from ..serve.harness import serve_pairs
from .report import report_payload
from .tables import AttachedTables, from_buffers


@dataclass
class WorkerSpec:
    """Everything a worker needs, picklable and packed-table-free.

    ``manifest`` is the shared-memory table manifest (attach-by-name);
    ``None`` means the compiled scheme is fork-inherited (``--no-shm``).
    ``rng_seed`` is this shard's :func:`~repro.shard.plan.split_seed`
    stream — provenance recorded in the RunRecord ``shards`` section and
    reserved for worker-local seeded consumers; the *workload* seed rides
    on each serve message because it names the shared stream and must
    match across shards for report merging.
    """

    shard: int
    workers: int
    start: str
    manifest: Optional[Dict[str, Any]] = None
    mode: str = "first"
    cache_size: int = 4096
    metrics: bool = True
    exemplar_limit: int = 8
    rng_seed: int = 0
    collect_results: bool = False
    cache_entries: Optional[List[Tuple[Any, Any]]] = field(default=None)


def worker_main(
    conn: Any,
    spec: WorkerSpec,
    graph: Any,
    inherited: Optional[CompiledScheme] = None,
) -> None:
    """Worker entry point (process target or thread body)."""
    attached: Optional[AttachedTables] = None
    try:
        if spec.manifest is not None:
            # Attach by manifest name only.  Both fork and spawn children
            # share the pool's resource tracker (the tracker fd rides in
            # spawn preparation data on POSIX), so the attach must leave
            # the owner's registration alone (see tables.from_buffers).
            attached = from_buffers(spec.manifest)
            compiled = attached.compiled
        else:
            compiled = inherited
        if compiled is None:
            raise ValueError("worker has neither a table manifest nor a "
                             "fork-inherited compiled scheme")
        cache = DecisionCache(spec.cache_size)
        if spec.cache_entries:
            cache.preload(spec.cache_entries)
        engine = ServeEngine(compiled, mode=spec.mode, cache=cache)
        # One bundle for the worker's lifetime: engine counters and
        # exemplar reservoirs accumulate across serve ops exactly like a
        # pre-warmed single-process engine's do.
        metrics = (ServeMetrics(exemplar_limit=spec.exemplar_limit)
                   if spec.metrics else None)

        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            op = msg[0]
            if op == "serve":
                try:
                    pairs, params = msg[1], msg[2]
                    report, results = serve_pairs(
                        engine, graph, pairs,
                        workload=params["workload"],
                        seed=params["seed"],
                        slo=params["slo"],
                        slo_bound=params["slo_bound"],
                        slo_target=params["slo_target"],
                        metrics=metrics,
                    )
                    payload = report_payload(
                        report,
                        results if spec.collect_results else None)
                    conn.send(("report", payload))
                except Exception:
                    conn.send(("error", traceback.format_exc()))
            elif op == "cache":
                conn.send(("cache", engine.cache.entries()))
            elif op == "stop":
                break
            elif op == "crash":  # pragma: no cover - exercised via fork
                os._exit(17)
            else:
                conn.send(("error", f"unknown worker op {op!r}"))
    finally:
        if attached is not None:
            attached.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
