"""S20 shard plan: deterministic query partitioning and seed splitting.

A shard plan must be a *pure function of the query* — never of arrival
order, worker count changes aside — so that (a) the same ``(source,
target)`` pair always lands on the same worker (its LRU cache then sees
every repeat, making the summed shard hit counters equal the one-process
counters when no eviction occurs), and (b) reports merge order-
insensitively.  Python's builtin ``hash`` is salted per process
(``PYTHONHASHSEED``), which would scatter a pair differently in every
worker and test run; the plan hashes the **serialized** id pair with
crc32 instead, which is stable across processes, platforms and runs.
"""

from __future__ import annotations

import json
import zlib
from typing import Hashable, List, Sequence, Tuple

from ..errors import InputError
from ..routing.serialization import encode_id

NodeId = Hashable
Pair = Tuple[NodeId, NodeId]

#: Domain separator so shard hashing can never collide with other crc uses.
_PLAN_TAG = b"repro.shard.plan:"


def shard_of(source: NodeId, target: NodeId, workers: int) -> int:
    """The shard index serving ``source -> target`` among ``workers``."""
    if workers <= 0:
        raise InputError(f"workers must be positive, got {workers}")
    if workers == 1:
        return 0
    blob = json.dumps([encode_id(source), encode_id(target)],
                      sort_keys=True, separators=(",", ":"))
    return zlib.crc32(_PLAN_TAG + blob.encode("utf-8")) % workers


def partition_pairs(
    pairs: Sequence[Pair],
    workers: int,
) -> Tuple[List[List[Pair]], List[List[int]]]:
    """Split a pair stream into per-shard slices, preserving stream order.

    Returns ``(slices, indices)`` where ``indices[s][j]`` is the position
    in the original stream of ``slices[s][j]`` — the pool uses it to
    reassemble per-query results in stream order, so the sharded result
    list is position-for-position comparable with the in-process engine's.
    """
    if workers <= 0:
        raise InputError(f"workers must be positive, got {workers}")
    slices: List[List[Pair]] = [[] for _ in range(workers)]
    indices: List[List[int]] = [[] for _ in range(workers)]
    for i, (u, v) in enumerate(pairs):
        s = shard_of(u, v, workers)
        slices[s].append((u, v))
        indices[s].append(i)
    return slices, indices


def split_seed(seed: int, shard: int, workers: int) -> int:
    """Derive shard ``shard``-of-``workers``'s rng seed from the run seed.

    Stable, collision-resistant within a run (crc over the tagged triple),
    and distinct from the parent seed so a worker-local consumer (tracer
    eviction rng, future sampled subsystems) never replays the parent's
    stream.  Recorded per shard in the RunRecord ``shards`` section.
    """
    if not 0 <= shard < workers:
        raise InputError(f"shard {shard} out of range for {workers} workers")
    blob = f"{seed}:{shard}:{workers}".encode("utf-8")
    return zlib.crc32(_PLAN_TAG + blob)
