"""S20: sharded, shared-memory serving (docs/sharding.md).

One process compiles and **seals** the packed routing tables into a
shared-memory image; N worker processes attach it zero-copy and serve
deterministic partitions of the query stream with their own LRU caches
and metrics; the per-shard reports merge back **exactly** — the merged
N-shard :class:`~repro.serve.ServeReport` equals the single-process one
on the same stream.

* :mod:`~repro.shard.tables` -- lower compiled schemes to typed-array
  columns in one ``multiprocessing.shared_memory`` segment
  (``seal_to_buffers``) and rebuild byte-identical engines from the
  manifest (``from_buffers``);
* :mod:`~repro.shard.plan` -- salt-free deterministic query partitioning
  and per-shard seed splitting;
* :mod:`~repro.shard.worker` -- the worker loop: attach, serve, report;
* :mod:`~repro.shard.pool` -- :class:`ShardPool` lifecycle plus the
  ``run_sharded`` / ``run_sharded_recorded`` entry points behind
  ``repro serve --workers N``;
* :mod:`~repro.shard.report` -- report transport across the worker pipe
  and the RunRecord ``shards`` section.
"""

from .plan import partition_pairs, shard_of, split_seed
from .pool import ShardPool, run_sharded, run_sharded_recorded
from .report import payload_report, report_payload, shards_section
from .tables import (
    NO_ID,
    TABLE_FORMAT,
    AttachedTables,
    LoweredTables,
    SealedTables,
    from_buffers,
    lower_compiled,
    seal_to_buffers,
)
from .worker import WorkerSpec, worker_main

__all__ = [
    "NO_ID",
    "TABLE_FORMAT",
    "AttachedTables",
    "LoweredTables",
    "SealedTables",
    "ShardPool",
    "WorkerSpec",
    "from_buffers",
    "lower_compiled",
    "partition_pairs",
    "payload_report",
    "report_payload",
    "run_sharded",
    "run_sharded_recorded",
    "seal_to_buffers",
    "shard_of",
    "shards_section",
    "split_seed",
    "worker_main",
]
