"""S20 shard pool: N workers, one shared table image, one exact report.

:class:`ShardPool` is the parent side of the sharded serving tier.  On
construction it **seals** the compiled scheme into a shared-memory table
image (:func:`~repro.shard.tables.seal_to_buffers`) and starts ``workers``
workers, each of which attaches the image by manifest name — zero-copy,
near-zero fork cost, and never a pickled packed table on the pipe
(lint rule REP008).  ``serve`` then:

1. partitions the pair stream deterministically
   (:func:`~repro.shard.plan.partition_pairs` — same pair, same shard,
   always), so each worker's LRU cache sees every repeat of its pairs;
2. runs the partitions concurrently through the workers' ordinary
   :func:`~repro.serve.harness.serve_pairs` measurement cores;
3. merges the shard reports **exactly** via :meth:`ServeReport.merge`
   (counters sum, sketches bucket-exact merge, SLO recomputed on summed
   counters) and reassembles per-query results in stream order.

Start modes: ``fork`` (default; processes, table image via shm or
inherited memory), ``spawn`` (processes with a fresh interpreter —
requires shm, since the compiled scheme must never be pickled across),
and ``thread`` (in-process; what the unit tests and pytest-cov use —
coverage does not follow child processes).

Lifecycle: the pool owns the shm segment.  ``close()`` is idempotent,
registered with :mod:`atexit`, and runs unlink even when a worker died
mid-serve — the leaked-segment guard the lifecycle tests exercise.
"""

from __future__ import annotations

import atexit
import queue
import time
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import InputError, ShardError
from ..serve.compile import CompiledGraphScheme, CompiledScheme, Scheme, compile_scheme
from ..serve.engine import ServeResult
from ..serve.harness import ServeReport, slo_verdict
from ..serve.workloads import make_workload
from ..telemetry import events as _tele
from ..telemetry.runrecord import RunRecord, make_run_record
from .plan import partition_pairs, shard_of, split_seed
from .report import payload_report, shards_section
from .tables import SealedTables, seal_to_buffers
from .worker import WorkerSpec, worker_main

NodeId = Hashable
Pair = Tuple[NodeId, NodeId]

_STARTS = ("fork", "spawn", "thread")


class _InlineConn:
    """One end of an in-process duplex channel (``start="thread"``).

    Mirrors the slice of the ``multiprocessing.Connection`` API the pool
    and worker use: ``send``/``recv``/``close``, with ``recv`` raising
    ``EOFError`` after the peer closes — so ``worker_main`` cannot tell
    it is not talking to a real pipe.
    """

    _EOF = object()

    def __init__(self, inbox: "queue.Queue[Any]",
                 outbox: "queue.Queue[Any]") -> None:
        self.inbox = inbox
        self.outbox = outbox
        self._closed = False

    @classmethod
    def pipe(cls) -> Tuple["_InlineConn", "_InlineConn"]:
        a_to_b: "queue.Queue[Any]" = queue.Queue()
        b_to_a: "queue.Queue[Any]" = queue.Queue()
        return cls(b_to_a, a_to_b), cls(a_to_b, b_to_a)

    def send(self, obj: Any) -> None:
        if self._closed:
            raise OSError("send on closed _InlineConn")
        self.outbox.put(obj)

    def recv(self) -> Any:
        msg = self.inbox.get()
        if msg is self._EOF:
            raise EOFError
        return msg

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.outbox.put(self._EOF)


class ShardPool:
    """N serving workers over one sealed table image, merged exactly."""

    def __init__(
        self,
        compiled: CompiledScheme,
        graph: nx.Graph,
        *,
        workers: int,
        shm: bool = True,
        start: str = "fork",
        mode: str = "first",
        cache_size: int = 4096,
        metrics: bool = True,
        exemplar_limit: int = 8,
        seed: int = 0,
        cache_entries: Optional[Sequence[Tuple[Any, Any]]] = None,
        collect_results: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        if workers <= 0:
            raise InputError(f"workers must be positive, got {workers}")
        if start not in _STARTS:
            raise InputError(
                f"unknown start mode {start!r}; expected one of {_STARTS}")
        if start == "spawn" and not shm:
            raise InputError(
                "spawn workers require the shared-memory image: without "
                "shm the compiled scheme would have to be pickled across "
                "the process boundary (forbidden, REP008)")
        self.compiled = compiled
        self.graph = graph
        self.workers = workers
        self.shm = shm
        self.start = start
        self.mode = mode
        self.cache_size = cache_size
        self.metrics = metrics
        self.exemplar_limit = exemplar_limit
        self.seed = seed
        self.seeds = [split_seed(seed, s, workers) for s in range(workers)]
        self.collect_results = collect_results
        self._closed = False
        self._broken = False

        self.sealed: Optional[SealedTables] = None
        if shm:
            with _tele.span("shard/seal", workers=workers):
                self.sealed = seal_to_buffers(compiled, backend=backend)
            _tele.emit("shard.image_nbytes",
                       self.sealed.manifest["nbytes"])
        self.manifest = self.sealed.manifest if self.sealed else None

        # Warm-cache entries preload on the worker that will serve the
        # pair (same crc plan as serving), so a restored pool hits at
        # least as often as the run that saved the cache.
        preload: List[List[Tuple[Any, Any]]] = [[] for _ in range(workers)]
        for key, value in cache_entries or ():
            preload[shard_of(key[0], key[1], workers)].append((key, value))

        self._conns: List[Any] = []
        self._procs: List[Any] = []
        try:
            for s in range(workers):
                spec = WorkerSpec(
                    shard=s,
                    workers=workers,
                    start=start,
                    manifest=self.manifest,
                    mode=mode,
                    cache_size=cache_size,
                    metrics=metrics,
                    exemplar_limit=exemplar_limit,
                    rng_seed=self.seeds[s],
                    collect_results=collect_results,
                    cache_entries=preload[s] or None,
                )
                inherited = compiled if not shm else None
                if start == "thread":
                    import threading

                    parent, child = _InlineConn.pipe()
                    proc: Any = threading.Thread(
                        target=worker_main,
                        args=(child, spec, graph, inherited),
                        daemon=True,
                    )
                else:
                    import multiprocessing as mp

                    ctx = mp.get_context(start)
                    parent, child = ctx.Pipe(duplex=True)
                    # Under fork, args are inherited memory, not pickles;
                    # `inherited` is None in every shm/spawn configuration.
                    proc = ctx.Process(  # lint: ignore[REP008] -- fork-inherited, never pickled
                        target=worker_main,
                        args=(child, spec, graph, inherited),
                        daemon=True,
                    )
                proc.start()
                if start != "thread":
                    child.close()  # parent keeps only its end
                self._conns.append(parent)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise
        atexit.register(self.close)

    # -- serving -------------------------------------------------------------

    def serve(
        self,
        pairs: Sequence[Pair],
        *,
        workload: str = "pairs",
        seed: Optional[int] = None,
        slo: bool = True,
        slo_bound: Optional[float] = None,
        slo_target: float = 0.99,
    ) -> Tuple[ServeReport, Optional[List[ServeResult]]]:
        """Serve a pair stream across the workers; merged report back.

        The parent resolves the SLO default (paper ``4k-3``) before
        dispatch so every shard scores against the same bound, then
        merges with :meth:`ServeReport.merge`.  When the pool was built
        with ``collect_results``, the second element is the per-query
        results reassembled in stream order (position-for-position
        comparable with a single-process run); otherwise ``None``.
        """
        if self._closed:
            raise ShardError("serve on a closed ShardPool")
        if self._broken:
            raise ShardError("ShardPool is broken (a worker died)")
        if seed is None:
            seed = self.seed
        if (slo and slo_bound is None
                and isinstance(self.compiled, CompiledGraphScheme)):
            slo_bound = 4.0 * self.compiled.k - 3.0
        params = {
            "workload": workload,
            "seed": seed,
            "slo": slo,
            "slo_bound": slo_bound,
            "slo_target": slo_target,
        }
        slices, indices = partition_pairs(pairs, self.workers)
        with _tele.span("shard/serve", workers=self.workers,
                        queries=len(pairs)):
            for conn, part in zip(self._conns, slices):
                self._send(conn, ("serve", part, params))
            payloads = [self._recv(conn, "report") for conn in self._conns]

        reports: List[ServeReport] = []
        results: Optional[List[Optional[ServeResult]]] = (
            [None] * len(pairs) if self.collect_results else None)
        for s, payload in enumerate(payloads):
            report, shard_results = payload_report(payload)
            reports.append(report)
            if results is not None and shard_results is not None:
                for j, r in zip(indices[s], shard_results):
                    results[j] = r
        merged = ServeReport.merge(
            reports,
            exemplar_limit=self.exemplar_limit if self.metrics else None,
        )
        self._last_reports = reports
        return merged, results  # type: ignore[return-value]

    def collect_cache_entries(self) -> List[Tuple[Any, Any]]:
        """Every worker's LRU decisions, oldest-first per shard.

        Shards are disjoint by plan, so concatenation loses nothing; a
        future pool (any worker count) re-partitions on preload.
        """
        if self._closed or self._broken:
            raise ShardError("cache collection on a closed/broken pool")
        for conn in self._conns:
            self._send(conn, ("cache",))
        entries: List[Tuple[Any, Any]] = []
        for conn in self._conns:
            entries.extend(self._recv(conn, "cache"))
        return entries

    @property
    def shard_reports(self) -> List[ServeReport]:
        """Per-shard reports from the most recent ``serve`` call."""
        return list(getattr(self, "_last_reports", []))

    # -- pipe plumbing -------------------------------------------------------

    def _send(self, conn: Any, msg: Tuple[Any, ...]) -> None:
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            self._broken = True
            raise ShardError(f"worker pipe closed unexpectedly: {exc}")

    def _recv(self, conn: Any, want: str) -> Any:
        try:
            tag, body = conn.recv()
        except (EOFError, ConnectionResetError, OSError):
            self._broken = True
            raise ShardError(
                "worker died before replying (EOF on pipe); the pool's "
                "close() still unlinks the shared segment")
        if tag == "error":
            self._broken = True
            raise ShardError(f"worker failed:\n{body}")
        if tag != want:
            self._broken = True
            raise ShardError(f"protocol error: expected {want!r}, "
                             f"got {tag!r}")
        return body

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop workers and destroy the shared segment (idempotent).

        Runs the unlink even when workers are already dead or never
        started — the pool owns the segment, so no exit path may leak
        it.  Registered with :mod:`atexit` as a crash backstop.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=5.0)
                if proc.is_alive() and hasattr(proc, "terminate"):
                    proc.terminate()  # pragma: no cover - stuck worker
                    proc.join(timeout=1.0)
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already torn down
                    pass
        finally:
            if self.sealed is not None:
                self.sealed.close()
                self.sealed.unlink()
            atexit.unregister(self.close)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# One-shot entry points (the CLI path)
# ---------------------------------------------------------------------------

def run_sharded(
    scheme: Scheme,
    graph: nx.Graph,
    *,
    workers: int,
    workload: str = "uniform",
    queries: int = 1000,
    seed: int = 0,
    mode: str = "first",
    cache_size: int = 4096,
    zipf_alpha: float = 1.1,
    slo_bound: Optional[float] = None,
    slo_target: float = 0.99,
    shm: bool = True,
    start: str = "fork",
    cache_entries: Optional[Sequence[Tuple[Any, Any]]] = None,
    cache_out: Optional[List[Tuple[Any, Any]]] = None,
    collect_results: bool = False,
    pool_out: Optional[List[ShardPool]] = None,
) -> Tuple[ServeReport, Optional[List[ServeResult]]]:
    """Sharded twin of :func:`repro.serve.run_serving`: compile once, seal,
    fan the seeded workload over ``workers`` engines, merge exactly.

    The workload is generated in the parent from the same
    ``(workload, seed)`` stream as a single-process run, so the merged
    report is field-identical to :func:`run_serving`'s on the same
    arguments (wall-clock columns aside).  ``pool_out``, when given, has
    the (closed) pool appended for post-run inspection — per-shard
    reports, seeds, manifest — which the RunRecord path uses.
    """
    with _tele.span("shard/run", workers=workers, workload=workload,
                    queries=queries):
        started = time.perf_counter()
        compiled = compile_scheme(scheme, graph)
        with ShardPool(
            compiled, graph,
            workers=workers, shm=shm, start=start, mode=mode,
            cache_size=cache_size, seed=seed,
            cache_entries=cache_entries,
            collect_results=collect_results,
        ) as pool:
            compile_s = time.perf_counter() - started
            with _tele.span("serve/workload", workload=workload):
                pairs = make_workload(
                    workload, graph, compiled.nodes, queries, seed,
                    zipf_alpha=zipf_alpha,
                )
            merged, results = pool.serve(
                pairs, workload=workload, seed=seed,
                slo_bound=slo_bound, slo_target=slo_target,
            )
            if cache_out is not None:
                # Caller persists warm caches: harvest before close.
                cache_out.extend(pool.collect_cache_entries())
            merged.compile_s = compile_s
            merged.throughput_qps = (merged.queries / merged.serve_s
                                     if merged.serve_s > 0 else 0.0)
            if pool_out is not None:
                pool_out.append(pool)
        return merged, results


def run_sharded_recorded(
    scheme: Scheme,
    graph: nx.Graph,
    **kwargs: Any,
) -> Tuple[ServeReport, RunRecord]:
    """``run_sharded`` under a collector, returning the RunRecord.

    The record is the ordinary ``serve`` kind with an extra ``shards``
    section: one row per worker (partition size, per-shard throughput,
    cache counters, split seed) plus the table-image provenance.
    """
    from ..telemetry import collect

    started = time.perf_counter()
    pools: List[ShardPool] = []
    with collect() as tele:
        report, _ = run_sharded(scheme, graph, pool_out=pools, **kwargs)
    pool = pools[0]
    verdict = slo_verdict(report)
    record = make_run_record(
        "serve",
        workload={
            "workload": report.workload,
            "queries": report.queries,
            "seed": report.seed,
            "mode": report.mode,
            "cache_size": report.cache_size,
        },
        columns=[report.to_row()],
        verdicts=[verdict] if verdict is not None else [],
        collector=tele,
        metrics=report.metrics,
        traces=[t.to_dict() for t in report.traces],
        shards=shards_section(
            pool.shard_reports,
            seeds=pool.seeds,
            shm=pool.shm,
            manifest=pool.manifest,
        ),
        wall_s=time.perf_counter() - started,
    )
    return report, record
