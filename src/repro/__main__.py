"""Command-line entry point: ``python -m repro <command>``.

Regenerates the paper's tables and the figure sweeps without pytest::

    python -m repro table2                 # Table 2, default workload
    python -m repro table1 --n 200 --k 3   # Table 1
    python -m repro fig tree-memory        # one of the F1-F9 sweeps
    python -m repro demo                   # tiny end-to-end demo

Telemetry surfaces (docs/observability.md):

    python -m repro table2 --json          # RunRecord manifest + verdicts
    python -m repro table1 --json --strict # exit 1 on any bound violation
    python -m repro trace tree-rounds --jsonl   # manifest + per-row JSONL
    python -m repro fig stretch --profile  # span tree with round breakdown
    python -m repro report --fast --json   # both tables' RunRecords + figures
    python -m repro serve --trace-out traces.jsonl  # sampled query traces
    python -m repro serve --workers 4      # sharded shared-memory serving
    python -m repro explain --worst 3      # per-level stretch attribution

Every subcommand takes ``--quiet`` (suppress stdout) and ``--out <path>``
(write the output to a file) so telemetry can be redirected without shell
plumbing.

This is a convenience shell over :mod:`repro.analysis`; the benchmark suite
(``pytest benchmarks/ --benchmark-only``) remains the canonical,
assertion-checked way to reproduce EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from .analysis import (
    ReportSpec,
    fig_graph_rounds,
    fig_hopset,
    fig_multitree,
    fig_sizes_vs_k,
    fig_stretch,
    fig_tree_memory,
    fig_tree_rounds,
    fig_tree_sizes,
    fig_tree_styles,
    format_records,
    generate_report,
    generate_report_json,
    run_table1,
    run_table1_recorded,
    run_table2,
    run_table2_recorded,
)
from .serve.workloads import WORKLOADS
from .telemetry import (
    build_dashboard,
    collect,
    make_run_record,
    render_profile,
    write_chrome_trace,
)
from .telemetry import flight as _flight

FIGURES = {
    "tree-rounds": (fig_tree_rounds, "F1: tree-routing rounds vs n"),
    "tree-memory": (fig_tree_memory, "F2: memory per vertex vs n"),
    "tree-sizes": (fig_tree_sizes, "F3: tree artifact sizes vs n"),
    "stretch": (fig_stretch, "F4: stretch vs 4k-3 bound"),
    "sizes-vs-k": (fig_sizes_vs_k, "F5: table/label words vs k"),
    "hopset": (fig_hopset, "F6: hopset tradeoff vs kappa"),
    "graph-rounds": (fig_graph_rounds, "F7: general-scheme cost vs n"),
    "multitree": (fig_multitree, "F8: multi-tree parallel construction"),
    "tree-styles": (fig_tree_styles, "F9: tree-shape insensitivity"),
}

#: Benchmark-file names accepted as figure aliases (``fig1_tree_rounds``
#: is the name the BENCH_*.json trajectory uses for ``tree-rounds``).
FIGURE_ALIASES = {
    "fig1_tree_rounds": "tree-rounds",
    "fig2_tree_memory": "tree-memory",
    "fig3_tree_sizes": "tree-sizes",
    "fig4_stretch": "stretch",
    "fig5_sizes_vs_k": "sizes-vs-k",
    "fig6_hopset": "hopset",
    "fig7_graph_rounds": "graph-rounds",
    "fig8_multitree": "multitree",
    "fig9_tree_styles": "tree-styles",
}

_REPO_ROOT = Path(__file__).resolve().parents[2]


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--quiet", action="store_true",
                        help="suppress stdout (useful with --out)")
    common.add_argument("--out", type=str, default=None, metavar="PATH",
                        help="also write the output to PATH")
    common.add_argument("--profile", action="store_true",
                        help="append the telemetry span tree "
                             "(wall-clock + round breakdown)")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of Elkin-Neiman PODC 2018.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", parents=[common],
                        help="compact routing comparison (Table 1)")
    t1.add_argument("--n", type=int, default=200)
    t1.add_argument("--k", type=int, default=3)
    t1.add_argument("--seed", type=int, default=0)
    t1.add_argument("--pairs", type=int, default=100)
    t1.add_argument("--json", action="store_true",
                    help="emit the RunRecord manifest as JSON")
    t1.add_argument("--strict", action="store_true",
                    help="exit 1 if any paper-bound verdict fails")

    t2 = sub.add_parser("table2", parents=[common],
                        help="tree routing comparison (Table 2)")
    t2.add_argument("--n", type=int, default=1000)
    t2.add_argument("--seed", type=int, default=0)
    t2.add_argument("--json", action="store_true",
                    help="emit the RunRecord manifest as JSON")
    t2.add_argument("--strict", action="store_true",
                    help="exit 1 if any paper-bound verdict fails")

    fig_names = sorted(FIGURES) + sorted(FIGURE_ALIASES)

    fig = sub.add_parser("fig", parents=[common], help="run one figure sweep")
    fig.add_argument("name", choices=fig_names)
    fig.add_argument("--json", action="store_true",
                     help="emit the sweep records as JSON")

    trace = sub.add_parser(
        "trace", parents=[common],
        help="run one figure sweep under telemetry, emit structured records",
    )
    trace.add_argument("name", choices=fig_names)
    trace.add_argument("--jsonl", action="store_true",
                       help="one JSON object per line: RunRecord manifest "
                            "first, then each sweep row")
    trace.add_argument("--chrome", type=str, default=None, metavar="PATH",
                       help="also write a Chrome trace_event JSON "
                            "(open in Perfetto / chrome://tracing)")
    trace.add_argument("--flight", action="store_true",
                       help="attach a flight recorder to every network "
                            "built (round-resolved memory/congestion)")
    trace.add_argument("--stride", type=int, default=16,
                       help="flight-recorder sampling stride in rounds "
                            "(with --flight; default 16)")

    serve = sub.add_parser(
        "serve", parents=[common],
        help="serve a seeded query workload against a built scheme (S16)",
    )
    serve.add_argument("--workload", choices=list(WORKLOADS),
                       default="uniform",
                       help="traffic model (default: uniform)")
    serve.add_argument("--queries", type=int, default=1000)
    serve.add_argument("--n", type=int, default=200,
                       help="graph size (random connected family)")
    serve.add_argument("--k", type=int, default=3,
                       help="hierarchy parameter of the built scheme")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--builder", choices=("centralized", "distributed"),
                       default="centralized",
                       help="scheme construction (default: centralized)")
    serve.add_argument("--mode", choices=("first", "best"), default="first",
                       help="source rule (default: first, the 4k-3 analysis)")
    serve.add_argument("--cache", type=int, default=4096, metavar="SIZE",
                       help="LRU decision-cache entries (0 disables)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="shard the stream over N worker processes "
                            "(S20, docs/sharding.md); per-shard reports "
                            "merge exactly into one")
    serve.add_argument("--shm", dest="shm", action="store_true",
                       default=True,
                       help="share packed tables with workers via a "
                            "sealed shared-memory image (default)")
    serve.add_argument("--no-shm", dest="shm", action="store_false",
                       help="fork-inherit the compiled tables instead "
                            "of sealing a shared-memory image")
    serve.add_argument("--cache-file", type=str, default=None,
                       metavar="PATH",
                       help="warm-cache persistence: preload the "
                            "decision cache from PATH when it exists "
                            "and save the (merged) cache back after "
                            "the run")
    serve.add_argument("--zipf-alpha", type=float, default=1.1)
    serve.add_argument("--slo-target", type=float, default=0.99,
                       help="required fraction of queries within the "
                            "stretch bound (default 0.99)")
    serve.add_argument("--json", action="store_true",
                       help="emit the serving RunRecord as JSON")
    serve.add_argument("--strict", action="store_true",
                       help="exit 1 if the stretch-SLO verdict fails")
    serve.add_argument("--metrics-out", type=str, default=None,
                       metavar="PATH",
                       help="serve under the live metrics registry and "
                            "write a Prometheus text-format snapshot "
                            "(S18, docs/observability.md)")
    serve.add_argument("--trace-out", type=str, default=None, metavar="PATH",
                       help="serve under the sampled query tracer and "
                            "write the traces as JSONL (S19; replay with "
                            "repro explain)")
    serve.add_argument("--trace-chrome", type=str, default=None,
                       metavar="PATH",
                       help="also write sampled traces as a Chrome "
                            "trace_event JSON (open in Perfetto)")
    serve.add_argument("--trace-rate", type=float, default=0.01,
                       help="head-sampling rate for query tracing "
                            "(default 0.01; tail worst-stretch traces are "
                            "always kept)")
    serve.add_argument("--trace-tail", type=int, default=16,
                       help="tail buffer size: worst-stretch/failed "
                            "queries always traced (default 16)")

    mon = sub.add_parser(
        "monitor", parents=[common],
        help="replay a workload under live metrics and SLO burn-rate "
             "alerting (S18)",
    )
    mon.add_argument("--workload", choices=list(WORKLOADS),
                     default="uniform",
                     help="traffic model (default: uniform)")
    mon.add_argument("--queries", type=int, default=1000)
    mon.add_argument("--n", type=int, default=200,
                     help="graph size (random connected family)")
    mon.add_argument("--k", type=int, default=3,
                     help="hierarchy parameter of the built scheme")
    mon.add_argument("--seed", type=int, default=0)
    mon.add_argument("--builder", choices=("centralized", "distributed"),
                     default="centralized",
                     help="scheme construction (default: centralized)")
    mon.add_argument("--mode", choices=("first", "best"), default="first")
    mon.add_argument("--cache", type=int, default=4096, metavar="SIZE",
                     help="LRU decision-cache entries (0 disables)")
    mon.add_argument("--zipf-alpha", type=float, default=1.1)
    mon.add_argument("--target-qps", type=float, default=1000.0,
                     help="virtual replay rate driving the SLO windows "
                          "(default 1000)")
    mon.add_argument("--objective", type=float, default=0.99,
                     help="stretch-SLO objective: required good fraction "
                          "(default 0.99)")
    mon.add_argument("--no-live", action="store_true",
                     help="suppress the refreshing status line")
    mon.add_argument("--metrics-out", type=str, default=None, metavar="PATH",
                     help="write a Prometheus text-format snapshot")
    mon.add_argument("--json", action="store_true",
                     help="emit the monitor RunRecord as JSON")
    mon.add_argument("--strict", action="store_true",
                     help="exit 1 if the replay ends degraded (alert "
                          "firing or error budget exhausted)")

    explain = sub.add_parser(
        "explain", parents=[common],
        help="replay sampled query traces into a per-level stretch "
             "attribution table (S19)",
    )
    explain.add_argument("--traces", type=str, default="traces.jsonl",
                         metavar="PATH",
                         help="JSONL trace file written by "
                              "repro serve --trace-out "
                              "(default: traces.jsonl)")
    explain.add_argument("--trace-id", type=str, default=None,
                         help="explain one trace by id (as printed in "
                              "exemplars / SLO alerts)")
    explain.add_argument("--worst", type=int, default=None, metavar="N",
                         help="drill into the N worst traces "
                              "(failures first, then stretch excess)")
    explain.add_argument("--json", action="store_true",
                         help="emit the explain RunRecord as JSON")
    explain.add_argument("--strict", action="store_true",
                         help="exit 1 if the attribution-exactness "
                              "verdict fails")

    lint = sub.add_parser(
        "lint", parents=[common],
        help="run the CONGEST-invariant static analyzer (S17)",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint "
                           "(default: src/repro)")
    lint.add_argument("--rules", type=str, default=None, metavar="IDS",
                      help="comma-separated rule ids (default: the "
                           "syntactic tier REP001-REP008 + REP012; "
                           "--flow adds REP009-REP011)")
    lint.add_argument("--flow", action="store_true",
                      help="also run the flow tier: project-wide call "
                           "graph + interprocedural taint analyses "
                           "(REP009-REP011)")
    lint.add_argument("--trace", action="store_true",
                      help="print the source->sink taint path under "
                           "each flow finding")
    lint.add_argument("--callgraph", choices=("dot", "json"), default=None,
                      help="export the project call graph in the given "
                           "format to stdout and exit (no linting)")
    lint.add_argument("--baseline", type=str, default=None, metavar="PATH",
                      help="baseline file of grandfathered findings "
                           "(default: lint-baseline.json at the repo "
                           "root, when present)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    lint.add_argument("--write-baseline", action="store_true",
                      help="grandfather the current findings into the "
                           "baseline file (reasons of kept entries are "
                           "preserved; new ones need justifying)")
    lint.add_argument("--prune-baseline", action="store_true",
                      help="drop stale grandfathered entries from the "
                           "baseline file in place")
    lint.add_argument("--explain", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--json", action="store_true",
                      help="emit the lint RunRecord as JSON")
    lint.add_argument("--strict", action="store_true",
                      help="exit 1 on any non-baselined error finding "
                           "(warnings never gate)")

    sub.add_parser("demo", parents=[common],
                   help="tiny end-to-end demonstration")

    dash = sub.add_parser(
        "dashboard",
        help="render the static HTML perf dashboard from BENCH_*.json",
    )
    dash.add_argument("--out", type=str, default="dashboard.html",
                      metavar="PATH", help="output HTML file")
    dash.add_argument("--root", type=str, default=None,
                      help="directory holding the BENCH_*.json trajectories "
                           "(default: the repo root)")
    dash.add_argument("--record", action="append", default=[],
                      metavar="PATH",
                      help="RunRecord JSON file to include (repeatable)")
    dash.add_argument("--title", default="repro perf dashboard")
    dash.add_argument("--quiet", action="store_true",
                      help="suppress stdout")

    rep = sub.add_parser("report", parents=[common],
                         help="full markdown reproduction report")
    rep.add_argument("--fast", action="store_true",
                     help="sub-minute workload sizes")
    rep.add_argument("--json", action="store_true",
                     help="machine-readable report: table RunRecords + "
                          "figure records in one JSON document")
    rep.add_argument("--strict", action="store_true",
                     help="with --json: exit 1 if any bound verdict fails")
    return parser


def _demo() -> str:
    from .congest import Network
    from .graphs import random_connected_graph, spanning_tree_of
    from .routing import route_in_tree
    from .treerouting import build_distributed_tree_scheme

    graph = random_connected_graph(200, seed=1)
    tree = spanning_tree_of(graph, style="dfs")
    net = Network(graph)
    build = build_distributed_tree_scheme(net, tree, seed=1)
    nodes = sorted(tree)
    result = route_in_tree(
        build.scheme, nodes[0], nodes[-1],
        weight_of=lambda u, v: graph[u][v]["weight"],
    )
    return (f"n=200 tree routing: {build.rounds} rounds, "
            f"{build.max_memory_words} words/vertex peak, "
            f"route {nodes[0]}->{nodes[-1]}: {result.hops} hops, "
            f"length {result.length:.2f} (exact)")


def _deliver(text: str, args: argparse.Namespace) -> None:
    """Route output according to the common --quiet/--out flags."""
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + ("" if text.endswith("\n") else "\n"))
    if not args.quiet:
        print(text)


def _run_table(args: argparse.Namespace) -> int:
    """Shared driver for the table1/table2 subcommands."""
    recorded = args.json or args.strict or args.profile
    if args.command == "table1":
        if recorded:
            result, record = run_table1_recorded(
                args.n, args.k, seed=args.seed, pairs=args.pairs
            )
        else:
            result = run_table1(
                args.n, args.k, seed=args.seed, pairs=args.pairs
            )
            record = None
    else:
        if recorded:
            result, record = run_table2_recorded(args.n, seed=args.seed)
        else:
            result = run_table2(args.n, seed=args.seed)
            record = None

    parts = []
    if args.json:
        parts.append(record.to_json())
    else:
        parts.append(result.render())
    if args.profile and record is not None:
        parts.append(render_profile(record.spans, record.counters,
                                    record.gauges))
    _deliver("\n\n".join(parts), args)
    if args.strict and record is not None and not record.passed:
        failed = ", ".join(v.name for v in record.failed_verdicts())
        print(f"bound-checker violations: {failed}", file=sys.stderr)
        return 1
    return 0


def _run_fig(args: argparse.Namespace) -> int:
    fn, title = FIGURES[FIGURE_ALIASES.get(args.name, args.name)]
    if args.profile:
        with collect() as tele:
            records = fn()
        body = (json.dumps(records, indent=2, default=repr)
                if args.json else format_records(records, title=title))
        _deliver(body + "\n\n" + tele.profile(), args)
    else:
        records = fn()
        body = (json.dumps(records, indent=2, default=repr)
                if args.json else format_records(records, title=title))
        _deliver(body, args)
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    name = FIGURE_ALIASES.get(args.name, args.name)
    fn, title = FIGURES[name]
    started = time.perf_counter()
    flight_dicts = []
    if args.flight:
        with _flight.auto(stride=args.stride), collect() as tele:
            session = _flight._SESSIONS[-1]
            records = fn()
        flight_dicts = session.to_dicts()
    else:
        with collect() as tele:
            records = fn()
    record = make_run_record(
        f"fig/{name}",
        workload={"figure": name, "title": title},
        columns=records,
        collector=tele,
        flight=flight_dicts,
        wall_s=time.perf_counter() - started,
    )
    if args.chrome:
        write_chrome_trace(
            args.chrome, record.spans,
            flight=record.flight or None,
            meta={"kind": record.kind, "title": title},
        )
    if args.jsonl:
        lines = [record.to_json(indent=None)]
        lines += [json.dumps(r, default=repr) for r in records]
        body = "\n".join(lines)
    else:
        body = record.to_json()
    parts = [body]
    if args.profile:
        parts.append(tele.profile())
    if args.chrome:
        parts.append(f"chrome trace written to {args.chrome}")
    _deliver("\n\n".join(parts), args)
    return 0


def _built_scheme(args: argparse.Namespace):
    """The (graph, scheme) pair the serve/monitor subcommands run against."""
    from .graphs import random_connected_graph

    graph = random_connected_graph(args.n, seed=args.seed)
    if args.builder == "centralized":
        from .tz import build_centralized_scheme
        scheme = build_centralized_scheme(graph, args.k, seed=args.seed)
    else:
        from .core import build_distributed_scheme
        scheme = build_distributed_scheme(graph, args.k,
                                          seed=args.seed).scheme
    return graph, scheme


def _run_serve(args: argparse.Namespace) -> int:
    from .serve import run_serving, run_serving_recorded, slo_verdict

    if args.workers < 1:
        print(f"serve: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    graph, scheme = _built_scheme(args)
    if args.workers > 1:
        if args.metrics_out or args.trace_out or args.trace_chrome:
            print("serve: --workers > 1 is incompatible with "
                  "--metrics-out/--trace-out/--trace-chrome (per-worker "
                  "registries and tracers do not merge into one live "
                  "snapshot; run those single-process)", file=sys.stderr)
            return 2
        return _run_serve_sharded(args, graph, scheme)

    metrics = None
    if args.metrics_out:
        from .metrics import ServeMetrics
        metrics = ServeMetrics(slo_objective=args.slo_target)
    tracer = None
    if args.trace_out or args.trace_chrome:
        from .tracing import Tracer
        tracer = Tracer(rate=args.trace_rate, seed=args.seed,
                        tail_limit=args.trace_tail,
                        prefix=f"{args.workload}-{args.seed}")
    kwargs = dict(
        workload=args.workload, queries=args.queries, seed=args.seed,
        mode=args.mode, cache_size=args.cache, zipf_alpha=args.zipf_alpha,
        slo_target=args.slo_target, metrics=metrics, tracer=tracer,
    )
    engine = None
    if args.cache_file:
        # Warm-cache persistence: serve with a preloaded engine, save
        # the (possibly warmer) cache back after the run.
        from .serve import DecisionCache, ServeEngine, compile_scheme
        cache = (DecisionCache.load(args.cache_file, maxsize=args.cache)
                 if Path(args.cache_file).exists()
                 else DecisionCache(args.cache))
        engine = ServeEngine(compile_scheme(scheme, graph),
                             mode=args.mode, cache=cache)
        kwargs["engine"] = engine
    recorded = args.json or args.strict or args.profile
    if recorded:
        report, record = run_serving_recorded(scheme, graph, **kwargs)
    else:
        report, _ = run_serving(scheme, graph, **kwargs)
        record = None
    if engine is not None:
        engine.cache.save(args.cache_file)

    parts = []
    if args.json:
        parts.append(record.to_json())
    else:
        parts.append(report.render())
    if args.profile and record is not None:
        parts.append(render_profile(record.spans, record.counters,
                                    record.gauges))
    if metrics is not None:
        from .metrics import write_prometheus
        write_prometheus(metrics.registry, args.metrics_out,
                         now=report.serve_s)
        if not args.json:
            parts.append(f"metrics snapshot written to {args.metrics_out}")
    if tracer is not None:
        trace_dicts = [t.to_dict() for t in report.traces]
        if args.trace_out:
            from .tracing import write_traces_jsonl
            write_traces_jsonl(args.trace_out, trace_dicts)
            if not args.json:
                parts.append(f"{len(trace_dicts)} traces written to "
                             f"{args.trace_out}")
        if args.trace_chrome:
            write_chrome_trace(
                args.trace_chrome,
                record.spans if record is not None else [],
                queries=trace_dicts,
                meta={"kind": "serve", "workload": args.workload},
            )
            if not args.json:
                parts.append(f"chrome trace written to {args.trace_chrome}")
    _deliver("\n\n".join(parts), args)
    if args.strict:
        verdict = slo_verdict(report)
        if verdict is not None and not verdict.passed:
            print(f"stretch-SLO violation: {verdict.name} "
                  f"measured={verdict.measured} < target={verdict.limit}",
                  file=sys.stderr)
            return 1
    return 0


def _run_serve_sharded(args: argparse.Namespace, graph, scheme) -> int:
    """The ``repro serve --workers N`` path (S20, docs/sharding.md)."""
    from .serve import DecisionCache, slo_verdict
    from .shard import run_sharded, run_sharded_recorded

    cache_entries = None
    if args.cache_file and Path(args.cache_file).exists():
        cache_entries = DecisionCache.load(
            args.cache_file, maxsize=args.cache).entries()
    cache_out: list = []
    kwargs = dict(
        workers=args.workers, workload=args.workload,
        queries=args.queries, seed=args.seed, mode=args.mode,
        cache_size=args.cache, zipf_alpha=args.zipf_alpha,
        slo_target=args.slo_target, shm=args.shm,
        cache_entries=cache_entries,
        cache_out=cache_out if args.cache_file else None,
    )
    recorded = args.json or args.strict or args.profile
    if recorded:
        report, record = run_sharded_recorded(scheme, graph, **kwargs)
    else:
        report, _ = run_sharded(scheme, graph, **kwargs)
        record = None
    if args.cache_file:
        merged_cache = DecisionCache(args.cache)
        merged_cache.preload(cache_out)
        merged_cache.save(args.cache_file)

    parts = [record.to_json() if args.json else report.render()]
    if args.profile and record is not None:
        parts.append(render_profile(record.spans, record.counters,
                                    record.gauges))
    _deliver("\n\n".join(parts), args)
    if args.strict:
        verdict = slo_verdict(report)
        if verdict is not None and not verdict.passed:
            print(f"stretch-SLO violation: {verdict.name} "
                  f"measured={verdict.measured} < target={verdict.limit}",
                  file=sys.stderr)
            return 1
    return 0


def _run_monitor(args: argparse.Namespace) -> int:
    from .metrics import ServeMetrics, run_monitor, write_prometheus

    graph, scheme = _built_scheme(args)
    metrics = ServeMetrics(slo_objective=args.objective)
    live = (not args.quiet and not args.json and not args.no_live
            and sys.stderr.isatty())
    report, record = run_monitor(
        scheme, graph,
        workload=args.workload, queries=args.queries, seed=args.seed,
        mode=args.mode, cache_size=args.cache, zipf_alpha=args.zipf_alpha,
        target_qps=args.target_qps, objective=args.objective,
        metrics=metrics,
        status_stream=sys.stderr if live else None,
    )
    parts = [record.to_json() if args.json else report.render()]
    if args.metrics_out:
        write_prometheus(metrics.registry, args.metrics_out,
                         now=report.queries / args.target_qps)
        if not args.json:
            parts.append(f"metrics snapshot written to {args.metrics_out}")
    _deliver("\n\n".join(parts), args)
    if args.strict and not report.healthy:
        alerts = ",".join(report.active_alerts) or "budget exhausted"
        print(f"SLO degraded: {alerts} "
              f"(budget remaining {report.budget_remaining:.1%})",
              file=sys.stderr)
        return 1
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    from .errors import InputError
    from .tracing import read_traces_jsonl, run_explain

    try:
        traces = read_traces_jsonl(args.traces)
    except OSError as exc:
        print(f"explain: cannot read {args.traces}: {exc}", file=sys.stderr)
        return 2
    try:
        text, record = run_explain(traces, trace_id=args.trace_id,
                                   worst=args.worst, source=args.traces)
    except InputError as exc:
        print(f"explain: {exc}", file=sys.stderr)
        return 2
    _deliver(record.to_json() if args.json else text, args)
    if args.strict and not record.passed:
        failed = ", ".join(v.name for v in record.failed_verdicts())
        print(f"attribution violations: {failed}", file=sys.stderr)
        return 1
    return 0


def _lint_root(paths: Optional[List[str]]) -> Optional[Path]:
    """Repo root for explicit lint paths (None = self-lint the package).

    Module qualnames strip a leading ``src/`` relative to the root, so when
    the caller points at (something under) a ``src`` tree, anchor the root
    at that tree's parent; otherwise resolve against the cwd.
    """
    if not paths:
        return None
    first = Path(paths[0]).resolve()
    for parent in (first, *first.parents):
        if parent.name == "src":
            return parent.parent
    return Path.cwd()


def _run_lint(args: argparse.Namespace) -> int:
    import json as _json

    from .lint import (
        Baseline,
        build_callgraph,
        prune_baseline,
        resolve_rules,
        run_lint,
        write_baseline,
    )
    from .lint.runner import DEFAULT_BASELINE

    if args.explain:
        lines = []
        for rule in resolve_rules(args.rules, flow=True):
            lines.append(f"{rule.id}  {rule.title}")
            lines.append(f"    protects: {rule.invariant}")
        _deliver("\n".join(lines), args)
        return 0

    if args.callgraph:
        graph = build_callgraph(args.paths or None,
                                root=_lint_root(args.paths))
        body = (graph.to_dot() if args.callgraph == "dot"
                else _json.dumps(graph.to_dict(), indent=2))
        _deliver(body, args)
        return 0

    baseline_path = Path(args.baseline) if args.baseline else \
        _REPO_ROOT / DEFAULT_BASELINE
    baseline = None
    if args.no_baseline:
        baseline = Baseline()
    elif args.baseline:
        # A not-yet-written --baseline path acts as empty so that
        # --write-baseline can target a fresh file.
        baseline = (Baseline.load(baseline_path)
                    if baseline_path.exists() else Baseline())

    # Explicit paths lint the caller's tree (resolve against the cwd);
    # the no-argument default self-lints the repo the package ships in.
    report = run_lint(args.paths or None, rules=args.rules,
                      baseline=baseline,
                      root=_lint_root(args.paths),
                      flow=args.flow)

    if args.write_baseline:
        previous = (Baseline.load(baseline_path)
                    if baseline_path.exists() else None)
        base = write_baseline(report, baseline_path, previous)
        _deliver(f"baseline written to {baseline_path} "
                 f"({len(base)} entries)", args)
        return 0

    if args.prune_baseline:
        base = (Baseline.load(baseline_path)
                if baseline_path.exists() else Baseline())
        base.path = baseline_path
        removed = prune_baseline(report, base)
        _deliver(f"pruned {len(removed)} stale entr"
                 f"{'y' if len(removed) == 1 else 'ies'} from "
                 f"{baseline_path} ({len(base)} left)", args)
        return 0

    record = report.to_run_record()
    body = record.to_json() if args.json else \
        report.render(with_trace=args.trace)
    _deliver(body, args)
    if args.strict and not report.clean:
        print(f"lint: {len(report.errors)} non-baselined finding(s)",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("table1", "table2"):
        return _run_table(args)
    if args.command == "fig":
        return _run_fig(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "monitor":
        return _run_monitor(args)
    if args.command == "explain":
        return _run_explain(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "dashboard":
        root = Path(args.root) if args.root else _REPO_ROOT
        out = build_dashboard(
            root, args.out,
            record_paths=[Path(p) for p in args.record],
            title=args.title,
        )
        if not args.quiet:
            print(f"dashboard written to {out}")
        return 0
    if args.command == "demo":
        if args.profile:
            with collect() as tele:
                text = _demo()
            _deliver(text + "\n\n" + tele.profile(), args)
        else:
            _deliver(_demo(), args)
        return 0
    if args.command == "report":
        spec = ReportSpec.fast() if args.fast else ReportSpec()
        if args.json:
            doc = generate_report_json(spec)
            _deliver(json.dumps(doc, indent=2, default=repr), args)
            if args.strict and not doc["passed"]:
                print("bound-checker violations in report", file=sys.stderr)
                return 1
        else:
            _deliver(generate_report(spec), args)
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
