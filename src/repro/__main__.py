"""Command-line entry point: ``python -m repro <command>``.

Regenerates the paper's tables and the figure sweeps without pytest::

    python -m repro table2                 # Table 2, default workload
    python -m repro table1 --n 200 --k 3   # Table 1
    python -m repro fig tree-memory        # one of the F1-F8 sweeps
    python -m repro demo                   # tiny end-to-end demo

This is a convenience shell over :mod:`repro.analysis`; the benchmark suite
(``pytest benchmarks/ --benchmark-only``) remains the canonical,
assertion-checked way to reproduce EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    ReportSpec,
    fig_graph_rounds,
    fig_hopset,
    fig_multitree,
    fig_sizes_vs_k,
    fig_stretch,
    fig_tree_memory,
    fig_tree_rounds,
    fig_tree_sizes,
    fig_tree_styles,
    format_records,
    generate_report,
    run_table1,
    run_table2,
)

FIGURES = {
    "tree-rounds": (fig_tree_rounds, "F1: tree-routing rounds vs n"),
    "tree-memory": (fig_tree_memory, "F2: memory per vertex vs n"),
    "tree-sizes": (fig_tree_sizes, "F3: tree artifact sizes vs n"),
    "stretch": (fig_stretch, "F4: stretch vs 4k-3 bound"),
    "sizes-vs-k": (fig_sizes_vs_k, "F5: table/label words vs k"),
    "hopset": (fig_hopset, "F6: hopset tradeoff vs kappa"),
    "graph-rounds": (fig_graph_rounds, "F7: general-scheme cost vs n"),
    "multitree": (fig_multitree, "F8: multi-tree parallel construction"),
    "tree-styles": (fig_tree_styles, "F9: tree-shape insensitivity"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of Elkin-Neiman PODC 2018.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="compact routing comparison (Table 1)")
    t1.add_argument("--n", type=int, default=200)
    t1.add_argument("--k", type=int, default=3)
    t1.add_argument("--seed", type=int, default=0)
    t1.add_argument("--pairs", type=int, default=100)

    t2 = sub.add_parser("table2", help="tree routing comparison (Table 2)")
    t2.add_argument("--n", type=int, default=1000)
    t2.add_argument("--seed", type=int, default=0)

    fig = sub.add_parser("fig", help="run one figure sweep")
    fig.add_argument("name", choices=sorted(FIGURES))

    sub.add_parser("demo", help="tiny end-to-end demonstration")

    rep = sub.add_parser("report", help="full markdown reproduction report")
    rep.add_argument("--fast", action="store_true",
                     help="sub-minute workload sizes")
    return parser


def _demo() -> None:
    from .congest import Network
    from .graphs import random_connected_graph, spanning_tree_of
    from .routing import route_in_tree
    from .treerouting import build_distributed_tree_scheme

    graph = random_connected_graph(200, seed=1)
    tree = spanning_tree_of(graph, style="dfs")
    net = Network(graph)
    build = build_distributed_tree_scheme(net, tree, seed=1)
    nodes = sorted(tree)
    result = route_in_tree(
        build.scheme, nodes[0], nodes[-1],
        weight_of=lambda u, v: graph[u][v]["weight"],
    )
    print(f"n=200 tree routing: {build.rounds} rounds, "
          f"{build.max_memory_words} words/vertex peak, "
          f"route {nodes[0]}->{nodes[-1]}: {result.hops} hops, "
          f"length {result.length:.2f} (exact)")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        print(run_table1(args.n, args.k, seed=args.seed, pairs=args.pairs).render())
    elif args.command == "table2":
        print(run_table2(args.n, seed=args.seed).render())
    elif args.command == "fig":
        fn, title = FIGURES[args.name]
        print(format_records(fn(), title=title))
    elif args.command == "demo":
        _demo()
    elif args.command == "report":
        spec = ReportSpec.fast() if args.fast else ReportSpec()
        print(generate_report(spec))
    return 0


if __name__ == "__main__":
    sys.exit(main())
