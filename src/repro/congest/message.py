"""Messages exchanged by vertices of the CONGEST simulator.

A :class:`Message` travels across exactly one edge in one round.  The payload
is an arbitrary (picklable) Python object whose size in machine words is
computed by :func:`repro.wordsize.words_of` unless given explicitly.  The
network validates payload width against its configured per-message word
limit, which models the CONGEST RAM restriction of the paper (Section 2):
messages carry O(1) words, except where an algorithm explicitly batches
(e.g. the light-edge lists of Section 3.2, which are O(log n) words and are
charged proportionally).

``Message`` is a hand-rolled ``__slots__`` value class rather than a
dataclass: simulator hot loops construct one object per delivered message,
and a plain ``__init__`` is several times cheaper than the generated
frozen-dataclass path (measured; see ``benchmarks/sim_micro.py``).  It keeps
dataclass-like semantics — keyword or positional construction, value
equality, hashability, a field-naming ``repr`` — and is immutable by
convention: nothing in the library writes to a message after construction,
and the engines may share one payload object across a whole batch.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..wordsize import words_of

NodeId = Hashable


class Message:
    """A single point-to-point message.

    Attributes
    ----------
    src, dst:
        Endpoint vertex ids; ``(src, dst)`` must be an edge of the network.
    kind:
        Short protocol tag used by receivers to dispatch (does not count
        toward the payload width; it models the constant-size message type
        field every protocol message carries).
    payload:
        The data words carried by the message.
    words:
        Cached width of the payload in machine words.  Omitted (or
        negative), it is computed via :func:`repro.wordsize.words_of`;
        the fast-path engine passes a precomputed value positionally —
        ``Message(src, dst, kind, payload, words)`` — so batched sends
        size a shared payload once instead of once per message.
    """

    __slots__ = ("src", "dst", "kind", "payload", "words")

    def __init__(
        self,
        src: NodeId,
        dst: NodeId,
        kind: str,
        payload: Any = None,
        words: int = -1,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.words = words_of(payload) if words < 0 else words

    def reply(self, kind: str, payload: Any = None) -> "Message":
        """Build a message back along the same edge."""
        return Message(self.dst, self.src, kind, payload)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.kind == other.kind
            and self.payload == other.payload
            and self.words == other.words
        )

    def __hash__(self) -> int:
        return hash((self.src, self.dst, self.kind, self.payload, self.words))

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src!r}, dst={self.dst!r}, kind={self.kind!r}, "
            f"payload={self.payload!r}, words={self.words!r})"
        )
