"""Messages exchanged by vertices of the CONGEST simulator.

A :class:`Message` travels across exactly one edge in one round.  The payload
is an arbitrary (picklable) Python object whose size in machine words is
computed by :func:`repro.wordsize.words_of` unless given explicitly.  The
network validates payload width against its configured per-message word
limit, which models the CONGEST RAM restriction of the paper (Section 2):
messages carry O(1) words, except where an algorithm explicitly batches
(e.g. the light-edge lists of Section 3.2, which are O(log n) words and are
charged proportionally).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from ..wordsize import words_of

NodeId = Hashable


@dataclass(frozen=True)
class Message:
    """A single point-to-point message.

    Attributes
    ----------
    src, dst:
        Endpoint vertex ids; ``(src, dst)`` must be an edge of the network.
    kind:
        Short protocol tag used by receivers to dispatch (does not count
        toward the payload width; it models the constant-size message type
        field every protocol message carries).
    payload:
        The data words carried by the message.
    words:
        Cached width of the payload in machine words.
    """

    src: NodeId
    dst: NodeId
    kind: str
    payload: Any = None
    words: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.words < 0:
            object.__setattr__(self, "words", words_of(self.payload))

    def reply(self, kind: str, payload: Any = None) -> "Message":
        """Build a message back along the same edge."""
        return Message(src=self.dst, dst=self.src, kind=kind, payload=payload)
