"""Per-vertex memory accounting.

The paper's headline contribution is the *individual memory requirement*
during preprocessing (Tables 1-2 report "Memory per vertex").  To measure it
honestly, every vertex of the simulated network owns a :class:`MemoryMeter`;
distributed algorithms register every word they retain across rounds through
the meter, and the meter tracks the high-water mark.  Benchmarks report
``max`` / ``mean`` high-water over vertices.

Conventions used across the library:

* Keys are strings namespaced by protocol stage, e.g. ``"tree/ancestors"``.
* Storing an existing key *replaces* its footprint (the common "update my
  distance estimate in place" pattern keeps a constant footprint).
* Words in flight inside a single round (the message being forwarded right
  now) are *not* charged -- matching the model, where relaying is free of
  storage as long as nothing is retained between rounds.  Relay queues that
  persist across rounds (pipelined broadcast buffers) ARE charged, under the
  ``"relay/"`` prefix, and can be reported separately.

Prefix index
------------
Stage teardown (:meth:`free_prefix`, ``Network.free_all``) used to scan
every live key at every vertex.  The meter now maintains a *group index* --
keys bucketed by their first slash segment, the same grouping
:meth:`snapshot` reports -- so freeing a slash-qualified prefix like
``"tree/"`` or ``"hopset/scratch-"`` only examines the keys of that one
group, not everything the vertex ever stored.  ``last_prefix_scan`` exposes
how many keys the most recent :meth:`free_prefix` examined; the regression
test in ``tests/test_congest_memory.py`` pins that teardown cost no longer
scales with the total live key count.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..errors import MemoryAccountingError


def _group_of(key: str) -> str:
    """The index bucket of ``key``: its first slash segment (incl. the
    slash), or the whole key when it has none -- mirroring
    :meth:`MemoryMeter.snapshot`'s grouping."""
    head, sep, _ = key.partition("/")
    return head + "/" if sep else head


class MemoryMeter:
    """Tracks the words a single vertex retains, with a high-water mark."""

    __slots__ = ("_items", "_groups", "_current", "_high_water",
                 "last_prefix_scan")

    def __init__(self) -> None:
        self._items: Dict[str, int] = {}
        #: Group index: first slash segment -> ordered set of live keys
        #: (a dict used as an insertion-ordered set).
        self._groups: Dict[str, Dict[str, None]] = {}
        self._current = 0
        self._high_water = 0
        #: Keys examined by the most recent :meth:`free_prefix` call
        #: (test probe for the teardown-cost regression pin).
        self.last_prefix_scan = 0

    # -- mutation -----------------------------------------------------------

    def store(self, key: str, words: int) -> None:
        """Record that this vertex now retains ``words`` words under ``key``.

        Re-storing a key replaces its previous footprint.
        """
        if words < 0:
            raise MemoryAccountingError(f"negative store of {words} words for {key!r}")
        previous = self._items.get(key)
        if previous is None:
            previous = 0
            self._groups.setdefault(_group_of(key), {})[key] = None
        self._items[key] = words
        self._current += words - previous
        if self._current > self._high_water:
            self._high_water = self._current

    def add(self, key: str, words: int) -> None:
        """Grow the footprint under ``key`` by ``words`` (list-append pattern)."""
        self.store(key, self._items.get(key, 0) + words)

    def free(self, key: str) -> None:
        """Release everything stored under ``key``.

        Freeing an absent key is a no-op: stages free their scratch space
        unconditionally on exit.

        An exact-key free resolves through the item index without scanning
        any keys, so it resets ``last_prefix_scan`` to 0: the probe always
        describes the *most recent* teardown operation.  Bulk exact-key
        teardowns (``Network.free_key`` issued from a vectorized round
        close) previously left a stale scan count from an earlier
        :meth:`free_prefix` pinned — the regression test in
        ``tests/test_congest_memory.py`` holds this either way.
        """
        self.last_prefix_scan = 0
        self._release(key)

    def _release(self, key: str) -> None:
        """Drop ``key`` from the footprint and both indexes without
        touching ``last_prefix_scan`` (so :meth:`free_prefix`'s loop does
        not clobber the scan count it just recorded)."""
        previous = self._items.pop(key, None)
        if previous is not None:
            self._current -= previous
            group = _group_of(key)
            members = self._groups.get(group)
            if members is not None:
                members.pop(key, None)
                if not members:
                    del self._groups[group]

    def free_prefix(self, prefix: str) -> None:
        """Release every key starting with ``prefix`` (stage teardown).

        A prefix containing a slash (``"tree/"``, ``"hopset/scratch-"``)
        resolves through the group index: only the live keys of that
        prefix's first-segment group are examined.  A slash-free prefix
        may span groups and falls back to a full key scan.
        """
        slash = prefix.find("/")
        if slash >= 0:
            members = self._groups.get(prefix[: slash + 1])
            if members is None:
                self.last_prefix_scan = 0
                return
            self.last_prefix_scan = len(members)
            matches = [k for k in members if k.startswith(prefix)]
        else:
            self.last_prefix_scan = len(self._items)
            matches = [k for k in self._items if k.startswith(prefix)]
        for key in matches:
            self._release(key)

    # -- inspection ----------------------------------------------------------

    @property
    def current(self) -> int:
        """Words currently retained."""
        return self._current

    @property
    def high_water(self) -> int:
        """Maximum words ever retained simultaneously."""
        return self._high_water

    def high_water_excluding(self, prefix: str) -> int:
        """High-water is global; this helper reports the *current* footprint
        excluding keys under ``prefix`` (used to separate relay buffers)."""
        return self._current - sum(
            words for key, words in self._items.items() if key.startswith(prefix)
        )

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, int]:
        """Breakdown of the *current* footprint by key prefix.

        With no ``prefix``, keys are grouped by their first slash segment
        (``"tree/ancestors"`` counts under ``"tree/"``; a key without a
        slash groups under itself), so the result maps protocol stage to
        retained words — what the flight recorder samples per round.  With
        a ``prefix``, the exact keys under it are returned instead
        (``snapshot("tree/")`` -> ``{"tree/ancestors": 3, ...}``).
        """
        out: Dict[str, int] = {}
        items = self._items
        if prefix is None:
            for group, members in self._groups.items():
                out[group] = sum(items[k] for k in members)
        else:
            for key, words in items.items():
                if key.startswith(prefix):
                    out[key] = words
        return out

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._items.items()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryMeter(current={self._current}, high_water={self._high_water})"
