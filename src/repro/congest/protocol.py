"""Event-driven protocol API for the CONGEST simulator.

The library's own algorithms are orchestrated procedurally (DESIGN.md,
"Simulation fidelity"), which keeps the complex multi-phase constructions
readable.  Downstream users, however, often want the textbook programming
model: *every vertex runs the same program*, reacting to the messages of
the previous round.  This module provides exactly that:

* subclass :class:`NodeProgram`, implement :meth:`init` and
  :meth:`on_round`;
* :func:`run_protocol` instantiates one program per vertex and drives
  synchronous rounds until every program halts (or a round budget is hit).

Programs talk to the world only through their :class:`NodeApi` -- their id,
their ports, their memory meter, and a ``send`` primitive -- so a program
cannot accidentally read global state.  The halting convention follows the
standard definition: a vertex may halt while messages are still in flight
to it; the protocol terminates when all vertices halted and no messages
remain.

Two reference programs ship with the module and double as documentation:

* :class:`FloodMax` -- classic leader election by flooding the maximum id
  (terminates after D+1 quiet rounds -- here we use an explicit round cap
  supplied by the caller, the standard assumption that n or D is known);
* :class:`BfsProgram` -- BFS tree construction, equivalent to
  :func:`repro.congest.bfs.build_bfs_tree` (a test asserts the same trees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from ..errors import InputError
from ..wordsize import words_of
from .memory import MemoryMeter
from .message import Message
from .network import Network

NodeId = Hashable


class NodeApi:
    """The world as one vertex sees it."""

    __slots__ = ("_net", "id", "ports", "_port_set", "memory",
                 "_outgoing", "halted")

    def __init__(self, net: Network, node: NodeId) -> None:
        self._net = net
        self.id = node
        self.ports: List[NodeId] = net.ports(node)
        self._port_set = frozenset(self.ports)
        self.memory: MemoryMeter = net.mem(node)
        self._outgoing: List[Message] = []
        self.halted = False

    def send(self, to: NodeId, kind: str, payload: Any = None) -> None:
        """Queue a message to a neighbour for the next round."""
        if to not in self._port_set:
            raise InputError(f"{self.id!r} has no port to {to!r}")
        self._outgoing.append(Message(src=self.id, dst=to, kind=kind, payload=payload))

    def broadcast(self, kind: str, payload: Any = None) -> None:
        """Send the same message on every port (payload sized once)."""
        words = words_of(payload)
        out = self._outgoing
        src = self.id
        for neighbour in self.ports:
            out.append(Message(src, neighbour, kind, payload, words))

    def halt(self) -> None:
        """Stop participating; ``on_round`` will not be called again."""
        self.halted = True

    def _drain(self) -> List[Message]:
        out, self._outgoing = self._outgoing, []
        return out


class NodeProgram:
    """Base class for per-vertex programs.  Override both hooks."""

    def init(self, api: NodeApi) -> None:
        """Round 0: set up state, optionally send the first messages."""

    def on_round(self, api: NodeApi, inbox: Sequence[Message]) -> None:
        """Called once per round with last round's received messages."""
        raise NotImplementedError


@dataclass
class ProtocolResult:  # lint: ignore[REP005] -- built once as the run's return value, not per round
    """Outcome of a protocol run."""

    rounds: int
    programs: Dict[NodeId, NodeProgram]
    halted: bool


def run_protocol(
    net: Network,
    make_program: Callable[[NodeId], NodeProgram],
    *,
    max_rounds: int = 10 ** 6,
    max_quiet_rounds: int = 64,
) -> ProtocolResult:
    """Run ``make_program(node_id)`` on every vertex until all halt.

    Returns the programs so callers can read their final state.  Raises
    :class:`InputError` when ``max_rounds`` is exhausted with traffic still
    flowing (a protocol bug).  A protocol that goes *quiet* without a
    unanimous halt (no messages for ``max_quiet_rounds`` consecutive
    rounds -- programs may legitimately count down silently for a while)
    returns with ``halted=False``.
    """
    apis: Dict[NodeId, NodeApi] = {}
    programs: Dict[NodeId, NodeProgram] = {}
    for v in sorted(net.nodes(), key=repr):
        api = NodeApi(net, v)
        program = make_program(v)
        apis[v] = api
        programs[v] = program
        program.init(api)

    rounds = 0
    quiet = 0
    while True:
        if rounds >= max_rounds:
            raise InputError(f"protocol did not halt within {max_rounds} rounds")
        # Phase 1: ship everything queued last round (halted vertices may
        # still have parting messages in their buffers).
        outgoing = 0
        for api in apis.values():
            for msg in api._drain():
                net.send_message(msg)
                outgoing += 1
        inboxes = net.tick()
        rounds += 1
        # Phase 2: every non-halted program observes the round, message or
        # not -- the synchronous model gives every vertex a step per round.
        for v, program in programs.items():
            if not apis[v].halted:
                program.on_round(apis[v], inboxes.get(v, []))
        all_halted = all(api.halted for api in apis.values())
        any_queued = any(api._outgoing for api in apis.values())
        if all_halted and not any_queued:
            return ProtocolResult(rounds=rounds, programs=programs, halted=True)
        if outgoing == 0 and not any_queued:
            quiet += 1
            if quiet >= max_quiet_rounds:
                # Persistently quiescent without a unanimous halt: stuck.
                return ProtocolResult(rounds=rounds, programs=programs, halted=False)
        else:
            quiet = 0


# ---------------------------------------------------------------------------
# Reference programs
# ---------------------------------------------------------------------------

class FloodMax(NodeProgram):
    """Leader election: flood the maximum id for ``diameter_bound`` rounds.

    After the run, every program's ``leader`` equals the globally largest
    vertex id (by repr order, matching the library's deterministic order).
    """

    def __init__(self, diameter_bound: int) -> None:
        self.diameter_bound = diameter_bound
        self.leader: Optional[NodeId] = None
        self._rounds_left = diameter_bound

    def init(self, api: NodeApi) -> None:
        self.leader = api.id
        api.memory.store("floodmax/leader", 1)
        api.broadcast("leader", api.id)

    def on_round(self, api: NodeApi, inbox: Sequence[Message]) -> None:
        best = self.leader
        changed = False
        for msg in inbox:
            if repr(msg.payload) > repr(best):
                best = msg.payload
                changed = True
        self._rounds_left -= 1
        if changed:
            self.leader = best
            api.memory.store("floodmax/leader", 1)
            api.broadcast("leader", best)
        if self._rounds_left <= 0:
            api.halt()


class BfsProgram(NodeProgram):
    """BFS tree construction as a per-vertex program."""

    def __init__(self, root: NodeId) -> None:
        self.root = root
        self.parent: Optional[NodeId] = None
        self.depth: Optional[int] = None

    def init(self, api: NodeApi) -> None:
        if api.id == self.root:
            self.depth = 0
            api.memory.store("bfs/state", 2)
            api.broadcast("wave", 0)
            api.halt()

    def on_round(self, api: NodeApi, inbox: Sequence[Message]) -> None:
        if self.depth is not None:
            api.halt()
            return
        wave = [m for m in inbox if m.kind == "wave"]
        if not wave:
            return
        chosen = min(wave, key=lambda m: repr(m.src))
        self.parent = chosen.src
        self.depth = chosen.payload + 1
        api.memory.store("bfs/state", 2)
        api.broadcast("wave", self.depth)
        api.halt()
