"""Round-activity tracing for CONGEST executions.

Attach a :class:`RoundTrace` to a network before running an algorithm and
get, afterwards, a per-round activity log (messages and words per simulated
round, charge events with their phases) plus an ASCII timeline — the
observability tool for understanding *where* an execution spends its
rounds, finer-grained than the phase totals in
:class:`~repro.congest.metrics.RunMetrics`.

The trace hooks the network's ``tick``/``charge_rounds`` without the
network knowing (decoration), so zero cost is added when no trace is
attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .network import Network


@dataclass
class RoundSample:
    """One simulated round's traffic."""

    round_index: int
    messages: int
    words: int
    phase: Optional[str]


@dataclass
class ChargeSample:
    """One analytic charge event."""

    at_round: int
    rounds: int
    phase: Optional[str]


@dataclass
class RoundTrace:
    """Recorded activity of one network run."""

    samples: List[RoundSample] = field(default_factory=list)
    charges: List[ChargeSample] = field(default_factory=list)

    @property
    def busiest_round(self) -> Optional[RoundSample]:
        if not self.samples:
            return None
        return max(self.samples, key=lambda s: s.messages)

    def total_messages(self) -> int:
        return sum(s.messages for s in self.samples)

    def charged_total(self) -> int:
        return sum(c.rounds for c in self.charges)

    def timeline(self, width: int = 60, buckets: int = 20) -> str:
        """An ASCII sparkline of message volume over simulated rounds."""
        if not self.samples:
            return "(no simulated rounds)"
        per_bucket = max(1, len(self.samples) // buckets)
        bars = []
        for i in range(0, len(self.samples), per_bucket):
            chunk = self.samples[i:i + per_bucket]
            bars.append(sum(s.messages for s in chunk))
        peak = max(bars) or 1
        glyphs = " .:-=+*#%@"
        line = "".join(glyphs[min(len(glyphs) - 1, int(b / peak * (len(glyphs) - 1)))]
                       for b in bars)
        return (f"rounds 1..{len(self.samples)}  peak {peak} msgs/bucket\n"
                f"[{line[:width]}]")


def attach_trace(net: Network) -> RoundTrace:
    """Start recording ``net``'s activity; returns the live trace object."""
    trace = RoundTrace()
    original_tick = net.tick
    original_charge = net.charge_rounds

    def tick():
        pending = len(net._outbox)
        words = sum(m.words for m in net._outbox)
        inboxes = original_tick()
        phase = net.metrics._open.name if net.metrics._open else None
        trace.samples.append(RoundSample(
            round_index=net.metrics.rounds,
            messages=pending,
            words=words,
            phase=phase,
        ))
        return inboxes

    def charge_rounds(rounds, messages=0, words=0):
        original_charge(rounds, messages=messages, words=words)
        phase = net.metrics._open.name if net.metrics._open else None
        trace.charges.append(ChargeSample(
            at_round=net.metrics.rounds,
            rounds=int(rounds),
            phase=phase,
        ))

    net.tick = tick  # type: ignore[method-assign]
    net.charge_rounds = charge_rounds  # type: ignore[method-assign]
    return trace
