"""Round-activity tracing for CONGEST executions.

Attach a :class:`RoundTrace` to a network before running an algorithm and
get, afterwards, a per-round activity log (messages and words per simulated
round, charge events with their phases) plus an ASCII timeline — the
observability tool for understanding *where* an execution spends its
rounds, finer-grained than the phase totals in
:class:`~repro.congest.metrics.RunMetrics`.

The trace registers as a round observer
(:meth:`~repro.congest.network.Network.add_round_observer`); when none is
attached the network's hot paths pay one truthiness check per round, the
same zero-overhead guard as the telemetry event bus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .message import Message
from .network import Network


@dataclass
class RoundSample:
    """One simulated round's traffic."""

    round_index: int
    messages: int
    words: int
    phase: Optional[str]


@dataclass
class ChargeSample:
    """One analytic charge event."""

    at_round: int
    rounds: int
    phase: Optional[str]


@dataclass
class RoundTrace:
    """Recorded activity of one network run."""

    samples: List[RoundSample] = field(default_factory=list)
    charges: List[ChargeSample] = field(default_factory=list)

    @property
    def busiest_round(self) -> Optional[RoundSample]:
        if not self.samples:
            return None
        return max(self.samples, key=lambda s: s.messages)

    def total_messages(self) -> int:
        return sum(s.messages for s in self.samples)

    def to_dict(self) -> dict:
        """JSON-ready form (round samples + charge events)."""
        from dataclasses import asdict

        return {
            "samples": [asdict(s) for s in self.samples],
            "charges": [asdict(c) for c in self.charges],
        }

    def charged_total(self) -> int:
        return sum(c.rounds for c in self.charges)

    def timeline(
        self,
        width: int = 60,
        buckets: int = 20,
        *,
        mode: str = "sparkline",
        max_rows: int = 40,
    ) -> str:
        """ASCII rendering of message volume over simulated rounds.

        ``mode="sparkline"`` (default) compresses the whole run into a
        single glyph line.  ``mode="rows"`` prints one bar-chart row per
        round -- but width-capped and *bucketed*: a run longer than
        ``max_rows`` rounds is grouped into at most ``max_rows`` round
        ranges, so a 10k+-round trace still renders in one screen.
        """
        if not self.samples:
            return "(no simulated rounds)"
        if mode == "sparkline":
            per_bucket = max(1, len(self.samples) // buckets)
            bars = []
            for i in range(0, len(self.samples), per_bucket):
                chunk = self.samples[i:i + per_bucket]
                bars.append(sum(s.messages for s in chunk))
            peak = max(bars) or 1
            glyphs = " .:-=+*#%@"
            line = "".join(
                glyphs[min(len(glyphs) - 1, int(b / peak * (len(glyphs) - 1)))]
                for b in bars
            )
            return (f"rounds 1..{len(self.samples)}  peak {peak} msgs/bucket\n"
                    f"[{line[:width]}]")
        if mode == "rows":
            return self._timeline_rows(width=width, max_rows=max_rows)
        raise ValueError(f"unknown timeline mode {mode!r}")

    def _timeline_rows(self, *, width: int, max_rows: int) -> str:
        """Bucketed per-round rows: ``rounds a-b  msgs N |#####``."""
        count = len(self.samples)
        per_bucket = max(1, math.ceil(count / max(1, max_rows)))
        rows = []  # (first_round, last_round, messages)
        for i in range(0, count, per_bucket):
            chunk = self.samples[i:i + per_bucket]
            rows.append((
                chunk[0].round_index,
                chunk[-1].round_index,
                sum(s.messages for s in chunk),
            ))
        peak = max(r[2] for r in rows) or 1
        bar_width = max(1, width - 24)
        lines = [
            f"rounds 1..{count}  ({per_bucket} round(s)/row, peak {peak} msgs)"
        ]
        for first, last, msgs in rows:
            label = f"{first}" if first == last else f"{first}-{last}"
            bar = "#" * max(0, round(msgs / peak * bar_width))
            lines.append(f"  {label:>11}  {msgs:>7} |{bar}")
        return "\n".join(lines)


class _TraceObserver:
    """Adapter feeding a :class:`RoundTrace` from the network's observer hook."""

    __slots__ = ("trace",)

    def __init__(self, trace: RoundTrace) -> None:
        self.trace = trace

    def on_round(self, net: Network, delivered: Sequence[Message],
                 words: int) -> None:
        self.trace.samples.append(RoundSample(
            round_index=net.metrics.rounds,
            messages=len(delivered),
            words=words,
            phase=net.metrics.phase_name,
        ))

    def on_charge(self, net: Network, rounds: int, messages: int,
                  words: int) -> None:
        self.trace.charges.append(ChargeSample(
            at_round=net.metrics.rounds,
            rounds=rounds,
            phase=net.metrics.phase_name,
        ))


def attach_trace(net: Network) -> RoundTrace:
    """Start recording ``net``'s activity; returns the live trace object."""
    trace = RoundTrace()
    net.add_round_observer(_TraceObserver(trace))
    return trace
