"""The reference CONGEST round engine (executable specification).

:class:`ReferenceNetwork` preserves, line for line, the original
dictionary-based simulator that :class:`~repro.congest.network.Network`
shipped with before the fast-path engine landed: per-call
``sorted(..., key=repr)`` port numbering, ``defaultdict`` edge-load
accounting keyed by ``(src, dst)`` tuples, and per-message word counting
through :class:`~repro.congest.message.Message.__post_init__`.

It exists so the fast path can be *proved* equivalent rather than trusted:
the differential harness under ``tests/differential/`` replays randomized
protocols on both engines and asserts identical round counts, per-edge
message totals, :class:`~repro.congest.metrics.RunMetrics`, per-vertex
memory high-waters, and trace timelines — including byte-identical
:class:`~repro.errors.CongestModelViolation` messages under ``strict``.

The class mirrors the full public ``Network`` surface (duck-typed — every
algorithm in the library runs unmodified on either engine), including the
batched :meth:`send_many` / :meth:`deliver_batch` entry points, which here
degrade to the per-message slow path so batching changes *performance
only*, never semantics.

Do not optimise this module.  Its value is being obviously correct and
frozen; speed belongs in :mod:`repro.congest.network`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from ..errors import CongestModelViolation, InputError
from ..telemetry import events as _tele
from ..telemetry import flight as _flight
from ..wordsize import words_of
from .memory import MemoryMeter
from .message import Message

NodeId = Hashable


class ReferenceNetwork:
    """The seed CONGEST simulator, kept as the differential-test oracle."""

    def __init__(
        self,
        graph: nx.Graph,
        *,
        message_word_limit: int = 4,
        edge_capacity: int = 1,
        strict: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        import random

        from .metrics import RunMetrics

        if graph.number_of_nodes() == 0:
            raise InputError("network requires a non-empty graph")
        if graph.is_directed():
            raise InputError("network requires an undirected graph")
        if not nx.is_connected(graph):
            raise InputError("network requires a connected graph")
        self.graph = graph
        self.message_word_limit = message_word_limit
        self.edge_capacity = edge_capacity
        self.strict = strict
        self.rng = random.Random(seed)
        self.metrics = RunMetrics()
        self._meters: Dict[NodeId, MemoryMeter] = {v: MemoryMeter() for v in graph}
        self._outbox: List[Message] = []
        self._edge_load: Dict[Tuple[NodeId, NodeId], int] = defaultdict(int)
        self._round_observers: List[Any] = []
        if _flight._SESSIONS:
            _flight._SESSIONS[-1].attach(self)

    # -- topology ------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.number_of_nodes()

    def nodes(self) -> Iterator[NodeId]:
        return iter(self.graph.nodes)

    def neighbors(self, v: NodeId) -> Iterator[NodeId]:
        return iter(self.graph.neighbors(v))

    def degree(self, v: NodeId) -> int:
        return self.graph.degree(v)

    def weight(self, u: NodeId, v: NodeId) -> float:
        """Weight of the edge ``{u, v}`` (1.0 when the graph is unweighted)."""
        return float(self.graph[u][v].get("weight", 1.0))

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return self.graph.has_edge(u, v)

    def ports(self, v: NodeId) -> List[NodeId]:
        """Deterministically ordered neighbor list ("port numbering").

        The reference engine re-sorts on every call — the exact cost the
        fast path's precomputed port tables eliminate.
        """
        return sorted(self.graph.neighbors(v), key=repr)

    # -- memory ----------------------------------------------------------------

    def mem(self, v: NodeId) -> MemoryMeter:
        """The memory meter of vertex ``v``."""
        return self._meters[v]

    def memory_high_water(self) -> Dict[NodeId, int]:
        """Per-vertex memory high-water marks, in words."""
        return {v: meter.high_water for v, meter in self._meters.items()}

    def max_memory(self) -> int:
        """Worst per-vertex memory high-water over the run, in words."""
        return max(meter.high_water for meter in self._meters.values())

    def free_all(self, prefix: str) -> None:
        """Free the given key prefix at every vertex (stage teardown)."""
        for meter in self._meters.values():
            meter.free_prefix(prefix)

    def free_key(self, key: str) -> None:
        """Free one exact key at every vertex (O(n), no key scans)."""
        for meter in self._meters.values():
            meter.free(key)

    def store_all(self, key: str, words: int) -> None:
        """Store ``words`` under ``key`` at every vertex (stage setup)."""
        for meter in self._meters.values():
            meter.store(key, words)

    # -- observation -----------------------------------------------------------

    def add_round_observer(self, observer: Any) -> Any:
        """Register an observer notified on every ``tick``/``charge_rounds``."""
        self._round_observers.append(observer)
        return observer

    def remove_round_observer(self, observer: Any) -> None:
        """Unregister an observer (no error if absent)."""
        try:
            self._round_observers.remove(observer)
        except ValueError:
            pass

    # -- messaging -------------------------------------------------------------

    def send(self, src: NodeId, dst: NodeId, kind: str, payload: Any = None) -> None:
        """Queue a message for delivery at the next :meth:`tick`."""
        if not self.graph.has_edge(src, dst):
            raise CongestModelViolation(f"{src!r} -> {dst!r} is not an edge")
        msg = Message(src=src, dst=dst, kind=kind, payload=payload)
        slots = max(1, math.ceil(msg.words / self.message_word_limit))
        if self.strict:
            load = self._edge_load[(src, dst)] + slots
            if load > self.edge_capacity and slots == 1:
                raise CongestModelViolation(
                    f"edge {src!r}->{dst!r} over capacity in round "
                    f"{self.metrics.rounds}: {load} > {self.edge_capacity}"
                )
        self._edge_load[(src, dst)] += slots
        self._outbox.append(msg)
        # Wide payloads occupy several rounds of the edge; charge the extra.
        if slots > 1:
            self.metrics.on_charge(slots - 1)
            _tele.emit("congest.charged_rounds", slots - 1)

    def send_many(
        self, src: NodeId, dsts: Iterable[NodeId], kind: str, payload: Any = None
    ) -> int:
        """Fan ``payload`` out from ``src`` to every vertex in ``dsts``.

        API compatibility shim: the reference engine just loops over
        :meth:`send`, so the batched entry point provably changes nothing
        but speed.  Returns the number of messages queued.
        """
        # Contract shared with the fast path: the payload is sized before
        # any destination is validated.
        words_of(payload)
        count = 0
        for dst in dsts:
            self.send(src, dst, kind, payload)
            count += 1
        return count

    def send_message(self, msg: Message) -> None:
        """Queue an already-built :class:`Message` (shim: rebuilds via
        :meth:`send`, exactly what the seed's protocol driver did)."""
        self.send(msg.src, msg.dst, msg.kind, msg.payload)

    def flood_all(self, kind: str, payload: Any = None) -> int:
        """Every vertex fans ``payload`` out to all of its ports, in node
        order (API compatibility shim: a loop over :meth:`send_many`, so
        the batching engines' whole-round lane provably changes nothing
        but speed).  Returns the number of messages queued."""
        count = 0
        for v in self.graph.nodes:
            count += self.send_many(v, self.ports(v), kind, payload)
        return count

    def queued_arc_loads(self) -> List[int]:
        """Per-arc queued load of the open round, indexed by arc id (arcs
        enumerate each vertex's ports in node order, matching the fast
        path's arc ids)."""
        loads: List[int] = []
        for v in self.graph.nodes:
            for w in self.ports(v):
                loads.append(self._edge_load.get((v, w), 0))
        return loads

    def tick(self) -> Dict[NodeId, List[Message]]:
        """Deliver queued messages, advance one round, return inboxes."""
        inboxes: Dict[NodeId, List[Message]] = defaultdict(list)
        words = 0
        for msg in self._outbox:
            inboxes[msg.dst].append(msg)
            words += msg.words
        self.metrics.on_round(len(self._outbox), words)
        if _tele._collectors:
            _tele.emit("congest.rounds", 1)
            if self._outbox:
                _tele.emit("congest.messages", len(self._outbox))
                _tele.emit("congest.message_words", words)
        if self._round_observers:
            for obs in self._round_observers:
                obs.on_round(self, self._outbox, words)
        self._outbox = []
        self._edge_load.clear()
        return inboxes

    def deliver_batch(self) -> List[Message]:
        """Deliver queued messages as one flat list (no per-dst inboxes).

        Same round/metrics/observer semantics as :meth:`tick`; only the
        return shape differs.
        """
        delivered = self._outbox
        words = 0
        for msg in delivered:
            words += msg.words
        self.metrics.on_round(len(delivered), words)
        if _tele._collectors:
            _tele.emit("congest.rounds", 1)
            if delivered:
                _tele.emit("congest.messages", len(delivered))
                _tele.emit("congest.message_words", words)
        if self._round_observers:
            for obs in self._round_observers:
                obs.on_round(self, delivered, words)
        self._outbox = []
        self._edge_load.clear()
        return delivered

    def idle_rounds(self, count: int) -> None:
        """Advance ``count`` rounds with no traffic (synchronization waits)."""
        for _ in range(count):
            self.tick()

    def charge_rounds(self, rounds: int, messages: int = 0, words: int = 0) -> None:
        """Account for ``rounds`` rounds computed analytically."""
        if rounds < 0:
            raise InputError("cannot charge a negative number of rounds")
        self.metrics.on_charge(int(math.ceil(rounds)))
        self.metrics.messages += messages
        self.metrics.message_words += words
        if _tele._collectors:
            _tele.emit("congest.charged_rounds", int(math.ceil(rounds)))
            if messages:
                _tele.emit("congest.messages", messages)
            if words:
                _tele.emit("congest.message_words", words)
        if self._round_observers:
            for obs in self._round_observers:
                obs.on_charge(self, int(math.ceil(rounds)), messages, words)

    # -- phases ------------------------------------------------------------------

    def begin_phase(self, name: str) -> None:
        self.metrics.begin_phase(name)

    def end_phase(self) -> None:
        self.metrics.end_phase()

    # -- convenience ---------------------------------------------------------------

    def hop_diameter_upper_bound(self) -> int:
        """2 * BFS-depth from an arbitrary vertex: a cheap upper bound on D."""
        root = next(iter(self.graph.nodes))
        depths = nx.single_source_shortest_path_length(self.graph, root)
        return 2 * max(depths.values()) if len(depths) > 1 else 0
