"""Run-level metrics for CONGEST executions.

The simulator aggregates, per run:

* ``rounds``                -- simulated rounds actually executed, plus
* ``charged_rounds``        -- rounds added analytically by phases that are
                               cost-charged instead of simulated (see
                               DESIGN.md, "Simulation fidelity");
* ``messages`` / ``message_words`` -- traffic totals;
* per-vertex memory high-water marks (via the vertices' meters).

:class:`PhaseLog` lets orchestrators attribute rounds/messages to named
protocol phases so benchmarks can print per-stage breakdowns matching the
paper's narrative (Stage 1/2/3 of the tree routing, and the pivot/cluster
phases of Appendix B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PhaseRecord:
    """Rounds and traffic attributed to one named phase."""

    name: str
    rounds: int = 0
    charged_rounds: int = 0
    messages: int = 0
    message_words: int = 0

    @property
    def total_rounds(self) -> int:
        return self.rounds + self.charged_rounds

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "rounds": self.rounds,
            "charged_rounds": self.charged_rounds,
            "messages": self.messages,
            "message_words": self.message_words,
        }


@dataclass
class RunMetrics:
    """Aggregate counters for a whole distributed execution."""

    rounds: int = 0
    charged_rounds: int = 0
    messages: int = 0
    message_words: int = 0
    phases: List[PhaseRecord] = field(default_factory=list)
    _open: Optional[PhaseRecord] = None

    @property
    def total_rounds(self) -> int:
        """Simulated plus analytically charged rounds."""
        return self.rounds + self.charged_rounds

    @property
    def phase_name(self) -> Optional[str]:
        """Name of the currently open phase (None outside any phase)."""
        return self._open.name if self._open is not None else None

    # -- phase attribution ---------------------------------------------------

    def begin_phase(self, name: str) -> None:
        self._open = PhaseRecord(name=name)
        self.phases.append(self._open)

    def end_phase(self) -> None:
        self._open = None

    def on_round(self, messages: int, words: int) -> None:
        self.rounds += 1
        self.messages += messages
        self.message_words += words
        if self._open is not None:
            self._open.rounds += 1
            self._open.messages += messages
            self._open.message_words += words

    def on_charge(self, rounds: int) -> None:
        self.charged_rounds += rounds
        if self._open is not None:
            self._open.charged_rounds += rounds

    def on_charge_bulk(self, rounds: int, count: int) -> None:
        """``count`` identical :meth:`on_charge` events folded into one
        counter update (the vectorized engine's wide-batch lane).  Exactly
        equivalent to calling ``on_charge(rounds)`` ``count`` times."""
        total = rounds * count
        self.charged_rounds += total
        if self._open is not None:
            self._open.charged_rounds += total

    # -- reporting -----------------------------------------------------------

    def by_phase(self) -> Dict[str, int]:
        """Map phase name to total rounds (merging repeated phase names)."""
        out: Dict[str, int] = {}
        for record in self.phases:
            out[record.name] = out.get(record.name, 0) + record.total_rounds
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (used by telemetry RunRecords and benches)."""
        return {
            "rounds": self.rounds,
            "charged_rounds": self.charged_rounds,
            "total_rounds": self.total_rounds,
            "messages": self.messages,
            "message_words": self.message_words,
            "phases": [p.to_dict() for p in self.phases],
        }

    def fingerprint(self) -> tuple:
        """Hashable canonical form: every counter plus the full phase log.

        Two runs with equal fingerprints executed the same number of
        simulated and charged rounds, moved the same traffic, and
        attributed it to the same phases in the same order — the equality
        the differential engine harness (``tests/differential/``) asserts
        between the fast path and the reference simulator.
        """
        return (
            self.rounds,
            self.charged_rounds,
            self.messages,
            self.message_words,
            tuple(
                (p.name, p.rounds, p.charged_rounds, p.messages,
                 p.message_words)
                for p in self.phases
            ),
        )

    def summary(self) -> str:
        lines = [
            f"rounds={self.rounds} charged={self.charged_rounds} "
            f"total={self.total_rounds} messages={self.messages} "
            f"words={self.message_words}"
        ]
        for name, rounds in self.by_phase().items():
            lines.append(f"  {name}: {rounds} rounds")
        return "\n".join(lines)
