"""The CONGEST network simulator (fast-path round engine).

A :class:`Network` wraps a weighted undirected :mod:`networkx` graph.  Every
vertex hosts a processor with a :class:`~repro.congest.memory.MemoryMeter`;
processors communicate in synchronous rounds by exchanging
:class:`~repro.congest.message.Message` objects along edges.

Model enforcement
-----------------
* Messages may only traverse edges of the graph
  (:class:`~repro.errors.CongestModelViolation` otherwise).
* At most ``edge_capacity`` messages (default 1) traverse each edge
  *direction* per round.
* Payloads are at most ``message_word_limit`` machine words (default 4,
  covering "a vertex id, an edge weight, a distance, plus a constant number
  of tags" -- the CONGEST RAM model of Section 2).  Algorithms that
  legitimately batch wider payloads (the O(log n)-word light-edge lists of
  Section 3.2) declare the width and the simulator charges
  ``ceil(words / message_word_limit)`` rounds worth of capacity for them.

Fast path
---------
Graphs are immutable once a :class:`Network` wraps them, so ``__init__``
compiles the topology into flat structures and the per-round hot loops never
touch :mod:`networkx` again:

* **compact integer vertex ids** (``_id_of`` / ``_node_of``) with a
  **CSR-style adjacency**: ``_adj_offsets[i] .. _adj_offsets[i+1]`` indexes
  each vertex's slice of ``_adj_targets`` (neighbor ids, in port order) and
  ``_adj_weights`` (pre-``float()``-ed edge weights);
* **precomputed port tables**: :meth:`ports` returns a cached list built
  once per vertex — the seed engine re-ran ``sorted(..., key=repr)`` on
  every call;
* **array-backed edge loads**: every directed edge (arc) gets a dense
  integer id; per-round capacity accounting indexes a flat list instead of
  hashing ``(src, dst)`` tuples into a ``defaultdict``, and :meth:`tick`
  resets only the arcs actually touched;
* **batched messaging**: :meth:`send_many` fans one payload out of a vertex
  with the word-size computed once and the edge/capacity checks amortized;
  :meth:`deliver_batch` delivers a round as one flat list for callers that
  do not need per-destination inboxes.

All observable behaviour — message order, inbox ordering, metrics,
memory accounting, round observers, and byte-for-byte ``strict``
:class:`~repro.errors.CongestModelViolation` messages — is identical to the
reference engine (:class:`~repro.congest.reference.ReferenceNetwork`); the
differential harness under ``tests/differential/`` enforces this across
randomized protocols, topologies and seeds.  See ``docs/performance.md``.

Round accounting
----------------
``tick()`` delivers the queued messages and advances the round counter.
``charge_rounds(r)`` adds ``r`` analytically-derived rounds for phases that
are cost-charged instead of literally simulated (pipelined broadcast bodies,
hopset construction); see DESIGN.md.  Benchmarks report
``metrics.total_rounds``.

The simulator is deliberately *orchestrated*: algorithm code drives rounds
procedurally (send / tick loops) rather than via per-node state machines.
Information still only moves along edges, one hop per round, which is what
makes the round and memory measurements meaningful.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from ..errors import CongestModelViolation, InputError
from ..telemetry import events as _tele
from ..telemetry import flight as _flight
from ..wordsize import words_of
from .memory import MemoryMeter
from .message import Message
from .metrics import RunMetrics

NodeId = Hashable


class Network:
    """A synchronous CONGEST network over a weighted undirected graph."""

    def __init__(
        self,
        graph: nx.Graph,
        *,
        message_word_limit: int = 4,
        edge_capacity: int = 1,
        strict: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise InputError("network requires a non-empty graph")
        if graph.is_directed():
            raise InputError("network requires an undirected graph")
        if not nx.is_connected(graph):
            raise InputError("network requires a connected graph")
        self.graph = graph
        self.message_word_limit = message_word_limit
        self.edge_capacity = edge_capacity
        self.strict = strict
        self.rng = random.Random(seed)
        self.metrics = RunMetrics()
        self._meters: Dict[NodeId, MemoryMeter] = {v: MemoryMeter() for v in graph}
        self._outbox: List[Message] = []
        #: Words queued in ``_outbox``, accumulated at send time so closing
        #: a round never re-walks the outbox to sum message widths.
        self._outbox_words = 0
        #: Round observers (flight recorders, round traces).  Empty list ==
        #: observation disabled; ``tick``/``charge_rounds`` test truthiness
        #: only, the same zero-overhead guard as the telemetry event bus.
        self._round_observers: List[Any] = []

        # -- compile the immutable topology (see module docstring) ----------
        self._node_of: List[NodeId] = list(graph.nodes)
        self._id_of: Dict[NodeId, int] = {
            v: i for i, v in enumerate(self._node_of)
        }
        id_of = self._id_of
        offsets = [0]
        targets: List[int] = []
        weights: List[float] = []
        ports_tab: List[List[NodeId]] = []
        arc_of: Dict[Tuple[NodeId, NodeId], int] = {}
        arc_ends: List[Tuple[NodeId, NodeId]] = []
        for v in self._node_of:
            port_list = sorted(graph.neighbors(v), key=repr)
            ports_tab.append(port_list)
            vdata = graph[v]
            for w in port_list:
                arc_of[(v, w)] = len(arc_ends)
                arc_ends.append((v, w))
                targets.append(id_of[w])
                weights.append(float(vdata[w].get("weight", 1.0)))
            offsets.append(len(targets))
        self._adj_offsets = offsets
        self._adj_targets = targets
        self._adj_weights = weights
        self._ports_table = ports_tab
        self._arc_of = arc_of
        self._arc_ends = arc_ends
        #: Per-arc load counters for the current round, indexed by arc id;
        #: ``_loaded_arcs`` lists the dirty entries so ``tick`` resets only
        #: what was touched instead of clearing all 2m counters.
        self._edge_load: List[int] = [0] * len(arc_ends)
        self._loaded_arcs: List[int] = []
        if _flight._SESSIONS:
            _flight._SESSIONS[-1].attach(self)

    # -- topology ------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._node_of)

    @property
    def num_arcs(self) -> int:
        """Number of directed edges (arcs): twice the edge count."""
        return len(self._arc_ends)

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._node_of)

    def neighbors(self, v: NodeId) -> Iterator[NodeId]:
        i = self._id_of[v]
        node_of = self._node_of
        return (
            node_of[t]
            for t in self._adj_targets[self._adj_offsets[i]:self._adj_offsets[i + 1]]
        )

    def degree(self, v: NodeId) -> int:
        i = self._id_of[v]
        return self._adj_offsets[i + 1] - self._adj_offsets[i]

    def weight(self, u: NodeId, v: NodeId) -> float:
        """Weight of the edge ``{u, v}`` (1.0 when the graph is unweighted)."""
        arc = self._arc_of.get((u, v))
        if arc is None:
            # Preserve the reference engine's error surface for non-edges.
            return float(self.graph[u][v].get("weight", 1.0))
        return self._adj_weights[arc]

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return (u, v) in self._arc_of

    def ports(self, v: NodeId) -> List[NodeId]:
        """Deterministically ordered neighbor list ("port numbering").

        Computed once per vertex at construction (graphs are immutable once
        wrapped); every call returns the same cached list.  Treat it as
        read-only.
        """
        return self._ports_table[self._id_of[v]]

    # -- compact ids / edge ids (fast-path introspection) ---------------------

    def compact_id(self, v: NodeId) -> int:
        """The dense integer id of vertex ``v`` (0..n-1, node order)."""
        return self._id_of[v]

    def node_of(self, i: int) -> NodeId:
        """Inverse of :meth:`compact_id`."""
        return self._node_of[i]

    def edge_index(self, u: NodeId, v: NodeId) -> int:
        """Dense id of the directed edge (arc) ``u -> v``.

        Arc ids enumerate each vertex's ports in order, so they double as
        CSR slot indices: ``edge_index(u, ports(u)[p])`` is
        ``_adj_offsets[compact_id(u)] + p``.
        """
        arc = self._arc_of.get((u, v))
        if arc is None:
            raise CongestModelViolation(f"{u!r} -> {v!r} is not an edge")
        return arc

    def edge_endpoints(self, arc: int) -> Tuple[NodeId, NodeId]:
        """Inverse of :meth:`edge_index`: the ``(src, dst)`` of an arc id."""
        return self._arc_ends[arc]

    # -- memory ----------------------------------------------------------------

    def mem(self, v: NodeId) -> MemoryMeter:
        """The memory meter of vertex ``v``."""
        return self._meters[v]

    def memory_high_water(self) -> Dict[NodeId, int]:
        """Per-vertex memory high-water marks, in words."""
        return {v: meter.high_water for v, meter in self._meters.items()}

    def max_memory(self) -> int:
        """Worst per-vertex memory high-water over the run, in words."""
        return max(meter.high_water for meter in self._meters.values())

    def free_all(self, prefix: str) -> None:
        """Free the given key prefix at every vertex (stage teardown).

        Per vertex this costs O(live keys under the prefix's group) thanks
        to the meter's prefix index; when the key is exact, use
        :meth:`free_key`.
        """
        for meter in self._meters.values():
            meter.free_prefix(prefix)

    def free_key(self, key: str) -> None:
        """Free one exact key at every vertex (O(n), no key scans)."""
        for meter in self._meters.values():
            meter.free(key)

    def store_all(self, key: str, words: int) -> None:
        """Store ``words`` under ``key`` at every vertex (stage setup; the
        inverse of :meth:`free_key` for uniform per-vertex buffers)."""
        for meter in self._meters.values():
            meter.store(key, words)

    # -- observation -----------------------------------------------------------

    def add_round_observer(self, observer: Any) -> Any:
        """Register an observer notified on every ``tick``/``charge_rounds``.

        Observers implement ``on_round(net, delivered, words)`` (called
        inside :meth:`tick` after the round counter advanced, with the
        delivered messages still in hand) and
        ``on_charge(net, rounds, messages, words)``.  Returns the observer
        for chaining.
        """
        self._round_observers.append(observer)
        return observer

    def remove_round_observer(self, observer: Any) -> None:
        """Unregister an observer (no error if absent)."""
        try:
            self._round_observers.remove(observer)
        except ValueError:
            pass

    # -- messaging -------------------------------------------------------------

    def send(self, src: NodeId, dst: NodeId, kind: str, payload: Any = None) -> None:
        """Queue a message for delivery at the next :meth:`tick`."""
        arc = self._arc_of.get((src, dst))
        if arc is None:
            raise CongestModelViolation(f"{src!r} -> {dst!r} is not an edge")
        words = 1 if payload is None else words_of(payload)
        limit = self.message_word_limit
        slots = 1 if words <= limit else -(-words // limit)
        edge_load = self._edge_load
        prior = edge_load[arc]
        if self.strict:
            load = prior + slots
            if load > self.edge_capacity and slots == 1:
                raise CongestModelViolation(
                    f"edge {src!r}->{dst!r} over capacity in round "
                    f"{self.metrics.rounds}: {load} > {self.edge_capacity}"
                )
        if not prior:
            self._loaded_arcs.append(arc)
        edge_load[arc] = prior + slots
        self._outbox.append(Message(src, dst, kind, payload, words))
        self._outbox_words += words
        if slots > 1:
            self.metrics.on_charge(slots - 1)
            _tele.emit("congest.charged_rounds", slots - 1)

    def send_message(self, msg: Message) -> None:
        """Queue an already-built :class:`Message` (the zero-copy send path).

        ``msg.words`` must be the payload's true word count (it is whenever
        the message came from the :class:`Message` constructor).  Semantics
        are exactly :meth:`send`; protocol drivers that already hold
        message objects skip rebuilding them.
        """
        arc = self._arc_of.get((msg.src, msg.dst))
        if arc is None:
            raise CongestModelViolation(f"{msg.src!r} -> {msg.dst!r} is not an edge")
        words = msg.words
        limit = self.message_word_limit
        slots = 1 if words <= limit else -(-words // limit)
        edge_load = self._edge_load
        prior = edge_load[arc]
        if self.strict:
            load = prior + slots
            if load > self.edge_capacity and slots == 1:
                raise CongestModelViolation(
                    f"edge {msg.src!r}->{msg.dst!r} over capacity in round "
                    f"{self.metrics.rounds}: {load} > {self.edge_capacity}"
                )
        if not prior:
            self._loaded_arcs.append(arc)
        edge_load[arc] = prior + slots
        self._outbox.append(msg)
        self._outbox_words += words
        # Wide payloads occupy several rounds of the edge; charge the extra.
        if slots > 1:
            self.metrics.on_charge(slots - 1)
            _tele.emit("congest.charged_rounds", slots - 1)

    def send_many(
        self, src: NodeId, dsts: Iterable[NodeId], kind: str, payload: Any = None
    ) -> int:
        """Fan ``payload`` out from ``src`` to every vertex in ``dsts``.

        Semantically identical to calling :meth:`send` per destination (in
        order), but the payload's word size is computed once — up front,
        before any destination is validated — and the edge-existence/
        capacity bookkeeping runs with the per-call overhead amortized.
        Returns the number of messages queued.
        """
        words = 1 if payload is None else words_of(payload)
        limit = self.message_word_limit
        slots = 1 if words <= limit else -(-words // limit)
        arc_of = self._arc_of
        edge_load = self._edge_load
        loaded = self._loaded_arcs
        outbox = self._outbox
        strict = self.strict
        capacity = self.edge_capacity
        src_id = self._id_of.get(src)
        # Full-fanout fast path: when the caller hands back the cached port
        # table itself, the arcs are exactly this vertex's contiguous CSR
        # slot range -- no per-destination hash lookups.
        if src_id is not None and dsts is self._ports_table[src_id]:
            lo = self._adj_offsets[src_id]
            pairs: Iterable[Tuple[Optional[int], NodeId]] = zip(
                range(lo, self._adj_offsets[src_id + 1]), dsts
            )
        else:
            pairs = ((arc_of.get((src, dst)), dst) for dst in dsts)
        count = 0
        for arc, dst in pairs:
            if arc is None:
                # Validation is interleaved, not up-front: a non-edge leaves
                # the earlier messages of the batch queued, exactly like a
                # loop over :meth:`send` would.
                self._outbox_words += words * count
                raise CongestModelViolation(f"{src!r} -> {dst!r} is not an edge")
            prior = edge_load[arc]
            if strict:
                load = prior + slots
                if load > capacity and slots == 1:
                    # Messages already appended this batch stay queued (the
                    # per-send reference path behaves the same); count their
                    # words before surfacing the violation.
                    self._outbox_words += words * count
                    raise CongestModelViolation(
                        f"edge {src!r}->{dst!r} over capacity in round "
                        f"{self.metrics.rounds}: {load} > {capacity}"
                    )
            if not prior:
                loaded.append(arc)
            edge_load[arc] = prior + slots
            outbox.append(Message(src, dst, kind, payload, words))
            count += 1
            if slots > 1:
                self.metrics.on_charge(slots - 1)
                _tele.emit("congest.charged_rounds", slots - 1)
        self._outbox_words += words * count
        return count

    def flood_all(self, kind: str, payload: Any = None) -> int:
        """Every vertex fans ``payload`` out to all of its ports, in node
        order (one whole-round flood).  Loop engines execute it as ``n``
        full fanouts; the vectorized engine overrides it with an O(1) lane.
        Returns the number of messages queued.
        """
        count = 0
        ports_tab = self._ports_table
        for i, v in enumerate(self._node_of):
            count += self.send_many(v, ports_tab[i], kind, payload)
        return count

    def queued_arc_loads(self) -> List[int]:
        """Per-arc queued load of the open round, indexed by arc id
        (audit/introspection; engines agree on this vector exactly)."""
        return list(self._edge_load)

    def _end_round(self, delivered: List[Message], words: int) -> None:
        """Shared round-close path of :meth:`tick` / :meth:`deliver_batch`."""
        self.metrics.on_round(len(delivered), words)
        if _tele._collectors:
            _tele.emit("congest.rounds", 1)
            if delivered:
                _tele.emit("congest.messages", len(delivered))
                _tele.emit("congest.message_words", words)
        if self._round_observers:
            for obs in self._round_observers:
                obs.on_round(self, delivered, words)
        self._outbox = []
        self._outbox_words = 0
        edge_load = self._edge_load
        for arc in self._loaded_arcs:
            edge_load[arc] = 0
        self._loaded_arcs.clear()

    def tick(self) -> Dict[NodeId, List[Message]]:
        """Deliver queued messages, advance one round, return inboxes."""
        delivered = self._outbox
        words = self._outbox_words
        inboxes: Dict[NodeId, List[Message]] = defaultdict(list)
        for msg in delivered:
            inboxes[msg.dst].append(msg)
        self._end_round(delivered, words)
        return inboxes

    def deliver_batch(self) -> List[Message]:
        """Deliver queued messages as one flat list (no per-dst inboxes).

        Same round/metrics/observer semantics as :meth:`tick`, minus the
        cost of grouping by destination — for counting floods, observers-
        only runs, and callers that dispatch on ``msg.dst`` themselves.
        The word total was accumulated at send time, so closing the round
        does not touch the messages at all.
        """
        delivered = self._outbox
        words = self._outbox_words
        self._end_round(delivered, words)
        return delivered

    def idle_rounds(self, count: int) -> None:
        """Advance ``count`` rounds with no traffic (synchronization waits)."""
        for _ in range(count):
            self.tick()

    def charge_rounds(self, rounds: int, messages: int = 0, words: int = 0) -> None:
        """Account for ``rounds`` rounds computed analytically.

        Used by cost-charged phases (DESIGN.md): the state change is computed
        directly while the round/message counters advance by the formula the
        paper proves for that phase.
        """
        if rounds < 0:
            raise InputError("cannot charge a negative number of rounds")
        self.metrics.on_charge(int(math.ceil(rounds)))
        self.metrics.messages += messages
        self.metrics.message_words += words
        if _tele._collectors:
            _tele.emit("congest.charged_rounds", int(math.ceil(rounds)))
            if messages:
                _tele.emit("congest.messages", messages)
            if words:
                _tele.emit("congest.message_words", words)
        if self._round_observers:
            for obs in self._round_observers:
                obs.on_charge(self, int(math.ceil(rounds)), messages, words)

    # -- phases ------------------------------------------------------------------

    def begin_phase(self, name: str) -> None:
        self.metrics.begin_phase(name)

    def end_phase(self) -> None:
        self.metrics.end_phase()

    # -- convenience ---------------------------------------------------------------

    def hop_diameter_upper_bound(self) -> int:
        """2 * BFS-depth from an arbitrary vertex: a cheap upper bound on D."""
        root = next(iter(self.graph.nodes))
        depths = nx.single_source_shortest_path_length(self.graph, root)
        return 2 * max(depths.values()) if len(depths) > 1 else 0
