"""The CONGEST network simulator.

A :class:`Network` wraps a weighted undirected :mod:`networkx` graph.  Every
vertex hosts a processor with a :class:`~repro.congest.memory.MemoryMeter`;
processors communicate in synchronous rounds by exchanging
:class:`~repro.congest.message.Message` objects along edges.

Model enforcement
-----------------
* Messages may only traverse edges of the graph
  (:class:`~repro.errors.CongestModelViolation` otherwise).
* At most ``edge_capacity`` messages (default 1) traverse each edge
  *direction* per round.
* Payloads are at most ``message_word_limit`` machine words (default 4,
  covering "a vertex id, an edge weight, a distance, plus a constant number
  of tags" -- the CONGEST RAM model of Section 2).  Algorithms that
  legitimately batch wider payloads (the O(log n)-word light-edge lists of
  Section 3.2) declare the width and the simulator charges
  ``ceil(words / message_word_limit)`` rounds worth of capacity for them.

Round accounting
----------------
``tick()`` delivers the queued messages and advances the round counter.
``charge_rounds(r)`` adds ``r`` analytically-derived rounds for phases that
are cost-charged instead of literally simulated (pipelined broadcast bodies,
hopset construction); see DESIGN.md.  Benchmarks report
``metrics.total_rounds``.

The simulator is deliberately *orchestrated*: algorithm code drives rounds
procedurally (send / tick loops) rather than via per-node state machines.
Information still only moves along edges, one hop per round, which is what
makes the round and memory measurements meaningful.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from ..errors import CongestModelViolation, InputError
from ..telemetry import events as _tele
from ..telemetry import flight as _flight
from .memory import MemoryMeter
from .message import Message
from .metrics import RunMetrics

NodeId = Hashable


class Network:
    """A synchronous CONGEST network over a weighted undirected graph."""

    def __init__(
        self,
        graph: nx.Graph,
        *,
        message_word_limit: int = 4,
        edge_capacity: int = 1,
        strict: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise InputError("network requires a non-empty graph")
        if graph.is_directed():
            raise InputError("network requires an undirected graph")
        if not nx.is_connected(graph):
            raise InputError("network requires a connected graph")
        self.graph = graph
        self.message_word_limit = message_word_limit
        self.edge_capacity = edge_capacity
        self.strict = strict
        self.rng = random.Random(seed)
        self.metrics = RunMetrics()
        self._meters: Dict[NodeId, MemoryMeter] = {v: MemoryMeter() for v in graph}
        self._outbox: List[Message] = []
        self._edge_load: Dict[Tuple[NodeId, NodeId], int] = defaultdict(int)
        #: Round observers (flight recorders, round traces).  Empty list ==
        #: observation disabled; ``tick``/``charge_rounds`` test truthiness
        #: only, the same zero-overhead guard as the telemetry event bus.
        self._round_observers: List[Any] = []
        if _flight._SESSIONS:
            _flight._SESSIONS[-1].attach(self)

    # -- topology ------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.number_of_nodes()

    def nodes(self) -> Iterator[NodeId]:
        return iter(self.graph.nodes)

    def neighbors(self, v: NodeId) -> Iterator[NodeId]:
        return iter(self.graph.neighbors(v))

    def degree(self, v: NodeId) -> int:
        return self.graph.degree(v)

    def weight(self, u: NodeId, v: NodeId) -> float:
        """Weight of the edge ``{u, v}`` (1.0 when the graph is unweighted)."""
        return float(self.graph[u][v].get("weight", 1.0))

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return self.graph.has_edge(u, v)

    def ports(self, v: NodeId) -> List[NodeId]:
        """Deterministically ordered neighbor list ("port numbering")."""
        return sorted(self.graph.neighbors(v), key=repr)

    # -- memory ----------------------------------------------------------------

    def mem(self, v: NodeId) -> MemoryMeter:
        """The memory meter of vertex ``v``."""
        return self._meters[v]

    def memory_high_water(self) -> Dict[NodeId, int]:
        """Per-vertex memory high-water marks, in words."""
        return {v: meter.high_water for v, meter in self._meters.items()}

    def max_memory(self) -> int:
        """Worst per-vertex memory high-water over the run, in words."""
        return max(meter.high_water for meter in self._meters.values())

    def free_all(self, prefix: str) -> None:
        """Free the given key prefix at every vertex (stage teardown).

        Prefix scans are O(keys-per-vertex); when the key is exact, use
        :meth:`free_key`, which the hot paths rely on.
        """
        for meter in self._meters.values():
            meter.free_prefix(prefix)

    def free_key(self, key: str) -> None:
        """Free one exact key at every vertex (O(n), no key scans)."""
        for meter in self._meters.values():
            meter.free(key)

    # -- observation -----------------------------------------------------------

    def add_round_observer(self, observer: Any) -> Any:
        """Register an observer notified on every ``tick``/``charge_rounds``.

        Observers implement ``on_round(net, delivered, words)`` (called
        inside :meth:`tick` after the round counter advanced, with the
        delivered messages still in hand) and
        ``on_charge(net, rounds, messages, words)``.  Returns the observer
        for chaining.
        """
        self._round_observers.append(observer)
        return observer

    def remove_round_observer(self, observer: Any) -> None:
        """Unregister an observer (no error if absent)."""
        try:
            self._round_observers.remove(observer)
        except ValueError:
            pass

    # -- messaging -------------------------------------------------------------

    def send(self, src: NodeId, dst: NodeId, kind: str, payload: Any = None) -> None:
        """Queue a message for delivery at the next :meth:`tick`."""
        if not self.graph.has_edge(src, dst):
            raise CongestModelViolation(f"{src!r} -> {dst!r} is not an edge")
        msg = Message(src=src, dst=dst, kind=kind, payload=payload)
        slots = max(1, math.ceil(msg.words / self.message_word_limit))
        if self.strict:
            load = self._edge_load[(src, dst)] + slots
            if load > self.edge_capacity and slots == 1:
                raise CongestModelViolation(
                    f"edge {src!r}->{dst!r} over capacity in round "
                    f"{self.metrics.rounds}: {load} > {self.edge_capacity}"
                )
        self._edge_load[(src, dst)] += slots
        self._outbox.append(msg)
        # Wide payloads occupy several rounds of the edge; charge the extra.
        if slots > 1:
            self.metrics.on_charge(slots - 1)
            _tele.emit("congest.charged_rounds", slots - 1)

    def tick(self) -> Dict[NodeId, List[Message]]:
        """Deliver queued messages, advance one round, return inboxes."""
        inboxes: Dict[NodeId, List[Message]] = defaultdict(list)
        words = 0
        for msg in self._outbox:
            inboxes[msg.dst].append(msg)
            words += msg.words
        self.metrics.on_round(len(self._outbox), words)
        if _tele._collectors:
            _tele.emit("congest.rounds", 1)
            if self._outbox:
                _tele.emit("congest.messages", len(self._outbox))
                _tele.emit("congest.message_words", words)
        if self._round_observers:
            for obs in self._round_observers:
                obs.on_round(self, self._outbox, words)
        self._outbox = []
        self._edge_load.clear()
        return inboxes

    def idle_rounds(self, count: int) -> None:
        """Advance ``count`` rounds with no traffic (synchronization waits)."""
        for _ in range(count):
            self.tick()

    def charge_rounds(self, rounds: int, messages: int = 0, words: int = 0) -> None:
        """Account for ``rounds`` rounds computed analytically.

        Used by cost-charged phases (DESIGN.md): the state change is computed
        directly while the round/message counters advance by the formula the
        paper proves for that phase.
        """
        if rounds < 0:
            raise InputError("cannot charge a negative number of rounds")
        self.metrics.on_charge(int(math.ceil(rounds)))
        self.metrics.messages += messages
        self.metrics.message_words += words
        if _tele._collectors:
            _tele.emit("congest.charged_rounds", int(math.ceil(rounds)))
            if messages:
                _tele.emit("congest.messages", messages)
            if words:
                _tele.emit("congest.message_words", words)
        if self._round_observers:
            for obs in self._round_observers:
                obs.on_charge(self, int(math.ceil(rounds)), messages, words)

    # -- phases ------------------------------------------------------------------

    def begin_phase(self, name: str) -> None:
        self.metrics.begin_phase(name)

    def end_phase(self) -> None:
        self.metrics.end_phase()

    # -- convenience ---------------------------------------------------------------

    def hop_diameter_upper_bound(self) -> int:
        """2 * BFS-depth from an arbitrary vertex: a cheap upper bound on D."""
        root = next(iter(self.graph.nodes))
        depths = nx.single_source_shortest_path_length(self.graph, root)
        return 2 * max(depths.values()) if len(depths) > 1 else 0
