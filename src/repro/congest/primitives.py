"""Round-faithful communication primitives on forests embedded in the network.

The tree-routing algorithms of Section 3 repeatedly run two patterns *inside
each local tree, for all local trees in parallel*:

* a **downward wave** from the roots (Stage 0 membership flood, Algorithm 2's
  light-edge lists, Algorithm 4's DFS ranges, the final "push the global
  value into the local tree" steps), and
* an **upward convergecast** from the leaves (subtree sizes in Stage 1).

Both are simulated literally: one message per tree edge per round, rounds
equal to the forest height, message payloads validated against the network's
word limit.  The forest's edges must be edges of the underlying network
(local trees are subtrees of the routing tree T, which is a subgraph of G).

:class:`Forest` is the shared representation: a parent map over a subset of
the network's vertices.  Depths are *within the forest*, root = depth 0.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional

from ..errors import InputError, InvariantViolation
from .network import Network

NodeId = Hashable


@dataclass
class Forest:
    """A rooted forest over a subset of the network's vertices."""

    parent: Dict[NodeId, Optional[NodeId]]
    children: Dict[NodeId, List[NodeId]] = field(default_factory=dict)
    depth: Dict[NodeId, int] = field(default_factory=dict)
    roots: List[NodeId] = field(default_factory=list)

    @classmethod
    def from_parent_map(cls, parent: Mapping[NodeId, Optional[NodeId]]) -> "Forest":
        """Build the derived structure (children lists, depths, roots)."""
        children: Dict[NodeId, List[NodeId]] = {v: [] for v in parent}
        roots: List[NodeId] = []
        for v, p in parent.items():
            if p is None:
                roots.append(v)
            else:
                if p not in parent:
                    raise InputError(f"parent {p!r} of {v!r} is outside the forest")
                children[p].append(v)
        for v in children:
            children[v].sort(key=repr)
        depth: Dict[NodeId, int] = {}
        stack = [(r, 0) for r in roots]
        while stack:
            v, d = stack.pop()
            depth[v] = d
            for c in children[v]:
                stack.append((c, d + 1))
        if len(depth) != len(parent):
            raise InputError("forest contains a cycle or unreachable vertices")
        roots.sort(key=repr)
        return cls(parent=dict(parent), children=children, depth=depth, roots=roots)

    @property
    def height(self) -> int:
        """Depth of the deepest vertex."""
        return max(self.depth.values()) if self.depth else 0

    def vertices(self) -> Iterable[NodeId]:
        return self.parent.keys()

    def by_depth(self) -> List[List[NodeId]]:
        """Vertices grouped by forest depth, ascending."""
        levels: Dict[int, List[NodeId]] = defaultdict(list)
        for v, d in self.depth.items():
            levels[d].append(v)
        return [sorted(levels[d], key=repr) for d in range(self.height + 1)]

    def leaves(self) -> List[NodeId]:
        return sorted((v for v in self.parent if not self.children[v]), key=repr)

    def subtree_vertices(self, root: NodeId) -> List[NodeId]:
        """All vertices in the subtree rooted at ``root`` (simulator-side)."""
        out: List[NodeId] = []
        stack = [root]
        while stack:
            v = stack.pop()
            out.append(v)
            stack.extend(self.children[v])
        return out


# ---------------------------------------------------------------------------
# Downward wave
# ---------------------------------------------------------------------------

def flood_down(
    net: Network,
    forest: Forest,
    root_value: Callable[[NodeId], Any],
    emit: Callable[[NodeId, Any], Any],
    *,
    kind: str = "flood",
    phase: Optional[str] = None,
) -> Dict[NodeId, Any]:
    """Send a wave from every forest root down to the leaves.

    Each vertex ends up with a *value*: a root's value is ``root_value(r)``;
    a non-root's value is the payload it received from its parent.  A vertex
    ``v`` holding value ``x`` sends ``emit(v, x)`` to its children --
    either a single payload (all children get it) or a mapping
    ``child -> payload`` for per-child values (Algorithm 4's DFS ranges,
    Algorithm 2's per-child light-edge lists).

    Returns every vertex's value.  Takes exactly ``forest.height`` simulated
    rounds; all trees proceed in parallel.
    """
    if phase:
        net.begin_phase(phase)
    value: Dict[NodeId, Any] = {r: root_value(r) for r in forest.roots}
    levels = forest.by_depth()
    for level_index in range(len(levels) - 1):
        senders = [v for v in levels[level_index] if v in value]
        any_sent = False
        for v in senders:
            kids = forest.children[v]
            if not kids:
                continue
            out = emit(v, value[v])
            if isinstance(out, dict):
                for c in kids:
                    net.send(v, c, kind, out[c])
            else:
                # Shared payload: one batched call sizes it once and lets
                # the vectorized engine queue the whole sibling fanout.
                net.send_many(v, kids, kind, out)
            any_sent = True
        if not any_sent:
            continue
        inboxes = net.tick()
        for v, msgs in inboxes.items():
            if len(msgs) != 1:
                raise InvariantViolation(f"{v!r} received {len(msgs)} wave messages")
            value[v] = msgs[0].payload
    if len(value) != len(forest.parent):
        raise InvariantViolation("downward wave did not cover the forest")
    if phase:
        net.end_phase()
    return value


# ---------------------------------------------------------------------------
# Upward convergecast
# ---------------------------------------------------------------------------

def convergecast_up(
    net: Network,
    forest: Forest,
    leaf_value: Callable[[NodeId], Any],
    combine: Callable[[NodeId, List[Any]], Any],
    *,
    kind: str = "converge",
    phase: Optional[str] = None,
) -> Dict[NodeId, Any]:
    """Aggregate values from the leaves to the roots of every tree.

    Each leaf starts with ``leaf_value(v)``.  An internal vertex that has
    received one message from every child computes
    ``combine(v, child_values)`` and forwards the result to its parent.
    The combine callback receives child values *in arrival order*; it should
    fold them without retaining the list (O(1)-memory pattern: the simulator
    hands the list for convenience, but handlers must charge their meters for
    whatever they actually keep).

    Returns every vertex's aggregated value.  Rounds simulated: the forest
    height (vertices at height ``h`` fire in round ``h``).
    """
    if phase:
        net.begin_phase(phase)
    value: Dict[NodeId, Any] = {}
    pending: Dict[NodeId, int] = {
        v: len(forest.children[v]) for v in forest.vertices()
    }
    arrived: Dict[NodeId, List[Any]] = defaultdict(list)
    ready = [v for v in forest.vertices() if pending[v] == 0]
    for v in ready:
        value[v] = leaf_value(v)
    while ready:
        for v in ready:
            p = forest.parent[v]
            if p is not None:
                net.send(v, p, kind, value[v])
        inboxes = net.tick()
        next_ready: List[NodeId] = []
        for v, msgs in inboxes.items():
            for m in msgs:
                arrived[v].append(m.payload)
                pending[v] -= 1
            if pending[v] == 0 and v not in value:
                value[v] = combine(v, arrived.pop(v))
                next_ready.append(v)
        ready = next_ready
    if len(value) != len(forest.parent):
        raise InvariantViolation("convergecast did not cover the forest")
    if phase:
        net.end_phase()
    return value
